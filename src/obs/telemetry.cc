#include "src/obs/telemetry.h"

#include <utility>

#include "src/obs/json_util.h"

namespace hybridflow {

TelemetryFields& TelemetryFields::Number(std::string key, double value) {
  Field field;
  field.key = std::move(key);
  field.is_number = true;
  field.number = value;
  fields_.push_back(std::move(field));
  return *this;
}

TelemetryFields& TelemetryFields::Text(std::string key, std::string value) {
  Field field;
  field.key = std::move(key);
  field.is_number = false;
  field.text = std::move(value);
  fields_.push_back(std::move(field));
  return *this;
}

std::string TelemetryFields::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const Field& field : fields_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += '"';
    out += JsonEscape(field.key);
    out += "\":";
    if (field.is_number) {
      out += JsonNumber(field.number);
    } else {
      out += '"';
      out += JsonEscape(field.text);
      out += '"';
    }
  }
  out += "}";
  return out;
}

TelemetrySink::TelemetrySink(std::string path) : path_(std::move(path)), out_(path_) {}

bool TelemetrySink::ok() const {
  MutexLock lock(mutex_);
  return static_cast<bool>(out_);
}

size_t TelemetrySink::records_written() const {
  MutexLock lock(mutex_);
  return records_;
}

void TelemetrySink::Append(const TelemetryFields& record) {
  const std::string line = record.ToJson();
  MutexLock lock(mutex_);
  out_ << line << "\n";
  out_.flush();
  records_ += 1;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

TelemetryFields& BenchReport::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

std::string BenchReport::FilePath(const std::string& directory) const {
  return directory + "/BENCH_" + name_ + ".json";
}

bool BenchReport::WriteJson(const std::string& directory) const {
  std::ofstream file(FilePath(directory));
  if (!file) {
    return false;
  }
  file << "{\"bench\":\"" << JsonEscape(name_) << "\",\"rows\":[\n";
  bool first = true;
  for (const TelemetryFields& row : rows_) {
    if (!first) {
      file << ",\n";
    }
    first = false;
    file << row.ToJson();
  }
  file << "\n]}\n";
  return static_cast<bool>(file);
}

}  // namespace hybridflow
