#include "src/obs/json_util.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace hybridflow {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";  // JSON cannot represent NaN/Inf.
  }
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

namespace {

// Recursive-descent validator over the raw bytes (treats the input as
// Latin-1; multi-byte UTF-8 passes through unexamined, which is fine for
// validity checking of our own ASCII-producing exporters).
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Validate(std::string* error) {
    SkipWhitespace();
    if (!Value()) {
      Fail(error);
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      message_ = "trailing characters after JSON value";
      Fail(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void Fail(std::string* error) const {
    if (error != nullptr) {
      *error = message_.empty() ? "malformed JSON" : message_;
      *error += " (at byte " + std::to_string(pos_) + ")";
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool AtEnd() const { return pos_ >= text_.size(); }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Literal(const char* word) {
    size_t i = 0;
    while (word[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != word[i]) {
        message_ = "invalid literal";
        return false;
      }
      ++i;
    }
    pos_ += i;
    return true;
  }

  bool String() {
    if (Peek() != '"') {
      message_ = "expected string";
      return false;
    }
    ++pos_;
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        message_ = "raw control character in string";
        return false;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        const char esc = Peek();
        if (esc == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + static_cast<size_t>(k) >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<size_t>(k)])) ==
                    0) {
              message_ = "bad \\u escape";
              return false;
            }
          }
          pos_ += 5;
        } else if (esc == '"' || esc == '\\' || esc == '/' || esc == 'b' || esc == 'f' ||
                   esc == 'n' || esc == 'r' || esc == 't') {
          ++pos_;
        } else {
          message_ = "bad escape character";
          return false;
        }
      } else {
        ++pos_;
      }
    }
    message_ = "unterminated string";
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      message_ = "expected digit";
      return false;
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    if (Peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        message_ = "expected fraction digits";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        message_ = "expected exponent digits";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Value() {
    if (++depth_ > kMaxDepth) {
      message_ = "nesting too deep";
      return false;
    }
    bool ok = false;
    switch (Peek()) {
      case '{':
        ok = Object();
        break;
      case '[':
        ok = Array();
        break;
      case '"':
        ok = String();
        break;
      case 't':
        ok = Literal("true");
        break;
      case 'f':
        ok = Literal("false");
        break;
      case 'n':
        ok = Literal("null");
        break;
      default:
        ok = Number();
    }
    --depth_;
    return ok;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (!String()) {
        return false;
      }
      SkipWhitespace();
      if (Peek() != ':') {
        message_ = "expected ':' in object";
        return false;
      }
      ++pos_;
      SkipWhitespace();
      if (!Value()) {
        return false;
      }
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      message_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (!Value()) {
        return false;
      }
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      message_ = "expected ',' or ']' in array";
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string message_;
};

}  // namespace

bool JsonValidate(const std::string& text, std::string* error) {
  return JsonValidator(text).Validate(error);
}

}  // namespace hybridflow
