#include "src/obs/seq_events.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "src/obs/json_util.h"
#include "src/obs/trace.h"

namespace hybridflow {

const char* SeqEventKindName(SeqEventKind kind) {
  switch (kind) {
    case SeqEventKind::kEnqueue:
      return "enqueue";
    case SeqEventKind::kAdmit:
      return "admit";
    case SeqEventKind::kPrefixHit:
      return "prefix-hit";
    case SeqEventKind::kPrefillChunk:
      return "prefill-chunk";
    case SeqEventKind::kFirstToken:
      return "first-token";
    case SeqEventKind::kDecodeStep:
      return "decode-step";
    case SeqEventKind::kPreempt:
      return "preempt";
    case SeqEventKind::kResume:
      return "resume";
    case SeqEventKind::kFinish:
      return "finish";
    case SeqEventKind::kCancel:
      return "cancel";
    case SeqEventKind::kExpire:
      return "expire";
  }
  return "unknown";
}

bool ParseSeqEventKind(const std::string& name, SeqEventKind* kind) {
  static constexpr SeqEventKind kAll[] = {
      SeqEventKind::kEnqueue,    SeqEventKind::kAdmit,   SeqEventKind::kPrefixHit,
      SeqEventKind::kPrefillChunk, SeqEventKind::kFirstToken, SeqEventKind::kDecodeStep,
      SeqEventKind::kPreempt,    SeqEventKind::kResume,  SeqEventKind::kFinish,
      SeqEventKind::kCancel,     SeqEventKind::kExpire,
  };
  for (SeqEventKind candidate : kAll) {
    if (name == SeqEventKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

void SeqEventLog::Record(const SeqEvent& event) {
  MutexLock lock(mutex_);
  events_.push_back(event);
}

void SeqEventLog::RecordNow(SeqEvent event) {
  event.wall_us = WallclockTracer::NowMicros();
  Record(event);
}

std::vector<SeqEvent> SeqEventLog::Snapshot() const {
  MutexLock lock(mutex_);
  return events_;
}

std::vector<SeqEvent> SeqEventLog::SnapshotRun(int64_t run) const {
  MutexLock lock(mutex_);
  std::vector<SeqEvent> out;
  for (const SeqEvent& event : events_) {
    if (event.run == run) {
      out.push_back(event);
    }
  }
  return out;
}

size_t SeqEventLog::size() const {
  MutexLock lock(mutex_);
  return events_.size();
}

void SeqEventLog::Clear() {
  MutexLock lock(mutex_);
  events_.clear();
}

std::string SeqEventLog::ToJsonl(const std::vector<SeqEvent>& events) {
  std::ostringstream out;
  for (const SeqEvent& event : events) {
    out << "{\"run\":" << event.run << ",\"seq\":" << event.seq << ",\"kind\":\""
        << SeqEventKindName(event.kind) << "\",\"step\":" << event.step
        << ",\"tokens\":" << event.tokens << ",\"sim_s\":" << JsonNumber(event.sim_seconds)
        << ",\"wall_us\":" << JsonNumber(event.wall_us) << "}\n";
  }
  return out.str();
}

bool SeqEventLog::WriteJsonl(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << ToJsonl(Snapshot());
  return static_cast<bool>(file);
}

std::vector<SeqLatency> DeriveSeqLatencies(const std::vector<SeqEvent>& events, bool wall) {
  struct Accum {
    SeqLatency latency;
    double enqueue_t = 0.0;
    double first_token_t = 0.0;
    double last_emit_t = 0.0;
    double last_t = 0.0;
    double pending_preempt_t = 0.0;
    bool saw_enqueue = false;
    bool admitted = false;
    bool first_token = false;
    bool preempt_pending = false;
  };
  // std::map keys sort by (run, seq), giving deterministic output order.
  std::map<std::pair<int64_t, int64_t>, Accum> groups;
  for (const SeqEvent& event : events) {
    Accum& acc = groups[{event.run, event.seq}];
    const double t = wall ? event.wall_us : event.sim_seconds;
    if (!acc.saw_enqueue) {
      // First event of the group anchors t=0 even if (unusually) it is not
      // an explicit enqueue.
      acc.enqueue_t = t;
      acc.saw_enqueue = true;
    }
    acc.last_t = t;
    switch (event.kind) {
      case SeqEventKind::kEnqueue:
        acc.enqueue_t = t;
        break;
      case SeqEventKind::kAdmit:
        if (!acc.admitted) {
          acc.admitted = true;
          acc.latency.queue_delay = t - acc.enqueue_t;
        }
        break;
      case SeqEventKind::kPrefixHit:
      case SeqEventKind::kPrefillChunk:
        break;
      case SeqEventKind::kFirstToken:
        if (!acc.first_token) {
          acc.first_token = true;
          acc.first_token_t = t;
          acc.latency.ttft = t - acc.enqueue_t;
        }
        acc.last_emit_t = t;
        ++acc.latency.tokens;
        break;
      case SeqEventKind::kDecodeStep:
        acc.last_emit_t = t;
        ++acc.latency.tokens;
        break;
      case SeqEventKind::kPreempt:
        ++acc.latency.preemptions;
        acc.pending_preempt_t = t;
        acc.preempt_pending = true;
        break;
      case SeqEventKind::kResume:
        if (acc.preempt_pending) {
          acc.latency.preemption_stall += t - acc.pending_preempt_t;
          acc.preempt_pending = false;
        }
        acc.latency.recomputed_tokens += event.tokens;
        break;
      case SeqEventKind::kFinish:
        acc.latency.finished = true;
        break;
      case SeqEventKind::kCancel:
      case SeqEventKind::kExpire:
        // Terminal but not finished; the row keeps whatever tokens it
        // streamed before the cut (TTFT/TPOT stay meaningful for them).
        break;
    }
  }
  std::vector<SeqLatency> latencies;
  latencies.reserve(groups.size());
  for (auto& [key, acc] : groups) {
    acc.latency.run = key.first;
    acc.latency.seq = key.second;
    acc.latency.total = acc.last_t - acc.enqueue_t;
    if (acc.latency.tokens >= 2) {
      acc.latency.tpot = (acc.last_emit_t - acc.first_token_t) /
                         static_cast<double>(acc.latency.tokens - 1);
    }
    latencies.push_back(acc.latency);
  }
  return latencies;
}

LatencyDigest DigestValues(std::vector<double> values) {
  LatencyDigest digest;
  digest.count = values.size();
  if (values.empty()) {
    return digest;
  }
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (double value : values) {
    sum += value;
  }
  digest.mean = sum / static_cast<double>(values.size());
  const auto at = [&values](double q) {
    const double n = static_cast<double>(values.size());
    size_t rank = static_cast<size_t>(std::ceil(q * n));
    rank = std::max<size_t>(1, std::min(rank, values.size()));
    return values[rank - 1];
  };
  digest.p50 = at(0.5);
  digest.p90 = at(0.9);
  digest.p99 = at(0.99);
  digest.max = values.back();
  return digest;
}

SeqLatencySummary SummarizeSeqLatencies(const std::vector<SeqLatency>& latencies) {
  SeqLatencySummary summary;
  std::vector<double> ttft;
  std::vector<double> tpot;
  std::vector<double> queue_delay;
  std::vector<double> stall;
  for (const SeqLatency& latency : latencies) {
    ++summary.sequences;
    if (latency.finished) {
      ++summary.finished;
    }
    summary.preemptions += latency.preemptions;
    summary.recomputed_tokens += latency.recomputed_tokens;
    if (latency.tokens >= 1) {
      ttft.push_back(latency.ttft);
      queue_delay.push_back(latency.queue_delay);
    }
    if (latency.tokens >= 2) {
      tpot.push_back(latency.tpot);
    }
    if (latency.preemptions > 0) {
      stall.push_back(latency.preemption_stall);
    }
  }
  summary.ttft = DigestValues(std::move(ttft));
  summary.tpot = DigestValues(std::move(tpot));
  summary.queue_delay = DigestValues(std::move(queue_delay));
  summary.preemption_stall = DigestValues(std::move(stall));
  return summary;
}

}  // namespace hybridflow
