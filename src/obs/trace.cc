#include "src/obs/trace.h"

#include <chrono>
#include <utility>

namespace hybridflow {

WallclockTracer& WallclockTracer::Global() {
  // Intentionally leaked: spans may be recorded from pool threads during
  // static destruction (same pattern as ThreadPool::Shared).
  static WallclockTracer* tracer = new WallclockTracer();  // hflint: allow(naked-new)
  return *tracer;
}

void WallclockTracer::SetCategorySampling(const std::string& category, uint64_t every) {
  MutexLock lock(mutex_);
  if (every <= 1 || category.empty()) {
    sampled_category_.clear();
    sample_every_ = 1;
  } else {
    sampled_category_ = category;
    sample_every_ = every;
  }
  sample_seen_ = 0;
}

void WallclockTracer::Record(WallSpan span) {
  // Threshold check is lock-free so decimated hot spans never touch the
  // mutex.
  if (span.duration_us < min_duration_us_.load(std::memory_order_relaxed)) {
    return;
  }
  MutexLock lock(mutex_);
  if (sample_every_ > 1 && span.category == sampled_category_) {
    // Keep the 1st, (every+1)th, ... span of the sampled category.
    if ((sample_seen_++ % sample_every_) != 0) {
      return;
    }
  }
  spans_.push_back(std::move(span));
}

std::vector<WallSpan> WallclockTracer::Snapshot() const {
  MutexLock lock(mutex_);
  return spans_;
}

size_t WallclockTracer::size() const {
  MutexLock lock(mutex_);
  return spans_.size();
}

void WallclockTracer::Clear() {
  MutexLock lock(mutex_);
  spans_.clear();
}

double WallclockTracer::NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch).count();
}

uint32_t WallclockTracer::ThreadId() {
  static std::atomic<uint32_t> next_id{0};
  thread_local const uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceScope::TraceScope(std::string_view name, std::string_view category) {
  if (WallclockTracer::Global().enabled()) {
    active_ = true;
    name_ = name;
    category_ = category;
    start_us_ = WallclockTracer::NowMicros();
  }
}

TraceScope::~TraceScope() {
  if (!active_) {
    return;
  }
  const double end_us = WallclockTracer::NowMicros();
  WallclockTracer::Global().Record(WallSpan{std::move(name_), std::move(category_),
                                            WallclockTracer::ThreadId(), start_us_,
                                            end_us - start_us_});
}

}  // namespace hybridflow
