// Minimal JSON string utilities shared by the observability exporters
// (metrics JSONL, run telemetry, Chrome traces). Not a DOM library: just
// spec-correct escaping, deterministic number formatting, and a validating
// parser used by tests to round-trip-check emitted documents.
#ifndef SRC_OBS_JSON_UTIL_H_
#define SRC_OBS_JSON_UTIL_H_

#include <string>

namespace hybridflow {

// Escapes a string for embedding inside a JSON string literal (without the
// surrounding quotes): '"', '\\', and every control character < 0x20 per
// RFC 8259 ('\n', '\t', '\r', '\b', '\f' use short escapes, the rest \u00XX).
std::string JsonEscape(const std::string& text);

// Formats a double as a JSON number token. Integral values print without a
// decimal point; non-finite values (which JSON cannot represent) print as
// null. Deterministic across platforms for golden tests.
std::string JsonNumber(double value);

// Validates that `text` is exactly one well-formed JSON value (object,
// array, string, number, true/false/null) with only trailing whitespace.
// On failure returns false and, when `error` is non-null, a short
// position-annotated description.
bool JsonValidate(const std::string& text, std::string* error = nullptr);

}  // namespace hybridflow

#endif  // SRC_OBS_JSON_UTIL_H_
