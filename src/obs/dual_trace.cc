#include "src/obs/dual_trace.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "src/obs/json_util.h"
#include "src/sim/trace_export.h"

namespace hybridflow {

namespace {

void AppendProcessName(int pid, const std::string& name, bool* first, std::ostream& out) {
  if (!*first) {
    out << ",\n";
  }
  *first = false;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
}

void AppendWallSpans(const std::vector<WallSpan>& spans, int pid, bool* first,
                     std::ostream& out) {
  // One thread_name metadata event per distinct traced thread.
  std::vector<uint32_t> threads;
  threads.reserve(spans.size());
  for (const WallSpan& span : spans) {
    threads.push_back(span.thread_id);
  }
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  for (uint32_t tid : threads) {
    if (!*first) {
      out << ",\n";
    }
    *first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"args\":{\"name\":\"thread " << tid << "\"}}";
  }
  for (const WallSpan& span : spans) {
    if (!*first) {
      out << ",\n";
    }
    *first = false;
    out << "{\"name\":\"" << JsonEscape(span.name) << "\",\"cat\":\""
        << JsonEscape(span.category) << "\",\"ph\":\"X\",\"pid\":" << pid
        << ",\"tid\":" << span.thread_id << ",\"ts\":" << JsonNumber(span.start_us)
        << ",\"dur\":" << JsonNumber(span.duration_us) << "}";
  }
}

}  // namespace

std::string DualPlaneChromeJson(const ClusterState& state,
                                const std::vector<WallSpan>& wall_spans) {
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  AppendProcessName(0, "simulated cluster (sim-time)", &first, out);
  AppendProcessName(1, "framework (wall-clock)", &first, out);
  AppendSimTraceEvents(state.trace(), state.world_size(), /*pid=*/0, &first, out);
  AppendWallSpans(wall_spans, /*pid=*/1, &first, out);
  out << "\n]}\n";
  return out.str();
}

bool WriteDualPlaneTrace(const ClusterState& state, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << DualPlaneChromeJson(state, WallclockTracer::Global().Snapshot());
  return static_cast<bool>(file);
}

}  // namespace hybridflow
