#include "src/obs/dual_trace.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "src/obs/json_util.h"
#include "src/sim/trace_export.h"

namespace hybridflow {

namespace {

void AppendProcessName(int pid, const std::string& name, bool* first, std::ostream& out) {
  if (!*first) {
    out << ",\n";
  }
  *first = false;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
}

void AppendWallSpans(const std::vector<WallSpan>& spans, int pid, bool* first,
                     std::ostream& out) {
  // One thread_name metadata event per distinct traced thread.
  std::vector<uint32_t> threads;
  threads.reserve(spans.size());
  for (const WallSpan& span : spans) {
    threads.push_back(span.thread_id);
  }
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  for (uint32_t tid : threads) {
    if (!*first) {
      out << ",\n";
    }
    *first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"args\":{\"name\":\"thread " << tid << "\"}}";
  }
  for (const WallSpan& span : spans) {
    if (!*first) {
      out << ",\n";
    }
    *first = false;
    out << "{\"name\":\"" << JsonEscape(span.name) << "\",\"cat\":\""
        << JsonEscape(span.category) << "\",\"ph\":\"X\",\"pid\":" << pid
        << ",\"tid\":" << span.thread_id << ",\"ts\":" << JsonNumber(span.start_us)
        << ",\"dur\":" << JsonNumber(span.duration_us) << "}";
  }
}

// Per-sequence async spans from the rollout lifecycle event log. One
// Chrome async track per (run, seq): "b"/"e" bracket the sequence's
// lifetime, lifecycle moments in between are "n" instants on the same id.
// Each run gets its own tid because runs have independent clocks (every
// sim run restarts at t=0) — stacking them on one track would imply a
// shared timeline that does not exist.
void AppendSeqEventSpans(const std::vector<SeqEvent>& events, int pid, bool* first,
                         std::ostream& out) {
  if (events.empty()) {
    return;
  }
  AppendProcessName(pid, "rollout sequences (per-seq lifecycle)", first, out);
  // A run is on the sim clock if any of its events carries sim time; the
  // data plane leaves sim_seconds at 0 and is rendered on wall time.
  std::map<int64_t, bool> run_uses_sim;
  for (const SeqEvent& event : events) {
    if (event.sim_seconds > 0.0) {
      run_uses_sim[event.run] = true;
    } else {
      run_uses_sim.emplace(event.run, false);
    }
  }
  for (const auto& [run, uses_sim] : run_uses_sim) {
    if (!*first) {
      out << ",\n";
    }
    *first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << run
        << ",\"args\":{\"name\":\"run " << run << " (" << (uses_sim ? "sim" : "wall")
        << ")\"}}";
  }
  // First/last timestamp per (run, seq) bracket the async span.
  std::map<std::pair<int64_t, int64_t>, std::pair<double, double>> extents;
  const auto ts_of = [&run_uses_sim](const SeqEvent& event) {
    return run_uses_sim[event.run] ? event.sim_seconds * 1e6 : event.wall_us;
  };
  for (const SeqEvent& event : events) {
    const double ts = ts_of(event);
    auto [it, inserted] = extents.emplace(std::make_pair(event.run, event.seq),
                                          std::make_pair(ts, ts));
    if (!inserted) {
      it->second.first = std::min(it->second.first, ts);
      it->second.second = std::max(it->second.second, ts);
    }
  }
  const auto emit = [&](const char* ph, const std::string& name, int64_t run, int64_t seq,
                        double ts) {
    if (!*first) {
      out << ",\n";
    }
    *first = false;
    out << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"rollout_seq\",\"ph\":\"" << ph
        << "\",\"id\":\"" << run << ":" << seq << "\",\"pid\":" << pid << ",\"tid\":" << run
        << ",\"ts\":" << JsonNumber(ts) << "}";
  };
  for (const auto& [key, extent] : extents) {
    emit("b", "seq " + std::to_string(key.second), key.first, key.second, extent.first);
  }
  for (const SeqEvent& event : events) {
    emit("n", SeqEventKindName(event.kind), event.run, event.seq, ts_of(event));
  }
  for (const auto& [key, extent] : extents) {
    emit("e", "seq " + std::to_string(key.second), key.first, key.second, extent.second);
  }
}

}  // namespace

std::string DualPlaneChromeJson(const ClusterState& state,
                                const std::vector<WallSpan>& wall_spans,
                                const std::vector<SeqEvent>& seq_events) {
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  AppendProcessName(0, "simulated cluster (sim-time)", &first, out);
  AppendProcessName(1, "framework (wall-clock)", &first, out);
  AppendSimTraceEvents(state.trace(), state.world_size(), /*pid=*/0, &first, out);
  AppendWallSpans(wall_spans, /*pid=*/1, &first, out);
  AppendSeqEventSpans(seq_events, /*pid=*/2, &first, out);
  out << "\n]}\n";
  return out.str();
}

bool WriteDualPlaneTrace(const ClusterState& state, const std::string& path,
                         const SeqEventLog* seq_events) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << DualPlaneChromeJson(state, WallclockTracer::Global().Snapshot(),
                              seq_events == nullptr ? std::vector<SeqEvent>{}
                                                    : seq_events->Snapshot());
  return static_cast<bool>(file);
}

}  // namespace hybridflow
