// Dual-plane Chrome trace export: merges the simulated-cluster timeline
// (src/sim/timeline.h, simulated seconds) and the framework's wall-clock
// spans (src/obs/trace.h) into one trace-event JSON file with two process
// groups:
//
//   pid 0 — "simulated cluster (sim-time)", one tid per GPU, timestamps
//           in simulated microseconds;
//   pid 1 — "framework (wall-clock)", one tid per traced thread,
//           timestamps in real microseconds since the trace epoch;
//   pid 2 — "rollout sequences", one async span per (run, seq) from the
//           per-sequence lifecycle event log (src/obs/seq_events.h), with
//           lifecycle moments (admit, first-token, preempt, resume) as
//           async instants. One tid per generation run. Timestamps use the
//           run's sim clock when it has one, else wall-clock.
//
// chrome://tracing and Perfetto render the groups stacked, so a run's
// real controller/worker/reshard activity can be read side by side with
// the cluster time it was charged on the simulated timeline.
#ifndef SRC_OBS_DUAL_TRACE_H_
#define SRC_OBS_DUAL_TRACE_H_

#include <string>
#include <vector>

#include "src/obs/seq_events.h"
#include "src/obs/trace.h"
#include "src/sim/timeline.h"

namespace hybridflow {

// Serializes both planes into one Chrome trace-event JSON document;
// `seq_events` (may be empty) adds the pid 2 per-sequence span group.
std::string DualPlaneChromeJson(const ClusterState& state,
                                const std::vector<WallSpan>& wall_spans,
                                const std::vector<SeqEvent>& seq_events = {});

// Convenience: snapshots WallclockTracer::Global() (and `seq_events` when
// non-null) and writes the merged trace to `path`. Returns false on I/O
// failure.
bool WriteDualPlaneTrace(const ClusterState& state, const std::string& path,
                         const SeqEventLog* seq_events = nullptr);

}  // namespace hybridflow

#endif  // SRC_OBS_DUAL_TRACE_H_
