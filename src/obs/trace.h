// Wall-clock tracing: RAII scoped spans recorded against a process-wide
// monotonic epoch, exported (src/obs/dual_trace.h) into the same Chrome
// trace file as the simulated-cluster spans so one chrome://tracing /
// Perfetto view correlates what the framework really did (controller
// dispatch, worker compute, resharding, thread-pool tasks) with what the
// simulated cluster charged for it.
//
// Recording is opt-in: spans are dropped unless
// `WallclockTracer::Global().SetEnabled(true)` has been called (examples
// and benches enable it; library code never does). A disabled
// HF_TRACE_SCOPE costs one relaxed atomic load.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/annotations.h"

namespace hybridflow {

// One completed wall-clock interval on one thread.
struct WallSpan {
  std::string name;
  std::string category;
  // Dense per-process thread index (not the OS tid); becomes the Chrome
  // trace `tid` of the wall-clock process group.
  uint32_t thread_id = 0;
  double start_us = 0.0;     // Microseconds since the process trace epoch.
  double duration_us = 0.0;  // Wall-clock duration in microseconds.
};

class WallclockTracer {
 public:
  WallclockTracer() = default;
  WallclockTracer(const WallclockTracer&) = delete;
  WallclockTracer& operator=(const WallclockTracer&) = delete;

  // The process-wide tracer used by HF_TRACE_SCOPE (never destroyed).
  static WallclockTracer& Global();

  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Decimation for hot spans (the tensor kernels fire one span per GEMM):
  // spans shorter than `min_duration_us` are dropped at Record time.
  // Checked lock-free; 0 (the default) keeps everything.
  void SetMinDurationUs(double min_duration_us) {
    min_duration_us_.store(min_duration_us, std::memory_order_relaxed);
  }
  double min_duration_us() const { return min_duration_us_.load(std::memory_order_relaxed); }

  // Keeps 1 of every `every` spans whose category equals `category`
  // (counted per category rule, in Record order); other categories are
  // untouched. `every` <= 1 clears the rule. One rule at a time — enough
  // to decimate the "tensor" category while the controller/worker spans
  // stay complete.
  void SetCategorySampling(const std::string& category, uint64_t every) HF_EXCLUDES(mutex_);

  // Appends a completed span (thread-safe) unless a decimation rule drops
  // it. Called by TraceScope; callers with externally measured intervals
  // may also record directly.
  void Record(WallSpan span) HF_EXCLUDES(mutex_);

  std::vector<WallSpan> Snapshot() const HF_EXCLUDES(mutex_);
  size_t size() const HF_EXCLUDES(mutex_);
  void Clear() HF_EXCLUDES(mutex_);

  // Monotonic microseconds since the process trace epoch (first call).
  static double NowMicros();
  // Dense id of the calling thread, stable for the thread's lifetime.
  static uint32_t ThreadId();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<double> min_duration_us_{0.0};
  mutable Mutex mutex_;
  std::vector<WallSpan> spans_ HF_GUARDED_BY(mutex_);
  // Category-sampling rule; empty category means no rule.
  std::string sampled_category_ HF_GUARDED_BY(mutex_);
  uint64_t sample_every_ HF_GUARDED_BY(mutex_) = 1;
  uint64_t sample_seen_ HF_GUARDED_BY(mutex_) = 0;
};

// RAII span: measures construction-to-destruction on the global tracer.
// Name/category are only copied when tracing is enabled.
class TraceScope {
 public:
  TraceScope(std::string_view name, std::string_view category);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_ = false;
  double start_us_ = 0.0;
  std::string name_;
  std::string category_;
};

#define HF_OBS_CONCAT_INNER_(a, b) a##b
#define HF_OBS_CONCAT_(a, b) HF_OBS_CONCAT_INNER_(a, b)
// Scoped wall-clock span: HF_TRACE_SCOPE("actor.generate", "generate");
#define HF_TRACE_SCOPE(name, category) \
  ::hybridflow::TraceScope HF_OBS_CONCAT_(hf_trace_scope_, __LINE__)(name, category)

}  // namespace hybridflow

#endif  // SRC_OBS_TRACE_H_
