// Per-sequence lifecycle event log for the continuous-batching rollout
// path, and the latency derivations built on it (TTFT / TPOT / queue delay
// / preemption stall / recompute overhead).
//
// The rollout scheduler records one SeqEvent per lifecycle transition —
// enqueue, admit, prefill-chunk, first-token, decode-step, preempt, resume,
// finish — stamped in *both* planes: `sim_seconds` is the DES clock the
// timing simulator advances (0 on the data-plane path, which has no sim
// clock), `wall_us` is WallclockTracer::NowMicros(). Recording is opt-in:
// a null SeqEventLog* on the scheduler makes every hook a no-op branch, so
// the default (Release and hot-path) cost is one pointer compare, matching
// the concurrency-contract hook discipline.
//
// Events export as JSONL (one object per line, JsonValidate-clean) and
// merge into the dual-plane Chrome trace as per-sequence async spans
// (src/obs/dual_trace.h). DeriveSeqLatencies/SummarizeSeqLatencies turn an
// event stream into per-sequence latency rows and p50/p90/p99 digests;
// tools/hfstat.cc reads the JSONL artifact and prints the same breakdown
// offline.
#ifndef SRC_OBS_SEQ_EVENTS_H_
#define SRC_OBS_SEQ_EVENTS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/annotations.h"

namespace hybridflow {

enum class SeqEventKind {
  kEnqueue,       // Sequence handed to the scheduler (waiting queue).
  kAdmit,         // First admission: KV blocks allocated, prefill begins.
  kPrefixHit,     // (Re)admission shared cached prompt blocks (tokens =
                  // prefill compute skipped); precedes kAdmit/kResume.
  kPrefillChunk,  // One prefill chunk planned this step (tokens = chunk size).
  kFirstToken,    // First generated token committed (TTFT endpoint).
  kDecodeStep,    // A subsequent token committed (TPOT numerator).
  kPreempt,       // Preempted: KV freed, requeued (tokens = resident tokens lost).
  kResume,        // Re-admitted after preemption (tokens = tokens to re-prefill).
  kFinish,        // Reached target length / EOS; KV released.
  kCancel,        // Client-side cancellation; KV released (tokens = resident lost).
  kExpire,        // TTFT deadline passed before the first token; KV released.
};

// Stable lowercase-dash name used in JSONL ("prefill-chunk", ...).
const char* SeqEventKindName(SeqEventKind kind);
// Inverse of SeqEventKindName; false if `name` is not a known kind.
bool ParseSeqEventKind(const std::string& name, SeqEventKind* kind);

struct SeqEvent {
  int64_t run = 0;          // Generation-run id (SeqEventLog::BeginRun).
  int64_t seq = 0;          // RolloutSequence::id (unique within a run).
  SeqEventKind kind = SeqEventKind::kEnqueue;
  int64_t step = 0;         // Scheduler step index within the run.
  int64_t tokens = 0;       // Kind-specific token count (see enum comments).
  double sim_seconds = 0.0; // DES clock; 0 on the data plane.
  double wall_us = 0.0;     // WallclockTracer::NowMicros() at record time.
};

// Thread-safe append-only event sink. One log may be shared by concurrent
// engines (e.g. per-rank data-plane shards); each engine tags its events
// with a distinct run id from BeginRun().
class SeqEventLog {
 public:
  SeqEventLog() = default;
  SeqEventLog(const SeqEventLog&) = delete;
  SeqEventLog& operator=(const SeqEventLog&) = delete;

  // Reserves the next generation-run id (0, 1, 2, ...).
  int64_t BeginRun() { return next_run_.fetch_add(1, std::memory_order_relaxed); }

  void Record(const SeqEvent& event);
  // Records with wall_us stamped from WallclockTracer::NowMicros().
  void RecordNow(SeqEvent event);

  std::vector<SeqEvent> Snapshot() const;
  // Events tagged with `run` only, in record order.
  std::vector<SeqEvent> SnapshotRun(int64_t run) const;
  size_t size() const;
  void Clear();

  // One JSON object per line:
  //   {"run":0,"seq":3,"kind":"admit","step":2,"tokens":14,
  //    "sim_s":0.53,"wall_us":1234.5}
  static std::string ToJsonl(const std::vector<SeqEvent>& events);
  // Writes ToJsonl(Snapshot()) to `path` (truncating); false on I/O error.
  bool WriteJsonl(const std::string& path) const;

 private:
  mutable Mutex mutex_;
  std::vector<SeqEvent> events_ HF_GUARDED_BY(mutex_);
  std::atomic<int64_t> next_run_{0};
};

// Per-sequence latency row derived from one run's event stream. All
// durations are in the chosen plane's unit: sim-seconds when derived with
// wall=false, wall-microseconds with wall=true.
struct SeqLatency {
  int64_t run = 0;
  int64_t seq = 0;
  int64_t tokens = 0;             // Generated tokens (first-token + decode-steps).
  int64_t preemptions = 0;
  int64_t recomputed_tokens = 0;  // Prefill tokens re-run after preemption.
  bool finished = false;
  double queue_delay = 0.0;       // enqueue -> first admit.
  double ttft = 0.0;              // enqueue -> first token.
  double tpot = 0.0;              // (last token - first token) / (tokens - 1).
  double preemption_stall = 0.0;  // Sum of preempt -> resume gaps.
  double total = 0.0;             // enqueue -> finish (or last event if unfinished).
};

// Groups `events` by (run, seq) and derives one SeqLatency per sequence.
// Events must be in record order within each (run, seq) group (the log
// preserves this). `wall` selects the wall_us timestamps instead of
// sim_seconds.
std::vector<SeqLatency> DeriveSeqLatencies(const std::vector<SeqEvent>& events, bool wall);

// Exact (sorted, nearest-rank) digest of one latency dimension.
struct LatencyDigest {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

LatencyDigest DigestValues(std::vector<double> values);

struct SeqLatencySummary {
  int64_t sequences = 0;
  int64_t finished = 0;
  int64_t preemptions = 0;
  int64_t recomputed_tokens = 0;
  LatencyDigest ttft;
  LatencyDigest tpot;              // Over sequences with >= 2 tokens.
  LatencyDigest queue_delay;
  LatencyDigest preemption_stall;  // Over preempted sequences only.
};

SeqLatencySummary SummarizeSeqLatencies(const std::vector<SeqLatency>& latencies);

}  // namespace hybridflow

#endif  // SRC_OBS_SEQ_EVENTS_H_
