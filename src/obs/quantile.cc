#include "src/obs/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace hybridflow {

namespace {

// Relaxed CAS add/min/max on atomic<double> (fetch_add on atomic<double>
// is not guaranteed lock-free everywhere; same rationale as
// obs_internal::AtomicDouble, not reused to keep this header cycle-free
// with metrics.h).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

// Midpoint-free DDSketch estimate for bucket key k: every v in
// (gamma^(k-1), gamma^k] satisfies |estimate - v| / v <= e.
double BucketEstimate(double gamma, int64_t key) {
  return 2.0 * std::pow(gamma, static_cast<double>(key)) / (gamma + 1.0);
}

}  // namespace

double QuantileSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  const double clamped_q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: the smallest value with at least ceil(q * count)
  // observations at or below it.
  uint64_t rank = static_cast<uint64_t>(std::ceil(clamped_q * static_cast<double>(count)));
  rank = std::max<uint64_t>(1, std::min(rank, count));
  // The extreme ranks are the observed extrema, which are kept exactly.
  if (rank == 1) {
    return min;
  }
  if (rank == count) {
    return max;
  }
  double estimate = 0.0;
  if (rank > zero_count) {
    uint64_t cumulative = zero_count;
    estimate = max;  // Fallback if relaxed per-bucket reads undercount.
    for (size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      if (cumulative >= rank) {
        estimate = BucketEstimate(gamma, min_key + static_cast<int64_t>(i));
        break;
      }
    }
  }
  // The observed extrema are exact; clamping can only reduce error.
  return std::min(max, std::max(min, estimate));
}

void QuantileSnapshot::Merge(const QuantileSnapshot& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0) {
    *this = other;
    return;
  }
  HF_CHECK_MSG(relative_error == other.relative_error && buckets.size() == other.buckets.size() &&
                   min_key == other.min_key,
               "QuantileSnapshot::Merge requires identical bucket geometry");
  zero_count += other.zero_count;
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

QuantileHistogram::QuantileHistogram(double relative_error) : relative_error_(relative_error) {
  HF_CHECK_MSG(relative_error > 0.0 && relative_error < 0.5,
               "quantile relative error must be in (0, 0.5)");
  gamma_ = (1.0 + relative_error) / (1.0 - relative_error);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
  min_key_ = KeyFor(kMinTrackedValue);
  const int64_t max_key = KeyFor(kMaxTrackedValue);
  buckets_ = std::vector<std::atomic<uint64_t>>(static_cast<size_t>(max_key - min_key_ + 1));
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

int64_t QuantileHistogram::KeyFor(double value) const {
  return static_cast<int64_t>(std::ceil(std::log(value) * inv_log_gamma_));
}

void QuantileHistogram::Observe(double value) {
  if (!std::isfinite(value)) {
    return;
  }
  if (value <= 0.0) {
    zero_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const double clamped = std::min(kMaxTrackedValue, std::max(kMinTrackedValue, value));
    const size_t index = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(buckets_.size()) - 1,
                          std::max<int64_t>(0, KeyFor(clamped) - min_key_)));
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double QuantileHistogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

QuantileSnapshot QuantileHistogram::Snapshot() const {
  QuantileSnapshot snapshot;
  snapshot.relative_error = relative_error_;
  snapshot.gamma = gamma_;
  snapshot.min_key = min_key_;
  snapshot.zero_count = zero_count_.load(std::memory_order_relaxed);
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.buckets.reserve(buckets_.size());
  for (const std::atomic<uint64_t>& bucket : buckets_) {
    snapshot.buckets.push_back(bucket.load(std::memory_order_relaxed));
  }
  if (snapshot.count == 0) {
    snapshot.min = 0.0;
    snapshot.max = 0.0;
  } else {
    snapshot.min = min_.load(std::memory_order_relaxed);
    snapshot.max = max_.load(std::memory_order_relaxed);
  }
  return snapshot;
}

}  // namespace hybridflow
