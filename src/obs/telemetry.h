// Structured run telemetry: machine-readable JSONL trajectories for
// training loops and JSON result files for the figure-reproduction
// benches.
//
// Two sinks share one record type:
//   * TelemetrySink  — append-only JSONL file, one record per line; the
//     RLHF program writes one record per iteration (loss, KL, reward,
//     grad norm, clip fraction, sim makespan, wall-clock ms, tokens/s).
//   * BenchReport    — in-memory row collection written once as
//     BENCH_<name>.json, used by the bench_fig* harnesses.
#ifndef SRC_OBS_TELEMETRY_H_
#define SRC_OBS_TELEMETRY_H_

#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/annotations.h"

namespace hybridflow {

// One flat JSON object: ordered key -> number-or-string fields. Insertion
// order is preserved in the serialized output.
class TelemetryFields {
 public:
  TelemetryFields& Number(std::string key, double value);
  TelemetryFields& Text(std::string key, std::string value);

  // Serializes as one JSON object, e.g. {"iteration":3,"loss":0.25}.
  std::string ToJson() const;
  bool empty() const { return fields_.empty(); }

 private:
  struct Field {
    std::string key;
    bool is_number = true;
    double number = 0.0;
    std::string text;
  };
  std::vector<Field> fields_;
};

// Append-only JSONL file sink; Append is thread-safe and flushes per line
// so trajectories survive crashes mid-run.
class TelemetrySink {
 public:
  // Opens `path` truncating any previous content; check ok() afterwards.
  explicit TelemetrySink(std::string path);

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  bool ok() const;
  const std::string& path() const { return path_; }
  size_t records_written() const;

  void Append(const TelemetryFields& record) HF_EXCLUDES(mutex_);

 private:
  std::string path_;
  mutable Mutex mutex_;
  std::ofstream out_ HF_GUARDED_BY(mutex_);
  size_t records_ HF_GUARDED_BY(mutex_) = 0;
};

// Result-row collection for one bench binary. Not thread-safe (benches are
// single-threaded on the controller side); rows keep stable addresses, so
// the reference returned by AddRow stays valid across later calls.
class BenchReport {
 public:
  // `name` without the BENCH_ prefix or extension, e.g. "fig9_ppo_throughput".
  explicit BenchReport(std::string name);

  TelemetryFields& AddRow();
  size_t size() const { return rows_.size(); }
  const std::string& name() const { return name_; }

  // Path the report writes to: <directory>/BENCH_<name>.json.
  std::string FilePath(const std::string& directory = ".") const;
  // Writes {"bench":"<name>","rows":[{...},...]}; false on I/O failure.
  bool WriteJson(const std::string& directory = ".") const;

 private:
  std::string name_;
  std::deque<TelemetryFields> rows_;
};

}  // namespace hybridflow

#endif  // SRC_OBS_TELEMETRY_H_
