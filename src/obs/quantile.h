// Mergeable, lock-free log-bucketed percentile histogram (DDSketch-style).
//
// Values are mapped to geometric buckets: bucket k covers
// (gamma^(k-1), gamma^k] with gamma = (1 + e) / (1 - e) for a configured
// relative error e, and the bucket estimate 2 * gamma^k / (gamma + 1) is
// within a factor (1 ± e) of every value in the bucket. Quantile queries
// therefore carry a *relative* error bound of e (default 1%) regardless of
// the value range — unlike the fixed-bucket Histogram, whose accuracy dies
// outside its configured bounds. The tradeoff: only the distribution shape
// is kept (counts per geometric bucket), no exact sum of squares etc.
//
// Observe() is lock-free (relaxed atomic bucket increments + CAS min/max),
// matching the Counter/Gauge/Histogram hot-path contract so it is safe from
// pool threads and ThreadPool internals. Snapshot() gives a consistent-
// enough point-in-time copy (per-bucket atomic reads; exactness under
// concurrent writers is tested the same way as the fixed histogram).
// Snapshots from histograms with the same relative error Merge() by bucket
// addition, which is how per-rank engine instances combine into one
// distribution.
//
// Supported value range: [kMinTrackedValue, kMaxTrackedValue]; values <= 0
// land in an exact zero bucket (estimate 0), values below the range clamp
// to the first bucket, values above clamp to the last (both outside the
// error bound, both far outside any latency this repo measures).
#ifndef SRC_OBS_QUANTILE_H_
#define SRC_OBS_QUANTILE_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace hybridflow {

// Point-in-time copy of a QuantileHistogram, cheap to pass around and the
// unit of cross-instance aggregation.
struct QuantileSnapshot {
  double relative_error = 0.0;
  double gamma = 0.0;
  int64_t min_key = 0;            // Bucket key of buckets[0].
  uint64_t zero_count = 0;        // Values <= 0 (estimate 0, exact).
  uint64_t count = 0;             // Total observations incl. zero_count.
  double sum = 0.0;
  double min = 0.0;               // Exact observed extrema (0 when empty).
  double max = 0.0;
  std::vector<uint64_t> buckets;  // Geometric bucket counts.

  // Nearest-rank quantile estimate for q in [0, 1]; relative error is
  // bounded by `relative_error` for in-range values. The extreme ranks
  // return the exact observed min / max, and every estimate is clamped
  // into that range. Returns 0 for an empty snapshot.
  double Quantile(double q) const;

  // Adds `other` into this snapshot. Both must come from histograms with
  // the same relative error (checked).
  void Merge(const QuantileSnapshot& other);
};

class QuantileHistogram {
 public:
  static constexpr double kDefaultRelativeError = 0.01;
  // Smallest / largest positive value tracked with the error guarantee.
  // 1e-9 .. 1e15 spans sub-nanosecond to ~31 years in seconds and every
  // token-count / byte-size this repo observes.
  static constexpr double kMinTrackedValue = 1e-9;
  static constexpr double kMaxTrackedValue = 1e15;

  explicit QuantileHistogram(double relative_error = kDefaultRelativeError);

  // Lock-free; safe from any thread.
  void Observe(double value);

  QuantileSnapshot Snapshot() const;
  // Convenience: Snapshot().Quantile(q).
  double Quantile(double q) const { return Snapshot().Quantile(q); }

  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  double relative_error() const { return relative_error_; }

 private:
  // Bucket key for a positive in-range value: ceil(log_gamma(value)).
  int64_t KeyFor(double value) const;

  double relative_error_;
  double gamma_;
  double inv_log_gamma_;
  int64_t min_key_;  // Key of buckets_[0] == KeyFor(kMinTrackedValue).

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> zero_count_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // Valid only when count_ > 0.
  std::atomic<double> max_{0.0};
};

}  // namespace hybridflow

#endif  // SRC_OBS_QUANTILE_H_
