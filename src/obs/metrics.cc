#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/common/check.h"
#include "src/obs/json_util.h"

namespace hybridflow {

namespace {

MetricLabels Canonical(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Registry key: name and labels joined with unit separators (neither can
// contain 0x1f, which JsonEscape would reject anyway for sane names).
std::string KeyOf(const std::string& name, const MetricLabels& canonical) {
  std::string key = name;
  for (const auto& [label, value] : canonical) {
    key += '\x1f';
    key += label;
    key += '\x1e';
    key += value;
  }
  return key;
}

std::string LabelsJson(const MetricLabels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [label, value] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += '"';
    out += JsonEscape(label);
    out += "\":\"";
    out += JsonEscape(value);
    out += '"';
  }
  out += "}";
  return out;
}

std::string LabelsText(const MetricLabels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [label, value] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += label;
    out += '=';
    out += value;
  }
  out += "}";
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HF_CHECK_MSG(bounds_[i - 1] < bounds_[i], "histogram bounds must be strictly ascending");
  }
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.Add(value);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const std::atomic<uint64_t>& bucket : buckets_) {
    counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  return counts;
}

double Histogram::SnapshotQuantile(double q) const {
  if (bounds_.empty()) {
    return 0.0;
  }
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t bucket_count : counts) {
    total += bucket_count;
  }
  if (total == 0) {
    return 0.0;
  }
  const double clamped_q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(std::ceil(clamped_q * static_cast<double>(total)));
  rank = std::max<uint64_t>(1, std::min(rank, total));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t below = cumulative;
    cumulative += counts[i];
    if (cumulative < rank) {
      continue;
    }
    if (i >= bounds_.size()) {
      // Overflow bucket: no finite upper edge to interpolate toward.
      return bounds_.back();
    }
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
    const double fraction =
        static_cast<double>(rank - below) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * fraction;
  }
  return bounds_.back();
}

std::vector<double> ExponentialBuckets(double start, double factor, int count) {
  HF_CHECK_GT(start, 0.0);
  HF_CHECK_GT(factor, 1.0);
  HF_CHECK_GT(count, 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  HF_CHECK_GT(width, 0.0);
  HF_CHECK_GT(count, 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + width * i);
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: pool threads may observe metrics during static
  // destruction (same pattern as ThreadPool::Shared).
  static MetricsRegistry* registry = new MetricsRegistry();  // hflint: allow(naked-new)
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(const std::string& name,
                                                      const MetricLabels& labels, Kind kind,
                                                      const std::vector<double>* histogram_bounds,
                                                      double quantile_error) {
  const MetricLabels canonical = Canonical(labels);
  const std::string key = KeyOf(name, canonical);
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& entry = *entries_[it->second];
    HF_CHECK_MSG(entry.kind == kind, "metric '" << name << "' registered as two kinds");
    if (kind == Kind::kHistogram) {
      HF_CHECK_MSG(entry.histogram->bounds() == *histogram_bounds,
                   "histogram '" << name << "' re-registered with different bounds");
    }
    if (kind == Kind::kQuantile) {
      HF_CHECK_MSG(entry.quantile->relative_error() == quantile_error,
                   "quantile '" << name << "' re-registered with different relative error");
    }
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = canonical;
  entry->kind = kind;
  // The instrument is created here, under mutex_: doing it in the Get*
  // callers after the lock is dropped would let two first-time lookups race
  // on the null-check-and-assign.
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram =
          std::unique_ptr<Histogram>(new Histogram(*histogram_bounds));  // hflint: allow(naked-new)
      break;
    case Kind::kQuantile:
      entry->quantile = std::make_unique<QuantileHistogram>(quantile_error);
      break;
  }
  index_[key] = entries_.size();
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const MetricLabels& labels) {
  return *FindOrCreate(name, labels, Kind::kCounter, nullptr, 0.0).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  return *FindOrCreate(name, labels, Kind::kGauge, nullptr, 0.0).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, const std::vector<double>& bounds,
                                         const MetricLabels& labels) {
  return *FindOrCreate(name, labels, Kind::kHistogram, &bounds, 0.0).histogram;
}

QuantileHistogram& MetricsRegistry::GetQuantileHistogram(const std::string& name,
                                                         double relative_error,
                                                         const MetricLabels& labels) {
  return *FindOrCreate(name, labels, Kind::kQuantile, nullptr, relative_error).quantile;
}

size_t MetricsRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

std::vector<const MetricsRegistry::Entry*> MetricsRegistry::SortedEntries() const {
  std::vector<const Entry*> sorted;
  {
    MutexLock lock(mutex_);
    sorted.reserve(entries_.size());
    for (const std::unique_ptr<Entry>& entry : entries_) {
      sorted.push_back(entry.get());
    }
  }
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    if (a->name != b->name) {
      return a->name < b->name;
    }
    return a->labels < b->labels;
  });
  return sorted;
}

std::string MetricsRegistry::ToJsonLines() const {
  std::ostringstream out;
  for (const Entry* entry : SortedEntries()) {
    out << "{\"name\":\"" << JsonEscape(entry->name) << "\",";
    switch (entry->kind) {
      case Kind::kCounter:
        out << "\"type\":\"counter\",\"labels\":" << LabelsJson(entry->labels)
            << ",\"value\":" << JsonNumber(entry->counter->Value());
        break;
      case Kind::kGauge:
        out << "\"type\":\"gauge\",\"labels\":" << LabelsJson(entry->labels)
            << ",\"value\":" << JsonNumber(entry->gauge->Value());
        break;
      case Kind::kHistogram: {
        const Histogram& histogram = *entry->histogram;
        out << "\"type\":\"histogram\",\"labels\":" << LabelsJson(entry->labels)
            << ",\"count\":" << histogram.TotalCount()
            << ",\"sum\":" << JsonNumber(histogram.Sum()) << ",\"buckets\":[";
        const std::vector<uint64_t> counts = histogram.BucketCounts();
        for (size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) {
            out << ",";
          }
          if (i < histogram.bounds().size()) {
            out << "{\"le\":" << JsonNumber(histogram.bounds()[i]);
          } else {
            out << "{\"le\":\"+inf\"";
          }
          out << ",\"count\":" << counts[i] << "}";
        }
        out << "]";
        break;
      }
      case Kind::kQuantile: {
        const QuantileSnapshot snapshot = entry->quantile->Snapshot();
        out << "\"type\":\"quantile\",\"labels\":" << LabelsJson(entry->labels)
            << ",\"relative_error\":" << JsonNumber(snapshot.relative_error)
            << ",\"count\":" << snapshot.count << ",\"sum\":" << JsonNumber(snapshot.sum)
            << ",\"min\":" << JsonNumber(snapshot.min) << ",\"max\":" << JsonNumber(snapshot.max)
            << ",\"p50\":" << JsonNumber(snapshot.Quantile(0.5))
            << ",\"p90\":" << JsonNumber(snapshot.Quantile(0.9))
            << ",\"p99\":" << JsonNumber(snapshot.Quantile(0.99));
        break;
      }
    }
    out << "}\n";
  }
  return out.str();
}

std::string MetricsRegistry::ToText() const {
  std::ostringstream out;
  for (const Entry* entry : SortedEntries()) {
    out << entry->name << LabelsText(entry->labels) << " = ";
    switch (entry->kind) {
      case Kind::kCounter:
        out << JsonNumber(entry->counter->Value()) << " (counter)";
        break;
      case Kind::kGauge:
        out << JsonNumber(entry->gauge->Value()) << " (gauge)";
        break;
      case Kind::kHistogram: {
        const Histogram& histogram = *entry->histogram;
        const uint64_t count = histogram.TotalCount();
        out << "count=" << count << " sum=" << JsonNumber(histogram.Sum());
        if (count > 0) {
          out << " mean=" << JsonNumber(histogram.Sum() / static_cast<double>(count))
              << " p50=" << JsonNumber(histogram.SnapshotQuantile(0.5))
              << " p90=" << JsonNumber(histogram.SnapshotQuantile(0.9))
              << " p99=" << JsonNumber(histogram.SnapshotQuantile(0.99));
        }
        out << " (histogram)";
        break;
      }
      case Kind::kQuantile: {
        const QuantileSnapshot snapshot = entry->quantile->Snapshot();
        out << "count=" << snapshot.count << " sum=" << JsonNumber(snapshot.sum);
        if (snapshot.count > 0) {
          out << " min=" << JsonNumber(snapshot.min)
              << " p50=" << JsonNumber(snapshot.Quantile(0.5))
              << " p90=" << JsonNumber(snapshot.Quantile(0.9))
              << " p99=" << JsonNumber(snapshot.Quantile(0.99))
              << " max=" << JsonNumber(snapshot.max);
        }
        out << " (quantile e=" << JsonNumber(snapshot.relative_error) << ")";
        break;
      }
    }
    out << "\n";
  }
  return out.str();
}

bool MetricsRegistry::WriteJsonLines(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << ToJsonLines();
  return static_cast<bool>(file);
}

}  // namespace hybridflow
