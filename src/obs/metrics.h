// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with label support, safe to update from any thread.
//
// Naming convention (docs/OBSERVABILITY.md): `subsystem.metric_name` with
// an explicit unit suffix where applicable (`_us`, `_seconds`, `_bytes`).
// Varying dimensions (model name, op, protocol) go in labels, never in the
// metric name.
//
// Handle acquisition (GetCounter/GetGauge/GetHistogram) takes the registry
// mutex; the returned reference stays valid for the registry's lifetime, so
// hot paths acquire once (e.g. a function-local static for fixed labels)
// and then update lock-free through atomics.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/obs/quantile.h"

namespace hybridflow {

// Label set attached to one metric instance; canonicalized (sorted by key)
// on registration so label order never creates duplicate series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

namespace obs_internal {

// Relaxed-order atomic double accumulator (CAS loop; fetch_add on
// atomic<double> is not guaranteed lock-free everywhere).
class AtomicDouble {
 public:
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
    }
  }
  void Store(double value) { value_.store(value, std::memory_order_relaxed); }
  double Load() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

}  // namespace obs_internal

// Monotonically increasing value (events, bytes, calls).
class Counter {
 public:
  void Increment(double delta = 1.0) { value_.Add(delta); }
  double Value() const { return value_.Load(); }

 private:
  obs_internal::AtomicDouble value_;
};

// Last-write-wins instantaneous value (occupancy, makespan, sizes).
class Gauge {
 public:
  void Set(double value) { value_.Store(value); }
  double Value() const { return value_.Load(); }

 private:
  obs_internal::AtomicDouble value_;
};

// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds;
// one implicit overflow bucket (+inf) catches the rest. Bucket counts are
// per-bucket (not cumulative) in the exporters.
class Histogram {
 public:
  void Observe(double value);

  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.Load(); }
  const std::vector<double>& bounds() const { return bounds_; }
  // Length bounds().size() + 1; the last entry is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;
  // Bucket-interpolated quantile estimate over a point-in-time snapshot of
  // the bucket counts (Prometheus histogram_quantile style): linear
  // interpolation inside the covering bucket, the lower edge of the first
  // bucket taken as min(0, bounds[0]), and any rank landing in the overflow
  // bucket reported as bounds().back() (the largest finite edge). Accuracy
  // is therefore bounded by bucket width — use QuantileHistogram when a
  // relative-error guarantee is needed. Returns 0 when empty.
  double SnapshotQuantile(double q) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  obs_internal::AtomicDouble sum_;
};

// `count` bucket bounds starting at `start`, each `factor` times the last:
// ExponentialBuckets(1, 10, 4) == {1, 10, 100, 1000}.
std::vector<double> ExponentialBuckets(double start, double factor, int count);
// `count` bucket bounds starting at `start`, each `width` apart.
std::vector<double> LinearBuckets(double start, double width, int count);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry (never destroyed; handles stay valid for the
  // process lifetime, so caching references in function-local statics is
  // safe).
  static MetricsRegistry& Global();

  // Find-or-create. Re-registering the same (name, labels) returns the
  // existing instrument; registering one name as two different kinds (or a
  // histogram with different bounds) is a programmer error and aborts.
  Counter& GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels = {});
  Histogram& GetHistogram(const std::string& name, const std::vector<double>& bounds,
                          const MetricLabels& labels = {});
  // Log-bucketed percentile histogram (src/obs/quantile.h). Re-registering
  // with a different relative error aborts, like mismatched histogram
  // bounds.
  QuantileHistogram& GetQuantileHistogram(
      const std::string& name, double relative_error = QuantileHistogram::kDefaultRelativeError,
      const MetricLabels& labels = {});

  // One JSON object per line, sorted by (name, labels) for stable output:
  //   {"name":"x.y","type":"counter","labels":{...},"value":3}
  //   {"name":"h","type":"histogram","labels":{},"count":2,"sum":11,
  //    "buckets":[{"le":1,"count":1},{"le":"+inf","count":1}]}
  std::string ToJsonLines() const;
  // Human-readable one-metric-per-line text report, same ordering.
  std::string ToText() const;
  // Writes ToJsonLines() to `path` (truncating); false on I/O failure.
  bool WriteJsonLines(const std::string& path) const;

  // Number of registered instruments.
  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kQuantile };

  struct Entry {
    std::string name;
    MetricLabels labels;  // Canonical (sorted by key).
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<QuantileHistogram> quantile;
  };

  // Creates the kind-specific instrument under mutex_ on first lookup (and
  // validates histogram bounds / quantile error there), so concurrent
  // first-time Get* calls for the same series cannot race.
  // `histogram_bounds` must be non-null iff `kind` is kHistogram;
  // `quantile_error` is read iff `kind` is kQuantile.
  Entry& FindOrCreate(const std::string& name, const MetricLabels& labels, Kind kind,
                      const std::vector<double>* histogram_bounds, double quantile_error)
      HF_EXCLUDES(mutex_);
  // Snapshots entry pointers for export; entries are append-only so the
  // pointed-to instruments remain valid after the mutex is released.
  std::vector<const Entry*> SortedEntries() const HF_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_ HF_GUARDED_BY(mutex_);
  std::map<std::string, size_t> index_ HF_GUARDED_BY(mutex_);
};

}  // namespace hybridflow

#endif  // SRC_OBS_METRICS_H_
