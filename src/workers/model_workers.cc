#include "src/workers/model_workers.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/obs/trace.h"
#include "src/workers/token_context.h"

namespace hybridflow {

namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

ActorWorkerGroup::ActorWorkerGroup(WorkerGroupOptions options, std::shared_ptr<ResourcePool> pool,
                                   Controller* controller, RealComputeOptions real,
                                   ActorOptions actor)
    : ModelWorkerGroup(std::move(options), std::move(pool), controller, std::move(real)),
      actor_(std::move(actor)),
      sample_rng_(real_.seed ^ 0xAC708EEDULL) {
  GenParallelConfig gen = actor_.gen;
  if (actor_.engine_mode == ActorEngineMode::kShared) {
    gen = GenParallelConfig{groups().train_config().pp, groups().train_config().tp};
  }
  std::vector<DeviceId> gen_devices;
  if (actor_.engine_mode == ActorEngineMode::kTwoCopies) {
    HF_CHECK_MSG(actor_.gen_pool != nullptr, "kTwoCopies requires a generation pool");
    gen_devices = actor_.gen_pool->devices();
    // The standalone generation copy occupies its devices permanently.
    const double copy_bytes = perf().param_bytes() / static_cast<double>(gen.pp * gen.tp);
    for (DeviceId device : gen_devices) {
      controller_->cluster().memory(device).Allocate(name() + "_gen_copy", copy_bytes);
    }
  }
  engine_ = std::make_unique<HybridEngine>(options_.model, groups().train_config(), gen,
                                           actor_.engine_mode, controller_->spec(),
                                           pool_->devices(), std::move(gen_devices));
  if (real_.enabled) {
    Rng init_rng(real_.seed);
    net_ = std::make_unique<PolicyNet>(real_.net, init_rng);
    adam_ = std::make_unique<Adam>(net_->Parameters(), real_.adam);
  }
}

ProtocolContext ActorWorkerGroup::MakeProtocolContext() const {
  ProtocolContext context = ModelWorkerGroup::MakeProtocolContext();
  if (actor_.engine_mode == ActorEngineMode::kHybridFlow ||
      actor_.engine_mode == ActorEngineMode::kHybridFlowV) {
    context.gen = engine_->gen_config();
    context.method = engine_->grouping();
    context.has_gen = true;
  }
  return context;
}

TransferProtocol ActorWorkerGroup::GenerationProtocol() const {
  switch (actor_.engine_mode) {
    case ActorEngineMode::kHybridFlow:
    case ActorEngineMode::kHybridFlowV:
      return TransferProtocol::k3dAllMicroDp;
    case ActorEngineMode::kShared:
      return TransferProtocol::k3dProto;
    case ActorEngineMode::kDsChat:
    case ActorEngineMode::kTwoCopies:
      return TransferProtocol::kDpProto;
  }
  return TransferProtocol::k3dProto;
}

DataBatch ActorWorkerGroup::GenerateShard(const DataBatch& shard, bool do_sample,
                                          Rng& rng) const {
  const DataBatch::TokenColumn& prompts = shard.Tokens("prompts");
  const size_t batch = prompts.size();
  const int64_t response_len = real_.task.response_len;

  if (actor_.rollout.mode == RolloutMode::kContinuous) {
    RolloutLimits limits;
    limits.max_new_tokens = response_len;
    limits.use_eos = real_.task.use_eos;
    limits.eos_token = real_.task.eos_token();
    RolloutEngine rollout_engine(*net_, limits, actor_.rollout, engine_->gen_config().tp);
    RolloutShardResult result =
        rollout_engine.Run(prompts, do_sample, actor_.temperature, rng);
    rollout_stats_.Add(result.stats);
    DataBatch out = shard;
    out.SetTokens("responses", std::move(result.responses));
    out.SetFloat("log_probs", std::move(result.log_probs));
    return out;
  }

  DataBatch::TokenColumn responses(batch);
  DataBatch::FloatColumn log_probs(batch);
  std::vector<IncrementalContext> contexts_by_row;
  contexts_by_row.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    responses[i].reserve(static_cast<size_t>(response_len));
    log_probs[i].reserve(static_cast<size_t>(response_len));
    contexts_by_row.emplace_back(prompts[i], real_.net.context_window);
  }
  std::vector<bool> finished(batch, false);
  for (int64_t step = 0; step < response_len; ++step) {
    // Continuous-batching style: only unfinished rows go through the net,
    // each supplying its incrementally maintained context window.
    std::vector<size_t> active;
    std::vector<std::vector<int64_t>> contexts;
    for (size_t i = 0; i < batch; ++i) {
      if (finished[i]) {
        continue;
      }
      active.push_back(i);
      contexts.push_back(contexts_by_row[i].tokens());
    }
    if (active.empty()) {
      break;
    }
    Tensor logits = net_->Forward(contexts);
    for (size_t a = 0; a < active.size(); ++a) {
      const size_t i = active[a];
      float log_prob = 0.0f;
      const int64_t token = SampleLogitsRow(logits, static_cast<int64_t>(a), actor_.temperature,
                                            do_sample, rng, &log_prob);
      responses[i].push_back(token);
      log_probs[i].push_back(log_prob);
      contexts_by_row[i].Push(token);
      if (real_.task.use_eos && token == real_.task.eos_token()) {
        finished[i] = true;
      }
    }
  }
  DataBatch out = shard;
  out.SetTokens("responses", std::move(responses));
  out.SetFloat("log_probs", std::move(log_probs));
  return out;
}

double ActorWorkerGroup::GenerationSeconds(const RlhfWorkloadSpec& workload,
                                           GenTimeBreakdown* breakdown) const {
  const int replicas = engine_->NumGenReplicas();
  const int64_t per_replica = CeilDiv(workload.global_batch, replicas);
  const std::vector<DeviceId> replica_devices = engine_->GenReplicaDevices(0);
  const GenParallelConfig& gen = engine_->gen_config();

  // Best-effort KVCache budget: whatever memory remains on a replica device
  // after resident state and the gathered generation weights (§8.4).
  const DeviceMemory& memory = controller_->cluster().memory(replica_devices[0]);
  const double resident_params = ResidentParamBytesPerGpu();
  const double extra_gen_weights =
      std::max(0.0, last_transition_.peak_param_bytes - resident_params);
  const double kv_budget = std::max(1.0, memory.available() - extra_gen_weights);

  GenTimeBreakdown result;
  if (actor_.rollout.mode == RolloutMode::kContinuous && actor_.use_kv_cache) {
    // Per-step timing from actual block-granular scheduling replaces the
    // closed-form wave approximation (src/rollout/timing.h).
    const std::vector<NominalSequence> nominal(
        static_cast<size_t>(per_replica),
        NominalSequence{workload.prompt_len, workload.response_len});
    const RolloutSimResult sim = SimulateContinuousGeneration(
        perf(), gen, replica_devices, nominal, kv_budget, actor_.rollout);
    result = sim.time;
    last_rollout_sim_ = sim.stats;
    last_rollout_latency_ = sim.latency;
    // Sim-plane scheduler gauges; GenerationSeconds runs only on the
    // single controller thread, so last-write-wins is well defined.
    MetricsRegistry& registry = MetricsRegistry::Global();
    const MetricLabels plane{{"plane", "sim"}};
    registry.GetGauge("rollout.sim_steps", plane)
        .Set(static_cast<double>(sim.stats.steps));
    registry.GetGauge("rollout.sim_preemptions", plane)
        .Set(static_cast<double>(sim.stats.preemptions));
    registry.GetGauge("rollout.sim_max_running_batch", plane)
        .Set(static_cast<double>(sim.stats.max_running_batch));
    registry.GetGauge("rollout.sim_kv_high_water_blocks", plane)
        .Set(static_cast<double>(sim.stats.kv_high_water_blocks));
    registry.GetGauge("rollout.sim_kv_peak_utilization", plane)
        .Set(sim.stats.kv_peak_utilization);
    registry.GetGauge("rollout.sim_resumes", plane)
        .Set(static_cast<double>(sim.stats.resumes));
    registry.GetGauge("rollout.sim_recomputed_tokens", plane)
        .Set(static_cast<double>(sim.stats.recomputed_tokens));
    registry.GetGauge("kvcache.prefix_hits_total", plane)
        .Set(static_cast<double>(sim.stats.prefix_skipped_tokens));
    registry.GetGauge("kvcache.cow_splits_total", plane)
        .Set(static_cast<double>(sim.stats.cow_splits));
    registry.GetGauge("kvcache.shared_blocks", plane)
        .Set(static_cast<double>(sim.stats.shared_blocks_high_water));
    registry.GetGauge("rollout.sim_ttft_p50_s", plane).Set(sim.latency.ttft.p50);
    registry.GetGauge("rollout.sim_ttft_p90_s", plane).Set(sim.latency.ttft.p90);
    registry.GetGauge("rollout.sim_ttft_p99_s", plane).Set(sim.latency.ttft.p99);
    registry.GetGauge("rollout.sim_tpot_p50_s", plane).Set(sim.latency.tpot.p50);
    registry.GetGauge("rollout.sim_tpot_p90_s", plane).Set(sim.latency.tpot.p90);
    registry.GetGauge("rollout.sim_tpot_p99_s", plane).Set(sim.latency.tpot.p99);
  } else {
    result = perf().GenerateTime(gen, replica_devices, per_replica, workload.prompt_len,
                                 workload.response_len, kv_budget, actor_.use_kv_cache);
  }
  if (breakdown != nullptr) {
    *breakdown = result;
  }
  return result.total();
}

BatchFuture ActorWorkerGroup::GenerateSequences(const BatchFuture& prompts,
                                                const RlhfWorkloadSpec& workload,
                                                bool do_sample) {
  const ProtocolContext context = MakeProtocolContext();
  const TransferProtocol protocol = GenerationProtocol();

  // --- Data plane --------------------------------------------------------
  // Replica generation is embarrassingly parallel: each primary rank works
  // on its own prompt shard with a deterministic per-(call, rank) RNG
  // stream, so results are reproducible regardless of thread scheduling.
  DataBatch collected;
  if (real_.enabled && !prompts.data.empty()) {
    HF_TRACE_SCOPE(name() + ".generate", "generate");
    generation_calls_ += 1;
    const uint64_t call_id = generation_calls_;
    std::vector<DataBatch> per_rank = DistributeBatch(protocol, prompts.data, context);
    std::vector<DataBatch> outputs(per_rank.size());
    const std::vector<int> primaries = PrimaryRanks(protocol, context);
    ThreadPool::Shared().ParallelFor(
        static_cast<int>(primaries.size()), [&](int index) {
          const int rank = primaries[static_cast<size_t>(index)];
          Rng shard_rng = sample_rng_.Fork(call_id * 4096 + static_cast<uint64_t>(rank));
          outputs[static_cast<size_t>(rank)] =
              GenerateShard(per_rank[static_cast<size_t>(rank)], do_sample, shard_rng);
        });
    collected = CollectBatch(protocol, outputs, context);
  }

  // --- Performance plane ---------------------------------------------------
  ClusterState& cluster = controller_->cluster();
  {
    HF_TRACE_SCOPE(name() + ".reshard", "reshard");
    last_transition_ = engine_->TrainToGenTransition();
  }
  last_transition_seconds_ = last_transition_.seconds;
  const SimTime ready = prompts.ready_time + TransferSeconds(prompts.nominal_bytes);

  std::vector<DeviceId> transition_devices = pool_->devices();
  std::vector<DeviceId> gen_devices = pool_->devices();
  if (actor_.engine_mode == ActorEngineMode::kTwoCopies) {
    gen_devices = actor_.gen_pool->devices();
    transition_devices.insert(transition_devices.end(), gen_devices.begin(), gen_devices.end());
  }

  const double resident_params = ResidentParamBytesPerGpu();

  SimTime gen_ready = ready;
  if (last_transition_.seconds > 0.0) {
    // Transient peak during the all-gather (Table 2 "Peak Mem."): touch the
    // tracker so per-device peaks reflect it, then release to the retained
    // buffer below.
    const double transient =
        std::max(0.0, last_transition_.peak_param_bytes - resident_params);
    for (DeviceId device : gen_devices) {
      cluster.memory(device).Allocate(name() + "_reshard_peak", transient);
    }
    gen_ready = cluster
                    .ScheduleOp(name() + ".reshard", "reshard", transition_devices, ready,
                                last_transition_.seconds)
                    .end;
    for (DeviceId device : gen_devices) {
      cluster.memory(device).FreeAll(name() + "_reshard_peak");
    }
  }

  // Weights retained across the generation stage: the generation shard,
  // minus whatever overlaps the resident training parameters (zero-
  // redundancy grouping reuses the training shard entirely, Â§5.3).
  double retained = 0.0;
  switch (actor_.engine_mode) {
    case ActorEngineMode::kShared:
    case ActorEngineMode::kTwoCopies:
      retained = 0.0;  // Same weights / permanently resident second copy.
      break;
    case ActorEngineMode::kHybridFlow: {
      const double gen_shard = perf().param_bytes() /
                               static_cast<double>(engine_->gen_config().pp *
                                                   engine_->gen_config().tp);
      retained = std::max(0.0, gen_shard - resident_params);
      break;
    }
    case ActorEngineMode::kHybridFlowV:
    case ActorEngineMode::kDsChat: {
      // No guaranteed overlap: a full generation shard plus the redundant
      // training-weight copy (grey boxes in Fig. 8a).
      retained = perf().param_bytes() /
                     static_cast<double>(engine_->gen_config().pp *
                                         engine_->gen_config().tp) +
                 last_transition_.redundant_bytes;
      break;
    }
  }
  for (DeviceId device : gen_devices) {
    cluster.memory(device).Allocate(name() + "_gen_weights", retained);
  }

  const double gen_seconds = GenerationSeconds(workload, &last_gen_);

  // KVCache occupancy during generation.
  const int replicas = engine_->NumGenReplicas();
  const int64_t per_replica = CeilDiv(workload.global_batch, replicas);
  const double kv_wanted = perf().KvBytesPerTokenPerGpu(engine_->gen_config()) *
                           static_cast<double>(workload.total_len()) *
                           static_cast<double>(per_replica);
  for (DeviceId device : gen_devices) {
    DeviceMemory& memory = cluster.memory(device);
    memory.Allocate(name() + "_kvcache", std::min(kv_wanted, std::max(0.0, memory.available())));
  }

  const TraceSpan& span =
      cluster.ScheduleOp(name() + ".generate", "generate", gen_devices, gen_ready, gen_seconds);

  for (DeviceId device : gen_devices) {
    cluster.memory(device).FreeAll(name() + "_kvcache");
    cluster.memory(device).FreeAll(name() + "_gen_weights");
  }

  return BatchFuture{std::move(collected), span.end, workload.NominalTransferBytes()};
}

BatchFuture ActorWorkerGroup::ComputeLogProb(const BatchFuture& batch,
                                             const RlhfWorkloadSpec& workload,
                                             const std::string& output_column) {
  const double duration = InferSeconds(workload.global_batch, workload.total_len());
  ComputeFn compute = [this, &output_column](const DataBatch& shard, int) {
    DataBatch out = shard;
    std::vector<int64_t> lengths;
    std::vector<std::vector<int64_t>> contexts = AllResponseContextsRagged(
        shard.Tokens("prompts"), shard.Tokens("responses"), real_.net.context_window,
        &lengths);
    std::vector<int64_t> chosen;
    for (const std::vector<int64_t>& response : shard.Tokens("responses")) {
      chosen.insert(chosen.end(), response.begin(), response.end());
    }
    Tensor log_probs = net_->LogProb(contexts, chosen);
    out.SetFloat(output_column, UnflattenRagged(log_probs.data(), lengths));
    return out;
  };
  return Dispatch("compute_log_prob", "infer", TransferProtocol::k3dProto, batch, duration,
                  compute, workload.NominalTransferBytes());
}

BatchFuture ActorWorkerGroup::ComputeLoss(const BatchFuture& pretrain,
                                          const RlhfWorkloadSpec& workload) {
  const double duration = InferSeconds(workload.global_batch, workload.prompt_len);
  ComputeFn compute = [this](const DataBatch& shard, int) {
    DataBatch out;
    const DataBatch::TokenColumn& corpus = shard.Tokens("prompts");
    std::vector<std::vector<int64_t>> contexts;
    std::vector<int64_t> targets;
    for (const std::vector<int64_t>& sequence : corpus) {
      for (size_t k = 1; k < sequence.size(); ++k) {
        contexts.push_back(ContextWindow(sequence, {}, 0, real_.net.context_window));
        contexts.back() = ContextWindow(
            std::vector<int64_t>(sequence.begin(), sequence.begin() + static_cast<int64_t>(k)),
            {}, 0, real_.net.context_window);
        targets.push_back(sequence[k]);
      }
    }
    Tensor loss = PretrainLoss(net_->LogProb(contexts, targets));
    out.SetFloat("pretrain_loss", {{loss.item()}});
    return out;
  };
  return Dispatch("compute_loss", "infer", TransferProtocol::k3dProto, pretrain, duration,
                  compute, 0.0);
}

BatchFuture ActorWorkerGroup::UpdateActor(const BatchFuture& batch,
                                          const RlhfWorkloadSpec& workload,
                                          const ActorUpdateConfig& config) {
  const int64_t sequences = workload.minibatch();
  const double duration = TrainStepSeconds(sequences, workload.total_len());

  const int64_t total_rows = std::max<int64_t>(batch.data.batch_size(), 1);
  ComputeFn compute = [this, &config, total_rows](const DataBatch& shard, int) {
    DataBatch out;
    if (shard.empty()) {
      return out;
    }
    std::vector<std::vector<int64_t>> contexts = AllResponseContextsRagged(
        shard.Tokens("prompts"), shard.Tokens("responses"), real_.net.context_window,
        nullptr);
    std::vector<int64_t> chosen;
    for (const std::vector<int64_t>& response : shard.Tokens("responses")) {
      chosen.insert(chosen.end(), response.begin(), response.end());
    }
    const int64_t n = static_cast<int64_t>(chosen.size());
    Tensor logits = net_->Forward(contexts);
    Tensor log_probs = PickPerRow(LogSoftmax(logits), chosen);
    Tensor old_log_probs = Tensor::FromData({n}, FlattenColumn(shard.Float("log_probs")));
    Tensor advantages = Tensor::FromData({n}, FlattenColumn(shard.Float("advantages")));
    Tensor loss = PolicyLoss(log_probs, old_log_probs, advantages, config.loss);
    if (config.entropy_coef > 0.0f) {
      loss = Sub(loss, Scale(MeanEntropy(logits), config.entropy_coef));
    }
    if (config.ptx_coef > 0.0f && config.pretrain != nullptr && !config.pretrain->empty()) {
      std::vector<std::vector<int64_t>> ptx_contexts;
      std::vector<int64_t> ptx_targets;
      for (const std::vector<int64_t>& sequence : config.pretrain->Tokens("prompts")) {
        for (size_t k = 1; k < sequence.size(); ++k) {
          ptx_contexts.push_back(ContextWindow(
              std::vector<int64_t>(sequence.begin(), sequence.begin() + static_cast<int64_t>(k)),
              {}, 0, real_.net.context_window));
          ptx_targets.push_back(sequence[k]);
        }
      }
      Tensor ptx_loss = PretrainLoss(net_->LogProb(ptx_contexts, ptx_targets));
      loss = Add(loss, Scale(ptx_loss, config.ptx_coef));
    }
    // Weight by the shard's share so accumulated gradients equal the
    // full-minibatch mean — the DP gradient all-reduce.
    const float share =
        static_cast<float>(shard.batch_size()) / static_cast<float>(total_rows);
    Tensor weighted = Scale(loss, share);
    weighted.Backward();
    out.SetFloat("actor_loss", {{loss.item()}});
    // Fraction of tokens whose importance ratio fell outside the PPO clip
    // range — the standard health signal for policy-update step size.
    int64_t clipped = 0;
    for (int64_t i = 0; i < n; ++i) {
      const double ratio = std::exp(static_cast<double>(log_probs.at(i)) -
                                    static_cast<double>(old_log_probs.at(i)));
      if (ratio < 1.0 - config.loss.clip_eps || ratio > 1.0 + config.loss.clip_eps) {
        clipped += 1;
      }
    }
    out.SetFloat("clip_fraction",
                 {{n > 0 ? static_cast<float>(static_cast<double>(clipped) /
                                              static_cast<double>(n))
                         : 0.0f}});
    return out;
  };

  BatchFuture result = Dispatch("update_actor", "train", TransferProtocol::k3dProto, batch,
                                duration, compute, 0.0);
  if (real_.enabled && !batch.data.empty()) {
    last_grad_norm_ = adam_->GradNorm();
    adam_->Step();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Critic
// ---------------------------------------------------------------------------

CriticWorkerGroup::CriticWorkerGroup(WorkerGroupOptions options,
                                     std::shared_ptr<ResourcePool> pool, Controller* controller,
                                     RealComputeOptions real, const std::string& value_column)
    : ModelWorkerGroup(std::move(options), std::move(pool), controller, std::move(real)),
      value_column_(value_column),
      returns_column_(value_column == "values" ? "returns" : "cost_returns") {
  if (real_.enabled) {
    Rng init_rng(real_.seed ^ 0xC817EC00ULL);
    PolicyNetConfig net_config = real_.net;
    net_config.scalar_head = true;
    net_ = std::make_unique<PolicyNet>(net_config, init_rng);
    adam_ = std::make_unique<Adam>(net_->Parameters(), real_.adam);
  }
}

std::vector<std::vector<float>> CriticWorkerGroup::ValuesForShard(const DataBatch& shard,
                                                                  bool with_grad,
                                                                  Tensor* flat_values) const {
  std::vector<int64_t> lengths;
  std::vector<std::vector<int64_t>> contexts = AllResponseContextsRagged(
      shard.Tokens("prompts"), shard.Tokens("responses"), real_.net.context_window, &lengths);
  Tensor values = net_->Forward(contexts);
  if (with_grad && flat_values != nullptr) {
    *flat_values = values;
  }
  return UnflattenRagged(values.data(), lengths);
}

BatchFuture CriticWorkerGroup::ComputeValues(const BatchFuture& batch,
                                             const RlhfWorkloadSpec& workload) {
  const double duration = InferSeconds(workload.global_batch, workload.total_len());
  ComputeFn compute = [this](const DataBatch& shard, int) {
    DataBatch out = shard;
    out.SetFloat(value_column_, ValuesForShard(shard, /*with_grad=*/false, nullptr));
    return out;
  };
  return Dispatch("compute_values", "infer", TransferProtocol::k3dProto, batch, duration,
                  compute, workload.NominalTransferBytes());
}

BatchFuture CriticWorkerGroup::UpdateCritic(const BatchFuture& batch,
                                            const RlhfWorkloadSpec& workload,
                                            const ValueLossConfig& config) {
  const int64_t sequences = workload.minibatch();
  const double duration = TrainStepSeconds(sequences, workload.total_len());

  const int64_t total_rows = std::max<int64_t>(batch.data.batch_size(), 1);
  ComputeFn compute = [this, &config, total_rows](const DataBatch& shard, int) {
    DataBatch out;
    if (shard.empty()) {
      return out;
    }
    Tensor values;
    ValuesForShard(shard, /*with_grad=*/true, &values);
    const int64_t n = values.size();
    Tensor old_values = Tensor::FromData({n}, FlattenColumn(shard.Float(value_column_)));
    Tensor returns = Tensor::FromData({n}, FlattenColumn(shard.Float(returns_column_)));
    Tensor flat = Reshape(values, {n});
    Tensor loss = ValueLoss(flat, old_values, returns, config);
    const float share =
        static_cast<float>(shard.batch_size()) / static_cast<float>(total_rows);
    Tensor weighted = Scale(loss, share);
    weighted.Backward();
    out.SetFloat("critic_loss", {{loss.item()}});
    return out;
  };

  BatchFuture result = Dispatch("update_critic", "train", TransferProtocol::k3dProto, batch,
                                duration, compute, 0.0);
  if (real_.enabled && !batch.data.empty()) {
    adam_->Step();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Reference policy
// ---------------------------------------------------------------------------

ReferenceWorkerGroup::ReferenceWorkerGroup(WorkerGroupOptions options,
                                           std::shared_ptr<ResourcePool> pool,
                                           Controller* controller, RealComputeOptions real,
                                           const PolicyNet* init_from)
    : ModelWorkerGroup(std::move(options), std::move(pool), controller, std::move(real)) {
  if (real_.enabled) {
    HF_CHECK(init_from != nullptr);
    Rng init_rng(real_.seed ^ 0x4EF4EF00ULL);
    net_ = std::make_unique<PolicyNet>(init_from->config(), init_rng);
    net_->CopyFrom(*init_from);
  }
}

BatchFuture ReferenceWorkerGroup::ComputeRefLogProb(const BatchFuture& batch,
                                                    const RlhfWorkloadSpec& workload) {
  const double duration = InferSeconds(workload.global_batch, workload.total_len());
  ComputeFn compute = [this](const DataBatch& shard, int) {
    DataBatch out = shard;
    std::vector<int64_t> lengths;
    std::vector<std::vector<int64_t>> contexts = AllResponseContextsRagged(
        shard.Tokens("prompts"), shard.Tokens("responses"), real_.net.context_window,
        &lengths);
    std::vector<int64_t> chosen;
    for (const std::vector<int64_t>& response : shard.Tokens("responses")) {
      chosen.insert(chosen.end(), response.begin(), response.end());
    }
    Tensor log_probs = net_->LogProb(contexts, chosen);
    out.SetFloat("ref_log_probs", UnflattenRagged(log_probs.data(), lengths));
    return out;
  };
  return Dispatch("compute_ref_log_prob", "infer", TransferProtocol::k3dProto, batch, duration,
                  compute, workload.NominalTransferBytes());
}

// ---------------------------------------------------------------------------
// Reward / cost model
// ---------------------------------------------------------------------------

RewardWorkerGroup::RewardWorkerGroup(WorkerGroupOptions options,
                                     std::shared_ptr<ResourcePool> pool, Controller* controller,
                                     RealComputeOptions real, RewardSource source,
                                     std::string output_column)
    : ModelWorkerGroup(std::move(options), std::move(pool), controller, std::move(real)),
      source_(source),
      output_column_(std::move(output_column)) {
  if (real_.enabled && source_ == RewardSource::kLearnedNet) {
    Rng init_rng(real_.seed ^ 0x4E84ADULL);
    PolicyNetConfig net_config = real_.net;
    net_config.scalar_head = true;
    net_ = std::make_unique<PolicyNet>(net_config, init_rng);
  }
}

PolicyNet& RewardWorkerGroup::net() {
  HF_CHECK_MSG(net_ != nullptr, "reward net only exists for RewardSource::kLearnedNet");
  return *net_;
}

BatchFuture RewardWorkerGroup::ComputeReward(const BatchFuture& batch,
                                             const RlhfWorkloadSpec& workload) {
  const double duration = InferSeconds(workload.global_batch, workload.total_len());
  ComputeFn compute = [this](const DataBatch& shard, int) {
    DataBatch out = shard;
    const DataBatch::TokenColumn& prompts = shard.Tokens("prompts");
    const DataBatch::TokenColumn& responses = shard.Tokens("responses");
    DataBatch::FloatColumn scores(prompts.size());
    switch (source_) {
      case RewardSource::kRuleReward: {
        for (size_t i = 0; i < prompts.size(); ++i) {
          scores[i] = {real_.task.SampleReward(prompts[i], responses[i])};
        }
        break;
      }
      case RewardSource::kRuleCost: {
        for (size_t i = 0; i < prompts.size(); ++i) {
          scores[i] = {real_.task.SampleCost(responses[i])};
        }
        break;
      }
      case RewardSource::kLearnedNet: {
        // Sample-level score = mean of the scalar head over every response
        // position (token-level rewards averaged, Table 4's "rewards could
        // be token-level or sample-level").
        std::vector<int64_t> lengths;
        std::vector<std::vector<int64_t>> contexts = AllResponseContextsRagged(
            prompts, responses, real_.net.context_window, &lengths);
        Tensor values = net_->Forward(contexts);
        size_t offset = 0;
        for (size_t i = 0; i < prompts.size(); ++i) {
          double total = 0.0;
          const size_t length = static_cast<size_t>(lengths[i]);
          for (size_t k = 0; k < length; ++k) {
            total += values.at(static_cast<int64_t>(offset + k));
          }
          offset += length;
          scores[i] = {length > 0 ? static_cast<float>(total / static_cast<double>(length))
                                  : 0.0f};
        }
        break;
      }
    }
    out.SetFloat(output_column_, std::move(scores));
    return out;
  };
  return Dispatch("compute_" + output_column_, "infer", TransferProtocol::k3dProto, batch,
                  duration, compute, workload.NominalTransferBytes());
}

}  // namespace hybridflow
