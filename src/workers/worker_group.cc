#include "src/workers/worker_group.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace hybridflow {

namespace {

ParallelConfig EffectiveConfig(const WorkerGroupOptions& options, int pool_size) {
  ParallelConfig cfg = options.train_cfg;
  if (options.backend != WorkerBackend::k3dParallel) {
    // DP-sharding backends span the whole pool with data parallelism.
    cfg = ParallelConfig{1, 1, pool_size};
  }
  return cfg;
}

}  // namespace

ModelWorkerGroup::ModelWorkerGroup(WorkerGroupOptions options, std::shared_ptr<ResourcePool> pool,
                                   Controller* controller, RealComputeOptions real)
    : controller_(controller),
      pool_(std::move(pool)),
      options_(std::move(options)),
      real_(std::move(real)),
      groups_(EffectiveConfig(options_, pool_->size()), pool_->devices()),
      perf_(options_.model, controller->spec(), options_.scalar_head, options_.perf),
      dispatch_wall_us_(MetricsRegistry::Global().GetHistogram(
          "dispatch.wall_us", ExponentialBuckets(1.0, 10.0, 7), {{"model", options_.name}})) {
  HF_CHECK(controller_ != nullptr);
  HF_CHECK_MSG(groups_.world_size() == pool_->size(),
               "model " << options_.name << " parallel strategy "
                        << groups_.train_config().ToString() << " does not cover pool of "
                        << pool_->size() << " GPUs");
  // Register the model's resident memory on its devices.
  const double per_gpu = StateBytesPerGpu();
  for (DeviceId device : pool_->devices()) {
    controller_->cluster().memory(device).Allocate(options_.name, per_gpu);
  }
}

ModelWorkerGroup::~ModelWorkerGroup() {
  for (DeviceId device : pool_->devices()) {
    controller_->cluster().memory(device).FreeAll(options_.name);
  }
}

double ModelWorkerGroup::StateBytesPerGpu() const {
  const double params = perf_.num_params();
  if (options_.backend == WorkerBackend::k3dParallel) {
    const double mp = static_cast<double>(groups_.train_config().model_parallel_size());
    if (options_.trainable) {
      return ModelSpec::kTrainBytesPerParam * params / mp;
    }
    return 2.0 * params / mp;
  }
  // FSDP / ZeRO backends shard across DP.
  ZeroConfig zero{options_.backend == WorkerBackend::kFsdp ? ZeroStage::kStage3
                                                           : options_.zero_stage,
                  groups_.train_config().dp};
  if (options_.trainable) {
    return ZeroTrainStateBytesPerGpu(params, zero);
  }
  return ZeroParamBytesPerGpu(params, zero);
}

double ModelWorkerGroup::ResidentParamBytesPerGpu() const {
  const double params = perf_.num_params();
  if (options_.backend == WorkerBackend::k3dParallel) {
    return 2.0 * params / static_cast<double>(groups_.train_config().model_parallel_size());
  }
  ZeroConfig zero{options_.backend == WorkerBackend::kFsdp ? ZeroStage::kStage3
                                                           : options_.zero_stage,
                  groups_.train_config().dp};
  return ZeroParamBytesPerGpu(params, zero);
}

double ModelWorkerGroup::TransferSeconds(double nominal_bytes) const {
  if (nominal_bytes <= 0.0) {
    return 0.0;
  }
  // Experience batches move GPU-to-GPU; the conservative path is the NIC.
  return nominal_bytes / controller_->spec().nic_bandwidth + controller_->spec().link_latency;
}

double ModelWorkerGroup::InferSeconds(int64_t sequences, int64_t seq_len) const {
  if (options_.backend == WorkerBackend::k3dParallel) {
    return perf_.InferTime(groups_.train_config(), pool_->devices(), sequences, seq_len);
  }
  ZeroConfig zero{options_.backend == WorkerBackend::kFsdp ? ZeroStage::kStage3
                                                           : options_.zero_stage,
                  groups_.train_config().dp};
  return perf_.ZeroInferTime(zero, pool_->devices(), sequences, seq_len);
}

double ModelWorkerGroup::TrainStepSeconds(int64_t sequences, int64_t seq_len) const {
  const ParallelConfig& cfg = groups_.train_config();
  if (options_.backend == WorkerBackend::k3dParallel) {
    const int64_t shard = (sequences + cfg.dp - 1) / cfg.dp;
    return perf_.TrainStepTime(cfg, pool_->devices(), sequences, seq_len,
                               NumMicrobatches(shard));
  }
  ZeroConfig zero{options_.backend == WorkerBackend::kFsdp ? ZeroStage::kStage3
                                                           : options_.zero_stage,
                  cfg.dp};
  return perf_.ZeroTrainStepTime(zero, pool_->devices(), sequences, seq_len);
}

ProtocolContext ModelWorkerGroup::MakeProtocolContext() const {
  ProtocolContext context;
  context.groups = &groups_;
  return context;
}

int ModelWorkerGroup::NumMicrobatches(int64_t shard_sequences) const {
  const int pp = groups_.train_config().pp;
  const int64_t target = std::max<int64_t>(1, 4 * pp);
  return static_cast<int>(std::min<int64_t>(std::max<int64_t>(shard_sequences, 1), target));
}

BatchFuture ModelWorkerGroup::Dispatch(const std::string& op, const std::string& category,
                                       TransferProtocol protocol, const BatchFuture& input,
                                       double duration, const ComputeFn& compute,
                                       double nominal_output_bytes) {
  HF_TRACE_SCOPE(options_.name + "." + op, "dispatch");
  const double dispatch_start_us = WallclockTracer::NowMicros();
  const ProtocolContext context = MakeProtocolContext();

  // Data plane: distribute -> per-primary-rank compute -> collect.
  // Forward-only computations are independent across shards and run on the
  // worker thread pool (the multi-controller plane); updates stay
  // sequential because backward passes accumulate into shared parameter
  // gradients.
  DataBatch collected;
  if (real_.enabled && !input.data.empty()) {
    std::vector<DataBatch> per_rank;
    {
      HF_TRACE_SCOPE(options_.name + "." + op + ".distribute", "transfer");
      per_rank = DistributeBatch(protocol, input.data, context);
    }
    std::vector<DataBatch> outputs(per_rank.size());
    const std::vector<int> primaries = PrimaryRanks(protocol, context);
    const bool parallel_safe = category != "train" && compute != nullptr;
    {
      HF_TRACE_SCOPE(options_.name + "." + op + ".compute", "compute");
      if (parallel_safe && primaries.size() > 1) {
        ThreadPool::Shared().ParallelFor(
            static_cast<int>(primaries.size()), [&](int index) {
              const int rank = primaries[static_cast<size_t>(index)];
              outputs[static_cast<size_t>(rank)] =
                  compute(per_rank[static_cast<size_t>(rank)], rank);
            });
      } else {
        for (int rank : primaries) {
          const DataBatch& shard = per_rank[static_cast<size_t>(rank)];
          outputs[static_cast<size_t>(rank)] = compute ? compute(shard, rank) : shard;
        }
      }
    }
    {
      HF_TRACE_SCOPE(options_.name + "." + op + ".collect", "transfer");
      collected = CollectBatch(protocol, outputs, context);
    }
  }

  // Performance plane: one exclusive interval on all pool devices.
  const SimTime ready = input.ready_time + TransferSeconds(input.nominal_bytes);
  const TraceSpan& span = controller_->cluster().ScheduleOp(
      options_.name + "." + op, category, pool_->devices(), ready, duration);

  Counter*& op_counter = dispatch_op_counters_[op];
  if (op_counter == nullptr) {
    op_counter = &MetricsRegistry::Global().GetCounter(
        "dispatch.ops", {{"model", options_.name}, {"op", op}});
  }
  op_counter->Increment();
  dispatch_wall_us_.Observe(WallclockTracer::NowMicros() - dispatch_start_us);

  HF_LOG(kDebug) << options_.name << "." << op << " [" << TransferProtocolName(protocol)
                 << "] start=" << span.start << " dur=" << duration;
  return BatchFuture{std::move(collected), span.end, nominal_output_bytes};
}

}  // namespace hybridflow
