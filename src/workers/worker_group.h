// ModelWorkerGroup: the multi-controller plane of the hybrid programming
// model (§4.1).
//
// A group encapsulates one model's distributed computation over a
// ResourcePool: it builds the model's parallel groups, registers its memory
// footprint on the simulated devices, and dispatches every method call as
// (distribute -> per-rank compute -> collect) under the method's transfer
// protocol, scheduling the op's duration on the pool's device timelines.
// Worker methods never perform inter-model communication — that decoupling
// is the flexibility claim of §4.
//
// Backends mirror the paper's base classes: 3DParallelWorker (Megatron-
// style p-t-d groups), FSDPWorker, and ZeROWorker (DP sharding; modeled as
// ZeRO stages for memory/comm accounting).
#ifndef SRC_WORKERS_WORKER_GROUP_H_
#define SRC_WORKERS_WORKER_GROUP_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/controller/controller.h"
#include "src/controller/future.h"
#include "src/controller/resource_pool.h"
#include "src/data/alignment_task.h"
#include "src/nn/adam.h"
#include "src/nn/policy_net.h"
#include "src/obs/metrics.h"
#include "src/parallel/process_groups.h"
#include "src/parallel/zero_config.h"
#include "src/perf/perf_model.h"
#include "src/transfer/protocol.h"
#include "src/workers/workload.h"

namespace hybridflow {

enum class WorkerBackend {
  k3dParallel,  // 3DParallelWorker.
  kFsdp,        // FSDPWorker (modeled as ZeRO-3 DP sharding).
  kZero,        // ZeROWorker.
};

struct WorkerGroupOptions {
  std::string name;
  ModelSpec model;
  bool scalar_head = false;  // Critic / reward / cost models.
  bool trainable = false;    // Actor and critic hold optimizer state.
  WorkerBackend backend = WorkerBackend::k3dParallel;
  // 3D strategy; for kFsdp/kZero use pp=tp=1, dp=pool size.
  ParallelConfig train_cfg;
  ZeroStage zero_stage = ZeroStage::kStage3;
  PerfParams perf;
};

// Configuration of the real (toy-scale) computation plane.
struct RealComputeOptions {
  bool enabled = true;
  AlignmentTask task;
  PolicyNetConfig net;
  AdamConfig adam;
  uint64_t seed = 1;
};

class ModelWorkerGroup {
 public:
  ModelWorkerGroup(WorkerGroupOptions options, std::shared_ptr<ResourcePool> pool,
                   Controller* controller, RealComputeOptions real);
  virtual ~ModelWorkerGroup();

  ModelWorkerGroup(const ModelWorkerGroup&) = delete;
  ModelWorkerGroup& operator=(const ModelWorkerGroup&) = delete;

  const std::string& name() const { return options_.name; }
  const WorkerGroupOptions& options() const { return options_; }
  const ProcessGroups& groups() const { return groups_; }
  const ResourcePool& pool() const { return *pool_; }
  const PerfModel& perf() const { return perf_; }
  bool real_enabled() const { return real_.enabled; }
  const RealComputeOptions& real() const { return real_; }

  // Per-GPU bytes of resident model state (params or full train state).
  double StateBytesPerGpu() const;

  // Per-GPU bytes of resident *parameters* only (the reusable part during
  // generation): 2N/mp for 3D parallelism, the ZeRO shard for DP backends.
  double ResidentParamBytesPerGpu() const;

 protected:
  using ComputeFn = std::function<DataBatch(const DataBatch& shard, int rank)>;

  // Generic RPC: applies the protocol's distribute, runs `compute` on each
  // primary rank (real plane), schedules `duration` seconds on the pool
  // devices starting no earlier than the input's availability plus
  // transfer latency, and returns the collected future.
  //
  // Concurrency contract: forward-only `compute` closures run concurrently
  // on ThreadPool::Shared(), one per primary rank. Each closure owns its
  // rank's input shard and output slot exclusively (data-partitioned — no
  // locking), must treat group state (net_, perf_, groups_) as read-only,
  // and must draw randomness only from per-(call, rank) RNG streams so
  // results are independent of interleaving. "train" dispatches stay
  // sequential: backward passes accumulate into shared gradients.
  BatchFuture Dispatch(const std::string& op, const std::string& category,
                       TransferProtocol protocol, const BatchFuture& input, double duration,
                       const ComputeFn& compute, double nominal_output_bytes);

  // Inter-model transfer latency of the nominal payload.
  double TransferSeconds(double nominal_bytes) const;

  // Forward-pass latency under this group's backend (3D parallel or
  // ZeRO/FSDP with sharded-parameter gathering).
  double InferSeconds(int64_t sequences, int64_t seq_len) const;

  // Training-step latency for `sequences` under this group's backend.
  double TrainStepSeconds(int64_t sequences, int64_t seq_len) const;

  virtual ProtocolContext MakeProtocolContext() const;

  // Microbatch count used for pipeline-parallel training of `sequences`.
  int NumMicrobatches(int64_t shard_sequences) const;

  Controller* controller_;
  std::shared_ptr<ResourcePool> pool_;
  WorkerGroupOptions options_;
  RealComputeOptions real_;
  ProcessGroups groups_;
  PerfModel perf_;

 private:
  // Cached registry handles for the dispatch hot path (registry lookups
  // take a mutex and rebuild label vectors; handles are pointer-stable for
  // the process lifetime). Dispatch runs only on the single-controller
  // thread — compute closures never touch these — so the per-op map needs
  // no lock.
  Histogram& dispatch_wall_us_;
  std::map<std::string, Counter*> dispatch_op_counters_;
};

// Paper-facing aliases for the three base classes (§4.1 / Appendix A).
using ThreeDParallelWorker = ModelWorkerGroup;
using FsdpWorker = ModelWorkerGroup;
using ZeroWorker = ModelWorkerGroup;

}  // namespace hybridflow

#endif  // SRC_WORKERS_WORKER_GROUP_H_
