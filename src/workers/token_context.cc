#include "src/workers/token_context.h"

#include "src/common/check.h"

namespace hybridflow {

std::vector<int64_t> ContextWindow(const std::vector<int64_t>& prompt,
                                   const std::vector<int64_t>& response, size_t emitted,
                                   int64_t window) {
  HF_CHECK_LE(emitted, response.size());
  std::vector<int64_t> context(static_cast<size_t>(window), 0);
  // Fill from the end: the most recent `window` tokens of prompt+response.
  int64_t pos = window - 1;
  for (size_t k = emitted; k-- > 0 && pos >= 0;) {
    context[static_cast<size_t>(pos--)] = response[k];
  }
  for (size_t k = prompt.size(); k-- > 0 && pos >= 0;) {
    context[static_cast<size_t>(pos--)] = prompt[k];
  }
  return context;
}

std::vector<std::vector<int64_t>> AllResponseContexts(
    const std::vector<std::vector<int64_t>>& prompts,
    const std::vector<std::vector<int64_t>>& responses, int64_t window, int64_t* response_len) {
  HF_CHECK_EQ(prompts.size(), responses.size());
  HF_CHECK(!responses.empty());
  const size_t r = responses[0].size();
  std::vector<std::vector<int64_t>> contexts;
  contexts.reserve(prompts.size() * r);
  for (size_t i = 0; i < prompts.size(); ++i) {
    HF_CHECK_EQ(responses[i].size(), r);
    for (size_t k = 0; k < r; ++k) {
      contexts.push_back(ContextWindow(prompts[i], responses[i], k, window));
    }
  }
  if (response_len != nullptr) {
    *response_len = static_cast<int64_t>(r);
  }
  return contexts;
}

std::vector<std::vector<int64_t>> AllResponseContextsRagged(
    const std::vector<std::vector<int64_t>>& prompts,
    const std::vector<std::vector<int64_t>>& responses, int64_t window,
    std::vector<int64_t>* lengths) {
  HF_CHECK_EQ(prompts.size(), responses.size());
  std::vector<std::vector<int64_t>> contexts;
  if (lengths != nullptr) {
    lengths->clear();
  }
  for (size_t i = 0; i < prompts.size(); ++i) {
    for (size_t k = 0; k < responses[i].size(); ++k) {
      contexts.push_back(ContextWindow(prompts[i], responses[i], k, window));
    }
    if (lengths != nullptr) {
      lengths->push_back(static_cast<int64_t>(responses[i].size()));
    }
  }
  return contexts;
}

std::vector<float> FlattenColumn(const std::vector<std::vector<float>>& column) {
  std::vector<float> flat;
  for (const std::vector<float>& row : column) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

std::vector<std::vector<float>> UnflattenRagged(const std::vector<float>& flat,
                                                const std::vector<int64_t>& lengths) {
  std::vector<std::vector<float>> column;
  column.reserve(lengths.size());
  size_t offset = 0;
  for (int64_t length : lengths) {
    HF_CHECK_LE(offset + static_cast<size_t>(length), flat.size());
    column.emplace_back(flat.begin() + static_cast<int64_t>(offset),
                        flat.begin() + static_cast<int64_t>(offset) + length);
    offset += static_cast<size_t>(length);
  }
  HF_CHECK_EQ(offset, flat.size());
  return column;
}

std::vector<std::vector<float>> UnflattenColumn(const std::vector<float>& flat, int64_t rows,
                                                int64_t cols) {
  HF_CHECK_EQ(static_cast<int64_t>(flat.size()), rows * cols);
  std::vector<std::vector<float>> column(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    column[static_cast<size_t>(i)].assign(flat.begin() + i * cols, flat.begin() + (i + 1) * cols);
  }
  return column;
}

}  // namespace hybridflow
