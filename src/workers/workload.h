// The nominal (full-scale) RLHF workload a dataflow stands for.
//
// The data plane runs toy-sized batches through real networks; the
// performance plane charges simulated time for this nominal workload —
// §8.1's setting by default: global batch 1024 prompts, 1024-token prompts
// and responses, 1 PPO epoch with 8 minibatch updates.
#ifndef SRC_WORKERS_WORKLOAD_H_
#define SRC_WORKERS_WORKLOAD_H_

#include <cstdint>

namespace hybridflow {

struct RlhfWorkloadSpec {
  int64_t global_batch = 1024;
  int64_t prompt_len = 1024;
  int64_t response_len = 1024;
  int ppo_epochs = 1;
  int updates_per_iteration = 8;

  int64_t total_len() const { return prompt_len + response_len; }
  int64_t minibatch() const { return global_batch / updates_per_iteration; }
  // Tokens processed per iteration (throughput denominator, §8.1).
  double TokensPerIteration() const {
    return static_cast<double>(global_batch) * static_cast<double>(total_len());
  }
  // Nominal bytes of the experience batch moved between models: token ids
  // plus a few float columns per token.
  double NominalTransferBytes() const {
    return static_cast<double>(global_batch) * static_cast<double>(total_len()) * 16.0;
  }
};

}  // namespace hybridflow

#endif  // SRC_WORKERS_WORKLOAD_H_
