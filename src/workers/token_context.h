// Context-window utilities shared by the worker model classes.
#ifndef SRC_WORKERS_TOKEN_CONTEXT_H_
#define SRC_WORKERS_TOKEN_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hybridflow {

// The window of the last `window` tokens of (prompt + response[0..emitted)),
// left-padded with 0.
std::vector<int64_t> ContextWindow(const std::vector<int64_t>& prompt,
                                   const std::vector<int64_t>& response, size_t emitted,
                                   int64_t window);

// Contexts for every response position of every row: result[i * R + k] is
// the window preceding response token k of row i. All rows must share
// response length R (returned via *response_len).
std::vector<std::vector<int64_t>> AllResponseContexts(
    const std::vector<std::vector<int64_t>>& prompts,
    const std::vector<std::vector<int64_t>>& responses, int64_t window, int64_t* response_len);

// Ragged variant: rows may have different response lengths (EOS-terminated
// generation). Contexts are concatenated row-major; *lengths receives each
// row's response length.
std::vector<std::vector<int64_t>> AllResponseContextsRagged(
    const std::vector<std::vector<int64_t>>& prompts,
    const std::vector<std::vector<int64_t>>& responses, int64_t window,
    std::vector<int64_t>* lengths);

// Flattens a (possibly ragged) [B][*] float column into one vector.
std::vector<float> FlattenColumn(const std::vector<std::vector<float>>& column);

// Splits a flat [B*R] vector back into B rows of length R.
std::vector<std::vector<float>> UnflattenColumn(const std::vector<float>& flat, int64_t rows,
                                                int64_t cols);

// Ragged inverse of FlattenColumn: splits `flat` into rows of the given
// lengths (sum of lengths must equal flat.size()).
std::vector<std::vector<float>> UnflattenRagged(const std::vector<float>& flat,
                                                const std::vector<int64_t>& lengths);

}  // namespace hybridflow

#endif  // SRC_WORKERS_TOKEN_CONTEXT_H_
