// The model classes of the hybrid programming model (§4.1, Appendix A):
// ActorWorkerGroup, CriticWorkerGroup, ReferenceWorkerGroup,
// RewardWorkerGroup (which also serves as the Safe-RLHF cost model, exactly
// as Figure 6 reuses RewardWorker). Each encapsulates one model's
// distributed computation behind the primitive APIs of Table 4.
#ifndef SRC_WORKERS_MODEL_WORKERS_H_
#define SRC_WORKERS_MODEL_WORKERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hybridengine/hybrid_engine.h"
#include "src/rlhf/losses.h"
#include "src/rollout/engine.h"
#include "src/rollout/timing.h"
#include "src/workers/worker_group.h"

namespace hybridflow {

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

struct ActorOptions {
  // Generation-stage parallel strategy (p_g, t_g); ignored for kShared.
  GenParallelConfig gen{1, 1};
  ActorEngineMode engine_mode = ActorEngineMode::kHybridFlow;
  // NeMo-Aligner's generation engine lacks a KVCache (§8.2).
  bool use_kv_cache = true;
  double temperature = 1.0;
  // Separate generation devices for kTwoCopies (OpenRLHF's vLLM pool).
  std::shared_ptr<ResourcePool> gen_pool;
  // Continuous-batching rollout engine (src/rollout/); kStatic keeps the
  // whole-shard batch loop and the closed-form wave time model.
  RolloutOptions rollout;
};

struct ActorUpdateConfig {
  PolicyLossConfig loss;
  // PPO-ptx / Safe-RLHF auxiliary pretraining loss coefficient.
  float ptx_coef = 0.0f;
  // Entropy-bonus coefficient (0 disables): encourages exploration by
  // subtracting the mean policy entropy from the loss.
  float entropy_coef = 0.0f;
  // Pretraining batch ("prompts" column used as corpus); may be null.
  const DataBatch* pretrain = nullptr;
};

class ActorWorkerGroup : public ModelWorkerGroup {
 public:
  ActorWorkerGroup(WorkerGroupOptions options, std::shared_ptr<ResourcePool> pool,
                   Controller* controller, RealComputeOptions real, ActorOptions actor);

  // generate_sequences: auto-regressive generation of responses for a batch
  // of prompts, returning responses and their token log-probabilities.
  // Schedules the train->generation transition (3D-HybridEngine) followed
  // by the generation itself.
  BatchFuture GenerateSequences(const BatchFuture& prompts, const RlhfWorkloadSpec& workload,
                                bool do_sample = true);

  // compute_log_prob: one forward pass re-evaluating response token
  // log-probs under the current weights (optional in PPO).
  BatchFuture ComputeLogProb(const BatchFuture& batch, const RlhfWorkloadSpec& workload,
                             const std::string& output_column = "log_probs");

  // compute_loss: forward pass of the pretraining loss (Safe-RLHF / PPO-ptx).
  BatchFuture ComputeLoss(const BatchFuture& pretrain, const RlhfWorkloadSpec& workload);

  // update_actor: forward+backward+update on a minibatch with the
  // algorithm-specific policy loss.
  BatchFuture UpdateActor(const BatchFuture& batch, const RlhfWorkloadSpec& workload,
                          const ActorUpdateConfig& config = ActorUpdateConfig());

  const HybridEngine& engine() const { return *engine_; }
  const ActorOptions& actor_options() const { return actor_; }
  PolicyNet& net() { return *net_; }
  const PolicyNet& net() const { return *net_; }

  // Introspection for the transition/generation experiments (§8.4).
  double last_transition_seconds() const { return last_transition_seconds_; }
  const GenTimeBreakdown& last_gen_breakdown() const { return last_gen_; }
  const TransitionStats& last_transition_stats() const { return last_transition_; }

  // Aggregated data-plane rollout stats across all generation calls
  // (continuous mode only; zeros under kStatic).
  RolloutStats rollout_stats() const { return rollout_stats_.Snapshot(); }
  // Performance-plane scheduler stats of the most recent GenerateSequences
  // (continuous mode only).
  const RolloutStats& last_rollout_sim_stats() const { return last_rollout_sim_; }
  // Performance-plane per-sequence latency digests (TTFT/TPOT/queue delay
  // in sim-seconds) of the most recent GenerateSequences (continuous mode
  // only).
  const SeqLatencySummary& last_rollout_sim_latency() const { return last_rollout_latency_; }

  // Global L2 gradient norm captured by the most recent UpdateActor, before
  // the optimizer step zeroed the gradients (telemetry).
  double last_grad_norm() const { return last_grad_norm_; }

 protected:
  ProtocolContext MakeProtocolContext() const override;

 private:
  DataBatch GenerateShard(const DataBatch& shard, bool do_sample, Rng& rng) const;
  TransferProtocol GenerationProtocol() const;
  double GenerationSeconds(const RlhfWorkloadSpec& workload, GenTimeBreakdown* breakdown) const;

  ActorOptions actor_;
  std::unique_ptr<HybridEngine> engine_;
  std::unique_ptr<PolicyNet> net_;
  std::unique_ptr<Adam> adam_;
  Rng sample_rng_;
  // Merged from concurrent per-rank GenerateShard calls (thread-safe);
  // mutable because generation compute closures are const.
  mutable RolloutStatsCollector rollout_stats_;
  mutable RolloutStats last_rollout_sim_;
  mutable SeqLatencySummary last_rollout_latency_;
  uint64_t generation_calls_ = 0;
  double last_grad_norm_ = 0.0;
  double last_transition_seconds_ = 0.0;
  TransitionStats last_transition_;
  GenTimeBreakdown last_gen_;
};

// ---------------------------------------------------------------------------
// Critic
// ---------------------------------------------------------------------------

class CriticWorkerGroup : public ModelWorkerGroup {
 public:
  CriticWorkerGroup(WorkerGroupOptions options, std::shared_ptr<ResourcePool> pool,
                    Controller* controller, RealComputeOptions real,
                    const std::string& value_column = "values");

  // compute_values: one forward pass producing per-token value estimates.
  BatchFuture ComputeValues(const BatchFuture& batch, const RlhfWorkloadSpec& workload);

  // update_critic: forward+backward+update with the clipped value loss.
  BatchFuture UpdateCritic(const BatchFuture& batch, const RlhfWorkloadSpec& workload,
                           const ValueLossConfig& config = ValueLossConfig());

  PolicyNet& net() { return *net_; }

 private:
  std::vector<std::vector<float>> ValuesForShard(const DataBatch& shard, bool with_grad,
                                                 Tensor* flat_values) const;

  std::string value_column_;
  std::string returns_column_;
  std::unique_ptr<PolicyNet> net_;
  std::unique_ptr<Adam> adam_;
};

// ---------------------------------------------------------------------------
// Reference policy
// ---------------------------------------------------------------------------

class ReferenceWorkerGroup : public ModelWorkerGroup {
 public:
  // The reference policy is initialized as a frozen copy of the actor.
  ReferenceWorkerGroup(WorkerGroupOptions options, std::shared_ptr<ResourcePool> pool,
                       Controller* controller, RealComputeOptions real,
                       const PolicyNet* init_from);

  // compute_ref_log_prob: one forward pass of reference log-probs.
  BatchFuture ComputeRefLogProb(const BatchFuture& batch, const RlhfWorkloadSpec& workload);

  const PolicyNet& net() const { return *net_; }

 private:
  std::unique_ptr<PolicyNet> net_;
};

// ---------------------------------------------------------------------------
// Reward / cost model
// ---------------------------------------------------------------------------

enum class RewardSource {
  kLearnedNet,  // Scalar-head network scoring the final context.
  kRuleReward,  // Ground-truth task reward (non-NN reward module, §9).
  kRuleCost,    // Ground-truth safety cost (Safe-RLHF cost model).
};

class RewardWorkerGroup : public ModelWorkerGroup {
 public:
  RewardWorkerGroup(WorkerGroupOptions options, std::shared_ptr<ResourcePool> pool,
                    Controller* controller, RealComputeOptions real, RewardSource source,
                    std::string output_column = "rewards");

  // compute_reward / compute_cost: one forward pass producing sample-level
  // scores in `output_column`.
  BatchFuture ComputeReward(const BatchFuture& batch, const RlhfWorkloadSpec& workload);

  // The learned scoring network (kLearnedNet only); lets callers install
  // pretrained reward-model weights (see examples/full_pipeline.cpp).
  PolicyNet& net();

 private:
  RewardSource source_;
  std::string output_column_;
  std::unique_ptr<PolicyNet> net_;  // Only for kLearnedNet.
};

}  // namespace hybridflow

#endif  // SRC_WORKERS_MODEL_WORKERS_H_
