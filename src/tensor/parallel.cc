#include "src/tensor/parallel.h"

#include <atomic>

#include "src/common/check.h"

namespace hybridflow {

namespace {

// 0 = auto (shared pool size). Relaxed: readers only need *a* recent
// value, and any value yields bitwise-identical kernel results.
std::atomic<int> g_tensor_threads{0};

// One atomic per tuning field so Get/Set need no lock (annotated-sync
// bans raw mutexes in src/tensor/; atomics are allowed and sufficient —
// tuning is set once at startup or by tests between kernel calls).
std::atomic<int64_t> g_gemm_row_grain{KernelTuning{}.gemm_row_grain};
std::atomic<int64_t> g_gemm_k_block{KernelTuning{}.gemm_k_block};
std::atomic<int64_t> g_row_grain{KernelTuning{}.row_grain};
std::atomic<int64_t> g_elem_grain{KernelTuning{}.elem_grain};

// Below this flops-equivalent estimate the pool dispatch overhead
// (enqueue + futures + wakeups) dwarfs the compute; run inline.
constexpr int64_t kParallelCutoffFlops = int64_t{1} << 15;

}  // namespace

void SetTensorThreads(int threads) {
  HF_CHECK_GE(threads, 0);
  g_tensor_threads.store(threads, std::memory_order_relaxed);
}

int TensorThreads() {
  const int configured = g_tensor_threads.load(std::memory_order_relaxed);
  if (configured > 0) {
    return configured;
  }
  return ThreadPool::Shared().size();
}

KernelTuning GetKernelTuning() {
  KernelTuning tuning;
  tuning.gemm_row_grain = g_gemm_row_grain.load(std::memory_order_relaxed);
  tuning.gemm_k_block = g_gemm_k_block.load(std::memory_order_relaxed);
  tuning.row_grain = g_row_grain.load(std::memory_order_relaxed);
  tuning.elem_grain = g_elem_grain.load(std::memory_order_relaxed);
  return tuning;
}

void SetKernelTuning(const KernelTuning& tuning) {
  HF_CHECK_GE(tuning.gemm_row_grain, 1);
  HF_CHECK_GE(tuning.gemm_k_block, 1);
  HF_CHECK_GE(tuning.row_grain, 1);
  HF_CHECK_GE(tuning.elem_grain, 1);
  g_gemm_row_grain.store(tuning.gemm_row_grain, std::memory_order_relaxed);
  g_gemm_k_block.store(tuning.gemm_k_block, std::memory_order_relaxed);
  g_row_grain.store(tuning.row_grain, std::memory_order_relaxed);
  g_elem_grain.store(tuning.elem_grain, std::memory_order_relaxed);
}

namespace tensor_internal {

int64_t NumChunks(int64_t count, int64_t grain) {
  HF_CHECK_GE(grain, 1);
  return (count + grain - 1) / grain;
}

bool BelowParallelCutoff(int64_t work) { return work < kParallelCutoffFlops; }

void RunChunksOnPool(int64_t chunks, int workers, const std::function<void(int64_t)>& fn) {
  // Strided ownership: worker w runs chunks w, w+W, w+2W... in ascending
  // order. The assignment affects scheduling only — chunks touch disjoint
  // outputs, so results do not depend on which worker runs which chunk.
  ThreadPool::Shared().ParallelFor(workers, [&fn, chunks, workers](int w) {
    for (int64_t c = w; c < chunks; c += workers) {
      fn(c);
    }
  });
}

}  // namespace tensor_internal

}  // namespace hybridflow
