#include "src/tensor/tensor.h"

#include <algorithm>
#include <unordered_set>

namespace hybridflow {

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  return Full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value, bool requires_grad) {
  auto node = std::make_shared<TensorNode>();
  node->shape = std::move(shape);
  node->data.assign(static_cast<size_t>(node->size()), value);
  node->requires_grad = requires_grad;
  return Tensor(std::move(node));
}

Tensor Tensor::FromData(std::vector<int64_t> shape, std::vector<float> data,
                        bool requires_grad) {
  auto node = std::make_shared<TensorNode>();
  node->shape = std::move(shape);
  HF_CHECK_EQ(static_cast<int64_t>(data.size()), node->size());
  node->data = std::move(data);
  node->requires_grad = requires_grad;
  return Tensor(std::move(node));
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float stddev, bool requires_grad) {
  auto node = std::make_shared<TensorNode>();
  node->shape = std::move(shape);
  node->data.resize(static_cast<size_t>(node->size()));
  for (float& value : node->data) {
    value = static_cast<float>(rng.Normal(0.0, stddev));
  }
  node->requires_grad = requires_grad;
  return Tensor(std::move(node));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

const std::vector<int64_t>& Tensor::shape() const {
  HF_CHECK(defined());
  return node_->shape;
}

int64_t Tensor::dim(int index) const {
  HF_CHECK(defined());
  HF_CHECK_GE(index, 0);
  HF_CHECK_LT(static_cast<size_t>(index), node_->shape.size());
  return node_->shape[static_cast<size_t>(index)];
}

int64_t Tensor::size() const {
  HF_CHECK(defined());
  return node_->size();
}

bool Tensor::requires_grad() const {
  HF_CHECK(defined());
  return node_->requires_grad;
}

std::vector<float>& Tensor::data() {
  HF_CHECK(defined());
  return node_->data;
}

const std::vector<float>& Tensor::data() const {
  HF_CHECK(defined());
  return node_->data;
}

const std::vector<float>& Tensor::grad() const {
  HF_CHECK(defined());
  HF_CHECK_MSG(node_->grad.size() == node_->data.size(), "grad not populated; run Backward()");
  return node_->grad;
}

float Tensor::item() const {
  HF_CHECK_EQ(size(), 1);
  return node_->data[0];
}

float Tensor::at(int64_t row, int64_t col) const {
  HF_CHECK_EQ(ndim(), 2);
  HF_CHECK_GE(row, 0);
  HF_CHECK_LT(row, dim(0));
  HF_CHECK_GE(col, 0);
  HF_CHECK_LT(col, dim(1));
  return node_->data[static_cast<size_t>(row * dim(1) + col)];
}

float Tensor::at(int64_t index) const {
  HF_CHECK_GE(index, 0);
  HF_CHECK_LT(index, size());
  return node_->data[static_cast<size_t>(index)];
}

namespace {

void TopoSort(const TensorNodePtr& node, std::unordered_set<TensorNode*>& visited,
              std::vector<TensorNodePtr>& order) {
  if (node == nullptr || visited.count(node.get()) > 0) {
    return;
  }
  visited.insert(node.get());
  for (const TensorNodePtr& parent : node->parents) {
    TopoSort(parent, visited, order);
  }
  order.push_back(node);
}

}  // namespace

void Tensor::Backward() {
  HF_CHECK(defined());
  HF_CHECK_MSG(size() == 1, "Backward() must start from a scalar");
  std::unordered_set<TensorNode*> visited;
  std::vector<TensorNodePtr> order;
  TopoSort(node_, visited, order);
  for (const TensorNodePtr& node : order) {
    node->EnsureGrad();
  }
  node_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode& node = **it;
    if (node.backward) {
      node.backward(node);
    }
  }
}

void Tensor::ZeroGrad() {
  HF_CHECK(defined());
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

Tensor MakeResult(std::vector<int64_t> shape, std::vector<float> data,
                  std::vector<TensorNodePtr> parents,
                  std::function<void(TensorNode&)> backward) {
  auto node = std::make_shared<TensorNode>();
  node->shape = std::move(shape);
  node->data = std::move(data);
  HF_CHECK_EQ(static_cast<int64_t>(node->data.size()), node->size());
  bool any_grad = false;
  for (const TensorNodePtr& parent : parents) {
    any_grad = any_grad || (parent != nullptr && parent->requires_grad);
  }
  node->requires_grad = any_grad;
  if (any_grad) {
    node->parents = std::move(parents);
    node->backward = std::move(backward);
  }
  return Tensor(std::move(node));
}

}  // namespace hybridflow
