#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/parallel.h"
#include "src/tensor/simd.h"

namespace hybridflow {

namespace {

// --- Kernel instrumentation ------------------------------------------------
// One wall-time histogram plus a flops-equivalent counter per op label.
// Registry handles are pointer-stable for the process lifetime, so each
// kernel (including the backward lambdas) caches its series in a
// function-local static.
struct KernelSeries {
  Histogram& time_us;
  Counter& flops;
};

KernelSeries MakeKernelSeries(const char* op) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  return KernelSeries{
      registry.GetHistogram("tensor.kernel_us", ExponentialBuckets(1.0, 4.0, 10), {{"op", op}}),
      registry.GetCounter("tensor.flops_total", {{"op", op}})};
}

// RAII: records one kernel invocation's wall time and flops estimate.
class KernelTimer {
 public:
  KernelTimer(const KernelSeries& series, int64_t flops)
      : series_(series), flops_(flops), start_us_(WallclockTracer::NowMicros()) {}
  ~KernelTimer() {
    series_.time_us.Observe(WallclockTracer::NowMicros() - start_us_);
    series_.flops.Increment(static_cast<double>(flops_));
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  const KernelSeries& series_;
  int64_t flops_;
  double start_us_;
};

// Flops-equivalent per-element costs for the generic elementwise templates
// and the row-wise kernels. Fixed estimates (a transcendental counts the
// same as an add) so the counters stay input-independent.
constexpr int64_t kUnaryFlopsPerElem = 4;
constexpr int64_t kBinaryFlopsPerElem = 6;
constexpr int64_t kLayerNormFwdFlopsPerElem = 8;
constexpr int64_t kLayerNormBwdFlopsPerElem = 14;
constexpr int64_t kSoftmaxFwdFlopsPerElem = 5;
constexpr int64_t kSoftmaxBwdFlopsPerElem = 4;

// Fixed (NON-tunable) row grain for cross-row reductions (LayerNorm
// dgamma/dbeta, broadcast-Add dbias). The tunable KernelTuning grains may
// change chunk shapes freely because chunks own disjoint outputs; a
// cross-row reduction's partial-sum association instead depends on its
// chunking, so it uses this constant — keeping results bitwise invariant
// under tuning sweeps too.
constexpr int64_t kReduceRowGrain = 32;
// Same idea for flat element reductions (Sum / Mean): chunk partials are
// keyed by this fixed grain and folded serially in chunk order.
constexpr int64_t kReduceElemGrain = 4096;

// Blocked out-of-place transpose: yt[j * m + i] = x[i * n + j]. Pure data
// movement (no float arithmetic), parallel over row blocks; square tiles
// keep both access streams cache-resident.
constexpr int64_t kTransposeTile = 32;
void TransposeInto(int64_t m, int64_t n, const float* x, float* yt,
                   int64_t work) {
  ParallelChunks(m, GetKernelTuning().row_grain, work,
                 [&](int64_t i0, int64_t i1) {
                   for (int64_t ib = i0; ib < i1; ib += kTransposeTile) {
                     const int64_t ie = std::min(i1, ib + kTransposeTile);
                     for (int64_t j0 = 0; j0 < n; j0 += kTransposeTile) {
                       const int64_t je = std::min(n, j0 + kTransposeTile);
                       for (int64_t i = ib; i < ie; ++i) {
                         for (int64_t j = j0; j < je; ++j) {
                           yt[j * m + i] = x[i * n + j];
                         }
                       }
                     }
                   }
                 });
}

// Wires a simple elementwise unary op: out[i] = fwd(a[i]); da[i] += dOut[i] * dfn(a[i], out[i]).
// Chunks of elem_grain elements run in parallel; each element is owned by
// exactly one chunk, so results are thread-count invariant.
template <typename Fwd, typename Dfn>
Tensor Unary(const Tensor& a, Fwd fwd, Dfn dfn) {
  static const KernelSeries series = MakeKernelSeries("elementwise");
  const std::vector<float>& x = a.data();
  const int64_t size = static_cast<int64_t>(x.size());
  const int64_t flops = size * kUnaryFlopsPerElem;
  std::vector<float> y(x.size());
  {
    KernelTimer timer(series, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        y[static_cast<size_t>(i)] = fwd(x[static_cast<size_t>(i)]);
      }
    });
  }
  TensorNodePtr an = a.node();
  return MakeResult(a.shape(), std::move(y), {an}, [an, dfn](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("elementwise_bwd");
    an->EnsureGrad();
    const int64_t size = static_cast<int64_t>(out.data.size());
    const int64_t flops = size * kUnaryFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        const size_t s = static_cast<size_t>(i);
        an->grad[s] += out.grad[s] * dfn(an->data[s], out.data[s]);
      }
    });
  });
}

// Wires an elementwise binary op with equal shapes. Same chunk-ownership
// scheme as Unary; a chunk writes both parents' grads for its elements.
template <typename Fwd, typename DA, typename DB>
Tensor Binary(const Tensor& a, const Tensor& b, Fwd fwd, DA da_fn, DB db_fn) {
  static const KernelSeries series = MakeKernelSeries("elementwise");
  HF_CHECK(a.shape() == b.shape());
  const std::vector<float>& x = a.data();
  const std::vector<float>& z = b.data();
  const int64_t size = static_cast<int64_t>(x.size());
  const int64_t flops = size * kBinaryFlopsPerElem;
  std::vector<float> y(x.size());
  {
    KernelTimer timer(series, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        const size_t s = static_cast<size_t>(i);
        y[s] = fwd(x[s], z[s]);
      }
    });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult(a.shape(), std::move(y), {an, bn}, [an, bn, da_fn, db_fn](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("elementwise_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const int64_t size = static_cast<int64_t>(out.data.size());
    const int64_t flops = size * kBinaryFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        const size_t s = static_cast<size_t>(i);
        an->grad[s] += out.grad[s] * da_fn(an->data[s], bn->data[s]);
        bn->grad[s] += out.grad[s] * db_fn(an->data[s], bn->data[s]);
      }
    });
  });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HF_TRACE_SCOPE("tensor.matmul", "tensor");
  static const KernelSeries series = MakeKernelSeries("matmul");
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  HF_CHECK_EQ(b.dim(0), k);
  const int64_t n = b.dim(1);
  std::vector<float> y(static_cast<size_t>(m * n), 0.0f);
  const std::vector<float>& x = a.data();
  const std::vector<float>& w = b.data();
  const KernelTuning tuning = GetKernelTuning();
  const int64_t fwd_flops = 2 * m * k * n;
  {
    KernelTimer timer(series, fwd_flops);
    // Row-partitioned, k-blocked: a chunk owns output rows [i0, i1).
    // k-blocks advance in order and the simd::GemmKBlock micro-kernel
    // walks p ascending per output element, so every y[i,j] accumulates
    // over p in ascending fma order regardless of the row grain, the k
    // block, the thread count, or the SIMD level.
    ParallelChunks(m, tuning.gemm_row_grain, fwd_flops, [&](int64_t i0, int64_t i1) {
      for (int64_t p0 = 0; p0 < k; p0 += tuning.gemm_k_block) {
        const int64_t p1 = std::min(k, p0 + tuning.gemm_k_block);
        for (int64_t i = i0; i < i1; ++i) {
          simd::GemmKBlock(p1 - p0, n, x.data() + i * k + p0,
                           w.data() + p0 * n, n, y.data() + i * n);
        }
      }
    });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, k, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("matmul_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const KernelTuning tuning = GetKernelTuning();
    const int64_t bwd_flops = 4 * m * k * n;
    KernelTimer timer(series_bwd, bwd_flops);
    // dA = dC * B^T: a chunk owns rows of A; each dA[i,p] is one
    // lane-partial dot product over j (simd::Dot order).
    ParallelChunks(m, tuning.gemm_row_grain, bwd_flops / 2, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float* g_row = out.grad.data() + i * n;
        float* da_row = an->grad.data() + i * k;
        for (int64_t p = 0; p < k; ++p) {
          da_row[p] += simd::Dot(n, g_row, bn->data.data() + p * n);
        }
      }
    });
    // dB = A^T * dC: a chunk owns rows of B (the k dimension); each
    // dB[p,j] accumulates over i ascending (strided-x micro-kernel: the
    // i-th input is A[i,p], a column walk).
    ParallelChunks(k, tuning.gemm_row_grain, bwd_flops / 2, [&](int64_t p0, int64_t p1) {
      for (int64_t p = p0; p < p1; ++p) {
        simd::GemmKBlockStridedX(m, n, an->data.data() + p, k,
                                 out.grad.data(), n,
                                 bn->grad.data() + p * n);
      }
    });
  });
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  HF_TRACE_SCOPE("tensor.matmul_nt", "tensor");
  static const KernelSeries series = MakeKernelSeries("matmul_nt");
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  HF_CHECK_EQ(b.dim(1), k);
  const int64_t n = b.dim(0);
  std::vector<float> y(static_cast<size_t>(m * n));
  const std::vector<float>& x = a.data();
  const std::vector<float>& w = b.data();
  const KernelTuning tuning = GetKernelTuning();
  const int64_t fwd_flops = 2 * m * k * n;
  {
    KernelTimer timer(series, fwd_flops);
    // Panel packing, re-tuned: B^T is packed ONCE up front (a parallel
    // blocked transpose — pure data movement, one pass over B, amortized
    // across every row chunk; per-chunk tile packing repeated that pass
    // per chunk and lost to the composed form). The inner kernel is then
    // the exact register-blocked simd::GemmKBlock sequence MatMul runs
    // on a materialized Transpose(b), so values are bitwise identical to
    // MatMul(a, Transpose(b)) — the fused form just skips the transpose
    // autograd node and its extra buffer hand-off.
    // (Uninitialized scratch: TransposeInto overwrites every element.)
    std::unique_ptr<float[]> bt(new float[static_cast<size_t>(k * n)]);
    TransposeInto(n, k, w.data(), bt.get(), fwd_flops / 8);
    ParallelChunks(m, tuning.gemm_row_grain, fwd_flops, [&](int64_t i0, int64_t i1) {
      for (int64_t p0 = 0; p0 < k; p0 += tuning.gemm_k_block) {
        const int64_t p1 = std::min(k, p0 + tuning.gemm_k_block);
        for (int64_t i = i0; i < i1; ++i) {
          simd::GemmKBlock(p1 - p0, n, x.data() + i * k + p0,
                           bt.get() + p0 * n, n, y.data() + i * n);
        }
      }
    });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, k, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("matmul_nt_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const KernelTuning tuning = GetKernelTuning();
    const int64_t bwd_flops = 4 * m * k * n;
    KernelTimer timer(series_bwd, bwd_flops);
    // dA = dC * B: each dA[i,p] is the same lane-partial dot over j that
    // MatMul's backward computes on a materialized Transpose(b), so the
    // grads stay bitwise identical to the composed form. B^T is packed
    // once (pure data movement) so the dot reads contiguously.
    std::unique_ptr<float[]> bt(new float[static_cast<size_t>(k * n)]);
    TransposeInto(n, k, bn->data.data(), bt.get(), bwd_flops / 8);
    ParallelChunks(m, tuning.gemm_row_grain, bwd_flops / 2, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float* g_row = out.grad.data() + i * n;
        float* da_row = an->grad.data() + i * k;
        for (int64_t p = 0; p < k; ++p) {
          da_row[p] += simd::Dot(n, g_row, bt.get() + p * n);
        }
      }
    });
    // dB = dC^T * A: a chunk owns rows of B; each dB[j,p] accumulates
    // over i ascending (strided-x walk down dC's column j).
    ParallelChunks(n, tuning.gemm_row_grain, bwd_flops / 2, [&](int64_t j0, int64_t j1) {
      for (int64_t j = j0; j < j1; ++j) {
        simd::GemmKBlockStridedX(m, k, out.grad.data() + j, n,
                                 an->data.data(), k,
                                 bn->grad.data() + j * k);
      }
    });
  });
}

Tensor MatMulTN(const Tensor& a, const Tensor& b) {
  HF_TRACE_SCOPE("tensor.matmul_tn", "tensor");
  static const KernelSeries series = MakeKernelSeries("matmul_tn");
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 2);
  const int64_t k = a.dim(0);
  const int64_t m = a.dim(1);
  HF_CHECK_EQ(b.dim(0), k);
  const int64_t n = b.dim(1);
  std::vector<float> y(static_cast<size_t>(m * n), 0.0f);
  const std::vector<float>& x = a.data();
  const std::vector<float>& w = b.data();
  const KernelTuning tuning = GetKernelTuning();
  const int64_t fwd_flops = 2 * m * k * n;
  {
    KernelTimer timer(series, fwd_flops);
    // A chunk owns output rows [i0, i1); p ascends per element (the
    // strided-x micro-kernel walks column i of A downward) — the same
    // per-element fma order as MatMul(Transpose(a), b), hence bitwise
    // identical to it.
    ParallelChunks(m, tuning.gemm_row_grain, fwd_flops, [&](int64_t i0, int64_t i1) {
      for (int64_t p0 = 0; p0 < k; p0 += tuning.gemm_k_block) {
        const int64_t p1 = std::min(k, p0 + tuning.gemm_k_block);
        for (int64_t i = i0; i < i1; ++i) {
          simd::GemmKBlockStridedX(p1 - p0, n, x.data() + p0 * m + i, m,
                                   w.data() + p0 * n, n, y.data() + i * n);
        }
      }
    });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, k, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("matmul_tn_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const KernelTuning tuning = GetKernelTuning();
    const int64_t bwd_flops = 4 * m * k * n;
    KernelTimer timer(series_bwd, bwd_flops);
    // dA = B * dC^T (shape [k, m]): a chunk owns rows of A (the k
    // dimension); each dA[p,i] is one dot product with the j-sum
    // ascending. dB = A * dC (shape [k, n]): the same chunk owns row p of
    // B, accumulating over i ascending — one fused pass per p.
    ParallelChunks(k, tuning.gemm_row_grain, bwd_flops, [&](int64_t p0, int64_t p1) {
      for (int64_t p = p0; p < p1; ++p) {
        const float* b_row = bn->data.data() + p * n;
        float* da_row = an->grad.data() + p * m;
        float* db_row = bn->grad.data() + p * n;
        const float* a_row = an->data.data() + p * m;
        for (int64_t i = 0; i < m; ++i) {
          const float* g_row = out.grad.data() + i * n;
          da_row[i] += simd::Dot(n, b_row, g_row);
          simd::Axpy(n, a_row[i], g_row, db_row);
        }
      }
    });
  });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  static const KernelSeries series = MakeKernelSeries("elementwise");
  if (a.shape() == b.shape()) {
    const int64_t size = static_cast<int64_t>(a.data().size());
    const int64_t flops = size * kBinaryFlopsPerElem;
    std::vector<float> y(a.data().size());
    {
      KernelTimer timer(series, flops);
      ParallelChunks(size, GetKernelTuning().elem_grain, flops,
                     [&](int64_t begin, int64_t end) {
                       simd::Add(end - begin, a.data().data() + begin,
                                 b.data().data() + begin, y.data() + begin);
                     });
    }
    TensorNodePtr an = a.node();
    TensorNodePtr bn = b.node();
    return MakeResult(a.shape(), std::move(y), {an, bn}, [an, bn](TensorNode& out) {
      static const KernelSeries series_bwd = MakeKernelSeries("elementwise_bwd");
      an->EnsureGrad();
      bn->EnsureGrad();
      const int64_t size = static_cast<int64_t>(out.data.size());
      const int64_t flops = size * kBinaryFlopsPerElem;
      KernelTimer timer(series_bwd, flops);
      ParallelChunks(size, GetKernelTuning().elem_grain, flops,
                     [&](int64_t begin, int64_t end) {
                       simd::AddAcc(end - begin, out.grad.data() + begin,
                                    an->grad.data() + begin);
                       simd::AddAcc(end - begin, out.grad.data() + begin,
                                    bn->grad.data() + begin);
                     });
    });
  }
  // Bias broadcast: a[m,n] + b[n]. Rows are independent in the forward;
  // the bias gradient reduces ACROSS rows, so it goes through per-chunk
  // partials keyed by the fixed kReduceRowGrain, folded in chunk order.
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 1);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  HF_CHECK_EQ(b.dim(0), n);
  const int64_t flops = m * n * kBinaryFlopsPerElem;
  std::vector<float> y(static_cast<size_t>(m * n));
  {
    KernelTimer timer(series, flops);
    ParallelChunks(m, GetKernelTuning().row_grain, flops,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) {
                       simd::Add(n, a.data().data() + i * n, b.data().data(),
                                 y.data() + i * n);
                     }
                   });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("elementwise_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const int64_t flops = m * n * kBinaryFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    const int64_t size = m * n;
    ParallelChunks(size, GetKernelTuning().elem_grain, flops / 2,
                   [&](int64_t begin, int64_t end) {
                     simd::AddAcc(end - begin, out.grad.data() + begin,
                                  an->grad.data() + begin);
                   });
    const int64_t chunks = tensor_internal::NumChunks(m, kReduceRowGrain);
    std::vector<float> dbias_partial(static_cast<size_t>(chunks * n), 0.0f);
    ParallelChunks(m, kReduceRowGrain, flops / 2, [&](int64_t i0, int64_t i1) {
      float* dbias = dbias_partial.data() + (i0 / kReduceRowGrain) * n;
      for (int64_t i = i0; i < i1; ++i) {
        simd::AddAcc(n, out.grad.data() + i * n, dbias);
      }
    });
    for (int64_t chunk = 0; chunk < chunks; ++chunk) {
      simd::AddAcc(n, dbias_partial.data() + chunk * n, bn->grad.data());
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  static const KernelSeries series = MakeKernelSeries("elementwise");
  HF_CHECK(a.shape() == b.shape());
  const int64_t size = static_cast<int64_t>(a.data().size());
  const int64_t flops = size * kBinaryFlopsPerElem;
  std::vector<float> y(a.data().size());
  {
    KernelTimer timer(series, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops,
                   [&](int64_t begin, int64_t end) {
                     simd::Sub(end - begin, a.data().data() + begin,
                               b.data().data() + begin, y.data() + begin);
                   });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult(a.shape(), std::move(y), {an, bn}, [an, bn](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("elementwise_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const int64_t size = static_cast<int64_t>(out.data.size());
    const int64_t flops = size * kBinaryFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops,
                   [&](int64_t begin, int64_t end) {
                     simd::AddAcc(end - begin, out.grad.data() + begin,
                                  an->grad.data() + begin);
                     simd::ScaleAcc(end - begin, out.grad.data() + begin,
                                    -1.0f, bn->grad.data() + begin);
                   });
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  static const KernelSeries series = MakeKernelSeries("elementwise");
  HF_CHECK(a.shape() == b.shape());
  const int64_t size = static_cast<int64_t>(a.data().size());
  const int64_t flops = size * kBinaryFlopsPerElem;
  std::vector<float> y(a.data().size());
  {
    KernelTimer timer(series, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops,
                   [&](int64_t begin, int64_t end) {
                     simd::Mul(end - begin, a.data().data() + begin,
                               b.data().data() + begin, y.data() + begin);
                   });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult(a.shape(), std::move(y), {an, bn}, [an, bn](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("elementwise_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const int64_t size = static_cast<int64_t>(out.data.size());
    const int64_t flops = size * kBinaryFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops,
                   [&](int64_t begin, int64_t end) {
                     simd::MulAcc(end - begin, out.grad.data() + begin,
                                  bn->data.data() + begin,
                                  an->grad.data() + begin);
                     simd::MulAcc(end - begin, out.grad.data() + begin,
                                  an->data.data() + begin,
                                  bn->grad.data() + begin);
                   });
  });
}

namespace {

// Shared wiring for the vectorized unary ops below: fwd fills y from x
// over elem_grain chunks; bwd accumulates into the parent's grad.
template <typename FwdKernel, typename BwdKernel>
Tensor SimdUnary(const Tensor& a, FwdKernel fwd, BwdKernel bwd) {
  static const KernelSeries series = MakeKernelSeries("elementwise");
  const int64_t size = static_cast<int64_t>(a.data().size());
  const int64_t flops = size * kUnaryFlopsPerElem;
  std::vector<float> y(a.data().size());
  {
    KernelTimer timer(series, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops,
                   [&](int64_t begin, int64_t end) {
                     fwd(end - begin, a.data().data() + begin,
                         y.data() + begin);
                   });
  }
  TensorNodePtr an = a.node();
  return MakeResult(a.shape(), std::move(y), {an}, [an, bwd](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("elementwise_bwd");
    an->EnsureGrad();
    const int64_t size = static_cast<int64_t>(out.data.size());
    const int64_t flops = size * kUnaryFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops,
                   [&](int64_t begin, int64_t end) {
                     bwd(end - begin, begin, *an, out);
                   });
  });
}

}  // namespace

Tensor Scale(const Tensor& a, float s) {
  return SimdUnary(
      a,
      [s](int64_t c, const float* x, float* y) { simd::Scale(c, x, s, y); },
      [s](int64_t c, int64_t begin, TensorNode& an, TensorNode& out) {
        simd::ScaleAcc(c, out.grad.data() + begin, s, an.grad.data() + begin);
      });
}

Tensor AddScalar(const Tensor& a, float s) {
  return SimdUnary(
      a,
      [s](int64_t c, const float* x, float* y) { simd::AddScalar(c, x, s, y); },
      [](int64_t c, int64_t begin, TensorNode& an, TensorNode& out) {
        simd::AddAcc(c, out.grad.data() + begin, an.grad.data() + begin);
      });
}

Tensor Neg(const Tensor& a) { return Scale(a, -1.0f); }

// exp via HfExpf (simd.h): bitwise identical at every SIMD level, about
// 1 ulp off std::expf. Inputs in [~88.38, 88.72] round up to +inf (the
// documented scale-overflow band) — softmax paths always shift by the
// row max first, so they never enter it.
Tensor Exp(const Tensor& a) {
  return SimdUnary(
      a, [](int64_t c, const float* x, float* y) { simd::Exp(c, x, y); },
      [](int64_t c, int64_t begin, TensorNode& an, TensorNode& out) {
        // d/dx exp = exp(x) = out.data.
        simd::MulAcc(c, out.grad.data() + begin, out.data.data() + begin,
                     an.grad.data() + begin);
      });
}

Tensor Log(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        HF_CHECK_GT(x, 0.0f);
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Softplus(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        // Stable: max(x, 0) + log1p(exp(-|x|)).
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::abs(x)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Square(const Tensor& a) {
  return SimdUnary(
      a, [](int64_t c, const float* x, float* y) { simd::Mul(c, x, x, y); },
      [](int64_t c, int64_t begin, TensorNode& an, TensorNode& out) {
        // d/dx x^2 = 2x, accumulated as two identical fma(g, x, ·) steps
        // so both tiers run the same exactly-rounded sequence.
        simd::MulAcc(c, out.grad.data() + begin, an.data.data() + begin,
                     an.grad.data() + begin);
        simd::MulAcc(c, out.grad.data() + begin, an.data.data() + begin,
                     an.grad.data() + begin);
      });
}

Tensor Tanh(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Gelu(const Tensor& a) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  return Unary(
      a,
      [](float x) {
        const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
        const float t = std::tanh(inner);
        const float dinner = kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return std::min(x, z); },
      [](float x, float z) { return x <= z ? 1.0f : 0.0f; },
      [](float x, float z) { return z < x ? 1.0f : 0.0f; });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return std::max(x, z); },
      [](float x, float z) { return x >= z ? 1.0f : 0.0f; },
      [](float x, float z) { return z > x ? 1.0f : 0.0f; });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  HF_CHECK_LE(lo, hi);
  return Unary(
      a, [lo, hi](float x) { return std::clamp(x, lo, hi); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.0f : 0.0f; });
}

namespace {

// Shared reduction core for Sum/Mean: per-chunk lane-partial sums keyed
// by the fixed kReduceElemGrain, folded serially in chunk order. The
// chunk grain AND the per-chunk lane-partial order are both fixed, so
// the total is bitwise invariant to threads, tuning, and SIMD level.
float ChunkedTotal(const std::vector<float>& x, int64_t flops) {
  const int64_t size = static_cast<int64_t>(x.size());
  const int64_t chunks = tensor_internal::NumChunks(size, kReduceElemGrain);
  std::vector<float> partial(static_cast<size_t>(chunks), 0.0f);
  ParallelChunks(size, kReduceElemGrain, flops, [&](int64_t begin, int64_t end) {
    partial[static_cast<size_t>(begin / kReduceElemGrain)] =
        simd::Sum(end - begin, x.data() + begin);
  });
  float total = 0.0f;
  for (float p : partial) {
    total += p;
  }
  return total;
}

}  // namespace

Tensor Sum(const Tensor& a) {
  static const KernelSeries series = MakeKernelSeries("reduce");
  const int64_t size = static_cast<int64_t>(a.data().size());
  float total;
  {
    KernelTimer timer(series, size);
    total = ChunkedTotal(a.data(), size);
  }
  TensorNodePtr an = a.node();
  return MakeResult({1}, {total}, {an}, [an](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("reduce_bwd");
    an->EnsureGrad();
    const int64_t size = static_cast<int64_t>(an->grad.size());
    KernelTimer timer(series_bwd, size);
    const float g0 = out.grad[0];
    ParallelChunks(size, GetKernelTuning().elem_grain, size,
                   [&](int64_t begin, int64_t end) {
                     float* dx = an->grad.data();
                     for (int64_t i = begin; i < end; ++i) {
                       dx[i] += g0;
                     }
                   });
  });
}

Tensor Mean(const Tensor& a) {
  HF_CHECK_GT(a.size(), 0);
  static const KernelSeries series = MakeKernelSeries("reduce");
  const float inv = 1.0f / static_cast<float>(a.size());
  const int64_t size = static_cast<int64_t>(a.data().size());
  float total;
  {
    KernelTimer timer(series, size);
    total = ChunkedTotal(a.data(), size);
  }
  TensorNodePtr an = a.node();
  return MakeResult({1}, {total * inv}, {an}, [an, inv](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("reduce_bwd");
    an->EnsureGrad();
    const int64_t size = static_cast<int64_t>(an->grad.size());
    KernelTimer timer(series_bwd, size);
    const float g0 = out.grad[0] * inv;
    ParallelChunks(size, GetKernelTuning().elem_grain, size,
                   [&](int64_t begin, int64_t end) {
                     float* dx = an->grad.data();
                     for (int64_t i = begin; i < end; ++i) {
                       dx[i] += g0;
                     }
                   });
  });
}

Tensor RowSum(const Tensor& a) {
  HF_CHECK_EQ(a.ndim(), 2);
  static const KernelSeries series = MakeKernelSeries("reduce");
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  std::vector<float> y(static_cast<size_t>(m));
  {
    KernelTimer timer(series, m * n);
    // Each output element is one row's lane-partial sum; rows partition
    // across chunks.
    ParallelChunks(m, GetKernelTuning().row_grain, m * n,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) {
                       y[static_cast<size_t>(i)] =
                           simd::Sum(n, a.data().data() + i * n);
                     }
                   });
  }
  TensorNodePtr an = a.node();
  return MakeResult({m}, std::move(y), {an}, [an, m, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("reduce_bwd");
    an->EnsureGrad();
    KernelTimer timer(series_bwd, m * n);
    ParallelChunks(m, GetKernelTuning().row_grain, m * n,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) {
                       const float g = out.grad[static_cast<size_t>(i)];
                       float* dx_row = an->grad.data() + i * n;
                       for (int64_t j = 0; j < n; ++j) {
                         dx_row[j] += g;
                       }
                     }
                   });
  });
}

Tensor Transpose(const Tensor& a) {
  HF_CHECK_EQ(a.ndim(), 2);
  static const KernelSeries series = MakeKernelSeries("transpose");
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  std::vector<float> y(static_cast<size_t>(m * n));
  {
    KernelTimer timer(series, m * n);
    TransposeInto(m, n, a.data().data(), y.data(), m * n);
  }
  TensorNodePtr an = a.node();
  return MakeResult({n, m}, std::move(y), {an}, [an, m, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("transpose_bwd");
    an->EnsureGrad();
    KernelTimer timer(series_bwd, m * n);
    // Chunks own row blocks of dA (exclusive writes); the same square
    // tiling as TransposeInto keeps the strided read stream resident.
    ParallelChunks(m, GetKernelTuning().row_grain, m * n,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t ib = i0; ib < i1; ib += kTransposeTile) {
                       const int64_t ie = std::min(i1, ib + kTransposeTile);
                       for (int64_t j0 = 0; j0 < n; j0 += kTransposeTile) {
                         const int64_t je = std::min(n, j0 + kTransposeTile);
                         for (int64_t i = ib; i < ie; ++i) {
                           for (int64_t j = j0; j < je; ++j) {
                             an->grad[static_cast<size_t>(i * n + j)] +=
                                 out.grad[static_cast<size_t>(j * m + i)];
                           }
                         }
                       }
                     }
                   });
  });
}

Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end) {
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_GE(begin, 0);
  HF_CHECK_LT(begin, end);
  HF_CHECK_LE(end, a.dim(0));
  const int64_t n = a.dim(1);
  const int64_t rows = end - begin;
  std::vector<float> y(a.data().begin() + begin * n, a.data().begin() + end * n);
  TensorNodePtr an = a.node();
  return MakeResult({rows, n}, std::move(y), {an}, [an, begin, n](TensorNode& out) {
    an->EnsureGrad();
    const int64_t offset = begin * n;
    const int64_t size = static_cast<int64_t>(out.grad.size());
    ParallelChunks(size, GetKernelTuning().elem_grain, size,
                   [&](int64_t b, int64_t e) {
                     simd::AddAcc(e - b, out.grad.data() + b,
                                  an->grad.data() + offset + b);
                   });
  });
}

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta, float eps) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  HF_CHECK_EQ(gamma.ndim(), 1);
  HF_CHECK_EQ(gamma.dim(0), n);
  HF_CHECK_EQ(beta.dim(0), n);
  static const KernelSeries series = MakeKernelSeries("layernorm");
  std::vector<float> y(static_cast<size_t>(m * n));
  std::vector<float> inv_std(static_cast<size_t>(m));
  std::vector<float> normalized(static_cast<size_t>(m * n));
  const std::vector<float>& x = a.data();
  const std::vector<float>& g = gamma.data();
  const std::vector<float>& c = beta.data();
  {
    KernelTimer timer(series, m * n * kLayerNormFwdFlopsPerElem);
    // Rows are independent: a chunk owns rows [i0, i1) and each row runs
    // the canonical simd row sequence (lane-partial mean/variance, then
    // the fused normalize+affine row kernel).
    ParallelChunks(m, GetKernelTuning().row_grain, m * n * kLayerNormFwdFlopsPerElem,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) {
                       const float* x_row = x.data() + i * n;
                       const float mean =
                           simd::Sum(n, x_row) / static_cast<float>(n);
                       const float var = simd::SumSqDiff(n, x_row, mean) /
                                         static_cast<float>(n);
                       const float inv = 1.0f / std::sqrt(var + eps);
                       inv_std[static_cast<size_t>(i)] = inv;
                       simd::LayerNormRow(n, x_row, mean, inv, g.data(),
                                          c.data(), normalized.data() + i * n,
                                          y.data() + i * n);
                     }
                   });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr gn = gamma.node();
  TensorNodePtr bn = beta.node();
  return MakeResult(
      {m, n}, std::move(y), {an, gn, bn},
      [an, gn, bn, m, n, inv_std, normalized](TensorNode& out) {
        static const KernelSeries series_bwd = MakeKernelSeries("layernorm_bwd");
        an->EnsureGrad();
        gn->EnsureGrad();
        bn->EnsureGrad();
        const int64_t flops = m * n * kLayerNormBwdFlopsPerElem;
        KernelTimer timer(series_bwd, flops);
        // dgamma/dbeta reduce ACROSS rows, so they go through per-chunk
        // partial buffers keyed by the fixed kReduceRowGrain (not the
        // tunable row grain) and are folded serially in chunk order below
        // — no atomics, bitwise invariant to threads and tuning. dx is
        // row-exclusive and computed in the same pass.
        const int64_t chunks = tensor_internal::NumChunks(m, kReduceRowGrain);
        std::vector<float> dgamma_partial(static_cast<size_t>(chunks * n), 0.0f);
        std::vector<float> dbeta_partial(static_cast<size_t>(chunks * n), 0.0f);
        ParallelChunks(m, kReduceRowGrain, flops, [&](int64_t i0, int64_t i1) {
          const int64_t chunk = i0 / kReduceRowGrain;
          float* dgamma = dgamma_partial.data() + chunk * n;
          float* dbeta = dbeta_partial.data() + chunk * n;
          std::vector<float> dxhat(static_cast<size_t>(n));
          for (int64_t i = i0; i < i1; ++i) {
            const float* g_row = out.grad.data() + i * n;
            const float* norm_row = normalized.data() + i * n;
            simd::MulAcc(n, g_row, norm_row, dgamma);
            simd::AddAcc(n, g_row, dbeta);
            // dx via the standard layernorm backward:
            // dx = inv_std/n * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
            // with dxhat = dy * gamma materialized once per row so the two
            // row sums are plain lane-partial reductions.
            simd::Mul(n, g_row, gn->data.data(), dxhat.data());
            const float sum_dxhat = simd::Sum(n, dxhat.data());
            const float sum_dxhat_xhat = simd::Dot(n, dxhat.data(), norm_row);
            simd::LayerNormBackwardRow(n, norm_row, dxhat.data(),
                                       inv_std[static_cast<size_t>(i)],
                                       sum_dxhat, sum_dxhat_xhat,
                                       an->grad.data() + i * n);
          }
        });
        for (int64_t chunk = 0; chunk < chunks; ++chunk) {
          simd::AddAcc(n, dgamma_partial.data() + chunk * n, gn->grad.data());
          simd::AddAcc(n, dbeta_partial.data() + chunk * n, bn->grad.data());
        }
      });
}

Tensor LayerNormMatMul(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                       const Tensor& w, float eps) {
  HF_TRACE_SCOPE("tensor.layernorm_matmul", "tensor");
  static const KernelSeries series = MakeKernelSeries("layernorm_matmul");
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  HF_CHECK_EQ(gamma.ndim(), 1);
  HF_CHECK_EQ(gamma.dim(0), k);
  HF_CHECK_EQ(beta.dim(0), k);
  HF_CHECK_EQ(w.ndim(), 2);
  HF_CHECK_EQ(w.dim(0), k);
  const int64_t n = w.dim(1);
  std::vector<float> y(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> inv_std(static_cast<size_t>(m));
  std::vector<float> normalized(static_cast<size_t>(m * k));
  std::vector<float> ln_out(static_cast<size_t>(m * k));
  const std::vector<float>& x = a.data();
  const std::vector<float>& g = gamma.data();
  const std::vector<float>& c = beta.data();
  const std::vector<float>& wd = w.data();
  const KernelTuning tuning = GetKernelTuning();
  const int64_t fwd_flops = m * k * kLayerNormFwdFlopsPerElem + 2 * m * k * n;
  {
    KernelTimer timer(series, fwd_flops);
    // One pass per row: the LayerNorm row sequence is exactly LayerNorm's
    // and the GEMM k-blocks are exactly MatMul's, so values are bitwise
    // identical to MatMul(LayerNorm(a, gamma, beta, eps), w). The fusion
    // only changes WHEN the normalized row feeds the GEMM — immediately,
    // while it is still cache-hot — and skips the intermediate autograd
    // node.
    ParallelChunks(m, tuning.gemm_row_grain, fwd_flops, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float* x_row = x.data() + i * k;
        const float mean = simd::Sum(k, x_row) / static_cast<float>(k);
        const float var =
            simd::SumSqDiff(k, x_row, mean) / static_cast<float>(k);
        const float inv = 1.0f / std::sqrt(var + eps);
        inv_std[static_cast<size_t>(i)] = inv;
        float* ln_row = ln_out.data() + i * k;
        simd::LayerNormRow(k, x_row, mean, inv, g.data(), c.data(),
                           normalized.data() + i * k, ln_row);
        for (int64_t p0 = 0; p0 < k; p0 += tuning.gemm_k_block) {
          const int64_t p1 = std::min(k, p0 + tuning.gemm_k_block);
          simd::GemmKBlock(p1 - p0, n, ln_row + p0, wd.data() + p0 * n, n,
                           y.data() + i * n);
        }
      }
    });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr gn = gamma.node();
  TensorNodePtr bn = beta.node();
  TensorNodePtr wn = w.node();
  return MakeResult(
      {m, n}, std::move(y), {an, gn, bn, wn},
      [an, gn, bn, wn, m, k, n, inv_std, normalized, ln_out](TensorNode& out) {
        static const KernelSeries series_bwd =
            MakeKernelSeries("layernorm_matmul_bwd");
        an->EnsureGrad();
        gn->EnsureGrad();
        bn->EnsureGrad();
        wn->EnsureGrad();
        const KernelTuning tuning = GetKernelTuning();
        const int64_t flops = 4 * m * k * n + m * k * kLayerNormBwdFlopsPerElem;
        KernelTimer timer(series_bwd, flops);
        // Stage 1: MatMul's backward, with d(ln_out) landing in a
        // zero-initialized scratch. The `+=` onto zero runs the exact
        // sequence the composed form runs against the LN node's fresh
        // grad buffer (including the 0 + x edge cases), keeping grads
        // bitwise identical to the composed form.
        std::vector<float> d_ln(static_cast<size_t>(m * k), 0.0f);
        ParallelChunks(m, tuning.gemm_row_grain, 2 * m * k * n,
                       [&](int64_t i0, int64_t i1) {
                         for (int64_t i = i0; i < i1; ++i) {
                           const float* g_row = out.grad.data() + i * n;
                           float* d_ln_row = d_ln.data() + i * k;
                           for (int64_t p = 0; p < k; ++p) {
                             d_ln_row[p] +=
                                 simd::Dot(n, g_row, wn->data.data() + p * n);
                           }
                         }
                       });
        ParallelChunks(k, tuning.gemm_row_grain, 2 * m * k * n,
                       [&](int64_t p0, int64_t p1) {
                         for (int64_t p = p0; p < p1; ++p) {
                           simd::GemmKBlockStridedX(m, n, ln_out.data() + p, k,
                                                    out.grad.data(), n,
                                                    wn->grad.data() + p * n);
                         }
                       });
        // Stage 2: LayerNorm's backward, fed by d_ln — identical to the
        // standalone op's backward with out.grad := d_ln.
        const int64_t chunks = tensor_internal::NumChunks(m, kReduceRowGrain);
        std::vector<float> dgamma_partial(static_cast<size_t>(chunks * k), 0.0f);
        std::vector<float> dbeta_partial(static_cast<size_t>(chunks * k), 0.0f);
        ParallelChunks(
            m, kReduceRowGrain, m * k * kLayerNormBwdFlopsPerElem,
            [&](int64_t i0, int64_t i1) {
              const int64_t chunk = i0 / kReduceRowGrain;
              float* dgamma = dgamma_partial.data() + chunk * k;
              float* dbeta = dbeta_partial.data() + chunk * k;
              std::vector<float> dxhat(static_cast<size_t>(k));
              for (int64_t i = i0; i < i1; ++i) {
                const float* g_row = d_ln.data() + i * k;
                const float* norm_row = normalized.data() + i * k;
                simd::MulAcc(k, g_row, norm_row, dgamma);
                simd::AddAcc(k, g_row, dbeta);
                simd::Mul(k, g_row, gn->data.data(), dxhat.data());
                const float sum_dxhat = simd::Sum(k, dxhat.data());
                const float sum_dxhat_xhat = simd::Dot(k, dxhat.data(), norm_row);
                simd::LayerNormBackwardRow(k, norm_row, dxhat.data(),
                                           inv_std[static_cast<size_t>(i)],
                                           sum_dxhat, sum_dxhat_xhat,
                                           an->grad.data() + i * k);
              }
            });
        for (int64_t chunk = 0; chunk < chunks; ++chunk) {
          simd::AddAcc(k, dgamma_partial.data() + chunk * k, gn->grad.data());
          simd::AddAcc(k, dbeta_partial.data() + chunk * k, bn->grad.data());
        }
      });
}

Tensor LogSoftmax(const Tensor& a) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  static const KernelSeries series = MakeKernelSeries("log_softmax");
  std::vector<float> y(a.data().size());
  const std::vector<float>& x = a.data();
  {
    KernelTimer timer(series, m * n * kSoftmaxFwdFlopsPerElem);
    // Rows are independent: a chunk owns rows [i0, i1). Per row: lane-
    // partial max, lane-partial sum of HfExpf(x - max) (so the shifted
    // exponentials never overflow), one scalar log, then a vector shift.
    ParallelChunks(m, GetKernelTuning().row_grain, m * n * kSoftmaxFwdFlopsPerElem,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) {
                       const float* x_row = x.data() + i * n;
                       const float max_val = simd::Max(n, x_row);
                       const float denom =
                           simd::SumExpShifted(n, x_row, -max_val);
                       const float log_denom = std::log(denom) + max_val;
                       simd::AddScalar(n, x_row, -log_denom, y.data() + i * n);
                     }
                   });
  }
  TensorNodePtr an = a.node();
  return MakeResult({m, n}, std::move(y), {an}, [an, m, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("log_softmax_bwd");
    an->EnsureGrad();
    const int64_t flops = m * n * kSoftmaxBwdFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    // dx = dy - softmax(x) * sum(dy); the sum is within one row, so
    // chunks of rows stay independent.
    ParallelChunks(m, GetKernelTuning().row_grain, flops, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float* g_row = out.grad.data() + i * n;
        const float grad_sum = simd::Sum(n, g_row);
        simd::LogSoftmaxBackwardRow(n, out.data.data() + i * n, g_row,
                                    grad_sum, an->grad.data() + i * n);
      }
    });
  });
}

Tensor Softmax(const Tensor& a) {
  Tensor log_probs = LogSoftmax(a);
  return Exp(log_probs);
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices) {
  HF_CHECK_EQ(table.ndim(), 2);
  const int64_t v = table.dim(0);
  const int64_t e = table.dim(1);
  const int64_t n = static_cast<int64_t>(indices.size());
  // Bounds-check serially (HF_CHECK must not fire on a pool thread), then
  // copy rows in parallel — each output row is owned by one chunk.
  for (int64_t i = 0; i < n; ++i) {
    HF_CHECK_GE(indices[static_cast<size_t>(i)], 0);
    HF_CHECK_LT(indices[static_cast<size_t>(i)], v);
  }
  std::vector<float> y(static_cast<size_t>(n * e));
  ParallelChunks(n, GetKernelTuning().row_grain, n * e,
                 [&](int64_t i0, int64_t i1) {
                   for (int64_t i = i0; i < i1; ++i) {
                     std::memcpy(y.data() + i * e,
                                 table.data().data() +
                                     indices[static_cast<size_t>(i)] * e,
                                 static_cast<size_t>(e) * sizeof(float));
                   }
                 });
  TensorNodePtr tn = table.node();
  std::vector<int64_t> idx = indices;
  return MakeResult({n, e}, std::move(y), {tn}, [tn, idx, e](TensorNode& out) {
    tn->EnsureGrad();
    // The scatter stays serial: duplicate indices make table rows shared
    // between output rows, so a row partition would race (and any
    // reordering would change the accumulation order).
    for (size_t i = 0; i < idx.size(); ++i) {
      simd::AddAcc(e, out.grad.data() + i * static_cast<size_t>(e),
                   tn->grad.data() + static_cast<size_t>(idx[i]) *
                                         static_cast<size_t>(e));
    }
  });
}

Tensor PickPerRow(const Tensor& a, const std::vector<int64_t>& indices) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  HF_CHECK_EQ(static_cast<int64_t>(indices.size()), m);
  for (int64_t i = 0; i < m; ++i) {
    HF_CHECK_GE(indices[static_cast<size_t>(i)], 0);
    HF_CHECK_LT(indices[static_cast<size_t>(i)], n);
  }
  std::vector<float> y(static_cast<size_t>(m));
  ParallelChunks(m, GetKernelTuning().elem_grain, m,
                 [&](int64_t i0, int64_t i1) {
                   for (int64_t i = i0; i < i1; ++i) {
                     y[static_cast<size_t>(i)] = a.data()[static_cast<size_t>(
                         i * n + indices[static_cast<size_t>(i)])];
                   }
                 });
  TensorNodePtr an = a.node();
  std::vector<int64_t> idx = indices;
  return MakeResult({m}, std::move(y), {an}, [an, idx, n](TensorNode& out) {
    an->EnsureGrad();
    // Row i's pick is the only write into grad row i, so chunks of rows
    // are write-disjoint.
    const int64_t m = static_cast<int64_t>(idx.size());
    ParallelChunks(m, GetKernelTuning().elem_grain, m,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) {
                       an->grad[static_cast<size_t>(
                           i * n + idx[static_cast<size_t>(i)])] +=
                           out.grad[static_cast<size_t>(i)];
                     }
                   });
  });
}

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t dim : shape) {
    n *= dim;
  }
  HF_CHECK_EQ(n, a.size());
  TensorNodePtr an = a.node();
  return MakeResult(std::move(shape), a.data(), {an}, [an](TensorNode& out) {
    an->EnsureGrad();
    const int64_t size = static_cast<int64_t>(out.grad.size());
    ParallelChunks(size, GetKernelTuning().elem_grain, size,
                   [&](int64_t b, int64_t e) {
                     simd::AddAcc(e - b, out.grad.data() + b,
                                  an->grad.data() + b);
                   });
  });
}

Tensor Detach(const Tensor& a) {
  return Tensor::FromData(a.shape(), a.data(), /*requires_grad=*/false);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  HF_CHECK(!parts.empty());
  const int64_t n = parts[0].dim(1);
  int64_t rows = 0;
  for (const Tensor& part : parts) {
    HF_CHECK_EQ(part.ndim(), 2);
    HF_CHECK_EQ(part.dim(1), n);
    rows += part.dim(0);
  }
  std::vector<float> y(static_cast<size_t>(rows * n));
  std::vector<TensorNodePtr> parents;
  std::vector<int64_t> row_counts;
  int64_t offset = 0;
  for (const Tensor& part : parts) {
    const int64_t count = static_cast<int64_t>(part.data().size());
    const float* src = part.data().data();
    float* dst = y.data() + offset;
    ParallelChunks(count, GetKernelTuning().elem_grain, count,
                   [&](int64_t b, int64_t e) {
                     std::memcpy(dst + b, src + b,
                                 static_cast<size_t>(e - b) * sizeof(float));
                   });
    offset += count;
    parents.push_back(part.node());
    row_counts.push_back(part.dim(0));
  }
  return MakeResult({rows, n}, std::move(y), parents, [row_counts, n](TensorNode& out) {
    int64_t offset = 0;
    for (size_t k = 0; k < out.parents.size(); ++k) {
      TensorNode& parent = *out.parents[k];
      parent.EnsureGrad();
      const int64_t count = row_counts[k] * n;
      ParallelChunks(count, GetKernelTuning().elem_grain, count,
                     [&](int64_t b, int64_t e) {
                       simd::AddAcc(e - b, out.grad.data() + offset + b,
                                    parent.grad.data() + b);
                     });
      offset += count;
    }
  });
}

}  // namespace hybridflow
