#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"

namespace hybridflow {

namespace {

// Wires a simple elementwise unary op: out[i] = fwd(a[i]); da[i] += dOut[i] * dfn(a[i], out[i]).
template <typename Fwd, typename Dfn>
Tensor Unary(const Tensor& a, Fwd fwd, Dfn dfn) {
  const std::vector<float>& x = a.data();
  std::vector<float> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = fwd(x[i]);
  }
  TensorNodePtr an = a.node();
  return MakeResult(a.shape(), std::move(y), {an}, [an, dfn](TensorNode& out) {
    an->EnsureGrad();
    for (size_t i = 0; i < out.data.size(); ++i) {
      an->grad[i] += out.grad[i] * dfn(an->data[i], out.data[i]);
    }
  });
}

// Wires an elementwise binary op with equal shapes.
template <typename Fwd, typename DA, typename DB>
Tensor Binary(const Tensor& a, const Tensor& b, Fwd fwd, DA da_fn, DB db_fn) {
  HF_CHECK(a.shape() == b.shape());
  const std::vector<float>& x = a.data();
  const std::vector<float>& z = b.data();
  std::vector<float> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = fwd(x[i], z[i]);
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult(a.shape(), std::move(y), {an, bn}, [an, bn, da_fn, db_fn](TensorNode& out) {
    an->EnsureGrad();
    bn->EnsureGrad();
    for (size_t i = 0; i < out.data.size(); ++i) {
      an->grad[i] += out.grad[i] * da_fn(an->data[i], bn->data[i]);
      bn->grad[i] += out.grad[i] * db_fn(an->data[i], bn->data[i]);
    }
  });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HF_TRACE_SCOPE("tensor.matmul", "tensor");
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  HF_CHECK_EQ(b.dim(0), k);
  const int64_t n = b.dim(1);
  std::vector<float> y(static_cast<size_t>(m * n), 0.0f);
  const std::vector<float>& x = a.data();
  const std::vector<float>& w = b.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float xi = x[static_cast<size_t>(i * k + p)];
      if (xi == 0.0f) {
        continue;
      }
      const size_t w_row = static_cast<size_t>(p * n);
      const size_t y_row = static_cast<size_t>(i * n);
      for (int64_t j = 0; j < n; ++j) {
        y[y_row + static_cast<size_t>(j)] += xi * w[w_row + static_cast<size_t>(j)];
      }
    }
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, k, n](TensorNode& out) {
    an->EnsureGrad();
    bn->EnsureGrad();
    // dA = dC * B^T.
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        float acc = 0.0f;
        for (int64_t j = 0; j < n; ++j) {
          acc += out.grad[static_cast<size_t>(i * n + j)] *
                 bn->data[static_cast<size_t>(p * n + j)];
        }
        an->grad[static_cast<size_t>(i * k + p)] += acc;
      }
    }
    // dB = A^T * dC.
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t i = 0; i < m; ++i) {
        const float xi = an->data[static_cast<size_t>(i * k + p)];
        if (xi == 0.0f) {
          continue;
        }
        for (int64_t j = 0; j < n; ++j) {
          bn->grad[static_cast<size_t>(p * n + j)] +=
              xi * out.grad[static_cast<size_t>(i * n + j)];
        }
      }
    }
  });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) {
    return Binary(
        a, b, [](float x, float z) { return x + z; }, [](float, float) { return 1.0f; },
        [](float, float) { return 1.0f; });
  }
  // Bias broadcast: a[m,n] + b[n].
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 1);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  HF_CHECK_EQ(b.dim(0), n);
  std::vector<float> y(a.data());
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      y[static_cast<size_t>(i * n + j)] += b.data()[static_cast<size_t>(j)];
    }
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, n](TensorNode& out) {
    an->EnsureGrad();
    bn->EnsureGrad();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        const float g = out.grad[static_cast<size_t>(i * n + j)];
        an->grad[static_cast<size_t>(i * n + j)] += g;
        bn->grad[static_cast<size_t>(j)] += g;
      }
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return x - z; }, [](float, float) { return 1.0f; },
      [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return x * z; }, [](float, float z) { return z; },
      [](float x, float) { return x; });
}

Tensor Scale(const Tensor& a, float s) {
  return Unary(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return Unary(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Tensor Neg(const Tensor& a) { return Scale(a, -1.0f); }

Tensor Exp(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::exp(x); }, [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        HF_CHECK_GT(x, 0.0f);
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Softplus(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        // Stable: max(x, 0) + log1p(exp(-|x|)).
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::abs(x)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Square(const Tensor& a) {
  return Unary(
      a, [](float x) { return x * x; }, [](float x, float) { return 2.0f * x; });
}

Tensor Tanh(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Gelu(const Tensor& a) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  return Unary(
      a,
      [](float x) {
        const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
        const float t = std::tanh(inner);
        const float dinner = kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return std::min(x, z); },
      [](float x, float z) { return x <= z ? 1.0f : 0.0f; },
      [](float x, float z) { return z < x ? 1.0f : 0.0f; });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return std::max(x, z); },
      [](float x, float z) { return x >= z ? 1.0f : 0.0f; },
      [](float x, float z) { return z > x ? 1.0f : 0.0f; });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  HF_CHECK_LE(lo, hi);
  return Unary(
      a, [lo, hi](float x) { return std::clamp(x, lo, hi); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.0f : 0.0f; });
}

Tensor Sum(const Tensor& a) {
  float total = 0.0f;
  for (float x : a.data()) {
    total += x;
  }
  TensorNodePtr an = a.node();
  return MakeResult({1}, {total}, {an}, [an](TensorNode& out) {
    an->EnsureGrad();
    for (float& g : an->grad) {
      g += out.grad[0];
    }
  });
}

Tensor Mean(const Tensor& a) {
  HF_CHECK_GT(a.size(), 0);
  const float inv = 1.0f / static_cast<float>(a.size());
  float total = 0.0f;
  for (float x : a.data()) {
    total += x;
  }
  TensorNodePtr an = a.node();
  return MakeResult({1}, {total * inv}, {an}, [an, inv](TensorNode& out) {
    an->EnsureGrad();
    for (float& g : an->grad) {
      g += out.grad[0] * inv;
    }
  });
}

Tensor RowSum(const Tensor& a) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  std::vector<float> y(static_cast<size_t>(m), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      y[static_cast<size_t>(i)] += a.data()[static_cast<size_t>(i * n + j)];
    }
  }
  TensorNodePtr an = a.node();
  return MakeResult({m}, std::move(y), {an}, [an, m, n](TensorNode& out) {
    an->EnsureGrad();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        an->grad[static_cast<size_t>(i * n + j)] += out.grad[static_cast<size_t>(i)];
      }
    }
  });
}

Tensor Transpose(const Tensor& a) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  std::vector<float> y(static_cast<size_t>(m * n));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      y[static_cast<size_t>(j * m + i)] = a.data()[static_cast<size_t>(i * n + j)];
    }
  }
  TensorNodePtr an = a.node();
  return MakeResult({n, m}, std::move(y), {an}, [an, m, n](TensorNode& out) {
    an->EnsureGrad();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        an->grad[static_cast<size_t>(i * n + j)] += out.grad[static_cast<size_t>(j * m + i)];
      }
    }
  });
}

Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end) {
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_GE(begin, 0);
  HF_CHECK_LT(begin, end);
  HF_CHECK_LE(end, a.dim(0));
  const int64_t n = a.dim(1);
  const int64_t rows = end - begin;
  std::vector<float> y(a.data().begin() + begin * n, a.data().begin() + end * n);
  TensorNodePtr an = a.node();
  return MakeResult({rows, n}, std::move(y), {an}, [an, begin, n](TensorNode& out) {
    an->EnsureGrad();
    const size_t offset = static_cast<size_t>(begin * n);
    for (size_t i = 0; i < out.grad.size(); ++i) {
      an->grad[offset + i] += out.grad[i];
    }
  });
}

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta, float eps) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  HF_CHECK_EQ(gamma.ndim(), 1);
  HF_CHECK_EQ(gamma.dim(0), n);
  HF_CHECK_EQ(beta.dim(0), n);
  std::vector<float> y(static_cast<size_t>(m * n));
  std::vector<float> inv_std(static_cast<size_t>(m));
  std::vector<float> normalized(static_cast<size_t>(m * n));
  for (int64_t i = 0; i < m; ++i) {
    const size_t row = static_cast<size_t>(i * n);
    float mean = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      mean += a.data()[row + static_cast<size_t>(j)];
    }
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      const float diff = a.data()[row + static_cast<size_t>(j)] - mean;
      var += diff * diff;
    }
    var /= static_cast<float>(n);
    const float inv = 1.0f / std::sqrt(var + eps);
    inv_std[static_cast<size_t>(i)] = inv;
    for (int64_t j = 0; j < n; ++j) {
      const float norm = (a.data()[row + static_cast<size_t>(j)] - mean) * inv;
      normalized[row + static_cast<size_t>(j)] = norm;
      y[row + static_cast<size_t>(j)] =
          gamma.data()[static_cast<size_t>(j)] * norm + beta.data()[static_cast<size_t>(j)];
    }
  }
  TensorNodePtr an = a.node();
  TensorNodePtr gn = gamma.node();
  TensorNodePtr bn = beta.node();
  return MakeResult(
      {m, n}, std::move(y), {an, gn, bn},
      [an, gn, bn, m, n, inv_std, normalized](TensorNode& out) {
        an->EnsureGrad();
        gn->EnsureGrad();
        bn->EnsureGrad();
        for (int64_t i = 0; i < m; ++i) {
          const size_t row = static_cast<size_t>(i * n);
          // dgamma, dbeta.
          for (int64_t j = 0; j < n; ++j) {
            gn->grad[static_cast<size_t>(j)] +=
                out.grad[row + static_cast<size_t>(j)] * normalized[row + static_cast<size_t>(j)];
            bn->grad[static_cast<size_t>(j)] += out.grad[row + static_cast<size_t>(j)];
          }
          // dx via the standard layernorm backward:
          // dx = inv_std/n * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
          float sum_dxhat = 0.0f;
          float sum_dxhat_xhat = 0.0f;
          for (int64_t j = 0; j < n; ++j) {
            const float dxhat = out.grad[row + static_cast<size_t>(j)] *
                                gn->data[static_cast<size_t>(j)];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * normalized[row + static_cast<size_t>(j)];
          }
          const float inv = inv_std[static_cast<size_t>(i)];
          for (int64_t j = 0; j < n; ++j) {
            const float dxhat = out.grad[row + static_cast<size_t>(j)] *
                                gn->data[static_cast<size_t>(j)];
            an->grad[row + static_cast<size_t>(j)] +=
                inv / static_cast<float>(n) *
                (static_cast<float>(n) * dxhat - sum_dxhat -
                 normalized[row + static_cast<size_t>(j)] * sum_dxhat_xhat);
          }
        }
      });
}

Tensor LogSoftmax(const Tensor& a) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  std::vector<float> y(a.data().size());
  for (int64_t i = 0; i < m; ++i) {
    const size_t row = static_cast<size_t>(i * n);
    float max_val = a.data()[row];
    for (int64_t j = 1; j < n; ++j) {
      max_val = std::max(max_val, a.data()[row + static_cast<size_t>(j)]);
    }
    float denom = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      denom += std::exp(a.data()[row + static_cast<size_t>(j)] - max_val);
    }
    const float log_denom = std::log(denom) + max_val;
    for (int64_t j = 0; j < n; ++j) {
      y[row + static_cast<size_t>(j)] = a.data()[row + static_cast<size_t>(j)] - log_denom;
    }
  }
  TensorNodePtr an = a.node();
  return MakeResult({m, n}, std::move(y), {an}, [an, m, n](TensorNode& out) {
    an->EnsureGrad();
    // dx = dy - softmax(x) * sum(dy).
    for (int64_t i = 0; i < m; ++i) {
      const size_t row = static_cast<size_t>(i * n);
      float grad_sum = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        grad_sum += out.grad[row + static_cast<size_t>(j)];
      }
      for (int64_t j = 0; j < n; ++j) {
        const float p = std::exp(out.data[row + static_cast<size_t>(j)]);
        an->grad[row + static_cast<size_t>(j)] +=
            out.grad[row + static_cast<size_t>(j)] - p * grad_sum;
      }
    }
  });
}

Tensor Softmax(const Tensor& a) {
  Tensor log_probs = LogSoftmax(a);
  return Exp(log_probs);
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices) {
  HF_CHECK_EQ(table.ndim(), 2);
  const int64_t v = table.dim(0);
  const int64_t e = table.dim(1);
  const int64_t n = static_cast<int64_t>(indices.size());
  std::vector<float> y(static_cast<size_t>(n * e));
  for (int64_t i = 0; i < n; ++i) {
    HF_CHECK_GE(indices[static_cast<size_t>(i)], 0);
    HF_CHECK_LT(indices[static_cast<size_t>(i)], v);
    const size_t src = static_cast<size_t>(indices[static_cast<size_t>(i)] * e);
    std::copy_n(table.data().begin() + src, e, y.begin() + static_cast<size_t>(i * e));
  }
  TensorNodePtr tn = table.node();
  std::vector<int64_t> idx = indices;
  return MakeResult({n, e}, std::move(y), {tn}, [tn, idx, e](TensorNode& out) {
    tn->EnsureGrad();
    for (size_t i = 0; i < idx.size(); ++i) {
      const size_t dst = static_cast<size_t>(idx[i]) * static_cast<size_t>(e);
      const size_t src = i * static_cast<size_t>(e);
      for (int64_t j = 0; j < e; ++j) {
        tn->grad[dst + static_cast<size_t>(j)] += out.grad[src + static_cast<size_t>(j)];
      }
    }
  });
}

Tensor PickPerRow(const Tensor& a, const std::vector<int64_t>& indices) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  HF_CHECK_EQ(static_cast<int64_t>(indices.size()), m);
  std::vector<float> y(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    HF_CHECK_GE(indices[static_cast<size_t>(i)], 0);
    HF_CHECK_LT(indices[static_cast<size_t>(i)], n);
    y[static_cast<size_t>(i)] =
        a.data()[static_cast<size_t>(i * n + indices[static_cast<size_t>(i)])];
  }
  TensorNodePtr an = a.node();
  std::vector<int64_t> idx = indices;
  return MakeResult({m}, std::move(y), {an}, [an, idx, n](TensorNode& out) {
    an->EnsureGrad();
    for (size_t i = 0; i < idx.size(); ++i) {
      an->grad[i * static_cast<size_t>(n) + static_cast<size_t>(idx[i])] += out.grad[i];
    }
  });
}

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t dim : shape) {
    n *= dim;
  }
  HF_CHECK_EQ(n, a.size());
  TensorNodePtr an = a.node();
  return MakeResult(std::move(shape), a.data(), {an}, [an](TensorNode& out) {
    an->EnsureGrad();
    for (size_t i = 0; i < out.grad.size(); ++i) {
      an->grad[i] += out.grad[i];
    }
  });
}

Tensor Detach(const Tensor& a) {
  return Tensor::FromData(a.shape(), a.data(), /*requires_grad=*/false);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  HF_CHECK(!parts.empty());
  const int64_t n = parts[0].dim(1);
  int64_t rows = 0;
  for (const Tensor& part : parts) {
    HF_CHECK_EQ(part.ndim(), 2);
    HF_CHECK_EQ(part.dim(1), n);
    rows += part.dim(0);
  }
  std::vector<float> y;
  y.reserve(static_cast<size_t>(rows * n));
  std::vector<TensorNodePtr> parents;
  std::vector<int64_t> row_counts;
  for (const Tensor& part : parts) {
    y.insert(y.end(), part.data().begin(), part.data().end());
    parents.push_back(part.node());
    row_counts.push_back(part.dim(0));
  }
  return MakeResult({rows, n}, std::move(y), parents, [row_counts, n](TensorNode& out) {
    size_t offset = 0;
    for (size_t k = 0; k < out.parents.size(); ++k) {
      TensorNode& parent = *out.parents[k];
      parent.EnsureGrad();
      const size_t count = static_cast<size_t>(row_counts[k] * n);
      for (size_t i = 0; i < count; ++i) {
        parent.grad[i] += out.grad[offset + i];
      }
      offset += count;
    }
  });
}

}  // namespace hybridflow
