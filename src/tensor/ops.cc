#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/parallel.h"

namespace hybridflow {

namespace {

// --- Kernel instrumentation ------------------------------------------------
// One wall-time histogram plus a flops-equivalent counter per op label.
// Registry handles are pointer-stable for the process lifetime, so each
// kernel (including the backward lambdas) caches its series in a
// function-local static.
struct KernelSeries {
  Histogram& time_us;
  Counter& flops;
};

KernelSeries MakeKernelSeries(const char* op) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  return KernelSeries{
      registry.GetHistogram("tensor.kernel_us", ExponentialBuckets(1.0, 4.0, 10), {{"op", op}}),
      registry.GetCounter("tensor.flops_total", {{"op", op}})};
}

// RAII: records one kernel invocation's wall time and flops estimate.
class KernelTimer {
 public:
  KernelTimer(const KernelSeries& series, int64_t flops)
      : series_(series), flops_(flops), start_us_(WallclockTracer::NowMicros()) {}
  ~KernelTimer() {
    series_.time_us.Observe(WallclockTracer::NowMicros() - start_us_);
    series_.flops.Increment(static_cast<double>(flops_));
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  const KernelSeries& series_;
  int64_t flops_;
  double start_us_;
};

// Flops-equivalent per-element costs for the generic elementwise templates
// and the row-wise kernels. Fixed estimates (a transcendental counts the
// same as an add) so the counters stay input-independent.
constexpr int64_t kUnaryFlopsPerElem = 4;
constexpr int64_t kBinaryFlopsPerElem = 6;
constexpr int64_t kLayerNormFwdFlopsPerElem = 8;
constexpr int64_t kLayerNormBwdFlopsPerElem = 14;
constexpr int64_t kSoftmaxFwdFlopsPerElem = 5;
constexpr int64_t kSoftmaxBwdFlopsPerElem = 4;

// Fixed (NON-tunable) row grain for cross-row reductions (LayerNorm
// dgamma/dbeta). The tunable KernelTuning grains may change chunk shapes
// freely because chunks own disjoint outputs; a cross-row reduction's
// partial-sum association instead depends on its chunking, so it uses this
// constant — keeping results bitwise invariant under tuning sweeps too.
constexpr int64_t kReduceRowGrain = 32;

// Wires a simple elementwise unary op: out[i] = fwd(a[i]); da[i] += dOut[i] * dfn(a[i], out[i]).
// Chunks of elem_grain elements run in parallel; each element is owned by
// exactly one chunk, so results are thread-count invariant.
template <typename Fwd, typename Dfn>
Tensor Unary(const Tensor& a, Fwd fwd, Dfn dfn) {
  static const KernelSeries series = MakeKernelSeries("elementwise");
  const std::vector<float>& x = a.data();
  const int64_t size = static_cast<int64_t>(x.size());
  const int64_t flops = size * kUnaryFlopsPerElem;
  std::vector<float> y(x.size());
  {
    KernelTimer timer(series, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        y[static_cast<size_t>(i)] = fwd(x[static_cast<size_t>(i)]);
      }
    });
  }
  TensorNodePtr an = a.node();
  return MakeResult(a.shape(), std::move(y), {an}, [an, dfn](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("elementwise_bwd");
    an->EnsureGrad();
    const int64_t size = static_cast<int64_t>(out.data.size());
    const int64_t flops = size * kUnaryFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        const size_t s = static_cast<size_t>(i);
        an->grad[s] += out.grad[s] * dfn(an->data[s], out.data[s]);
      }
    });
  });
}

// Wires an elementwise binary op with equal shapes. Same chunk-ownership
// scheme as Unary; a chunk writes both parents' grads for its elements.
template <typename Fwd, typename DA, typename DB>
Tensor Binary(const Tensor& a, const Tensor& b, Fwd fwd, DA da_fn, DB db_fn) {
  static const KernelSeries series = MakeKernelSeries("elementwise");
  HF_CHECK(a.shape() == b.shape());
  const std::vector<float>& x = a.data();
  const std::vector<float>& z = b.data();
  const int64_t size = static_cast<int64_t>(x.size());
  const int64_t flops = size * kBinaryFlopsPerElem;
  std::vector<float> y(x.size());
  {
    KernelTimer timer(series, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        const size_t s = static_cast<size_t>(i);
        y[s] = fwd(x[s], z[s]);
      }
    });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult(a.shape(), std::move(y), {an, bn}, [an, bn, da_fn, db_fn](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("elementwise_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const int64_t size = static_cast<int64_t>(out.data.size());
    const int64_t flops = size * kBinaryFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    ParallelChunks(size, GetKernelTuning().elem_grain, flops, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        const size_t s = static_cast<size_t>(i);
        an->grad[s] += out.grad[s] * da_fn(an->data[s], bn->data[s]);
        bn->grad[s] += out.grad[s] * db_fn(an->data[s], bn->data[s]);
      }
    });
  });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HF_TRACE_SCOPE("tensor.matmul", "tensor");
  static const KernelSeries series = MakeKernelSeries("matmul");
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  HF_CHECK_EQ(b.dim(0), k);
  const int64_t n = b.dim(1);
  std::vector<float> y(static_cast<size_t>(m * n), 0.0f);
  const std::vector<float>& x = a.data();
  const std::vector<float>& w = b.data();
  const KernelTuning tuning = GetKernelTuning();
  const int64_t fwd_flops = 2 * m * k * n;
  {
    KernelTimer timer(series, fwd_flops);
    // Row-partitioned, k-blocked: a chunk owns output rows [i0, i1).
    // k-blocks advance in order and p ascends within a block, so every
    // y[i,j] accumulates over p in ascending order regardless of the row
    // grain, the k block, or the thread count.
    ParallelChunks(m, tuning.gemm_row_grain, fwd_flops, [&](int64_t i0, int64_t i1) {
      for (int64_t p0 = 0; p0 < k; p0 += tuning.gemm_k_block) {
        const int64_t p1 = std::min(k, p0 + tuning.gemm_k_block);
        for (int64_t i = i0; i < i1; ++i) {
          const float* x_row = x.data() + i * k;
          float* y_row = y.data() + i * n;
          for (int64_t p = p0; p < p1; ++p) {
            const float xi = x_row[p];
            const float* w_row = w.data() + p * n;
            for (int64_t j = 0; j < n; ++j) {
              y_row[j] += xi * w_row[j];
            }
          }
        }
      }
    });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, k, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("matmul_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const KernelTuning tuning = GetKernelTuning();
    const int64_t bwd_flops = 4 * m * k * n;
    KernelTimer timer(series_bwd, bwd_flops);
    // dA = dC * B^T: a chunk owns rows of A; each dA[i,p] is one dot
    // product with the j-sum ascending.
    ParallelChunks(m, tuning.gemm_row_grain, bwd_flops / 2, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float* g_row = out.grad.data() + i * n;
        float* da_row = an->grad.data() + i * k;
        for (int64_t p = 0; p < k; ++p) {
          const float* b_row = bn->data.data() + p * n;
          float acc = 0.0f;
          for (int64_t j = 0; j < n; ++j) {
            acc += g_row[j] * b_row[j];
          }
          da_row[p] += acc;
        }
      }
    });
    // dB = A^T * dC: a chunk owns rows of B (the k dimension); each
    // dB[p,j] accumulates over i ascending.
    ParallelChunks(k, tuning.gemm_row_grain, bwd_flops / 2, [&](int64_t p0, int64_t p1) {
      for (int64_t p = p0; p < p1; ++p) {
        float* db_row = bn->grad.data() + p * n;
        for (int64_t i = 0; i < m; ++i) {
          const float xi = an->data[static_cast<size_t>(i * k + p)];
          const float* g_row = out.grad.data() + i * n;
          for (int64_t j = 0; j < n; ++j) {
            db_row[j] += xi * g_row[j];
          }
        }
      }
    });
  });
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  HF_TRACE_SCOPE("tensor.matmul_nt", "tensor");
  static const KernelSeries series = MakeKernelSeries("matmul_nt");
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  HF_CHECK_EQ(b.dim(1), k);
  const int64_t n = b.dim(0);
  std::vector<float> y(static_cast<size_t>(m * n));
  const std::vector<float>& x = a.data();
  const std::vector<float>& w = b.data();
  const KernelTuning tuning = GetKernelTuning();
  const int64_t fwd_flops = 2 * m * k * n;
  {
    KernelTimer timer(series, fwd_flops);
    // Both operands are row-major along the shared dimension, so each
    // output element is one contiguous dot product (p ascending — the
    // same per-element order as MatMul(a, Transpose(b)), hence bitwise
    // identical to it).
    // Panel packing: small tiles of B are copied transposed into a stack
    // buffer so the inner loop is a contiguous axpy over j (SIMD-friendly,
    // unlike a scalar dot chain). For any fixed (i, j) the p index still
    // ascends monotonically — tiles advance in order, p ascends within a
    // tile — so values stay bitwise identical to the unpacked form. Tile
    // dims are fixed (not tunable) and do not affect accumulation order.
    constexpr int64_t kNtTileP = 128;
    constexpr int64_t kNtTileJ = 64;
    ParallelChunks(m, tuning.gemm_row_grain, fwd_flops, [&](int64_t i0, int64_t i1) {
      float tile[kNtTileP * kNtTileJ];
      for (int64_t j0 = 0; j0 < n; j0 += kNtTileJ) {
        const int64_t jb = std::min(kNtTileJ, n - j0);
        for (int64_t p0 = 0; p0 < k; p0 += kNtTileP) {
          const int64_t pb = std::min(kNtTileP, k - p0);
          for (int64_t j = 0; j < jb; ++j) {
            const float* w_col = w.data() + (j0 + j) * k + p0;
            for (int64_t p = 0; p < pb; ++p) {
              tile[p * kNtTileJ + j] = w_col[p];
            }
          }
          for (int64_t i = i0; i < i1; ++i) {
            const float* x_row = x.data() + i * k + p0;
            float* y_row = y.data() + i * n + j0;
            for (int64_t p = 0; p < pb; ++p) {
              const float xp = x_row[p];
              const float* t_row = tile + p * kNtTileJ;
              for (int64_t j = 0; j < jb; ++j) {
                y_row[j] += xp * t_row[j];
              }
            }
          }
        }
      }
    });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, k, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("matmul_nt_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const KernelTuning tuning = GetKernelTuning();
    const int64_t bwd_flops = 4 * m * k * n;
    KernelTimer timer(series_bwd, bwd_flops);
    // dA = dC * B: a chunk owns rows of A; each dA[i,p] accumulates over
    // j ascending.
    ParallelChunks(m, tuning.gemm_row_grain, bwd_flops / 2, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float* g_row = out.grad.data() + i * n;
        float* da_row = an->grad.data() + i * k;
        for (int64_t j = 0; j < n; ++j) {
          const float g = g_row[j];
          const float* b_row = bn->data.data() + j * k;
          for (int64_t p = 0; p < k; ++p) {
            da_row[p] += g * b_row[p];
          }
        }
      }
    });
    // dB = dC^T * A: a chunk owns rows of B; each dB[j,p] accumulates
    // over i ascending.
    ParallelChunks(n, tuning.gemm_row_grain, bwd_flops / 2, [&](int64_t j0, int64_t j1) {
      for (int64_t j = j0; j < j1; ++j) {
        float* db_row = bn->grad.data() + j * k;
        for (int64_t i = 0; i < m; ++i) {
          const float g = out.grad[static_cast<size_t>(i * n + j)];
          const float* x_row = an->data.data() + i * k;
          for (int64_t p = 0; p < k; ++p) {
            db_row[p] += g * x_row[p];
          }
        }
      }
    });
  });
}

Tensor MatMulTN(const Tensor& a, const Tensor& b) {
  HF_TRACE_SCOPE("tensor.matmul_tn", "tensor");
  static const KernelSeries series = MakeKernelSeries("matmul_tn");
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 2);
  const int64_t k = a.dim(0);
  const int64_t m = a.dim(1);
  HF_CHECK_EQ(b.dim(0), k);
  const int64_t n = b.dim(1);
  std::vector<float> y(static_cast<size_t>(m * n), 0.0f);
  const std::vector<float>& x = a.data();
  const std::vector<float>& w = b.data();
  const KernelTuning tuning = GetKernelTuning();
  const int64_t fwd_flops = 2 * m * k * n;
  {
    KernelTimer timer(series, fwd_flops);
    // A chunk owns output rows [i0, i1); p ascends per element — the same
    // per-element order as MatMul(Transpose(a), b), hence bitwise
    // identical to it.
    ParallelChunks(m, tuning.gemm_row_grain, fwd_flops, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        float* y_row = y.data() + i * n;
        for (int64_t p = 0; p < k; ++p) {
          const float xi = x[static_cast<size_t>(p * m + i)];
          const float* w_row = w.data() + p * n;
          for (int64_t j = 0; j < n; ++j) {
            y_row[j] += xi * w_row[j];
          }
        }
      }
    });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, k, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("matmul_tn_bwd");
    an->EnsureGrad();
    bn->EnsureGrad();
    const KernelTuning tuning = GetKernelTuning();
    const int64_t bwd_flops = 4 * m * k * n;
    KernelTimer timer(series_bwd, bwd_flops);
    // dA = B * dC^T (shape [k, m]): a chunk owns rows of A (the k
    // dimension); each dA[p,i] is one dot product with the j-sum
    // ascending. dB = A * dC (shape [k, n]): the same chunk owns row p of
    // B, accumulating over i ascending — one fused pass per p.
    ParallelChunks(k, tuning.gemm_row_grain, bwd_flops, [&](int64_t p0, int64_t p1) {
      for (int64_t p = p0; p < p1; ++p) {
        const float* b_row = bn->data.data() + p * n;
        float* da_row = an->grad.data() + p * m;
        float* db_row = bn->grad.data() + p * n;
        const float* a_row = an->data.data() + p * m;
        for (int64_t i = 0; i < m; ++i) {
          const float* g_row = out.grad.data() + i * n;
          float acc = 0.0f;
          for (int64_t j = 0; j < n; ++j) {
            acc += b_row[j] * g_row[j];
          }
          da_row[i] += acc;
          const float xi = a_row[i];
          for (int64_t j = 0; j < n; ++j) {
            db_row[j] += xi * g_row[j];
          }
        }
      }
    });
  });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) {
    return Binary(
        a, b, [](float x, float z) { return x + z; }, [](float, float) { return 1.0f; },
        [](float, float) { return 1.0f; });
  }
  // Bias broadcast: a[m,n] + b[n].
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_EQ(b.ndim(), 1);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  HF_CHECK_EQ(b.dim(0), n);
  std::vector<float> y(a.data());
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      y[static_cast<size_t>(i * n + j)] += b.data()[static_cast<size_t>(j)];
    }
  }
  TensorNodePtr an = a.node();
  TensorNodePtr bn = b.node();
  return MakeResult({m, n}, std::move(y), {an, bn}, [an, bn, m, n](TensorNode& out) {
    an->EnsureGrad();
    bn->EnsureGrad();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        const float g = out.grad[static_cast<size_t>(i * n + j)];
        an->grad[static_cast<size_t>(i * n + j)] += g;
        bn->grad[static_cast<size_t>(j)] += g;
      }
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return x - z; }, [](float, float) { return 1.0f; },
      [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return x * z; }, [](float, float z) { return z; },
      [](float x, float) { return x; });
}

Tensor Scale(const Tensor& a, float s) {
  return Unary(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return Unary(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Tensor Neg(const Tensor& a) { return Scale(a, -1.0f); }

Tensor Exp(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::exp(x); }, [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        HF_CHECK_GT(x, 0.0f);
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Softplus(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        // Stable: max(x, 0) + log1p(exp(-|x|)).
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::abs(x)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Square(const Tensor& a) {
  return Unary(
      a, [](float x) { return x * x; }, [](float x, float) { return 2.0f * x; });
}

Tensor Tanh(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Gelu(const Tensor& a) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  return Unary(
      a,
      [](float x) {
        const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
        const float t = std::tanh(inner);
        const float dinner = kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return std::min(x, z); },
      [](float x, float z) { return x <= z ? 1.0f : 0.0f; },
      [](float x, float z) { return z < x ? 1.0f : 0.0f; });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return Binary(
      a, b, [](float x, float z) { return std::max(x, z); },
      [](float x, float z) { return x >= z ? 1.0f : 0.0f; },
      [](float x, float z) { return z > x ? 1.0f : 0.0f; });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  HF_CHECK_LE(lo, hi);
  return Unary(
      a, [lo, hi](float x) { return std::clamp(x, lo, hi); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.0f : 0.0f; });
}

Tensor Sum(const Tensor& a) {
  float total = 0.0f;
  for (float x : a.data()) {
    total += x;
  }
  TensorNodePtr an = a.node();
  return MakeResult({1}, {total}, {an}, [an](TensorNode& out) {
    an->EnsureGrad();
    for (float& g : an->grad) {
      g += out.grad[0];
    }
  });
}

Tensor Mean(const Tensor& a) {
  HF_CHECK_GT(a.size(), 0);
  const float inv = 1.0f / static_cast<float>(a.size());
  float total = 0.0f;
  for (float x : a.data()) {
    total += x;
  }
  TensorNodePtr an = a.node();
  return MakeResult({1}, {total * inv}, {an}, [an, inv](TensorNode& out) {
    an->EnsureGrad();
    for (float& g : an->grad) {
      g += out.grad[0] * inv;
    }
  });
}

Tensor RowSum(const Tensor& a) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  std::vector<float> y(static_cast<size_t>(m), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      y[static_cast<size_t>(i)] += a.data()[static_cast<size_t>(i * n + j)];
    }
  }
  TensorNodePtr an = a.node();
  return MakeResult({m}, std::move(y), {an}, [an, m, n](TensorNode& out) {
    an->EnsureGrad();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        an->grad[static_cast<size_t>(i * n + j)] += out.grad[static_cast<size_t>(i)];
      }
    }
  });
}

Tensor Transpose(const Tensor& a) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  std::vector<float> y(static_cast<size_t>(m * n));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      y[static_cast<size_t>(j * m + i)] = a.data()[static_cast<size_t>(i * n + j)];
    }
  }
  TensorNodePtr an = a.node();
  return MakeResult({n, m}, std::move(y), {an}, [an, m, n](TensorNode& out) {
    an->EnsureGrad();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        an->grad[static_cast<size_t>(i * n + j)] += out.grad[static_cast<size_t>(j * m + i)];
      }
    }
  });
}

Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end) {
  HF_CHECK_EQ(a.ndim(), 2);
  HF_CHECK_GE(begin, 0);
  HF_CHECK_LT(begin, end);
  HF_CHECK_LE(end, a.dim(0));
  const int64_t n = a.dim(1);
  const int64_t rows = end - begin;
  std::vector<float> y(a.data().begin() + begin * n, a.data().begin() + end * n);
  TensorNodePtr an = a.node();
  return MakeResult({rows, n}, std::move(y), {an}, [an, begin, n](TensorNode& out) {
    an->EnsureGrad();
    const size_t offset = static_cast<size_t>(begin * n);
    for (size_t i = 0; i < out.grad.size(); ++i) {
      an->grad[offset + i] += out.grad[i];
    }
  });
}

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta, float eps) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  HF_CHECK_EQ(gamma.ndim(), 1);
  HF_CHECK_EQ(gamma.dim(0), n);
  HF_CHECK_EQ(beta.dim(0), n);
  static const KernelSeries series = MakeKernelSeries("layernorm");
  std::vector<float> y(static_cast<size_t>(m * n));
  std::vector<float> inv_std(static_cast<size_t>(m));
  std::vector<float> normalized(static_cast<size_t>(m * n));
  const std::vector<float>& x = a.data();
  const std::vector<float>& g = gamma.data();
  const std::vector<float>& c = beta.data();
  {
    KernelTimer timer(series, m * n * kLayerNormFwdFlopsPerElem);
    // Rows are independent: a chunk owns rows [i0, i1) and each row's
    // computation is the same as the serial kernel's.
    ParallelChunks(m, GetKernelTuning().row_grain, m * n * kLayerNormFwdFlopsPerElem,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) {
                       const float* x_row = x.data() + i * n;
                       float mean = 0.0f;
                       for (int64_t j = 0; j < n; ++j) {
                         mean += x_row[j];
                       }
                       mean /= static_cast<float>(n);
                       float var = 0.0f;
                       for (int64_t j = 0; j < n; ++j) {
                         const float diff = x_row[j] - mean;
                         var += diff * diff;
                       }
                       var /= static_cast<float>(n);
                       const float inv = 1.0f / std::sqrt(var + eps);
                       inv_std[static_cast<size_t>(i)] = inv;
                       float* norm_row = normalized.data() + i * n;
                       float* y_row = y.data() + i * n;
                       for (int64_t j = 0; j < n; ++j) {
                         const float norm = (x_row[j] - mean) * inv;
                         norm_row[j] = norm;
                         y_row[j] = g[static_cast<size_t>(j)] * norm + c[static_cast<size_t>(j)];
                       }
                     }
                   });
  }
  TensorNodePtr an = a.node();
  TensorNodePtr gn = gamma.node();
  TensorNodePtr bn = beta.node();
  return MakeResult(
      {m, n}, std::move(y), {an, gn, bn},
      [an, gn, bn, m, n, inv_std, normalized](TensorNode& out) {
        static const KernelSeries series_bwd = MakeKernelSeries("layernorm_bwd");
        an->EnsureGrad();
        gn->EnsureGrad();
        bn->EnsureGrad();
        const int64_t flops = m * n * kLayerNormBwdFlopsPerElem;
        KernelTimer timer(series_bwd, flops);
        // dgamma/dbeta reduce ACROSS rows, so they go through per-chunk
        // partial buffers keyed by the fixed kReduceRowGrain (not the
        // tunable row grain) and are folded serially in chunk order below
        // — no atomics, bitwise invariant to threads and tuning. dx is
        // row-exclusive and computed in the same pass.
        const int64_t chunks = tensor_internal::NumChunks(m, kReduceRowGrain);
        std::vector<float> dgamma_partial(static_cast<size_t>(chunks * n), 0.0f);
        std::vector<float> dbeta_partial(static_cast<size_t>(chunks * n), 0.0f);
        ParallelChunks(m, kReduceRowGrain, flops, [&](int64_t i0, int64_t i1) {
          const int64_t chunk = i0 / kReduceRowGrain;
          float* dgamma = dgamma_partial.data() + chunk * n;
          float* dbeta = dbeta_partial.data() + chunk * n;
          for (int64_t i = i0; i < i1; ++i) {
            const float* g_row = out.grad.data() + i * n;
            const float* norm_row = normalized.data() + i * n;
            for (int64_t j = 0; j < n; ++j) {
              dgamma[j] += g_row[j] * norm_row[j];
              dbeta[j] += g_row[j];
            }
            // dx via the standard layernorm backward:
            // dx = inv_std/n * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
            float sum_dxhat = 0.0f;
            float sum_dxhat_xhat = 0.0f;
            for (int64_t j = 0; j < n; ++j) {
              const float dxhat = g_row[j] * gn->data[static_cast<size_t>(j)];
              sum_dxhat += dxhat;
              sum_dxhat_xhat += dxhat * norm_row[j];
            }
            const float inv = inv_std[static_cast<size_t>(i)];
            float* dx_row = an->grad.data() + i * n;
            for (int64_t j = 0; j < n; ++j) {
              const float dxhat = g_row[j] * gn->data[static_cast<size_t>(j)];
              dx_row[j] += inv / static_cast<float>(n) *
                           (static_cast<float>(n) * dxhat - sum_dxhat -
                            norm_row[j] * sum_dxhat_xhat);
            }
          }
        });
        for (int64_t chunk = 0; chunk < chunks; ++chunk) {
          const float* dgamma = dgamma_partial.data() + chunk * n;
          const float* dbeta = dbeta_partial.data() + chunk * n;
          for (int64_t j = 0; j < n; ++j) {
            gn->grad[static_cast<size_t>(j)] += dgamma[j];
            bn->grad[static_cast<size_t>(j)] += dbeta[j];
          }
        }
      });
}

Tensor LogSoftmax(const Tensor& a) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  static const KernelSeries series = MakeKernelSeries("log_softmax");
  std::vector<float> y(a.data().size());
  const std::vector<float>& x = a.data();
  {
    KernelTimer timer(series, m * n * kSoftmaxFwdFlopsPerElem);
    // Rows are independent: a chunk owns rows [i0, i1).
    ParallelChunks(m, GetKernelTuning().row_grain, m * n * kSoftmaxFwdFlopsPerElem,
                   [&](int64_t i0, int64_t i1) {
                     for (int64_t i = i0; i < i1; ++i) {
                       const float* x_row = x.data() + i * n;
                       float* y_row = y.data() + i * n;
                       float max_val = x_row[0];
                       for (int64_t j = 1; j < n; ++j) {
                         max_val = std::max(max_val, x_row[j]);
                       }
                       float denom = 0.0f;
                       for (int64_t j = 0; j < n; ++j) {
                         denom += std::exp(x_row[j] - max_val);
                       }
                       const float log_denom = std::log(denom) + max_val;
                       for (int64_t j = 0; j < n; ++j) {
                         y_row[j] = x_row[j] - log_denom;
                       }
                     }
                   });
  }
  TensorNodePtr an = a.node();
  return MakeResult({m, n}, std::move(y), {an}, [an, m, n](TensorNode& out) {
    static const KernelSeries series_bwd = MakeKernelSeries("log_softmax_bwd");
    an->EnsureGrad();
    const int64_t flops = m * n * kSoftmaxBwdFlopsPerElem;
    KernelTimer timer(series_bwd, flops);
    // dx = dy - softmax(x) * sum(dy); the sum is within one row, so
    // chunks of rows stay independent.
    ParallelChunks(m, GetKernelTuning().row_grain, flops, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float* g_row = out.grad.data() + i * n;
        const float* y_row = out.data.data() + i * n;
        float* dx_row = an->grad.data() + i * n;
        float grad_sum = 0.0f;
        for (int64_t j = 0; j < n; ++j) {
          grad_sum += g_row[j];
        }
        for (int64_t j = 0; j < n; ++j) {
          const float p = std::exp(y_row[j]);
          dx_row[j] += g_row[j] - p * grad_sum;
        }
      }
    });
  });
}

Tensor Softmax(const Tensor& a) {
  Tensor log_probs = LogSoftmax(a);
  return Exp(log_probs);
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices) {
  HF_CHECK_EQ(table.ndim(), 2);
  const int64_t v = table.dim(0);
  const int64_t e = table.dim(1);
  const int64_t n = static_cast<int64_t>(indices.size());
  std::vector<float> y(static_cast<size_t>(n * e));
  for (int64_t i = 0; i < n; ++i) {
    HF_CHECK_GE(indices[static_cast<size_t>(i)], 0);
    HF_CHECK_LT(indices[static_cast<size_t>(i)], v);
    const size_t src = static_cast<size_t>(indices[static_cast<size_t>(i)] * e);
    std::copy_n(table.data().begin() + src, e, y.begin() + static_cast<size_t>(i * e));
  }
  TensorNodePtr tn = table.node();
  std::vector<int64_t> idx = indices;
  return MakeResult({n, e}, std::move(y), {tn}, [tn, idx, e](TensorNode& out) {
    tn->EnsureGrad();
    for (size_t i = 0; i < idx.size(); ++i) {
      const size_t dst = static_cast<size_t>(idx[i]) * static_cast<size_t>(e);
      const size_t src = i * static_cast<size_t>(e);
      for (int64_t j = 0; j < e; ++j) {
        tn->grad[dst + static_cast<size_t>(j)] += out.grad[src + static_cast<size_t>(j)];
      }
    }
  });
}

Tensor PickPerRow(const Tensor& a, const std::vector<int64_t>& indices) {
  HF_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  HF_CHECK_EQ(static_cast<int64_t>(indices.size()), m);
  std::vector<float> y(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    HF_CHECK_GE(indices[static_cast<size_t>(i)], 0);
    HF_CHECK_LT(indices[static_cast<size_t>(i)], n);
    y[static_cast<size_t>(i)] =
        a.data()[static_cast<size_t>(i * n + indices[static_cast<size_t>(i)])];
  }
  TensorNodePtr an = a.node();
  std::vector<int64_t> idx = indices;
  return MakeResult({m}, std::move(y), {an}, [an, idx, n](TensorNode& out) {
    an->EnsureGrad();
    for (size_t i = 0; i < idx.size(); ++i) {
      an->grad[i * static_cast<size_t>(n) + static_cast<size_t>(idx[i])] += out.grad[i];
    }
  });
}

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t dim : shape) {
    n *= dim;
  }
  HF_CHECK_EQ(n, a.size());
  TensorNodePtr an = a.node();
  return MakeResult(std::move(shape), a.data(), {an}, [an](TensorNode& out) {
    an->EnsureGrad();
    for (size_t i = 0; i < out.grad.size(); ++i) {
      an->grad[i] += out.grad[i];
    }
  });
}

Tensor Detach(const Tensor& a) {
  return Tensor::FromData(a.shape(), a.data(), /*requires_grad=*/false);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  HF_CHECK(!parts.empty());
  const int64_t n = parts[0].dim(1);
  int64_t rows = 0;
  for (const Tensor& part : parts) {
    HF_CHECK_EQ(part.ndim(), 2);
    HF_CHECK_EQ(part.dim(1), n);
    rows += part.dim(0);
  }
  std::vector<float> y;
  y.reserve(static_cast<size_t>(rows * n));
  std::vector<TensorNodePtr> parents;
  std::vector<int64_t> row_counts;
  for (const Tensor& part : parts) {
    y.insert(y.end(), part.data().begin(), part.data().end());
    parents.push_back(part.node());
    row_counts.push_back(part.dim(0));
  }
  return MakeResult({rows, n}, std::move(y), parents, [row_counts, n](TensorNode& out) {
    size_t offset = 0;
    for (size_t k = 0; k < out.parents.size(); ++k) {
      TensorNode& parent = *out.parents[k];
      parent.EnsureGrad();
      const size_t count = static_cast<size_t>(row_counts[k] * n);
      for (size_t i = 0; i < count; ++i) {
        parent.grad[i] += out.grad[offset + i];
      }
      offset += count;
    }
  });
}

}  // namespace hybridflow
