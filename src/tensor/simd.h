// SIMD micro-kernel tier for the tensor ops (docs/KERNELS.md §SIMD).
//
// Two implementations of one canonical op sequence:
//
//   * the scalar tier — portable C++, no intrinsics — *defines* the
//     sequence: every multiply-accumulate is a fused multiply-add
//     (std::fmaf, correctly rounded per IEEE-754), and every horizontal
//     reduction (Dot / Sum / Max) accumulates element j into lane
//     partial j % 8, then folds the 8 partials left-to-right
//     ((p0+p1)+p2)+...; and
//   * the AVX2/FMA tier implements exactly that sequence with
//     _mm256_fmadd_ps and friends — one vector accumulator register IS
//     the 8 lane partials.
//
// Because both tiers execute the same floating-point ops in the same
// order, results are bitwise identical with SIMD on or off, which is
// what lets the kernel determinism contract (values + grads invariant
// to tensor.threads and tile sizes) extend to the SIMD level.
//
// Dispatch: the AVX2 tier is compiled unconditionally on x86-64 (the
// kernels sit in a per-function target("avx2,fma") region so the TU
// itself builds with baseline flags) and selected at runtime when the
// CPU reports AVX2+FMA. `HF_SIMD=off` (or `scalar` / `0`) in the
// environment forces the scalar tier; SetSimdOverride() does the same
// in-process for tests.
//
// Raw intrinsics are confined to src/tensor/simd.* by the hflint
// `simd-intrinsics` rule — everything else calls through this header.
#ifndef SRC_TENSOR_SIMD_H_
#define SRC_TENSOR_SIMD_H_

#include <cstdint>

namespace hybridflow {

enum class SimdLevel {
  kScalar = 0,   // Portable fallback (still fma-canonical).
  kAvx2Fma = 1,  // 8-wide AVX2 + FMA.
};

// The tier the micro-kernels below will actually run: the compiled-in
// ceiling ∧ the CPU's capabilities ∧ the HF_SIMD / SetSimdOverride
// override. Cheap (relaxed atomic read after first call).
SimdLevel ActiveSimdLevel();

// Test hook: force a tier at most as high as the hardware supports.
// Passing kAvx2Fma on a non-AVX2 box silently stays scalar.
void SetSimdOverride(SimdLevel level);
// Drop back to the HF_SIMD-environment / auto-detect default.
void ClearSimdOverride();

// "scalar" / "avx2". Stable strings for BENCH_*.json rows.
const char* SimdLevelName(SimdLevel level);

// True when this binary + CPU can run the AVX2/FMA tier at all
// (ignores overrides).
bool Avx2Available();

namespace simd {

// ---- fma-canonical axpy / GEMM inner kernels -------------------------
// y[j] = fma(x, w[j], y[j]) for j in [0, n). Ascending j.
void Axpy(int64_t n, float x, const float* w, float* y);

// The GEMM register-blocked micro-kernel: for a k-block of `kb` inputs,
//   y[j] = fma(x[p], w[p * w_stride + j], y[j])   p ascending, each j.
// Equivalent to kb stacked Axpy calls but holds y tiles in registers
// across the whole k-block. Accumulation order per output element is
// p-ascending in both tiers, so tiling width never changes results.
void GemmKBlock(int64_t kb, int64_t n, const float* x, const float* w,
                int64_t w_stride, float* y);
// Same, but x is strided: x[p * x_stride] (MatMulTN reads a column).
void GemmKBlockStridedX(int64_t kb, int64_t n, const float* x,
                        int64_t x_stride, const float* w, int64_t w_stride,
                        float* y);

// ---- lane-partial horizontal reductions ------------------------------
// sum_j a[j] * b[j], fma into lane partial j % 8, L2R fold.
float Dot(int64_t n, const float* a, const float* b);
// sum_j a[j], add into lane partial j % 8, L2R fold.
float Sum(int64_t n, const float* a);
// sum_j (a[j] - mu)^2 via fma(d, d, partial[j % 8]), L2R fold.
float SumSqDiff(int64_t n, const float* a, float mu);
// max_j a[j]: lane partial update p = (p > v) ? p : v (VMAXPS semantics:
// NaN/equal pick v), partials start at -inf, L2R fold with the same op.
float Max(int64_t n, const float* a);
// sum_j HfExpf(x[j] + shift), add into lane partial j % 8, L2R fold —
// the softmax denominator (shift = -rowmax).
float SumExpShifted(int64_t n, const float* x, float shift);

// ---- elementwise maps (exactly rounded, so trivially tier-equal) -----
void Add(int64_t n, const float* a, const float* b, float* y);
void Sub(int64_t n, const float* a, const float* b, float* y);
void Mul(int64_t n, const float* a, const float* b, float* y);
void Scale(int64_t n, const float* a, float s, float* y);
void AddScalar(int64_t n, const float* a, float s, float* y);
// y[j] = fma(a[j], b[j], y[j]) — gradient accumulate.
void MulAcc(int64_t n, const float* a, const float* b, float* y);
// y[j] = fma(a[j], s, y[j]).
void ScaleAcc(int64_t n, const float* a, float s, float* y);
// y[j] += a[j].
void AddAcc(int64_t n, const float* a, float* y);

// ---- row kernels -----------------------------------------------------
// LayerNorm affine row: norm_out[j] = (a[j] - mu) * inv and
// y[j] = fma(gamma[j], norm_out[j], beta[j]), one pass.
void LayerNormRow(int64_t n, const float* a, float mu, float inv,
                  const float* gamma, const float* beta, float* norm_out,
                  float* y);
// exp(x[j]) via the shared HfExpf polynomial (below) in both tiers.
void Exp(int64_t n, const float* x, float* y);
// dx[j] += fma(-exp(y[j]), gsum, g[j]) — LogSoftmax backward row.
void LogSoftmaxBackwardRow(int64_t n, const float* y, const float* g,
                           float gsum, float* dx);
// LayerNorm backward dx row (derivation in ops.cc):
//   dx[j] = fma(fma(-norm[j], sum_dxhat_norm,
//                   fma(n, dxhat[j], -sum_dxhat)), inv / n, dx[j]).
void LayerNormBackwardRow(int64_t n, const float* norm, const float* dxhat,
                          float inv, float sum_dxhat, float sum_dxhat_norm,
                          float* dx);

// ---- optimizer -------------------------------------------------------
// One Adam step over [0, n): exactly the seed's per-element sequence
// (clip via min/max, two EMAs as separate mul/mul/add, sqrtf, divide —
// all exactly rounded, so the vector tier changes nothing numerically).
void AdamUpdate(int64_t n, float* w, const float* g, float* m, float* v,
                float lr, float beta1, float beta2, float eps, float clip,
                float bias1, float bias2);

}  // namespace simd

// The one transcendental the kernels vectorize: a float-only expf
// implemented identically in both tiers (Cody-Waite reduction + degree-6
// fma-Horner polynomial + exponent-bit scaling). Bitwise equal to the
// vector tier by construction; NOT bitwise equal to std::expf (≤ ~1 ulp
// apart). Overflow to +inf above 88.722839f; flush to 0 below
// -87.336544f; NaN in → NaN out.
float HfExpf(float x);

}  // namespace hybridflow

#endif  // SRC_TENSOR_SIMD_H_
