// Deterministic chunked parallelism for the tensor kernels.
//
// Every parallel kernel in src/tensor/ops.cc (and the Adam update in
// src/nn/adam.cc) partitions its output into fixed-size chunks via
// ParallelChunks. The determinism contract (docs/KERNELS.md):
//
//   * Chunk boundaries depend only on the problem size and the kernel
//     tuning constants — never on the thread count. Each output element
//     belongs to exactly one chunk, so exactly one worker writes it.
//   * Within a chunk, every float accumulation runs in a fixed index
//     order. There are no atomic float reductions anywhere.
//
// Together these make kernel results bitwise identical for every
// `tensor.threads` setting, which is what keeps the repo's
// bitwise-equivalence suites (greedy static == continuous, async
// staleness-0, checkpoint round-trip) valid at any parallelism level.
//
// Caller-runs rule: ModelWorkerGroup already fans per-rank work out on
// ThreadPool::Shared(); a kernel invoked from one of those pool tasks
// must not submit to the pool and block (a saturated pool would
// deadlock). ParallelChunks detects pool threads via
// ThreadPool::OnPoolThread() and runs the chunks serially inline.
#ifndef SRC_TENSOR_PARALLEL_H_
#define SRC_TENSOR_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "src/common/thread_pool.h"

namespace hybridflow {

// Worker count used by the tensor kernels. 0 (the default) means "use the
// shared pool's size". Plumbed from the `tensor.threads` config key by
// BuildSystem; settable any time (relaxed atomic).
void SetTensorThreads(int threads);
// The resolved worker count (>= 1): the configured value, or the shared
// pool size when unset.
int TensorThreads();

// Tuning constants for the kernel partitioning. Changing a grain changes
// chunk shapes but NOT results: chunks own disjoint outputs and in-chunk
// accumulation order per element is invariant (GEMM k-blocking keeps the
// inner-dimension walk ascending per output element; cross-row reductions
// use the fixed internal grain in ops.cc, not these).
struct KernelTuning {
  int64_t gemm_row_grain = 16;  // Output rows per chunk, GEMM family.
  int64_t gemm_k_block = 256;   // Inner-dimension cache block, GEMM family.
  int64_t row_grain = 32;       // Rows per chunk, row-wise kernels.
  int64_t elem_grain = 8192;    // Elements per chunk, elementwise kernels.
};
KernelTuning GetKernelTuning();
void SetKernelTuning(const KernelTuning& tuning);

namespace tensor_internal {

// ceil(count / grain); grain must be >= 1.
int64_t NumChunks(int64_t count, int64_t grain);

// True when `work` (a flops-equivalent estimate) is too small for the
// pool dispatch overhead to pay off.
bool BelowParallelCutoff(int64_t work);

// Runs fn(chunk) for every chunk in [0, chunks) on the shared pool using
// `workers` tasks; worker w owns chunks {w, w + workers, ...}. Blocks
// until all chunks finish.
void RunChunksOnPool(int64_t chunks, int workers, const std::function<void(int64_t)>& fn);

}  // namespace tensor_internal

// Splits [0, count) into chunks of `grain` and invokes fn(begin, end) for
// each, in parallel when it pays off. `work` is a flops-equivalent
// estimate of the total call; small calls, single-chunk calls,
// tensor.threads == 1, and calls from pool threads all run serially
// inline (identical results either way — see the contract above).
template <typename Fn>
void ParallelChunks(int64_t count, int64_t grain, int64_t work, Fn&& fn) {
  if (count <= 0) {
    return;
  }
  const int64_t chunks = tensor_internal::NumChunks(count, grain);
  const int workers = static_cast<int>(
      std::min<int64_t>(TensorThreads(), chunks));
  if (workers <= 1 || tensor_internal::BelowParallelCutoff(work) ||
      ThreadPool::OnPoolThread()) {
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t begin = c * grain;
      fn(begin, std::min(count, begin + grain));
    }
    return;
  }
  const std::function<void(int64_t)> run_chunk = [&fn, count, grain](int64_t c) {
    const int64_t begin = c * grain;
    fn(begin, std::min(count, begin + grain));
  };
  tensor_internal::RunChunksOnPool(chunks, workers, run_chunk);
}

}  // namespace hybridflow

#endif  // SRC_TENSOR_PARALLEL_H_
