// Minimal dense float tensor with reverse-mode automatic differentiation.
//
// This is the numeric substrate for the "real computation" plane of
// HybridFlow-CPP: the tiny actor/critic/reference/reward networks that the
// RLHF dataflows actually train. It supports 1-D and 2-D tensors, the op
// set needed for policy-gradient losses (see src/tensor/ops.h), and a
// topological-sort backward pass.
//
// Ownership: Tensor is a cheap value handle onto a shared graph node. The
// autograd graph is a DAG of shared_ptrs that is released when the last
// Tensor referencing it goes away.
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace hybridflow {

struct TensorNode;
using TensorNodePtr = std::shared_ptr<TensorNode>;

struct TensorNode {
  std::vector<int64_t> shape;
  std::vector<float> data;
  std::vector<float> grad;  // Allocated lazily on backward.
  bool requires_grad = false;
  std::vector<TensorNodePtr> parents;
  // Propagates this node's grad into its parents' grads.
  std::function<void(TensorNode&)> backward;

  int64_t size() const {
    int64_t n = 1;
    for (int64_t dim : shape) {
      n *= dim;
    }
    return n;
  }
  void EnsureGrad() {
    if (grad.size() != data.size()) {
      grad.assign(data.size(), 0.0f);
    }
  }
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorNodePtr node) : node_(std::move(node)) {}

  // --- Factories ------------------------------------------------------------
  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int64_t> shape, float value, bool requires_grad = false);
  static Tensor FromData(std::vector<int64_t> shape, std::vector<float> data,
                         bool requires_grad = false);
  // Gaussian init (used for network parameters).
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng, float stddev,
                      bool requires_grad = true);
  static Tensor Scalar(float value, bool requires_grad = false);

  // --- Introspection ----------------------------------------------------------
  bool defined() const { return node_ != nullptr; }
  const std::vector<int64_t>& shape() const;
  int64_t dim(int index) const;
  int ndim() const { return static_cast<int>(shape().size()); }
  int64_t size() const;
  bool requires_grad() const;

  std::vector<float>& data();
  const std::vector<float>& data() const;
  const std::vector<float>& grad() const;

  // Value of a 0-d/1-element tensor.
  float item() const;
  float at(int64_t row, int64_t col) const;
  float at(int64_t index) const;

  // --- Autograd ----------------------------------------------------------------
  // Runs backward from this (scalar) tensor, accumulating grads into every
  // requires_grad leaf reachable from it.
  void Backward();
  void ZeroGrad();

  TensorNodePtr node() const { return node_; }

 private:
  TensorNodePtr node_;
};

// Builds a non-leaf result node wired to its parents.
Tensor MakeResult(std::vector<int64_t> shape, std::vector<float> data,
                  std::vector<TensorNodePtr> parents,
                  std::function<void(TensorNode&)> backward);

}  // namespace hybridflow

#endif  // SRC_TENSOR_TENSOR_H_
