// Differentiable operations on Tensor.
//
// Shapes: "matrix" ops require 2-D operands; elementwise ops require equal
// shapes except Add, which also broadcasts a 1-D bias across matrix rows.
// Integer index arguments (embedding lookups, per-row picks) are plain
// int64 vectors — indices never need gradients.
#ifndef SRC_TENSOR_OPS_H_
#define SRC_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace hybridflow {

// C[m,n] = A[m,k] * B[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

// Fused transposed GEMMs (no transposed operand is materialized).
// C[m,n] = A[m,k] * B[n,k]^T — forward values bitwise identical to
// MatMul(a, Transpose(b)) (same per-element accumulation order). The
// attention score path (scores = q * k^T) uses this.
Tensor MatMulNT(const Tensor& a, const Tensor& b);
// C[m,n] = A[k,m]^T * B[k,n] — forward values bitwise identical to
// MatMul(Transpose(a), b).
Tensor MatMulTN(const Tensor& a, const Tensor& b);

// Elementwise a + b; if b is 1-D with b.size() == a.dim(1), broadcasts b
// across the rows of a.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);

Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  // Inputs must be > 0.
Tensor Sigmoid(const Tensor& a);
// Numerically stable log(1 + exp(x)).
Tensor Softplus(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Gelu(const Tensor& a);  // tanh approximation.

Tensor Minimum(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Clamp(const Tensor& a, float lo, float hi);

Tensor Sum(const Tensor& a);
Tensor Mean(const Tensor& a);

// Row-wise sum of a 2-D tensor: a[m,n] -> [m].
Tensor RowSum(const Tensor& a);

// Matrix transpose: a[m,n] -> [n,m].
Tensor Transpose(const Tensor& a);

// Rows [begin, end) of a 2-D tensor (copying view with pass-through grad).
Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end);

// Row-wise layer normalization with learned affine parameters:
// out[i,:] = gamma * (a[i,:] - mean_i) / sqrt(var_i + eps) + beta.
Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

// Fused LayerNorm + MatMul: MatMul(LayerNorm(a, gamma, beta, eps), w),
// computed in one pass per row chunk (the normalized row feeds the GEMM
// while still cache-hot, and no intermediate autograd node is built).
// Values and gradients are bitwise identical to the composed form.
// PolicyNet's MLP path (ln2 -> ff1) uses this.
Tensor LayerNormMatMul(const Tensor& a, const Tensor& gamma,
                       const Tensor& beta, const Tensor& w,
                       float eps = 1e-5f);

// Row-wise log-softmax / softmax over the last dimension of a 2-D tensor.
Tensor LogSoftmax(const Tensor& a);
Tensor Softmax(const Tensor& a);

// Embedding lookup: rows of table[v,e] selected by indices -> [n,e].
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices);

// Per-row element pick: a[m,n], indices[m] -> [m] with out[i] = a[i, idx[i]].
Tensor PickPerRow(const Tensor& a, const std::vector<int64_t>& indices);

// Reinterprets the same elements under a new shape (copies data,
// pass-through gradient).
Tensor Reshape(const Tensor& a, std::vector<int64_t> shape);

// Stops gradient flow: result has the same values, requires_grad = false.
Tensor Detach(const Tensor& a);

// Concatenates 2-D tensors with equal column counts along rows.
Tensor ConcatRows(const std::vector<Tensor>& parts);

}  // namespace hybridflow

#endif  // SRC_TENSOR_OPS_H_
