// Both tiers of the SIMD micro-kernel layer (see simd.h for the
// canonical-order contract). The scalar tier is the specification; the
// AVX2 tier must execute the same floating-point ops in the same order.
//
// The whole TU builds with the project's baseline flags. On x86-64 the
// AVX2 kernels carry a per-function target("avx2,fma") attribute, so the
// binary stays runnable on non-AVX2 machines: the dispatcher only enters
// those functions after __builtin_cpu_supports() says the instructions
// exist. src/tensor/CMakeLists.txt compiles this TU (and the rest of the
// kernel layer) with -ffp-contract=off so the compiler can never fuse a
// scalar mul+add that the contract says must round twice.
#include "src/tensor/simd.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__x86_64__) || defined(__i386__)
#define HF_SIMD_X86 1
#include <immintrin.h>
// GCC and Clang both honor the function-level target attribute; the
// intrinsics are usable inside such functions without -mavx2 on the
// command line.
#define HF_AVX2_TARGET __attribute__((target("avx2,fma")))
#else
#define HF_SIMD_X86 0
#endif

namespace hybridflow {

namespace {

// ---- HfExpf constants (Cephes expf: Cody-Waite 2-constant range
// reduction, degree-6 polynomial). Shared verbatim by both tiers.
constexpr float kExpMaxInput = 88.722839f;   // Above: +inf.
constexpr float kExpMinInput = -87.336544f;  // Below: 0 (denormals flushed).
constexpr float kLog2e = 1.442695040f;
constexpr float kExpC1 = 0.693359375f;       // ln2 high part (exact in fp32).
constexpr float kExpC2 = -2.12194440e-4f;    // ln2 low part.
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

// Core on an already-range-checked x in [kExpMinInput, kExpMaxInput].
// (Callers handle NaN / overflow / underflow; the int cast below would
// be UB on unbounded input.)
inline float HfExpfCore(float x) {
  const float n_f = std::nearbyintf(x * kLog2e);  // Nearest-even.
  float r = std::fmaf(-n_f, kExpC1, x);
  r = std::fmaf(-n_f, kExpC2, r);
  float z = kExpP0;
  z = std::fmaf(z, r, kExpP1);
  z = std::fmaf(z, r, kExpP2);
  z = std::fmaf(z, r, kExpP3);
  z = std::fmaf(z, r, kExpP4);
  z = std::fmaf(z, r, kExpP5);
  const float r2 = r * r;
  z = std::fmaf(z, r2, r);
  z += 1.0f;
  // 2^n via exponent bits; n in [-126, 128], so (n + 127) << 23 is a
  // valid biased exponent (255 == inf, the documented near-kExpMaxInput
  // overflow-to-inf band).
  const int n_i = static_cast<int>(n_f);
  const uint32_t scale_bits = static_cast<uint32_t>(n_i + 127) << 23;
  return z * std::bit_cast<float>(scale_bits);
}

// ---- dispatch state --------------------------------------------------
std::atomic<int> g_simd_override{-1};  // -1: none; else a SimdLevel.

bool CpuSupportsAvx2Fma() {
#if HF_SIMD_X86
#if defined(__AVX2__) && defined(__FMA__)
  return true;  // Whole build targets AVX2+FMA already.
#else
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#endif
#else
  return false;
#endif
}

SimdLevel EnvDefaultLevel() {
  const char* env = std::getenv("HF_SIMD");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
       std::strcmp(env, "0") == 0)) {
    return SimdLevel::kScalar;
  }
  return Avx2Available() ? SimdLevel::kAvx2Fma : SimdLevel::kScalar;
}

// Left-to-right fold of the 8 lane partials: ((p0+p1)+p2)+...
inline float Fold8Add(const float* p) {
  float s = p[0];
  for (int i = 1; i < 8; ++i) {
    s += p[i];
  }
  return s;
}

inline float Fold8Max(const float* p) {
  float r = p[0];
  for (int i = 1; i < 8; ++i) {
    r = (r > p[i]) ? r : p[i];
  }
  return r;
}

}  // namespace

bool Avx2Available() {
  static const bool available = CpuSupportsAvx2Fma();
  return available;
}

SimdLevel ActiveSimdLevel() {
  const int ov = g_simd_override.load(std::memory_order_relaxed);
  if (ov >= 0) {
    const SimdLevel level = static_cast<SimdLevel>(ov);
    if (level == SimdLevel::kAvx2Fma && !Avx2Available()) {
      return SimdLevel::kScalar;
    }
    return level;
  }
  static const SimdLevel env_level = EnvDefaultLevel();  // HF_SIMD read once.
  return env_level;
}

void SetSimdOverride(SimdLevel level) {
  g_simd_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ClearSimdOverride() {
  g_simd_override.store(-1, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  return level == SimdLevel::kAvx2Fma ? "avx2" : "scalar";
}

float HfExpf(float x) {
  if (x != x) {
    return x;  // NaN in, NaN out.
  }
  if (x > kExpMaxInput) {
    return std::numeric_limits<float>::infinity();
  }
  if (x < kExpMinInput) {
    return 0.0f;
  }
  return HfExpfCore(x);
}

// ====================================================================
// Scalar tier: the canonical-order specification.
// ====================================================================
namespace scalar_impl {
namespace {

void Axpy(int64_t n, float x, const float* w, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] = std::fmaf(x, w[j], y[j]);
  }
}

void GemmKBlock(int64_t kb, int64_t n, const float* x, const float* w,
                int64_t w_stride, float* y) {
  // p outer / j inner is the cache-friendly nest; per output element the
  // accumulation order is still p-ascending, which is all the contract
  // pins down.
  for (int64_t p = 0; p < kb; ++p) {
    const float xp = x[p];
    const float* wp = w + p * w_stride;
    for (int64_t j = 0; j < n; ++j) {
      y[j] = std::fmaf(xp, wp[j], y[j]);
    }
  }
}

void GemmKBlockStridedX(int64_t kb, int64_t n, const float* x,
                        int64_t x_stride, const float* w, int64_t w_stride,
                        float* y) {
  for (int64_t p = 0; p < kb; ++p) {
    const float xp = x[p * x_stride];
    const float* wp = w + p * w_stride;
    for (int64_t j = 0; j < n; ++j) {
      y[j] = std::fmaf(xp, wp[j], y[j]);
    }
  }
}

float Dot(int64_t n, const float* a, const float* b) {
  float p8[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  for (int64_t j = 0; j < n; ++j) {
    p8[j & 7] = std::fmaf(a[j], b[j], p8[j & 7]);
  }
  return Fold8Add(p8);
}

float Sum(int64_t n, const float* a) {
  float p8[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  for (int64_t j = 0; j < n; ++j) {
    p8[j & 7] += a[j];
  }
  return Fold8Add(p8);
}

float SumSqDiff(int64_t n, const float* a, float mu) {
  float p8[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  for (int64_t j = 0; j < n; ++j) {
    const float d = a[j] - mu;
    p8[j & 7] = std::fmaf(d, d, p8[j & 7]);
  }
  return Fold8Add(p8);
}

float Max(int64_t n, const float* a) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  float p8[8] = {kNegInf, kNegInf, kNegInf, kNegInf,
                 kNegInf, kNegInf, kNegInf, kNegInf};
  for (int64_t j = 0; j < n; ++j) {
    const float v = a[j];
    p8[j & 7] = (p8[j & 7] > v) ? p8[j & 7] : v;  // VMAXPS semantics.
  }
  return Fold8Max(p8);
}

float SumExpShifted(int64_t n, const float* x, float shift) {
  float p8[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  for (int64_t j = 0; j < n; ++j) {
    p8[j & 7] += HfExpf(x[j] + shift);
  }
  return Fold8Add(p8);
}

void Add(int64_t n, const float* a, const float* b, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] = a[j] + b[j];
  }
}

void Sub(int64_t n, const float* a, const float* b, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] = a[j] - b[j];
  }
}

void Mul(int64_t n, const float* a, const float* b, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] = a[j] * b[j];
  }
}

void Scale(int64_t n, const float* a, float s, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] = a[j] * s;
  }
}

void AddScalar(int64_t n, const float* a, float s, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] = a[j] + s;
  }
}

void MulAcc(int64_t n, const float* a, const float* b, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] = std::fmaf(a[j], b[j], y[j]);
  }
}

void ScaleAcc(int64_t n, const float* a, float s, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] = std::fmaf(a[j], s, y[j]);
  }
}

void AddAcc(int64_t n, const float* a, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] += a[j];
  }
}

void LayerNormRow(int64_t n, const float* a, float mu, float inv,
                  const float* gamma, const float* beta, float* norm_out,
                  float* y) {
  for (int64_t j = 0; j < n; ++j) {
    const float norm = (a[j] - mu) * inv;
    norm_out[j] = norm;
    y[j] = std::fmaf(gamma[j], norm, beta[j]);
  }
}

void Exp(int64_t n, const float* x, float* y) {
  for (int64_t j = 0; j < n; ++j) {
    y[j] = HfExpf(x[j]);
  }
}

void LogSoftmaxBackwardRow(int64_t n, const float* y, const float* g,
                           float gsum, float* dx) {
  for (int64_t j = 0; j < n; ++j) {
    const float e = HfExpf(y[j]);
    dx[j] += std::fmaf(-e, gsum, g[j]);
  }
}

void LayerNormBackwardRow(int64_t n, const float* norm, const float* dxhat,
                          float inv, float sum_dxhat, float sum_dxhat_norm,
                          float* dx) {
  const float nf = static_cast<float>(n);
  const float scale = inv / nf;
  for (int64_t j = 0; j < n; ++j) {
    float t = std::fmaf(nf, dxhat[j], -sum_dxhat);
    t = std::fmaf(-norm[j], sum_dxhat_norm, t);
    dx[j] = std::fmaf(t, scale, dx[j]);
  }
}

void AdamUpdate(int64_t n, float* w, const float* g, float* m, float* v,
                float lr, float beta1, float beta2, float eps, float clip,
                float bias1, float bias2) {
  const float one_m_beta1 = 1.0f - beta1;
  const float one_m_beta2 = 1.0f - beta2;
  const bool do_clip = clip > 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    float gi = g[i];
    if (do_clip) {
      // MAXPS-then-MINPS semantics, matching the vector tier exactly.
      const float t = (gi > -clip) ? gi : -clip;
      gi = (t < clip) ? t : clip;
    }
    m[i] = beta1 * m[i] + one_m_beta1 * gi;
    v[i] = beta2 * v[i] + one_m_beta2 * gi * gi;
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    w[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace
}  // namespace scalar_impl

// ====================================================================
// AVX2/FMA tier: the same op sequence, 8 lanes at a time. Tails run the
// scalar lane-partial code so every element lands in lane j % 8 exactly
// as the scalar tier's loop does.
// ====================================================================
#if HF_SIMD_X86
namespace avx2_impl {
namespace {

void Axpy(int64_t n, float x, const float* w, float* y)
    HF_AVX2_TARGET;
void GemmKBlock(int64_t kb, int64_t n, const float* x, const float* w,
                int64_t w_stride, float* y) HF_AVX2_TARGET;
void GemmKBlockStridedX(int64_t kb, int64_t n, const float* x,
                        int64_t x_stride, const float* w, int64_t w_stride,
                        float* y) HF_AVX2_TARGET;
float Dot(int64_t n, const float* a, const float* b) HF_AVX2_TARGET;
float Sum(int64_t n, const float* a) HF_AVX2_TARGET;
float SumSqDiff(int64_t n, const float* a, float mu) HF_AVX2_TARGET;
float Max(int64_t n, const float* a) HF_AVX2_TARGET;
float SumExpShifted(int64_t n, const float* x, float shift) HF_AVX2_TARGET;
void Add(int64_t n, const float* a, const float* b, float* y)
    HF_AVX2_TARGET;
void Sub(int64_t n, const float* a, const float* b, float* y)
    HF_AVX2_TARGET;
void Mul(int64_t n, const float* a, const float* b, float* y)
    HF_AVX2_TARGET;
void Scale(int64_t n, const float* a, float s, float* y) HF_AVX2_TARGET;
void AddScalar(int64_t n, const float* a, float s, float* y)
    HF_AVX2_TARGET;
void MulAcc(int64_t n, const float* a, const float* b, float* y)
    HF_AVX2_TARGET;
void ScaleAcc(int64_t n, const float* a, float s, float* y) HF_AVX2_TARGET;
void AddAcc(int64_t n, const float* a, float* y) HF_AVX2_TARGET;
void LayerNormRow(int64_t n, const float* a, float mu, float inv,
                  const float* gamma, const float* beta, float* norm_out,
                  float* y) HF_AVX2_TARGET;
void Exp(int64_t n, const float* x, float* y) HF_AVX2_TARGET;
void LogSoftmaxBackwardRow(int64_t n, const float* y, const float* g,
                           float gsum, float* dx) HF_AVX2_TARGET;
void LayerNormBackwardRow(int64_t n, const float* norm, const float* dxhat,
                          float inv, float sum_dxhat, float sum_dxhat_norm,
                          float* dx) HF_AVX2_TARGET;
void AdamUpdate(int64_t n, float* w, const float* g, float* m, float* v,
                float lr, float beta1, float beta2, float eps, float clip,
                float bias1, float bias2) HF_AVX2_TARGET;

void Axpy(int64_t n, float x, const float* w, float* y) {
  const __m256 xv = _mm256_set1_ps(x);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_fmadd_ps(xv, _mm256_loadu_ps(w + j),
                               _mm256_loadu_ps(y + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] = std::fmaf(x, w[j], y[j]);
  }
}

// One j-tile of T accumulator registers (8*T outputs) held across the
// whole k-block; per output element the walk is still p-ascending.
template <int T>
HF_AVX2_TARGET inline void GemmTileJ(int64_t kb, const float* x,
                                     const float* w, int64_t w_stride,
                                     float* y) {
  __m256 acc[T];
  for (int i = 0; i < T; ++i) {
    acc[i] = _mm256_loadu_ps(y + 8 * i);
  }
  const float* wp = w;
  for (int64_t p = 0; p < kb; ++p, wp += w_stride) {
    const __m256 xv = _mm256_set1_ps(x[p]);
    for (int i = 0; i < T; ++i) {
      acc[i] = _mm256_fmadd_ps(xv, _mm256_loadu_ps(wp + 8 * i), acc[i]);
    }
  }
  for (int i = 0; i < T; ++i) {
    _mm256_storeu_ps(y + 8 * i, acc[i]);
  }
}

template <int T>
HF_AVX2_TARGET inline void GemmTileJStridedX(int64_t kb, const float* x,
                                             int64_t x_stride,
                                             const float* w,
                                             int64_t w_stride, float* y) {
  __m256 acc[T];
  for (int i = 0; i < T; ++i) {
    acc[i] = _mm256_loadu_ps(y + 8 * i);
  }
  const float* wp = w;
  for (int64_t p = 0; p < kb; ++p, wp += w_stride) {
    const __m256 xv = _mm256_set1_ps(x[p * x_stride]);
    for (int i = 0; i < T; ++i) {
      acc[i] = _mm256_fmadd_ps(xv, _mm256_loadu_ps(wp + 8 * i), acc[i]);
    }
  }
  for (int i = 0; i < T; ++i) {
    _mm256_storeu_ps(y + 8 * i, acc[i]);
  }
}

void GemmKBlock(int64_t kb, int64_t n, const float* x, const float* w,
                int64_t w_stride, float* y) {
  int64_t j = 0;
  for (; j + 64 <= n; j += 64) {
    GemmTileJ<8>(kb, x, w + j, w_stride, y + j);
  }
  for (; j + 32 <= n; j += 32) {
    GemmTileJ<4>(kb, x, w + j, w_stride, y + j);
  }
  for (; j + 16 <= n; j += 16) {
    GemmTileJ<2>(kb, x, w + j, w_stride, y + j);
  }
  for (; j + 8 <= n; j += 8) {
    GemmTileJ<1>(kb, x, w + j, w_stride, y + j);
  }
  for (; j < n; ++j) {
    float acc = y[j];
    const float* wp = w + j;
    for (int64_t p = 0; p < kb; ++p, wp += w_stride) {
      acc = std::fmaf(x[p], *wp, acc);
    }
    y[j] = acc;
  }
}

void GemmKBlockStridedX(int64_t kb, int64_t n, const float* x,
                        int64_t x_stride, const float* w, int64_t w_stride,
                        float* y) {
  int64_t j = 0;
  for (; j + 64 <= n; j += 64) {
    GemmTileJStridedX<8>(kb, x, x_stride, w + j, w_stride, y + j);
  }
  for (; j + 32 <= n; j += 32) {
    GemmTileJStridedX<4>(kb, x, x_stride, w + j, w_stride, y + j);
  }
  for (; j + 16 <= n; j += 16) {
    GemmTileJStridedX<2>(kb, x, x_stride, w + j, w_stride, y + j);
  }
  for (; j + 8 <= n; j += 8) {
    GemmTileJStridedX<1>(kb, x, x_stride, w + j, w_stride, y + j);
  }
  for (; j < n; ++j) {
    float acc = y[j];
    const float* wp = w + j;
    for (int64_t p = 0; p < kb; ++p, wp += w_stride) {
      acc = std::fmaf(x[p * x_stride], *wp, acc);
    }
    y[j] = acc;
  }
}

float Dot(int64_t n, const float* a, const float* b) {
  __m256 acc = _mm256_setzero_ps();
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                          acc);
  }
  alignas(32) float p8[8];
  _mm256_store_ps(p8, acc);
  for (int64_t j = n8; j < n; ++j) {
    p8[j & 7] = std::fmaf(a[j], b[j], p8[j & 7]);
  }
  return Fold8Add(p8);
}

float Sum(int64_t n, const float* a) {
  __m256 acc = _mm256_setzero_ps();
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(a + j));
  }
  alignas(32) float p8[8];
  _mm256_store_ps(p8, acc);
  for (int64_t j = n8; j < n; ++j) {
    p8[j & 7] += a[j];
  }
  return Fold8Add(p8);
}

float SumSqDiff(int64_t n, const float* a, float mu) {
  const __m256 muv = _mm256_set1_ps(mu);
  __m256 acc = _mm256_setzero_ps();
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + j), muv);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  alignas(32) float p8[8];
  _mm256_store_ps(p8, acc);
  for (int64_t j = n8; j < n; ++j) {
    const float d = a[j] - mu;
    p8[j & 7] = std::fmaf(d, d, p8[j & 7]);
  }
  return Fold8Add(p8);
}

float Max(int64_t n, const float* a) {
  __m256 acc = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    acc = _mm256_max_ps(acc, _mm256_loadu_ps(a + j));
  }
  alignas(32) float p8[8];
  _mm256_store_ps(p8, acc);
  for (int64_t j = n8; j < n; ++j) {
    const float v = a[j];
    p8[j & 7] = (p8[j & 7] > v) ? p8[j & 7] : v;
  }
  return Fold8Max(p8);
}

// 8-lane HfExpf: clamp so the int conversion in the core is safe, then
// blend the special cases back in. Bitwise equal to the scalar HfExpf
// in every lane.
HF_AVX2_TARGET inline __m256 Exp8(__m256 x) {
  const __m256 lo = _mm256_set1_ps(kExpMinInput);
  const __m256 hi = _mm256_set1_ps(kExpMaxInput);
  // max(x, lo) returns lo for NaN lanes, so the core never sees NaN.
  const __m256 xc = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
  const __m256 n_f = _mm256_round_ps(
      _mm256_mul_ps(xc, _mm256_set1_ps(kLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(n_f, _mm256_set1_ps(kExpC1), xc);
  r = _mm256_fnmadd_ps(n_f, _mm256_set1_ps(kExpC2), r);
  __m256 z = _mm256_set1_ps(kExpP0);
  z = _mm256_fmadd_ps(z, r, _mm256_set1_ps(kExpP1));
  z = _mm256_fmadd_ps(z, r, _mm256_set1_ps(kExpP2));
  z = _mm256_fmadd_ps(z, r, _mm256_set1_ps(kExpP3));
  z = _mm256_fmadd_ps(z, r, _mm256_set1_ps(kExpP4));
  z = _mm256_fmadd_ps(z, r, _mm256_set1_ps(kExpP5));
  const __m256 r2 = _mm256_mul_ps(r, r);
  z = _mm256_fmadd_ps(z, r2, r);
  z = _mm256_add_ps(z, _mm256_set1_ps(1.0f));
  const __m256i n_i = _mm256_cvtps_epi32(n_f);
  const __m256i scale_bits = _mm256_slli_epi32(
      _mm256_add_epi32(n_i, _mm256_set1_epi32(127)), 23);
  __m256 result = _mm256_mul_ps(z, _mm256_castsi256_ps(scale_bits));
  // Specials, in the same precedence as the scalar early returns:
  // underflow -> 0, overflow -> +inf, NaN -> x.
  result = _mm256_blendv_ps(result, _mm256_setzero_ps(),
                            _mm256_cmp_ps(x, lo, _CMP_LT_OQ));
  result = _mm256_blendv_ps(
      result, _mm256_set1_ps(std::numeric_limits<float>::infinity()),
      _mm256_cmp_ps(x, hi, _CMP_GT_OQ));
  result = _mm256_blendv_ps(result, x, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
  return result;
}

float SumExpShifted(int64_t n, const float* x, float shift) {
  const __m256 shiftv = _mm256_set1_ps(shift);
  __m256 acc = _mm256_setzero_ps();
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    acc = _mm256_add_ps(
        acc, Exp8(_mm256_add_ps(_mm256_loadu_ps(x + j), shiftv)));
  }
  alignas(32) float p8[8];
  _mm256_store_ps(p8, acc);
  for (int64_t j = n8; j < n; ++j) {
    p8[j & 7] += HfExpf(x[j] + shift);
  }
  return Fold8Add(p8);
}

void Add(int64_t n, const float* a, const float* b, float* y) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_add_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] = a[j] + b[j];
  }
}

void Sub(int64_t n, const float* a, const float* b, float* y) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_sub_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] = a[j] - b[j];
  }
}

void Mul(int64_t n, const float* a, const float* b, float* y) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_mul_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] = a[j] * b[j];
  }
}

void Scale(int64_t n, const float* a, float s, float* y) {
  const __m256 sv = _mm256_set1_ps(s);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(y + j, _mm256_mul_ps(_mm256_loadu_ps(a + j), sv));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] = a[j] * s;
  }
}

void AddScalar(int64_t n, const float* a, float s, float* y) {
  const __m256 sv = _mm256_set1_ps(s);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(y + j, _mm256_add_ps(_mm256_loadu_ps(a + j), sv));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] = a[j] + s;
  }
}

void MulAcc(int64_t n, const float* a, const float* b, float* y) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                               _mm256_loadu_ps(y + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] = std::fmaf(a[j], b[j], y[j]);
  }
}

void ScaleAcc(int64_t n, const float* a, float s, float* y) {
  const __m256 sv = _mm256_set1_ps(s);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(
        y + j,
        _mm256_fmadd_ps(_mm256_loadu_ps(a + j), sv, _mm256_loadu_ps(y + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] = std::fmaf(a[j], s, y[j]);
  }
}

void AddAcc(int64_t n, const float* a, float* y) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_add_ps(_mm256_loadu_ps(y + j), _mm256_loadu_ps(a + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] += a[j];
  }
}

void LayerNormRow(int64_t n, const float* a, float mu, float inv,
                  const float* gamma, const float* beta, float* norm_out,
                  float* y) {
  const __m256 muv = _mm256_set1_ps(mu);
  const __m256 invv = _mm256_set1_ps(inv);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    const __m256 norm =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(a + j), muv), invv);
    _mm256_storeu_ps(norm_out + j, norm);
    _mm256_storeu_ps(y + j, _mm256_fmadd_ps(_mm256_loadu_ps(gamma + j), norm,
                                            _mm256_loadu_ps(beta + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    const float norm = (a[j] - mu) * inv;
    norm_out[j] = norm;
    y[j] = std::fmaf(gamma[j], norm, beta[j]);
  }
}

void Exp(int64_t n, const float* x, float* y) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    _mm256_storeu_ps(y + j, Exp8(_mm256_loadu_ps(x + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    y[j] = HfExpf(x[j]);
  }
}

void LogSoftmaxBackwardRow(int64_t n, const float* y, const float* g,
                           float gsum, float* dx) {
  const __m256 gsumv = _mm256_set1_ps(gsum);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    const __m256 e = Exp8(_mm256_loadu_ps(y + j));
    const __m256 t = _mm256_fnmadd_ps(e, gsumv, _mm256_loadu_ps(g + j));
    _mm256_storeu_ps(dx + j, _mm256_add_ps(_mm256_loadu_ps(dx + j), t));
  }
  for (int64_t j = n8; j < n; ++j) {
    const float e = HfExpf(y[j]);
    dx[j] += std::fmaf(-e, gsum, g[j]);
  }
}

void LayerNormBackwardRow(int64_t n, const float* norm, const float* dxhat,
                          float inv, float sum_dxhat, float sum_dxhat_norm,
                          float* dx) {
  const float nf = static_cast<float>(n);
  const float scale = inv / nf;
  const __m256 nfv = _mm256_set1_ps(nf);
  const __m256 neg_sum = _mm256_set1_ps(-sum_dxhat);
  const __m256 ssnv = _mm256_set1_ps(sum_dxhat_norm);
  const __m256 scalev = _mm256_set1_ps(scale);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t j = 0; j < n8; j += 8) {
    __m256 t = _mm256_fmadd_ps(nfv, _mm256_loadu_ps(dxhat + j), neg_sum);
    t = _mm256_fnmadd_ps(_mm256_loadu_ps(norm + j), ssnv, t);
    _mm256_storeu_ps(dx + j,
                     _mm256_fmadd_ps(t, scalev, _mm256_loadu_ps(dx + j)));
  }
  for (int64_t j = n8; j < n; ++j) {
    float t = std::fmaf(nf, dxhat[j], -sum_dxhat);
    t = std::fmaf(-norm[j], sum_dxhat_norm, t);
    dx[j] = std::fmaf(t, scale, dx[j]);
  }
}

void AdamUpdate(int64_t n, float* w, const float* g, float* m, float* v,
                float lr, float beta1, float beta2, float eps, float clip,
                float bias1, float bias2) {
  const float one_m_beta1 = 1.0f - beta1;
  const float one_m_beta2 = 1.0f - beta2;
  const bool do_clip = clip > 0.0f;
  const __m256 clip_lo = _mm256_set1_ps(-clip);
  const __m256 clip_hi = _mm256_set1_ps(clip);
  const __m256 b1v = _mm256_set1_ps(beta1);
  const __m256 b2v = _mm256_set1_ps(beta2);
  const __m256 ob1v = _mm256_set1_ps(one_m_beta1);
  const __m256 ob2v = _mm256_set1_ps(one_m_beta2);
  const __m256 bias1v = _mm256_set1_ps(bias1);
  const __m256 bias2v = _mm256_set1_ps(bias2);
  const __m256 lrv = _mm256_set1_ps(lr);
  const __m256 epsv = _mm256_set1_ps(eps);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    __m256 gv = _mm256_loadu_ps(g + i);
    if (do_clip) {
      gv = _mm256_min_ps(_mm256_max_ps(gv, clip_lo), clip_hi);
    }
    const __m256 mv = _mm256_add_ps(
        _mm256_mul_ps(b1v, _mm256_loadu_ps(m + i)), _mm256_mul_ps(ob1v, gv));
    const __m256 vv = _mm256_add_ps(
        _mm256_mul_ps(b2v, _mm256_loadu_ps(v + i)),
        _mm256_mul_ps(_mm256_mul_ps(ob2v, gv), gv));
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    const __m256 m_hat = _mm256_div_ps(mv, bias1v);
    const __m256 v_hat = _mm256_div_ps(vv, bias2v);
    const __m256 den = _mm256_add_ps(_mm256_sqrt_ps(v_hat), epsv);
    const __m256 step = _mm256_div_ps(_mm256_mul_ps(lrv, m_hat), den);
    _mm256_storeu_ps(w + i, _mm256_sub_ps(_mm256_loadu_ps(w + i), step));
  }
  for (int64_t i = n8; i < n; ++i) {
    float gi = g[i];
    if (do_clip) {
      const float t = (gi > -clip) ? gi : -clip;
      gi = (t < clip) ? t : clip;
    }
    m[i] = beta1 * m[i] + one_m_beta1 * gi;
    v[i] = beta2 * v[i] + one_m_beta2 * gi * gi;
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    w[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace
}  // namespace avx2_impl
#endif  // HF_SIMD_X86

// ====================================================================
// Public dispatchers.
// ====================================================================
namespace simd {

namespace {
inline bool UseAvx2() {
#if HF_SIMD_X86
  return ActiveSimdLevel() == SimdLevel::kAvx2Fma;
#else
  return false;
#endif
}
}  // namespace

void Axpy(int64_t n, float x, const float* w, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::Axpy(n, x, w, y);
    return;
  }
#endif
  scalar_impl::Axpy(n, x, w, y);
}

void GemmKBlock(int64_t kb, int64_t n, const float* x, const float* w,
                int64_t w_stride, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::GemmKBlock(kb, n, x, w, w_stride, y);
    return;
  }
#endif
  scalar_impl::GemmKBlock(kb, n, x, w, w_stride, y);
}

void GemmKBlockStridedX(int64_t kb, int64_t n, const float* x,
                        int64_t x_stride, const float* w, int64_t w_stride,
                        float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::GemmKBlockStridedX(kb, n, x, x_stride, w, w_stride, y);
    return;
  }
#endif
  scalar_impl::GemmKBlockStridedX(kb, n, x, x_stride, w, w_stride, y);
}

float Dot(int64_t n, const float* a, const float* b) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    return avx2_impl::Dot(n, a, b);
  }
#endif
  return scalar_impl::Dot(n, a, b);
}

float Sum(int64_t n, const float* a) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    return avx2_impl::Sum(n, a);
  }
#endif
  return scalar_impl::Sum(n, a);
}

float SumSqDiff(int64_t n, const float* a, float mu) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    return avx2_impl::SumSqDiff(n, a, mu);
  }
#endif
  return scalar_impl::SumSqDiff(n, a, mu);
}

float Max(int64_t n, const float* a) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    return avx2_impl::Max(n, a);
  }
#endif
  return scalar_impl::Max(n, a);
}

float SumExpShifted(int64_t n, const float* x, float shift) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    return avx2_impl::SumExpShifted(n, x, shift);
  }
#endif
  return scalar_impl::SumExpShifted(n, x, shift);
}

void Add(int64_t n, const float* a, const float* b, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::Add(n, a, b, y);
    return;
  }
#endif
  scalar_impl::Add(n, a, b, y);
}

void Sub(int64_t n, const float* a, const float* b, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::Sub(n, a, b, y);
    return;
  }
#endif
  scalar_impl::Sub(n, a, b, y);
}

void Mul(int64_t n, const float* a, const float* b, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::Mul(n, a, b, y);
    return;
  }
#endif
  scalar_impl::Mul(n, a, b, y);
}

void Scale(int64_t n, const float* a, float s, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::Scale(n, a, s, y);
    return;
  }
#endif
  scalar_impl::Scale(n, a, s, y);
}

void AddScalar(int64_t n, const float* a, float s, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::AddScalar(n, a, s, y);
    return;
  }
#endif
  scalar_impl::AddScalar(n, a, s, y);
}

void MulAcc(int64_t n, const float* a, const float* b, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::MulAcc(n, a, b, y);
    return;
  }
#endif
  scalar_impl::MulAcc(n, a, b, y);
}

void ScaleAcc(int64_t n, const float* a, float s, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::ScaleAcc(n, a, s, y);
    return;
  }
#endif
  scalar_impl::ScaleAcc(n, a, s, y);
}

void AddAcc(int64_t n, const float* a, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::AddAcc(n, a, y);
    return;
  }
#endif
  scalar_impl::AddAcc(n, a, y);
}

void LayerNormRow(int64_t n, const float* a, float mu, float inv,
                  const float* gamma, const float* beta, float* norm_out,
                  float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::LayerNormRow(n, a, mu, inv, gamma, beta, norm_out, y);
    return;
  }
#endif
  scalar_impl::LayerNormRow(n, a, mu, inv, gamma, beta, norm_out, y);
}

void Exp(int64_t n, const float* x, float* y) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::Exp(n, x, y);
    return;
  }
#endif
  scalar_impl::Exp(n, x, y);
}

void LogSoftmaxBackwardRow(int64_t n, const float* y, const float* g,
                           float gsum, float* dx) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::LogSoftmaxBackwardRow(n, y, g, gsum, dx);
    return;
  }
#endif
  scalar_impl::LogSoftmaxBackwardRow(n, y, g, gsum, dx);
}

void LayerNormBackwardRow(int64_t n, const float* norm, const float* dxhat,
                          float inv, float sum_dxhat, float sum_dxhat_norm,
                          float* dx) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::LayerNormBackwardRow(n, norm, dxhat, inv, sum_dxhat,
                                    sum_dxhat_norm, dx);
    return;
  }
#endif
  scalar_impl::LayerNormBackwardRow(n, norm, dxhat, inv, sum_dxhat,
                                    sum_dxhat_norm, dx);
}

void AdamUpdate(int64_t n, float* w, const float* g, float* m, float* v,
                float lr, float beta1, float beta2, float eps, float clip,
                float bias1, float bias2) {
#if HF_SIMD_X86
  if (UseAvx2()) {
    avx2_impl::AdamUpdate(n, w, g, m, v, lr, beta1, beta2, eps, clip, bias1,
                          bias2);
    return;
  }
#endif
  scalar_impl::AdamUpdate(n, w, g, m, v, lr, beta1, beta2, eps, clip, bias1,
                          bias2);
}

}  // namespace simd

}  // namespace hybridflow
