#include "src/serving/sim.h"

#include <algorithm>

#include "src/common/check.h"

namespace hybridflow {

ServingSimResult SimulateServing(const PerfModel& perf, const GenParallelConfig& gen,
                                 const std::vector<DeviceId>& replica_devices,
                                 const std::vector<ArrivalRecord>& trace,
                                 double kv_budget_bytes, const ServingPolicyConfig& config) {
  ServingSimResult result;
  result.records.resize(trace.size());
  if (trace.empty()) {
    return result;
  }

  // Same block geometry as SimulateContinuousGeneration: 16-token blocks of
  // sharded per-token KV bytes, budget-limited, raised to fit the largest
  // request alone (progress contract).
  KvBlockConfig kv_config;
  kv_config.block_tokens = 16;
  kv_config.bytes_per_token = perf.KvBytesPerTokenPerGpu(gen);
  kv_config.enable_prefix_cache = config.prefix_cache;
  int64_t fit_largest = 0;
  for (const ArrivalRecord& record : trace) {
    HF_CHECK_GT(record.prompt_tokens, 0);
    HF_CHECK_GT(record.target_new_tokens, 0);
    const int64_t full = record.prompt_tokens + record.target_new_tokens;
    fit_largest =
        std::max(fit_largest, (full + kv_config.block_tokens - 1) / kv_config.block_tokens);
  }
  const double block_bytes =
      static_cast<double>(kv_config.block_tokens) * kv_config.bytes_per_token;
  const int64_t budget_blocks =
      block_bytes > 0.0 ? static_cast<int64_t>(kv_budget_bytes / block_bytes) : fit_largest;
  kv_config.num_blocks = std::max(budget_blocks, fit_largest);
  DistributedKvManager kv(1, kv_config);

  std::vector<RolloutSequence> states(trace.size());
  RolloutScheduler scheduler(ToSchedulerConfig(config), &kv, &states);
  std::vector<double> first_token(trace.size(), 0.0);
  std::vector<double> last_token(trace.size(), 0.0);
  for (size_t i = 0; i < trace.size(); ++i) {
    const ArrivalRecord& record = trace[i];
    HF_CHECK_EQ(record.index, static_cast<int64_t>(i));
    RolloutSequence& state = states[i];
    state.id = record.index;
    state.prompt_tokens = record.prompt_tokens;
    state.target_new_tokens = record.target_new_tokens;
    state.tenant = record.tenant;
    state.priority = record.priority;
    state.ttft_deadline = record.ttft_deadline;
    if (config.prefix_cache && record.prompt_group >= 0) {
      state.block_hashes = GroupBlockHashes(record.prompt_group,
                                            record.prompt_tokens / kv_config.block_tokens);
    }
    RequestRecord& row = result.records[i];
    row.id = record.index;
    row.tenant = record.tenant;
    row.priority = record.priority;
    row.arrival = record.arrival;
    row.ttft_deadline = record.ttft_deadline;
    row.tpot_slo = record.tpot_slo;
  }

  double sim_now = 0.0;
  size_t next_arrival = 0;  // Trace is sorted by arrival time.
  const auto admit_arrivals = [&]() {
    while (next_arrival < trace.size() && trace[next_arrival].arrival <= sim_now) {
      scheduler.Enqueue(trace[next_arrival].index);
      ++next_arrival;
    }
  };

  admit_arrivals();
  while (scheduler.HasWork() || next_arrival < trace.size()) {
    if (!scheduler.HasWork()) {
      // Idle gap: advance the DES clock to the next arrival.
      sim_now = std::max(sim_now, trace[next_arrival].arrival);
      admit_arrivals();
      continue;
    }
    scheduler.SetSimNow(sim_now);
    const StepPlan plan = scheduler.BeginStep();
    if (plan.empty()) {
      continue;  // Expiry drained the remaining work; no cost charged.
    }

    // Step cost: PerfModel prefill + decode + comm, as in
    // SimulateContinuousGeneration.
    double step_seconds = 0.0;
    if (!plan.prefill.empty()) {
      std::vector<int64_t> prefill_tokens;
      prefill_tokens.reserve(plan.prefill.size());
      for (const PrefillChunk& chunk : plan.prefill) {
        prefill_tokens.push_back(chunk.tokens);
      }
      step_seconds += perf.PrefillStepTime(gen, replica_devices, prefill_tokens);
    }
    const int64_t emitting = plan.EmittingRows();
    if (emitting > 0) {
      int64_t context_tokens = 0;
      for (const PrefillChunk& chunk : plan.prefill) {
        if (chunk.completes) {
          context_tokens += states[static_cast<size_t>(chunk.id)].kv_tokens;
        }
      }
      for (int64_t id : plan.decode) {
        context_tokens += states[static_cast<size_t>(id)].kv_tokens;
      }
      step_seconds += perf.DecodeStepTime(gen, replica_devices, emitting, context_tokens);
      step_seconds += perf.DecodeCommStepTime(gen, replica_devices, emitting);
    }

    // Tokens commit at the step-end clock.
    sim_now += step_seconds;
    scheduler.SetSimNow(sim_now);
    for (const PrefillChunk& chunk : plan.prefill) {
      if (chunk.completes) {
        const size_t idx = static_cast<size_t>(chunk.id);
        if (states[idx].generated == 0) {
          first_token[idx] = sim_now;
        }
        last_token[idx] = sim_now;
      }
    }
    for (int64_t id : plan.decode) {
      last_token[static_cast<size_t>(id)] = sim_now;
    }
    scheduler.CommitStep(plan, /*eos_finished=*/{});
    admit_arrivals();
  }

  for (size_t i = 0; i < trace.size(); ++i) {
    const RolloutSequence& state = states[i];
    RequestRecord& row = result.records[i];
    row.tokens = state.generated;
    row.preemptions = state.preemptions;
    row.first_token_time = state.generated > 0 ? first_token[i] : 0.0;
    switch (state.state) {
      case SequenceState::kFinished:
        row.outcome = RequestOutcome::kFinished;
        row.end_time = last_token[i];
        break;
      case SequenceState::kExpired:
        row.outcome = RequestOutcome::kExpired;
        row.end_time = std::max(sim_now, row.arrival);
        break;
      default:
        HF_CHECK_MSG(false, "simulated request ended in a non-terminal state");
    }
    FinalizeRecord(&row, last_token[i]);
  }
  result.report = BuildServingReport(result.records);
  result.scheduler_stats = scheduler.stats();
  result.kv_high_water_blocks = kv.high_water_blocks();
  result.kv_leaked_blocks = kv.rank(0).used_blocks();
  result.sim_seconds = sim_now;
  return result;
}

}  // namespace hybridflow
