// SimulateServing: the sim-plane serving loop (docs/SERVING.md).
//
// Replays an arrival trace (src/data/arrival_trace.h) through the same
// RolloutScheduler the data plane uses, but charges every step with
// PerfModel prefill/decode/comm costs instead of running a network — the
// serving analogue of SimulateContinuousGeneration. Arrivals are injected
// as the DES clock passes them, TTFT-overdue requests are expired at step
// boundaries, and each request yields the same RequestRecord row the data
// plane emits (with an empty response — the sim plane never materializes
// tokens). This is what bench/bench_serving.cc sweeps across admission
// policies and trace shapes: identical trace, identical KV budget, only
// the policy differs.
#ifndef SRC_SERVING_SIM_H_
#define SRC_SERVING_SIM_H_

#include <vector>

#include "src/data/arrival_trace.h"
#include "src/perf/perf_model.h"
#include "src/serving/request.h"

namespace hybridflow {

struct ServingSimResult {
  std::vector<RequestRecord> records;  // One per trace record, by index.
  ServingReport report;
  RolloutSchedulerStats scheduler_stats;
  int64_t kv_high_water_blocks = 0;
  int64_t kv_leaked_blocks = 0;  // Must be 0: every exit returns its blocks.
  double sim_seconds = 0.0;      // DES clock at drain.
};

// Serves `trace` on one generation replica of `replica_devices` GPUs under
// `config`. `kv_budget_bytes` bounds the per-GPU KV pool exactly as in
// SimulateContinuousGeneration (raised to fit the largest request alone).
// Deterministic given identical inputs.
ServingSimResult SimulateServing(const PerfModel& perf, const GenParallelConfig& gen,
                                 const std::vector<DeviceId>& replica_devices,
                                 const std::vector<ArrivalRecord>& trace,
                                 double kv_budget_bytes, const ServingPolicyConfig& config);

}  // namespace hybridflow

#endif  // SRC_SERVING_SIM_H_
