// ServingFrontend: the data-plane serving loop (docs/SERVING.md).
//
// Maps ServingRequests onto RolloutSequences and drives RolloutEngine-style
// continuous generation over the real toy PolicyNet: per step it injects
// newly arrived requests, applies client cancellations and TTFT expiry,
// composes a mixed prefill+decode batch via RolloutScheduler, runs one
// forward, and streams each committed token to the client callback.
//
// The serving clock is *virtual*: step k commits at (k+1) *
// seconds_per_step, and arrivals/deadlines/cancellations are interpreted on
// that clock (SetSimNow), so runs are fully deterministic — no wall-time
// dependence. The per-row forward is independent of batch composition and
// sampling uses per-request forked RNG streams, so greedy responses of
// uncancelled requests are bitwise-identical across admission policies,
// preemption, cancellation, and expiry of *other* requests (the rollout
// engine's equivalence contract, extended to the serving surface).
#ifndef SRC_SERVING_FRONTEND_H_
#define SRC_SERVING_FRONTEND_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/policy_net.h"
#include "src/obs/metrics.h"
#include "src/serving/request.h"

namespace hybridflow {

struct ServingFrontendConfig {
  ServingPolicyConfig scheduler;
  // Data-plane KV geometry (toy scale); num_blocks == 0 auto-sizes to fit
  // every request at full length (no capacity pressure).
  int64_t block_tokens = 4;
  int64_t num_blocks = 0;
  // Prefix-sharing KV cache (docs/KVCACHE.md): requests with identical
  // prompt prefixes — concurrent or arriving after an identical request
  // finished (cross-request reuse; finished requests' prompt blocks are
  // retained evictable) — share blocks and skip the shared prefill.
  bool prefix_cache = false;
  // Virtual seconds one engine step advances the serving clock by.
  double seconds_per_step = 0.1;
  // Optional lifecycle sink (src/obs/seq_events.h); null disables, same
  // no-op contract as the rollout engine.
  SeqEventLog* event_log = nullptr;
};

struct ServingResult {
  std::vector<RequestRecord> records;  // One per request, by request id.
  ServingReport report;
  RolloutSchedulerStats scheduler_stats;
  int64_t kv_high_water_blocks = 0;
  // Every terminal exit returned its blocks: end-of-run used_blocks == 0.
  int64_t kv_leaked_blocks = 0;
};

class ServingFrontend {
 public:
  // `net` is borrowed (read-only); `kv_ranks` mirrors the generation
  // strategy's tensor-parallel degree as in RolloutEngine.
  ServingFrontend(const PolicyNet& net, const ServingFrontendConfig& config, int kv_ranks);

  // Serves `requests` (ids must be dense 0..n-1 and equal each request's
  // position — RequestsFromTrace produces this; replayed by arrival time,
  // not vector order). `on_token`
  // may be null; returning false from it cancels that request at the next
  // step boundary. `rng` seeds per-request sampling streams (greedy
  // decoding never draws from it).
  ServingResult Serve(const std::vector<ServingRequest>& requests, bool do_sample,
                      double temperature, Rng& rng, const StreamCallback& on_token = nullptr);

 private:
  const PolicyNet& net_;
  ServingFrontendConfig config_;
  int kv_ranks_;
  // Cached registry handles; per-tenant counters are resolved per run
  // (tenant sets are dynamic), these aggregate across tenants.
  Counter& requests_total_;
  Counter& finished_total_;
  Counter& cancelled_total_;
  Counter& expired_total_;
};

}  // namespace hybridflow

#endif  // SRC_SERVING_FRONTEND_H_
