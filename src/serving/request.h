// Request-level types for the serving front end (docs/SERVING.md).
//
// A ServingRequest is one client call: a prompt plus serving metadata
// (tenant, priority, SLOs, optional cancellation schedule). Its lifecycle is
//   queued -> admitted -> prefilling -> streaming
//         -> finished | cancelled | expired
// mapped onto RolloutSequence states by ServingFrontend / SimulateServing;
// every terminal exit releases the request's KV blocks immediately.
//
// A RequestRecord is the per-request outcome row both planes emit: outcome,
// streamed tokens, TTFT/TPOT against the serving clock, and SLO attainment.
// BuildServingReport folds records into per-tenant digests and goodput
// (tokens of SLO-attaining finished requests per second of makespan);
// WriteRequestRecordsJsonl writes the JSONL artifact tools/hfstat.cc reads.
#ifndef SRC_SERVING_REQUEST_H_
#define SRC_SERVING_REQUEST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/data/arrival_trace.h"
#include "src/obs/seq_events.h"
#include "src/rollout/scheduler.h"

namespace hybridflow {

// Scheduler-facing serving knobs shared by the data plane
// (ServingFrontend) and the sim plane (SimulateServing).
struct ServingPolicyConfig {
  RolloutPolicy policy = RolloutPolicy::kFcfs;
  AdmissionPolicy admission = AdmissionPolicy::kQueueOrder;
  int64_t reserve_tokens = 1;
  int64_t max_running = 0;
  int64_t prefill_chunk_tokens = 0;
  int64_t fair_quantum_tokens = 256;
  std::map<int64_t, double> tenant_weights;
  // Serving default: reject TTFT-overdue requests instead of serving them
  // late. Turn off to measure how late a policy would have served them.
  bool expire_overdue = true;
  // Prefix-sharing KV cache across requests (docs/KVCACHE.md). Data plane:
  // prompts hash by content. Sim plane: ArrivalRecord::prompt_group
  // supplies count-based content identity.
  bool prefix_cache = false;
};

RolloutSchedulerConfig ToSchedulerConfig(const ServingPolicyConfig& config);

// One client request. `arrival`, `ttft_deadline`, and `cancel_at` are
// absolute instants on the serving clock (virtual seconds on the data
// plane, DES seconds on the sim plane).
struct ServingRequest {
  int64_t id = 0;
  int64_t tenant = 0;
  int64_t priority = 0;
  double arrival = 0.0;
  std::vector<int64_t> prompt;
  int64_t max_new_tokens = 0;
  double ttft_deadline = 0.0;       // <= 0 = no TTFT SLO.
  double tpot_slo = 0.0;            // Seconds per output token; <= 0 = none.
  // Client-side cancellation schedule (deterministic trace replay): cancel
  // after streaming this many tokens (0 = never) and/or at this absolute
  // time (<= 0 = never), whichever trips first. Checked at step boundaries.
  int64_t cancel_after_tokens = 0;
  double cancel_at = 0.0;
};

enum class RequestOutcome {
  kFinished,   // Reached max_new_tokens / EOS.
  kCancelled,  // Client cancelled (schedule or streaming callback).
  kExpired,    // TTFT deadline passed before the first token.
};

// Stable lowercase name used in the per-request JSONL ("finished", ...).
const char* RequestOutcomeName(RequestOutcome outcome);
bool ParseRequestOutcome(const std::string& name, RequestOutcome* outcome);

// One streamed token, delivered to the client callback as it is committed.
struct StreamDelta {
  int64_t request = 0;
  int64_t token = 0;
  float log_prob = 0.0f;
  int64_t index = 0;  // 0-based position in the response.
  double time = 0.0;  // Serving-clock commit instant.
};

// Return false to cancel the request (takes effect at the step boundary;
// the delivered token is kept). The data plane invokes this inline on the
// engine thread, so callbacks must be fast and must not re-enter the
// frontend.
using StreamCallback = std::function<bool(const StreamDelta&)>;

// Per-request outcome row. Times are absolute serving-clock instants;
// ttft/tpot are derived durations (0 when undefined).
struct RequestRecord {
  int64_t id = 0;
  int64_t tenant = 0;
  int64_t priority = 0;
  RequestOutcome outcome = RequestOutcome::kFinished;
  double arrival = 0.0;
  double first_token_time = 0.0;  // 0 when no token was streamed.
  double end_time = 0.0;          // Terminal-transition instant.
  int64_t tokens = 0;             // Tokens streamed before the terminal exit.
  int64_t preemptions = 0;
  double ttft = 0.0;              // first_token_time - arrival.
  double tpot = 0.0;              // Defined for tokens >= 2.
  double ttft_deadline = 0.0;     // Echoed SLO inputs (0 = none).
  double tpot_slo = 0.0;
  bool slo_ok = false;            // Finished with every stated SLO met.
  // Data plane only: the streamed response (empty on the sim plane).
  std::vector<int64_t> response;
  std::vector<float> log_probs;
};

// Derives ttft/tpot/slo_ok from the raw fields already set on `record`
// (arrival, first_token_time, end_time, tokens, outcome, SLO inputs).
void FinalizeRecord(RequestRecord* record, double last_token_time);

struct TenantServingStats {
  int64_t tenant = 0;
  int64_t requests = 0;
  int64_t finished = 0;
  int64_t cancelled = 0;
  int64_t expired = 0;
  int64_t slo_attained = 0;      // Finished requests with slo_ok.
  int64_t goodput_tokens = 0;    // Tokens of SLO-attaining finished requests.
  double goodput = 0.0;          // goodput_tokens / report makespan.
  LatencyDigest ttft;            // Over requests that streamed >= 1 token.
  LatencyDigest tpot;            // Over requests that streamed >= 2 tokens.
};

struct ServingReport {
  double makespan = 0.0;  // Latest end_time across all requests.
  int64_t requests = 0;
  int64_t finished = 0;
  int64_t cancelled = 0;
  int64_t expired = 0;
  int64_t slo_attained = 0;
  double goodput = 0.0;   // Total SLO-attaining finished tokens / makespan.
  std::vector<TenantServingStats> tenants;  // Ascending tenant id.
};

ServingReport BuildServingReport(const std::vector<RequestRecord>& records);

// One JSON object per request (JsonValidate-clean), e.g.
//   {"req":3,"tenant":1,"priority":0,"outcome":"finished","arrival":0.42,
//    "ttft":0.8,"tpot":0.12,"tokens":16,"preemptions":0,"slo_ok":true,
//    "ttft_deadline":1.22,"tpot_slo":0.25}
std::string RequestRecordsToJsonl(const std::vector<RequestRecord>& records);
bool WriteRequestRecordsJsonl(const std::string& path,
                              const std::vector<RequestRecord>& records);

// Expands a generated arrival trace into serving requests with synthetic
// prompt token ids (deterministic given the trace): request i's prompt is
// filled from a per-request forked stream of `seed`.
std::vector<ServingRequest> RequestsFromTrace(const std::vector<ArrivalRecord>& trace,
                                              int64_t vocab_size, uint64_t seed);

}  // namespace hybridflow

#endif  // SRC_SERVING_REQUEST_H_
