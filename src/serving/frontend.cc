#include "src/serving/frontend.h"

#include <algorithm>
#include <limits>
#include <map>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace hybridflow {

ServingFrontend::ServingFrontend(const PolicyNet& net, const ServingFrontendConfig& config,
                                 int kv_ranks)
    : net_(net),
      config_(config),
      kv_ranks_(kv_ranks),
      requests_total_(MetricsRegistry::Global().GetCounter("serving.requests_total",
                                                           {{"plane", "data"}})),
      finished_total_(MetricsRegistry::Global().GetCounter("serving.finished_total",
                                                           {{"plane", "data"}})),
      cancelled_total_(MetricsRegistry::Global().GetCounter("serving.cancelled_total",
                                                            {{"plane", "data"}})),
      expired_total_(MetricsRegistry::Global().GetCounter("serving.expired_total",
                                                          {{"plane", "data"}})) {
  HF_CHECK_GT(kv_ranks_, 0);
  HF_CHECK_GT(config_.block_tokens, 0);
  HF_CHECK_GT(config_.seconds_per_step, 0.0);
}

ServingResult ServingFrontend::Serve(const std::vector<ServingRequest>& requests, bool do_sample,
                                     double temperature, Rng& rng,
                                     const StreamCallback& on_token) {
  const size_t count = requests.size();
  ServingResult result;
  result.records.resize(count);
  requests_total_.Increment(static_cast<double>(count));
  if (count == 0) {
    return result;
  }

  // KV geometry as in RolloutEngine::Run: auto-size to fit everything when
  // unset, else honor the budget but fit the largest request alone.
  KvBlockConfig kv_config;
  kv_config.block_tokens = config_.block_tokens;
  kv_config.enable_prefix_cache = config_.prefix_cache;
  int64_t fit_all = 0;
  int64_t fit_largest = 0;
  for (const ServingRequest& request : requests) {
    HF_CHECK_EQ(request.id, static_cast<int64_t>(&request - requests.data()));
    HF_CHECK_GT(request.max_new_tokens, 0);
    HF_CHECK(!request.prompt.empty());
    const int64_t full = static_cast<int64_t>(request.prompt.size()) + request.max_new_tokens;
    const int64_t blocks = (full + kv_config.block_tokens - 1) / kv_config.block_tokens;
    fit_all += blocks;
    fit_largest = std::max(fit_largest, blocks);
  }
  kv_config.num_blocks =
      config_.num_blocks > 0 ? std::max(config_.num_blocks, fit_largest) : fit_all;
  DistributedKvManager kv(kv_ranks_, kv_config);

  std::vector<RolloutSequence> sequences(count);
  std::vector<IncrementalContext> contexts;
  std::vector<Rng> request_rngs;
  contexts.reserve(count);
  request_rngs.reserve(count);
  RolloutScheduler scheduler(ToSchedulerConfig(config_.scheduler), &kv, &sequences);
  const int64_t event_run =
      config_.event_log != nullptr ? config_.event_log->BeginRun() : 0;
  scheduler.SetEventLog(config_.event_log, event_run);

  // Arrival replay order; request ids index `sequences` directly.
  std::vector<int64_t> by_arrival(count);
  for (size_t i = 0; i < count; ++i) {
    by_arrival[i] = static_cast<int64_t>(i);
  }
  std::stable_sort(by_arrival.begin(), by_arrival.end(), [&requests](int64_t a, int64_t b) {
    return requests[static_cast<size_t>(a)].arrival < requests[static_cast<size_t>(b)].arrival;
  });

  std::vector<double> last_token_time(count, 0.0);
  std::vector<bool> client_cancelled(count, false);
  for (size_t i = 0; i < count; ++i) {
    const ServingRequest& request = requests[i];
    RolloutSequence& sequence = sequences[i];
    sequence.id = request.id;
    sequence.prompt_tokens = static_cast<int64_t>(request.prompt.size());
    sequence.target_new_tokens = request.max_new_tokens;
    sequence.tenant = request.tenant;
    sequence.priority = request.priority;
    sequence.ttft_deadline = request.ttft_deadline;
    if (config_.prefix_cache) {
      sequence.block_hashes = PromptBlockHashes(request.prompt, kv_config.block_tokens);
    }
    contexts.emplace_back(request.prompt, net_.config().context_window);
    request_rngs.push_back(rng.Fork(static_cast<uint64_t>(i)));
    RequestRecord& record = result.records[i];
    record.id = request.id;
    record.tenant = request.tenant;
    record.priority = request.priority;
    record.arrival = request.arrival;
    record.ttft_deadline = request.ttft_deadline;
    record.tpot_slo = request.tpot_slo;
  }

  double now = 0.0;
  size_t next_arrival = 0;
  std::vector<bool> enqueued(count, false);
  const auto admit_arrivals = [&]() {
    while (next_arrival < count &&
           requests[static_cast<size_t>(by_arrival[next_arrival])].arrival <= now) {
      const int64_t id = by_arrival[next_arrival];
      const size_t idx = static_cast<size_t>(id);
      const ServingRequest& request = requests[idx];
      // A cancellation scheduled at-or-before arrival never reaches the
      // scheduler: the client hung up before the request was accepted.
      if (request.cancel_at > 0.0 && request.cancel_at <= request.arrival) {
        sequences[idx].state = SequenceState::kCancelled;
        client_cancelled[idx] = true;
      } else {
        scheduler.Enqueue(id);
        enqueued[idx] = true;
      }
      ++next_arrival;
    }
  };
  // Applies the client cancellation signals (declarative schedule and
  // callback refusals); legal only between CommitStep and the next
  // BeginStep, never mid-plan.
  const auto apply_cancellations = [&]() {
    for (size_t i = 0; i < count; ++i) {
      RolloutSequence& sequence = sequences[i];
      if (!enqueued[i] ||
          (sequence.state != SequenceState::kWaiting &&
           sequence.state != SequenceState::kPrefill &&
           sequence.state != SequenceState::kDecode)) {
        continue;  // Not yet accepted, or already terminal.
      }
      const ServingRequest& request = requests[i];
      const bool timed_out = request.cancel_at > 0.0 && request.cancel_at <= now;
      const bool streamed_enough = request.cancel_after_tokens > 0 &&
                                   sequence.generated >= request.cancel_after_tokens;
      if (timed_out || streamed_enough || client_cancelled[i]) {
        scheduler.Cancel(sequence.id, /*expired=*/false);
        client_cancelled[i] = true;
      }
    }
  };

  admit_arrivals();
  while (scheduler.HasWork() || next_arrival < count) {
    if (!scheduler.HasWork()) {
      // Idle gap: jump the virtual clock to the next arrival.
      now = std::max(now, requests[static_cast<size_t>(by_arrival[next_arrival])].arrival);
      admit_arrivals();
      apply_cancellations();
      if (!scheduler.HasWork()) {
        continue;
      }
    }
    scheduler.SetSimNow(now);
    const StepPlan plan = scheduler.BeginStep();
    if (plan.empty()) {
      // Expiry drained every remaining sequence this step; no forward runs.
      now += config_.seconds_per_step;
      admit_arrivals();
      continue;
    }

    std::vector<int64_t> rows;
    rows.reserve(static_cast<size_t>(plan.rows()));
    for (const PrefillChunk& chunk : plan.prefill) {
      if (chunk.completes) {
        rows.push_back(chunk.id);
      }
    }
    rows.insert(rows.end(), plan.decode.begin(), plan.decode.end());
    std::vector<std::vector<int64_t>> step_contexts;
    step_contexts.reserve(rows.size());
    for (int64_t id : rows) {
      step_contexts.push_back(contexts[static_cast<size_t>(id)].tokens());
    }

    // The step's tokens commit at the step-end clock.
    now += config_.seconds_per_step;
    scheduler.SetSimNow(now);

    std::vector<int64_t> eos_finished;
    const Tensor logits = rows.empty() ? Tensor() : net_.Forward(step_contexts);
    for (size_t a = 0; a < rows.size(); ++a) {
      const int64_t id = rows[a];
      const size_t idx = static_cast<size_t>(id);
      float log_prob = 0.0f;
      const int64_t token = SampleLogitsRow(logits, static_cast<int64_t>(a), temperature,
                                            do_sample, request_rngs[idx], &log_prob);
      RequestRecord& record = result.records[idx];
      if (record.tokens == 0) {
        record.first_token_time = now;
      }
      record.tokens += 1;
      last_token_time[idx] = now;
      record.response.push_back(token);
      record.log_probs.push_back(log_prob);
      contexts[idx].Push(token);
      if (on_token != nullptr) {
        StreamDelta delta;
        delta.request = id;
        delta.token = token;
        delta.log_prob = log_prob;
        delta.index = record.tokens - 1;
        delta.time = now;
        if (!on_token(delta)) {
          client_cancelled[idx] = true;  // Applied at the step boundary.
        }
      }
    }
    scheduler.CommitStep(plan, eos_finished);
    admit_arrivals();
    apply_cancellations();
  }

  // Outcomes from terminal sequence states; every path must be terminal.
  for (size_t i = 0; i < count; ++i) {
    const RolloutSequence& sequence = sequences[i];
    RequestRecord& record = result.records[i];
    switch (sequence.state) {
      case SequenceState::kFinished:
        record.outcome = RequestOutcome::kFinished;
        record.end_time = last_token_time[i];
        break;
      case SequenceState::kCancelled:
        record.outcome = RequestOutcome::kCancelled;
        record.end_time = std::max(now, record.arrival);
        break;
      case SequenceState::kExpired:
        record.outcome = RequestOutcome::kExpired;
        record.end_time = std::max(now, record.arrival);
        break;
      default:
        HF_CHECK_MSG(false, "serving request ended in a non-terminal state");
    }
    record.preemptions = sequence.preemptions;
    FinalizeRecord(&record, last_token_time[i]);
  }
  result.report = BuildServingReport(result.records);
  result.scheduler_stats = scheduler.stats();
  result.kv_high_water_blocks = kv.high_water_blocks();
  result.kv_leaked_blocks = kv.rank(0).used_blocks();

  finished_total_.Increment(static_cast<double>(result.report.finished));
  cancelled_total_.Increment(static_cast<double>(result.report.cancelled));
  expired_total_.Increment(static_cast<double>(result.report.expired));
  for (const TenantServingStats& tenant : result.report.tenants) {
    const MetricLabels labels = {{"plane", "serving"},
                                 {"tenant", std::to_string(tenant.tenant)}};
    MetricsRegistry::Global()
        .GetCounter("serving.slo_attained_total", labels)
        .Increment(static_cast<double>(tenant.slo_attained));
    MetricsRegistry::Global()
        .GetCounter("serving.goodput_tokens_total", labels)
        .Increment(static_cast<double>(tenant.goodput_tokens));
    QuantileHistogram& ttft_us = MetricsRegistry::Global().GetQuantileHistogram(
        "rollout.ttft_us", QuantileHistogram::kDefaultRelativeError, labels);
    QuantileHistogram& tpot_us = MetricsRegistry::Global().GetQuantileHistogram(
        "rollout.tpot_us", QuantileHistogram::kDefaultRelativeError, labels);
    for (const RequestRecord& record : result.records) {
      if (record.tenant != tenant.tenant) {
        continue;
      }
      if (record.tokens >= 1) {
        ttft_us.Observe(record.ttft * 1e6);  // Virtual seconds -> micros.
      }
      if (record.tokens >= 2) {
        tpot_us.Observe(record.tpot * 1e6);
      }
    }
  }
  return result;
}

}  // namespace hybridflow
