#include "src/serving/request.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/obs/json_util.h"

namespace hybridflow {

RolloutSchedulerConfig ToSchedulerConfig(const ServingPolicyConfig& config) {
  RolloutSchedulerConfig scheduler;
  scheduler.policy = config.policy;
  scheduler.admission = config.admission;
  scheduler.reserve_tokens = config.reserve_tokens;
  scheduler.max_running = config.max_running;
  scheduler.prefill_chunk_tokens = config.prefill_chunk_tokens;
  scheduler.fair_quantum_tokens = config.fair_quantum_tokens;
  scheduler.tenant_weights = config.tenant_weights;
  scheduler.expire_overdue = config.expire_overdue;
  return scheduler;
}

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kFinished:
      return "finished";
    case RequestOutcome::kCancelled:
      return "cancelled";
    case RequestOutcome::kExpired:
      return "expired";
  }
  return "unknown";
}

bool ParseRequestOutcome(const std::string& name, RequestOutcome* outcome) {
  static constexpr RequestOutcome kAll[] = {RequestOutcome::kFinished, RequestOutcome::kCancelled,
                                            RequestOutcome::kExpired};
  for (RequestOutcome candidate : kAll) {
    if (name == RequestOutcomeName(candidate)) {
      *outcome = candidate;
      return true;
    }
  }
  return false;
}

void FinalizeRecord(RequestRecord* record, double last_token_time) {
  if (record->tokens >= 1) {
    record->ttft = record->first_token_time - record->arrival;
  }
  if (record->tokens >= 2) {
    record->tpot = (last_token_time - record->first_token_time) /
                   static_cast<double>(record->tokens - 1);
  }
  record->slo_ok =
      record->outcome == RequestOutcome::kFinished &&
      (record->ttft_deadline <= 0.0 || record->first_token_time <= record->ttft_deadline) &&
      (record->tpot_slo <= 0.0 || record->tokens < 2 || record->tpot <= record->tpot_slo);
}

ServingReport BuildServingReport(const std::vector<RequestRecord>& records) {
  ServingReport report;
  std::map<int64_t, TenantServingStats> tenants;
  std::map<int64_t, std::vector<double>> ttfts;
  std::map<int64_t, std::vector<double>> tpots;
  for (const RequestRecord& record : records) {
    report.makespan = std::max(report.makespan, record.end_time);
    TenantServingStats& tenant = tenants[record.tenant];
    tenant.tenant = record.tenant;
    tenant.requests += 1;
    switch (record.outcome) {
      case RequestOutcome::kFinished:
        tenant.finished += 1;
        break;
      case RequestOutcome::kCancelled:
        tenant.cancelled += 1;
        break;
      case RequestOutcome::kExpired:
        tenant.expired += 1;
        break;
    }
    if (record.slo_ok) {
      tenant.slo_attained += 1;
      tenant.goodput_tokens += record.tokens;
    }
    if (record.tokens >= 1) {
      ttfts[record.tenant].push_back(record.ttft);
    }
    if (record.tokens >= 2) {
      tpots[record.tenant].push_back(record.tpot);
    }
  }
  for (auto& [id, tenant] : tenants) {
    tenant.ttft = DigestValues(std::move(ttfts[id]));
    tenant.tpot = DigestValues(std::move(tpots[id]));
    if (report.makespan > 0.0) {
      tenant.goodput = static_cast<double>(tenant.goodput_tokens) / report.makespan;
    }
    report.requests += tenant.requests;
    report.finished += tenant.finished;
    report.cancelled += tenant.cancelled;
    report.expired += tenant.expired;
    report.slo_attained += tenant.slo_attained;
    report.goodput += tenant.goodput;
    report.tenants.push_back(tenant);
  }
  return report;
}

std::string RequestRecordsToJsonl(const std::vector<RequestRecord>& records) {
  std::ostringstream out;
  for (const RequestRecord& record : records) {
    out << "{\"req\":" << record.id << ",\"tenant\":" << record.tenant
        << ",\"priority\":" << record.priority << ",\"outcome\":\""
        << RequestOutcomeName(record.outcome) << "\",\"arrival\":" << JsonNumber(record.arrival)
        << ",\"ttft\":" << JsonNumber(record.ttft) << ",\"tpot\":" << JsonNumber(record.tpot)
        << ",\"tokens\":" << record.tokens << ",\"preemptions\":" << record.preemptions
        << ",\"slo_ok\":" << (record.slo_ok ? "true" : "false")
        << ",\"ttft_deadline\":" << JsonNumber(record.ttft_deadline)
        << ",\"tpot_slo\":" << JsonNumber(record.tpot_slo) << "}\n";
  }
  return out.str();
}

bool WriteRequestRecordsJsonl(const std::string& path,
                              const std::vector<RequestRecord>& records) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << RequestRecordsToJsonl(records);
  return static_cast<bool>(file);
}

std::vector<ServingRequest> RequestsFromTrace(const std::vector<ArrivalRecord>& trace,
                                              int64_t vocab_size, uint64_t seed) {
  HF_CHECK_GT(vocab_size, 0);
  Rng root(seed);
  std::vector<ServingRequest> requests;
  requests.reserve(trace.size());
  for (const ArrivalRecord& record : trace) {
    ServingRequest request;
    request.id = record.index;
    request.tenant = record.tenant;
    request.priority = record.priority;
    request.arrival = record.arrival;
    request.max_new_tokens = record.target_new_tokens;
    request.ttft_deadline = record.ttft_deadline;
    request.tpot_slo = record.tpot_slo;
    Rng prompt_rng = root.Fork(static_cast<uint64_t>(record.index));
    request.prompt.reserve(static_cast<size_t>(record.prompt_tokens));
    for (int64_t i = 0; i < record.prompt_tokens; ++i) {
      request.prompt.push_back(prompt_rng.UniformInt(0, vocab_size - 1));
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace hybridflow
