#include "src/parallel/parallel_config.h"

#include "src/common/strings.h"

namespace hybridflow {

std::string ParallelConfig::ToString() const {
  return StrFormat("%d-%d-%d", pp, tp, dp);
}

std::string GenParallelConfig::ToString() const {
  return StrFormat("%d-%d", pp, tp);
}

bool GenConfigCompatible(const ParallelConfig& train, const GenParallelConfig& gen) {
  if (gen.pp < 1 || gen.tp < 1) {
    return false;
  }
  return train.pp % gen.pp == 0 && train.tp % gen.tp == 0;
}

int MicroDpSize(const ParallelConfig& train, const GenParallelConfig& gen) {
  HF_CHECK_MSG(GenConfigCompatible(train, gen),
               "generation strategy " << gen.ToString() << " incompatible with training "
                                      << train.ToString());
  return (train.pp / gen.pp) * (train.tp / gen.tp);
}

}  // namespace hybridflow
