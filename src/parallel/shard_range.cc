#include "src/parallel/shard_range.h"

#include <algorithm>

namespace hybridflow {

double FracInterval::OverlapWith(const FracInterval& other) const {
  double lo = std::max(begin, other.begin);
  double hi = std::min(end, other.end);
  return std::max(0.0, hi - lo);
}

double ShardRange::OverlapFraction(const ShardRange& other) const {
  return layers.OverlapWith(other.layers) * tensor.OverlapWith(other.tensor);
}

ShardRange TrainShard(const TrainCoords& coords, const ParallelConfig& train) {
  ShardRange shard;
  shard.layers = {static_cast<double>(coords.p) / train.pp,
                  static_cast<double>(coords.p + 1) / train.pp};
  shard.tensor = {static_cast<double>(coords.t) / train.tp,
                  static_cast<double>(coords.t + 1) / train.tp};
  return shard;
}

ShardRange GenShard(const GenCoords& coords, const GenParallelConfig& gen) {
  ShardRange shard;
  shard.layers = {static_cast<double>(coords.pg) / gen.pp,
                  static_cast<double>(coords.pg + 1) / gen.pp};
  shard.tensor = {static_cast<double>(coords.tg) / gen.tp,
                  static_cast<double>(coords.tg + 1) / gen.tp};
  return shard;
}

ReshardMemoryProfile ComputeReshardMemory(const ProcessGroups& groups, int rank,
                                          const GenParallelConfig& gen,
                                          GenGroupingMethod method) {
  const ParallelConfig& train = groups.train_config();
  TrainCoords train_coords = groups.TrainCoordsOf(rank);
  GenCoords gen_coords = groups.GenCoordsOf(rank, gen, method);
  ShardRange train_shard = TrainShard(train_coords, train);
  ShardRange gen_shard = GenShard(gen_coords, gen);

  ReshardMemoryProfile profile;
  profile.train_fraction = train_shard.Fraction();
  profile.gen_fraction = gen_shard.Fraction();
  profile.overlap_fraction = train_shard.OverlapFraction(gen_shard);
  // Training weights not reusable inside the generation buffer must be kept
  // in separate memory across the generation stage (grey boxes in Fig. 8a).
  profile.redundant_fraction = profile.train_fraction - profile.overlap_fraction;
  if (method == GenGroupingMethod::kZeroRedundancy) {
    // Only the generation shard is materialized; the all-gather is confined
    // to the micro DP group, so the peak equals the generation shard.
    profile.peak_fraction = profile.gen_fraction;
  } else {
    // Vanilla grouping gathers all parameters of the model replica on every
    // GPU before re-partitioning (§5.4): peak is the full model.
    profile.peak_fraction = 1.0;
  }
  return profile;
}

}  // namespace hybridflow
