// Weight-shard geometry: which fraction of the model a rank holds.
//
// A 3D-parallel shard is a rectangle in (layer, tensor) space: pipeline
// parallelism slices layers, tensor parallelism slices each tensor. The
// fraction of total model bytes a rank holds is the product of the two
// interval lengths. Overlap between a rank's training shard and its
// generation shard determines the memory redundancy of resharding (§5.3,
// Table 2): the zero-redundancy grouping guarantees the training shard is a
// sub-rectangle of the generation shard.
#ifndef SRC_PARALLEL_SHARD_RANGE_H_
#define SRC_PARALLEL_SHARD_RANGE_H_

#include "src/parallel/parallel_config.h"
#include "src/parallel/process_groups.h"

namespace hybridflow {

// Half-open interval of fractions in [0, 1].
struct FracInterval {
  double begin = 0.0;
  double end = 0.0;

  double length() const { return end - begin; }
  bool Contains(const FracInterval& other) const {
    return begin <= other.begin + 1e-12 && other.end <= end + 1e-12;
  }
  double OverlapWith(const FracInterval& other) const;
};

struct ShardRange {
  FracInterval layers;  // Pipeline dimension.
  FracInterval tensor;  // Tensor dimension.

  // Fraction of total model bytes covered.
  double Fraction() const { return layers.length() * tensor.length(); }
  // Fraction of total model bytes covered by the intersection.
  double OverlapFraction(const ShardRange& other) const;
  bool Contains(const ShardRange& other) const {
    return layers.Contains(other.layers) && tensor.Contains(other.tensor);
  }
};

// Shard held by a rank during training: 1/(p*t) of the model.
ShardRange TrainShard(const TrainCoords& coords, const ParallelConfig& train);

// Shard needed by a rank during generation: 1/(p_g*t_g) of the model.
ShardRange GenShard(const GenCoords& coords, const GenParallelConfig& gen);

// Per-GPU redundant memory fraction: the part of the generation shard NOT
// covered by the training shard that must be held in a separate buffer,
// plus (for non-overlapping methods) the training shard kept aside. Matches
// the Table 2 "Redundancy" row when aggregated.
struct ReshardMemoryProfile {
  double train_fraction = 0.0;     // Training shard size / M.
  double gen_fraction = 0.0;       // Generation shard size / M.
  double overlap_fraction = 0.0;   // Overlap size / M.
  double redundant_fraction = 0.0; // Extra copy of training weights kept / M.
  double peak_fraction = 0.0;      // Peak parameter memory during transition / M.
};

// Computes the per-rank memory profile of a training->generation transition
// for a given grouping method.
ReshardMemoryProfile ComputeReshardMemory(const ProcessGroups& groups, int rank,
                                          const GenParallelConfig& gen,
                                          GenGroupingMethod method);

}  // namespace hybridflow

#endif  // SRC_PARALLEL_SHARD_RANGE_H_
