// Parallelism strategy descriptors.
//
// Paper convention (§5.1): training uses p-t-d 3D parallel groups; the
// generation stage uses p_g-t_g-d_g-d groups where the micro data-parallel
// size d_g = (p*t) / (p_g*t_g) turns each training DP replica into d_g
// generation replicas, so N_a = p*t*d = p_g*t_g*d_g*d.
#ifndef SRC_PARALLEL_PARALLEL_CONFIG_H_
#define SRC_PARALLEL_PARALLEL_CONFIG_H_

#include <string>

#include "src/common/check.h"

namespace hybridflow {

struct ParallelConfig {
  int pp = 1;  // Pipeline-parallel size (p).
  int tp = 1;  // Tensor-parallel size (t).
  int dp = 1;  // Data-parallel size (d).

  int world_size() const { return pp * tp * dp; }
  int model_parallel_size() const { return pp * tp; }

  bool Valid() const { return pp >= 1 && tp >= 1 && dp >= 1; }

  std::string ToString() const;

  bool operator==(const ParallelConfig& other) const {
    return pp == other.pp && tp == other.tp && dp == other.dp;
  }
};

struct GenParallelConfig {
  int pp = 1;  // p_g.
  int tp = 1;  // t_g.

  std::string ToString() const;

  bool operator==(const GenParallelConfig& other) const {
    return pp == other.pp && tp == other.tp;
  }
};

// Micro data-parallel size d_g = (p*t)/(p_g*t_g). Checks divisibility: the
// generation strategy must evenly subdivide the training model-parallel
// block (§5.1).
int MicroDpSize(const ParallelConfig& train, const GenParallelConfig& gen);

// True when `gen` is a legal generation strategy for `train`:
// p_g | p, t_g | t.
bool GenConfigCompatible(const ParallelConfig& train, const GenParallelConfig& gen);

}  // namespace hybridflow

#endif  // SRC_PARALLEL_PARALLEL_CONFIG_H_
