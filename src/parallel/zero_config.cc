#include "src/parallel/zero_config.h"

namespace hybridflow {

namespace {
constexpr double kParamBytes = 2.0;      // BF16 parameters.
constexpr double kGradBytes = 4.0;       // FP32 gradients.
constexpr double kOptimizerBytes = 12.0; // FP32 master weights + Adam m, v.
}  // namespace

double ZeroTrainStateBytesPerGpu(double num_params, const ZeroConfig& config) {
  HF_CHECK_GE(config.dp, 1);
  const double dp = static_cast<double>(config.dp);
  double params = kParamBytes * num_params;
  double grads = kGradBytes * num_params;
  double optimizer = kOptimizerBytes * num_params;
  switch (config.stage) {
    case ZeroStage::kNone:
      break;
    case ZeroStage::kStage1:
      optimizer /= dp;
      break;
    case ZeroStage::kStage2:
      optimizer /= dp;
      grads /= dp;
      break;
    case ZeroStage::kStage3:
      optimizer /= dp;
      grads /= dp;
      params /= dp;
      break;
  }
  return params + grads + optimizer;
}

double ZeroParamBytesPerGpu(double num_params, const ZeroConfig& config) {
  HF_CHECK_GE(config.dp, 1);
  double params = kParamBytes * num_params;
  if (config.stage == ZeroStage::kStage3) {
    params /= static_cast<double>(config.dp);
  }
  return params;
}

double ZeroExtraCommBytesPerStep(double num_params, const ZeroConfig& config) {
  HF_CHECK_GE(config.dp, 1);
  if (config.stage != ZeroStage::kStage3 || config.dp == 1) {
    return 0.0;
  }
  // Forward and backward each require an all-gather of BF16 parameters:
  // each GPU receives (dp-1)/dp of the full parameter bytes, twice.
  const double dp = static_cast<double>(config.dp);
  return 2.0 * (dp - 1.0) / dp * kParamBytes * num_params;
}

}  // namespace hybridflow
