#include "src/parallel/process_groups.h"

#include <utility>

namespace hybridflow {

ProcessGroups::ProcessGroups(const ParallelConfig& train, std::vector<DeviceId> devices)
    : train_(train), devices_(std::move(devices)) {
  HF_CHECK(train_.Valid());
  HF_CHECK_EQ(static_cast<int>(devices_.size()), train_.world_size());
}

TrainCoords ProcessGroups::TrainCoordsOf(int rank) const {
  HF_CHECK_GE(rank, 0);
  HF_CHECK_LT(rank, world_size());
  TrainCoords coords;
  coords.t = rank % train_.tp;
  coords.p = (rank / train_.tp) % train_.pp;
  coords.d = rank / (train_.tp * train_.pp);
  return coords;
}

int ProcessGroups::RankOf(const TrainCoords& coords) const {
  HF_CHECK_GE(coords.t, 0);
  HF_CHECK_LT(coords.t, train_.tp);
  HF_CHECK_GE(coords.p, 0);
  HF_CHECK_LT(coords.p, train_.pp);
  HF_CHECK_GE(coords.d, 0);
  HF_CHECK_LT(coords.d, train_.dp);
  return coords.d * train_.pp * train_.tp + coords.p * train_.tp + coords.t;
}

std::vector<int> ProcessGroups::TpGroup(int rank) const {
  TrainCoords coords = TrainCoordsOf(rank);
  std::vector<int> group;
  group.reserve(train_.tp);
  for (int t = 0; t < train_.tp; ++t) {
    group.push_back(RankOf({coords.p, t, coords.d}));
  }
  return group;
}

std::vector<int> ProcessGroups::PpGroup(int rank) const {
  TrainCoords coords = TrainCoordsOf(rank);
  std::vector<int> group;
  group.reserve(train_.pp);
  for (int p = 0; p < train_.pp; ++p) {
    group.push_back(RankOf({p, coords.t, coords.d}));
  }
  return group;
}

std::vector<int> ProcessGroups::DpGroup(int rank) const {
  TrainCoords coords = TrainCoordsOf(rank);
  std::vector<int> group;
  group.reserve(train_.dp);
  for (int d = 0; d < train_.dp; ++d) {
    group.push_back(RankOf({coords.p, coords.t, d}));
  }
  return group;
}

std::vector<int> ProcessGroups::ModelParallelBlock(int rank) const {
  TrainCoords coords = TrainCoordsOf(rank);
  std::vector<int> group;
  group.reserve(train_.model_parallel_size());
  for (int p = 0; p < train_.pp; ++p) {
    for (int t = 0; t < train_.tp; ++t) {
      group.push_back(RankOf({p, t, coords.d}));
    }
  }
  return group;
}

GenCoords ProcessGroups::GenCoordsOf(int rank, const GenParallelConfig& gen,
                                     GenGroupingMethod method) const {
  HF_CHECK(GenConfigCompatible(train_, gen));
  TrainCoords coords = TrainCoordsOf(rank);
  const int st = train_.tp / gen.tp;  // Stride along the tensor dimension.
  const int sp = train_.pp / gen.pp;  // Stride along the pipeline dimension.
  GenCoords out;
  out.d = coords.d;
  if (method == GenGroupingMethod::kZeroRedundancy) {
    // Strided TP/PP groups: the generation shard index is which contiguous
    // super-slice the training shard falls in, so training weights are
    // always a sub-slice of generation weights on the same GPU.
    out.tg = coords.t / st;
    out.pg = coords.p / sp;
    out.micro_dp = (coords.p % sp) * st + (coords.t % st);
  } else {
    // Vanilla consecutive-rank grouping applied to the generation sizes
    // within the model-parallel block.
    const int local = coords.p * train_.tp + coords.t;  // Index in [0, p*t).
    out.tg = local % gen.tp;
    out.pg = (local / gen.tp) % gen.pp;
    out.micro_dp = local / (gen.tp * gen.pp);
  }
  return out;
}

int ProcessGroups::RankOfGen(const GenCoords& coords, const GenParallelConfig& gen,
                             GenGroupingMethod method) const {
  HF_CHECK(GenConfigCompatible(train_, gen));
  const int st = train_.tp / gen.tp;
  const int sp = train_.pp / gen.pp;
  TrainCoords train_coords;
  train_coords.d = coords.d;
  if (method == GenGroupingMethod::kZeroRedundancy) {
    const int p_off = coords.micro_dp / st;
    const int t_off = coords.micro_dp % st;
    train_coords.t = coords.tg * st + t_off;
    train_coords.p = coords.pg * sp + p_off;
  } else {
    const int local = coords.micro_dp * gen.tp * gen.pp + coords.pg * gen.tp + coords.tg;
    train_coords.t = local % train_.tp;
    train_coords.p = local / train_.tp;
  }
  return RankOf(train_coords);
}

std::vector<int> ProcessGroups::GenTpGroup(int rank, const GenParallelConfig& gen,
                                           GenGroupingMethod method) const {
  GenCoords coords = GenCoordsOf(rank, gen, method);
  std::vector<int> group;
  group.reserve(gen.tp);
  for (int tg = 0; tg < gen.tp; ++tg) {
    GenCoords member = coords;
    member.tg = tg;
    group.push_back(RankOfGen(member, gen, method));
  }
  return group;
}

std::vector<int> ProcessGroups::GenPpGroup(int rank, const GenParallelConfig& gen,
                                           GenGroupingMethod method) const {
  GenCoords coords = GenCoordsOf(rank, gen, method);
  std::vector<int> group;
  group.reserve(gen.pp);
  for (int pg = 0; pg < gen.pp; ++pg) {
    GenCoords member = coords;
    member.pg = pg;
    group.push_back(RankOfGen(member, gen, method));
  }
  return group;
}

std::vector<int> ProcessGroups::MicroDpGroup(int rank, const GenParallelConfig& gen,
                                             GenGroupingMethod method) const {
  GenCoords coords = GenCoordsOf(rank, gen, method);
  const int micro_dp_size = MicroDpSize(train_, gen);
  std::vector<int> group;
  group.reserve(micro_dp_size);
  for (int m = 0; m < micro_dp_size; ++m) {
    GenCoords member = coords;
    member.micro_dp = m;
    group.push_back(RankOfGen(member, gen, method));
  }
  return group;
}

DeviceId ProcessGroups::DeviceOf(int rank) const {
  HF_CHECK_GE(rank, 0);
  HF_CHECK_LT(rank, world_size());
  return devices_[rank];
}

std::vector<DeviceId> ProcessGroups::DevicesOf(const std::vector<int>& ranks) const {
  std::vector<DeviceId> devices;
  devices.reserve(ranks.size());
  for (int rank : ranks) {
    devices.push_back(DeviceOf(rank));
  }
  return devices;
}

}  // namespace hybridflow
