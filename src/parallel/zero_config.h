// ZeRO / FSDP sharding descriptors for memory accounting.
//
// ZeRO progressively shards training state across the data-parallel group
// (§2.1): stage 1 shards optimizer states, stage 2 adds gradients, stage 3
// adds parameters. FSDP is modeled as ZeRO-3. These descriptors drive the
// per-GPU memory model for the DeepSpeed-Chat and OpenRLHF baselines and
// for HybridFlow's FsdpWorker/ZeroWorker paths.
#ifndef SRC_PARALLEL_ZERO_CONFIG_H_
#define SRC_PARALLEL_ZERO_CONFIG_H_

#include "src/common/check.h"
#include "src/model/model_spec.h"

namespace hybridflow {

enum class ZeroStage {
  kNone = 0,   // Plain DDP: everything replicated.
  kStage1 = 1, // Optimizer states sharded.
  kStage2 = 2, // + gradients sharded.
  kStage3 = 3, // + parameters sharded.
};

struct ZeroConfig {
  ZeroStage stage = ZeroStage::kStage3;
  int dp = 1;  // Sharding group size.
};

// Per-GPU bytes of training state (params + grads + optimizer) for a model
// of `num_params` parameters under `config`. Mixed precision: BF16 params
// (2B), FP32 grads (4B), FP32 master weights + Adam moments (12B).
double ZeroTrainStateBytesPerGpu(double num_params, const ZeroConfig& config);

// Per-GPU parameter bytes alone (what generation must keep resident).
double ZeroParamBytesPerGpu(double num_params, const ZeroConfig& config);

// Extra communication per training step relative to plain DP, in bytes per
// GPU: ZeRO-3 must all-gather parameters for forward and backward.
double ZeroExtraCommBytesPerStep(double num_params, const ZeroConfig& config);

}  // namespace hybridflow

#endif  // SRC_PARALLEL_ZERO_CONFIG_H_
