// Rank algebra for 3D parallel groups in training and generation.
//
// Training grouping (§5.3, Megatron convention): TP groups take consecutive
// ranks, PP groups stride by t, DP groups stride by p*t. Rank layout:
//   rank = d_idx * (p*t) + p_idx * t + t_idx.
//
// Generation regrouping supports both methods compared in §5.3 / Figure 8:
//   * kVanilla (HybridFlow-V): reuse the consecutive-rank method with the
//     generation sizes; training and generation shards may not overlap on a
//     GPU, creating weight redundancy.
//   * kZeroRedundancy (HybridFlow): generation TP/PP groups select ranks at
//     stride t/t_g and p/p_g; micro DP groups take consecutive ranks. Every
//     GPU's training shard is then a sub-slice of its generation shard —
//     zero redundancy.
#ifndef SRC_PARALLEL_PROCESS_GROUPS_H_
#define SRC_PARALLEL_PROCESS_GROUPS_H_

#include <vector>

#include "src/parallel/parallel_config.h"
#include "src/sim/topology.h"

namespace hybridflow {

struct TrainCoords {
  int p = 0;  // Pipeline stage index.
  int t = 0;  // Tensor shard index.
  int d = 0;  // Data-parallel replica index.

  bool operator==(const TrainCoords& other) const {
    return p == other.p && t == other.t && d == other.d;
  }
};

struct GenCoords {
  int pg = 0;        // Generation pipeline stage index.
  int tg = 0;        // Generation tensor shard index.
  int micro_dp = 0;  // Micro data-parallel replica index within the block.
  int d = 0;         // Training DP replica index (unchanged by regrouping).

  bool operator==(const GenCoords& other) const {
    return pg == other.pg && tg == other.tg && micro_dp == other.micro_dp && d == other.d;
  }
};

enum class GenGroupingMethod {
  kVanilla,         // HybridFlow-V.
  kZeroRedundancy,  // HybridFlow (§5.3 new grouping).
};

class ProcessGroups {
 public:
  // `devices` maps rank -> physical device; size must equal train.world_size().
  ProcessGroups(const ParallelConfig& train, std::vector<DeviceId> devices);

  const ParallelConfig& train_config() const { return train_; }
  int world_size() const { return train_.world_size(); }

  // --- Training-side groups -----------------------------------------------
  TrainCoords TrainCoordsOf(int rank) const;
  int RankOf(const TrainCoords& coords) const;
  std::vector<int> TpGroup(int rank) const;  // Ranks sharing (p, d).
  std::vector<int> PpGroup(int rank) const;  // Ranks sharing (t, d).
  std::vector<int> DpGroup(int rank) const;  // Ranks sharing (p, t).
  // All ranks in the same model-parallel block (same d): the p*t ranks that
  // jointly hold one model replica.
  std::vector<int> ModelParallelBlock(int rank) const;

  // --- Generation-side groups ---------------------------------------------
  GenCoords GenCoordsOf(int rank, const GenParallelConfig& gen, GenGroupingMethod method) const;
  // Inverse mapping within a block.
  int RankOfGen(const GenCoords& coords, const GenParallelConfig& gen,
                GenGroupingMethod method) const;
  std::vector<int> GenTpGroup(int rank, const GenParallelConfig& gen,
                              GenGroupingMethod method) const;
  std::vector<int> GenPpGroup(int rank, const GenParallelConfig& gen,
                              GenGroupingMethod method) const;
  std::vector<int> MicroDpGroup(int rank, const GenParallelConfig& gen,
                                GenGroupingMethod method) const;

  // --- Device mapping -------------------------------------------------------
  DeviceId DeviceOf(int rank) const;
  std::vector<DeviceId> DevicesOf(const std::vector<int>& ranks) const;
  const std::vector<DeviceId>& devices() const { return devices_; }

 private:
  ParallelConfig train_;
  std::vector<DeviceId> devices_;
};

}  // namespace hybridflow

#endif  // SRC_PARALLEL_PROCESS_GROUPS_H_
