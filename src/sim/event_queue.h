// Discrete-event simulation core: a virtual clock plus an ordered queue of
// timestamped callbacks. Events scheduled at equal times run in FIFO order.
//
// The higher-level scheduling in HybridFlow uses per-device timelines
// (timeline.h); the event queue is the general substrate under it and is
// exposed for components that need time-triggered behaviour (e.g. failure
// injection in tests).
//
// Concurrency: thread-compatible, not thread-safe. A queue (and everything
// it drives — DesExecutor, ClusterState) is owned by the single controller
// thread; callbacks run on that thread and may schedule further events.
// Cross-thread use requires external synchronization by design: simulated
// time must advance deterministically, so we keep locks out of this layer.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/check.h"

namespace hybridflow {

using SimTime = double;  // Seconds of virtual time.

class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }
  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }

  // Schedules `callback` to run at absolute virtual time `when`.
  // `when` must not be in the past.
  void ScheduleAt(SimTime when, Callback callback);

  // Schedules `callback` after a non-negative virtual delay.
  void ScheduleAfter(SimTime delay, Callback callback) { ScheduleAt(now_ + delay, std::move(callback)); }

  // Runs a single event. Returns false when the queue is empty.
  bool Step();

  // Runs events until the queue drains. Returns the final virtual time.
  SimTime RunUntilIdle();

  // Runs events with timestamps <= `deadline`, then sets now() = deadline.
  void RunUntil(SimTime deadline);

 private:
  struct Event {
    SimTime when;
    uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace hybridflow

#endif  // SRC_SIM_EVENT_QUEUE_H_
