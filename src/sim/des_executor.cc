#include "src/sim/des_executor.h"

#include <algorithm>

#include "src/common/check.h"

namespace hybridflow {

DesExecutor::DesExecutor(const ClusterSpec& spec)
    : spec_(spec), device_queues_(static_cast<size_t>(spec.world_size())) {}

DesExecutor::OpId DesExecutor::Submit(const std::string& name, const std::string& category,
                                      const std::vector<DeviceId>& devices, SimTime duration,
                                      const std::vector<OpId>& dependencies) {
  HF_CHECK(!devices.empty());
  HF_CHECK_GE(duration, 0.0);
  const OpId id = static_cast<OpId>(ops_.size());
  Op op;
  op.name = name;
  op.category = category;
  op.devices = devices;
  op.duration = duration;
  for (OpId dep : dependencies) {
    HF_CHECK_GE(dep, 0);
    HF_CHECK_LT(dep, id);
    if (!ops_[static_cast<size_t>(dep)].finished) {
      op.unmet_dependencies += 1;
      ops_[static_cast<size_t>(dep)].dependents.push_back(id);
    }
  }
  for (DeviceId device : devices) {
    HF_CHECK_GE(device, 0);
    HF_CHECK_LT(device, spec_.world_size());
    device_queues_[static_cast<size_t>(device)].push_back(id);
  }
  ops_.push_back(std::move(op));
  spans_.push_back(TraceSpan{name, category, devices, 0.0, 0.0, 0.0});
  return id;
}

void DesExecutor::MaybeStart(OpId id) {
  Op& op = ops_[static_cast<size_t>(id)];
  if (op.started || op.unmet_dependencies > 0) {
    return;
  }
  for (DeviceId device : op.devices) {
    const std::deque<OpId>& queue = device_queues_[static_cast<size_t>(device)];
    HF_CHECK(!queue.empty());
    if (queue.front() != id) {
      return;  // Not yet at the head of this device's FIFO.
    }
  }
  op.started = true;
  TraceSpan& span = spans_[static_cast<size_t>(id)];
  span.start = queue_.now();
  span.end = span.start + op.duration;
  queue_.ScheduleAfter(op.duration, [this, id] { Finish(id); });
}

void DesExecutor::Finish(OpId id) {
  Op& op = ops_[static_cast<size_t>(id)];
  HF_CHECK(op.started);
  HF_CHECK(!op.finished);
  op.finished = true;
  finished_count_ += 1;
  // Release this op's device-queue slots.
  for (DeviceId device : op.devices) {
    std::deque<OpId>& queue = device_queues_[static_cast<size_t>(device)];
    HF_CHECK(!queue.empty());
    HF_CHECK_EQ(queue.front(), id);
    queue.pop_front();
  }
  // Unblock dependents; their data becomes ready no earlier than our end.
  const SimTime end = spans_[static_cast<size_t>(id)].end;
  for (OpId dependent : op.dependents) {
    Op& next = ops_[static_cast<size_t>(dependent)];
    next.unmet_dependencies -= 1;
    TraceSpan& dep_span = spans_[static_cast<size_t>(dependent)];
    dep_span.ready = std::max(dep_span.ready, end);
    MaybeStart(dependent);
  }
  // Newly-exposed queue heads may now be startable.
  for (DeviceId device : op.devices) {
    const std::deque<OpId>& queue = device_queues_[static_cast<size_t>(device)];
    if (!queue.empty()) {
      MaybeStart(queue.front());
    }
  }
}

void DesExecutor::Run() {
  // Kick off every op that is ready at t=0.
  for (OpId id = 0; id < static_cast<OpId>(ops_.size()); ++id) {
    MaybeStart(id);
  }
  queue_.RunUntilIdle();
  HF_CHECK_MSG(finished_count_ == static_cast<int>(ops_.size()),
               "deadlock: " << ops_.size() - static_cast<size_t>(finished_count_)
                            << " operations never became runnable");
}

const TraceSpan& DesExecutor::SpanOf(OpId id) const {
  HF_CHECK_GE(id, 0);
  HF_CHECK_LT(static_cast<size_t>(id), spans_.size());
  HF_CHECK(ops_[static_cast<size_t>(id)].finished);
  return spans_[static_cast<size_t>(id)];
}

}  // namespace hybridflow
