#include "src/sim/timeline.h"

#include <algorithm>
#include <sstream>

#include "src/common/strings.h"

namespace hybridflow {

void DeviceMemory::Allocate(const std::string& tag, double bytes) {
  HF_CHECK_GE(bytes, 0.0);
  used_ += bytes;
  by_tag_[tag] += bytes;
  peak_ = std::max(peak_, used_);
}

void DeviceMemory::Free(const std::string& tag, double bytes) {
  HF_CHECK_GE(bytes, 0.0);
  auto it = by_tag_.find(tag);
  HF_CHECK_MSG(it != by_tag_.end(), "freeing unknown tag " << tag);
  HF_CHECK_MSG(it->second + 1e-6 >= bytes, "freeing more than allocated for tag " << tag);
  it->second -= bytes;
  used_ -= bytes;
  if (it->second <= 1e-6) {
    by_tag_.erase(it);
  }
}

double DeviceMemory::FreeAll(const std::string& tag) {
  auto it = by_tag_.find(tag);
  if (it == by_tag_.end()) {
    return 0.0;
  }
  double bytes = it->second;
  used_ -= bytes;
  by_tag_.erase(it);
  return bytes;
}

double DeviceMemory::UsedByTag(const std::string& tag) const {
  auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? 0.0 : it->second;
}

ClusterState::ClusterState(const ClusterSpec& spec)
    : spec_(spec),
      free_at_(spec.world_size(), 0.0),
      busy_(spec.world_size(), 0.0) {
  memory_.reserve(spec.world_size());
  for (int i = 0; i < spec.world_size(); ++i) {
    memory_.emplace_back(spec.gpu.memory_bytes);
  }
}

const TraceSpan& ClusterState::ScheduleOp(const std::string& name, const std::string& category,
                                          const std::vector<DeviceId>& devices, SimTime ready_time,
                                          SimTime duration) {
  HF_CHECK(!devices.empty());
  HF_CHECK_GE(duration, 0.0);
  HF_CHECK_GE(ready_time, 0.0);
  SimTime start = std::max(ready_time, GroupFreeAt(devices));
  SimTime end = start + duration;
  for (DeviceId device : devices) {
    free_at_[device] = end;
    busy_[device] += duration;
  }
  trace_.push_back(TraceSpan{name, category, devices, start, end, ready_time});
  return trace_.back();
}

SimTime ClusterState::DeviceFreeAt(DeviceId device) const {
  HF_CHECK_GE(device, 0);
  HF_CHECK_LT(device, world_size());
  return free_at_[device];
}

SimTime ClusterState::GroupFreeAt(const std::vector<DeviceId>& devices) const {
  SimTime ready = 0.0;
  for (DeviceId device : devices) {
    ready = std::max(ready, DeviceFreeAt(device));
  }
  return ready;
}

SimTime ClusterState::Makespan() const {
  SimTime makespan = 0.0;
  for (SimTime t : free_at_) {
    makespan = std::max(makespan, t);
  }
  return makespan;
}

DeviceMemory& ClusterState::memory(DeviceId device) {
  HF_CHECK_GE(device, 0);
  HF_CHECK_LT(device, world_size());
  return memory_[device];
}

const DeviceMemory& ClusterState::memory(DeviceId device) const {
  HF_CHECK_GE(device, 0);
  HF_CHECK_LT(device, world_size());
  return memory_[device];
}

bool ClusterState::AnyDeviceEverOom() const {
  for (const DeviceMemory& mem : memory_) {
    if (mem.ever_over_capacity()) {
      return true;
    }
  }
  return false;
}

double ClusterState::MaxPeakMemory() const {
  double peak = 0.0;
  for (const DeviceMemory& mem : memory_) {
    peak = std::max(peak, mem.peak());
  }
  return peak;
}

double ClusterState::BusyTime(DeviceId device) const {
  HF_CHECK_GE(device, 0);
  HF_CHECK_LT(device, world_size());
  return busy_[device];
}

void ClusterState::ResetTime() {
  std::fill(free_at_.begin(), free_at_.end(), 0.0);
  std::fill(busy_.begin(), busy_.end(), 0.0);
  trace_.clear();
}

std::string RenderTrace(const ClusterState& state, int columns) {
  const std::vector<TraceSpan>& trace = state.trace();
  std::ostringstream out;
  SimTime makespan = state.Makespan();
  if (trace.empty() || makespan <= 0.0) {
    return "(empty trace)\n";
  }
  // Each span category is drawn with its first letter; overlaps on a device
  // show the most recent span.
  for (int device = 0; device < state.world_size(); ++device) {
    std::string row(static_cast<size_t>(columns), '.');
    for (const TraceSpan& span : trace) {
      bool on_device = false;
      for (DeviceId d : span.devices) {
        if (d == device) {
          on_device = true;
          break;
        }
      }
      if (!on_device || span.duration() <= 0.0) {
        continue;
      }
      int begin = static_cast<int>(span.start / makespan * columns);
      int finish = static_cast<int>(span.end / makespan * columns);
      begin = std::clamp(begin, 0, columns - 1);
      finish = std::clamp(finish, begin + 1, columns);
      char symbol = span.category.empty() ? '#' : span.category[0];
      for (int c = begin; c < finish; ++c) {
        row[static_cast<size_t>(c)] = symbol;
      }
    }
    out << StrFormat("GPU %3d |", device) << row << "|\n";
  }
  out << "        (" << HumanSeconds(makespan) << " total; symbols = first letter of op category)\n";
  return out.str();
}

}  // namespace hybridflow
