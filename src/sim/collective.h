// Analytical cost models for collective communication on the simulated
// cluster, following the ring-algorithm analysis of Chan et al. (the same
// reference [13] the paper uses to derive its Table 2 communication
// volumes) with a hierarchical NVLink/NIC bandwidth model.
//
// Conventions:
//   * `bytes` is the FULL payload size of the collective: for all-gather it
//     is the gathered result size; for all-reduce the reduced tensor size.
//   * Times include a per-step latency term so degenerate 1-rank groups
//     cost zero and tiny messages are latency-bound.
#ifndef SRC_SIM_COLLECTIVE_H_
#define SRC_SIM_COLLECTIVE_H_

#include <vector>

#include "src/sim/topology.h"

namespace hybridflow {

// Effective per-rank ring bandwidth for a group of devices: NVLink when the
// ring stays inside one node, otherwise bounded by the share of the node NIC
// available to the ranks of that node participating in the ring.
double RingBandwidth(const ClusterSpec& cluster, const std::vector<DeviceId>& devices);

// Point-to-point bandwidth between two devices.
double P2pBandwidth(const ClusterSpec& cluster, DeviceId src, DeviceId dst);

// Ring all-gather: each of n ranks holds bytes/n and ends with all `bytes`.
// Time = (n-1)/n * bytes / bw + (n-1) * latency.
double AllGatherTime(const ClusterSpec& cluster, const std::vector<DeviceId>& devices,
                     double bytes);

// Ring all-reduce (reduce-scatter + all-gather): 2 (n-1)/n * bytes / bw.
double AllReduceTime(const ClusterSpec& cluster, const std::vector<DeviceId>& devices,
                     double bytes);

// Ring reduce-scatter: (n-1)/n * bytes / bw.
double ReduceScatterTime(const ClusterSpec& cluster, const std::vector<DeviceId>& devices,
                         double bytes);

// Pipelined broadcast of `bytes` from one rank to the rest: ~bytes / bw.
double BroadcastTime(const ClusterSpec& cluster, const std::vector<DeviceId>& devices,
                     double bytes);

// Direct copy of `bytes` between two devices.
double P2pTime(const ClusterSpec& cluster, DeviceId src, DeviceId dst, double bytes);

// Two-level all-gather: intra-node ring of the node's shards, leader ring
// across nodes at full NIC bandwidth, then intra-node broadcast of the
// remote portion. Never slower than the flat ring on multi-node groups
// with co-resident ranks.
double HierarchicalAllGatherTime(const ClusterSpec& cluster,
                                 const std::vector<DeviceId>& devices, double bytes);

// Two-level all-reduce: intra-node reduce-scatter, leader all-reduce,
// intra-node all-gather.
double HierarchicalAllReduceTime(const ClusterSpec& cluster,
                                 const std::vector<DeviceId>& devices, double bytes);

// Per-rank bytes sent on the wire by a ring all-gather of `bytes` total
// across n ranks: (n-1)/n * bytes. Exposed so the 3D-HybridEngine can report
// measured communication volumes against the Table 2 formulas.
double AllGatherWireBytesPerRank(int num_ranks, double bytes);

}  // namespace hybridflow

#endif  // SRC_SIM_COLLECTIVE_H_
