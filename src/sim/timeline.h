// Per-device scheduling and memory state for the simulated cluster.
//
// The execution model: every operation occupies a set of devices
// exclusively for a duration and cannot start before its inputs are ready
// (data dependencies) nor before all of its devices are free (time-sharing
// of colocated models, §2.3). This makes dependency-driven overlap between
// models on disjoint device sets emerge naturally, reproducing the
// execution patterns of Table 1 / Figure 3.
#ifndef SRC_SIM_TIMELINE_H_
#define SRC_SIM_TIMELINE_H_

#include <map>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/topology.h"

namespace hybridflow {

// One scheduled interval, kept for trace inspection and pattern rendering.
struct TraceSpan {
  std::string name;
  std::string category;  // "generate", "infer", "train", "transfer", "reshard", ...
  std::vector<DeviceId> devices;
  SimTime start = 0.0;
  SimTime end = 0.0;
  // Earliest time the op's inputs were available (data dependencies plus
  // inter-model transfer latency). start >= ready always; the gap is queue
  // wait on busy devices. TimelineChecker (src/analysis) audits this.
  SimTime ready = 0.0;

  SimTime duration() const { return end - start; }
};

// Tagged memory accounting for one device.
class DeviceMemory {
 public:
  explicit DeviceMemory(double capacity_bytes) : capacity_(capacity_bytes) {}

  // Allocation may exceed capacity; the tracker records the overflow so the
  // caller (e.g. the mapping algorithm) can reject the configuration. This
  // mirrors how OOM is a plan-feasibility question, not a crash, in the
  // simulator.
  void Allocate(const std::string& tag, double bytes);
  void Free(const std::string& tag, double bytes);
  // Releases whatever remains under `tag` and returns the freed amount.
  double FreeAll(const std::string& tag);

  double used() const { return used_; }
  double peak() const { return peak_; }
  double capacity() const { return capacity_; }
  double available() const { return capacity_ - used_; }
  bool over_capacity() const { return used_ > capacity_; }
  bool ever_over_capacity() const { return peak_ > capacity_; }
  double UsedByTag(const std::string& tag) const;

  void ResetPeak() { peak_ = used_; }

 private:
  double capacity_;
  double used_ = 0.0;
  double peak_ = 0.0;
  std::map<std::string, double> by_tag_;
};

// The mutable simulation state of a cluster: one timeline + memory tracker
// per device, plus the recorded trace.
class ClusterState {
 public:
  explicit ClusterState(const ClusterSpec& spec);

  const ClusterSpec& spec() const { return spec_; }
  int world_size() const { return spec_.world_size(); }

  // Schedules an exclusive operation. `ready_time` expresses data
  // dependencies (max over input-producing spans' end times). Returns the
  // recorded span. `duration` must be >= 0.
  const TraceSpan& ScheduleOp(const std::string& name, const std::string& category,
                              const std::vector<DeviceId>& devices, SimTime ready_time,
                              SimTime duration);

  SimTime DeviceFreeAt(DeviceId device) const;
  // Earliest time at which all of `devices` are simultaneously free.
  SimTime GroupFreeAt(const std::vector<DeviceId>& devices) const;
  // Latest end time across all devices (the makespan so far).
  SimTime Makespan() const;

  DeviceMemory& memory(DeviceId device);
  const DeviceMemory& memory(DeviceId device) const;
  // True when any device has ever exceeded its memory capacity.
  bool AnyDeviceEverOom() const;
  // Highest peak memory across all devices.
  double MaxPeakMemory() const;

  // Total busy seconds accumulated per device (for utilization reports).
  double BusyTime(DeviceId device) const;

  const std::vector<TraceSpan>& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

  // Rewinds all timelines to t=0 and clears the trace; memory state and
  // peaks are preserved. Used between warm-up and measured iterations.
  void ResetTime();

 private:
  ClusterSpec spec_;
  std::vector<SimTime> free_at_;
  std::vector<double> busy_;
  std::vector<DeviceMemory> memory_;
  std::vector<TraceSpan> trace_;
};

// Renders an ASCII per-GPU occupancy chart of a trace (Table 1 style).
std::string RenderTrace(const ClusterState& state, int columns = 80);

}  // namespace hybridflow

#endif  // SRC_SIM_TIMELINE_H_
