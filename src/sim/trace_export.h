// Chrome-tracing (about://tracing / Perfetto) export of simulated-cluster
// traces: each device is a "thread", each TraceSpan a complete event.
// Lets users inspect RLHF execution patterns with standard tooling.
#ifndef SRC_SIM_TRACE_EXPORT_H_
#define SRC_SIM_TRACE_EXPORT_H_

#include <string>

#include "src/sim/timeline.h"

namespace hybridflow {

// Serializes the trace as a Chrome trace-event JSON array ("traceEvents"
// object format). Timestamps are microseconds of simulated time.
std::string TraceToChromeJson(const ClusterState& state);

// Writes the JSON to a file; returns false on I/O failure.
bool WriteChromeTrace(const ClusterState& state, const std::string& path);

// Per-category busy-time summary of a trace, in device-seconds.
std::map<std::string, double> BusyTimeByCategory(const ClusterState& state);

// Mean device utilization over the makespan (0..1).
double MeanUtilization(const ClusterState& state);

}  // namespace hybridflow

#endif  // SRC_SIM_TRACE_EXPORT_H_
