// Chrome-tracing (about://tracing / Perfetto) export of simulated-cluster
// traces: each device is a "thread", each TraceSpan a complete event.
// Lets users inspect RLHF execution patterns with standard tooling.
//
// For a combined view of simulated time AND real wall-clock activity in
// one file, see src/obs/dual_trace.h, which reuses AppendSimTraceEvents.
#ifndef SRC_SIM_TRACE_EXPORT_H_
#define SRC_SIM_TRACE_EXPORT_H_

#include <iosfwd>
#include <string>

#include "src/sim/timeline.h"

namespace hybridflow {

// Serializes the trace as a Chrome trace-event JSON array ("traceEvents"
// object format). Timestamps are microseconds of simulated time; each
// span's scheduling latency (ready -> start) is exported as
// args.queue_delay_us.
std::string TraceToChromeJson(const ClusterState& state);

// Writes the JSON to a file; returns false on I/O failure.
bool WriteChromeTrace(const ClusterState& state, const std::string& path);

// Appends the comma-separated trace-event objects (GPU thread-name
// metadata + one complete event per span-device) for a simulated trace to
// `out`, tagged with process id `pid`. `*first` tracks whether a preceding
// event was already emitted into the surrounding array (comma placement)
// and is updated; this is the shared serializer behind TraceToChromeJson
// and the dual-plane exporter.
void AppendSimTraceEvents(const std::vector<TraceSpan>& trace, int world_size, int pid,
                          bool* first, std::ostream& out);

// Per-category busy-time summary of a trace, in device-seconds.
std::map<std::string, double> BusyTimeByCategory(const ClusterState& state);

// Mean device utilization over the makespan (0..1).
double MeanUtilization(const ClusterState& state);

}  // namespace hybridflow

#endif  // SRC_SIM_TRACE_EXPORT_H_
