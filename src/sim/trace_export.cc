#include "src/sim/trace_export.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "src/common/strings.h"
#include "src/obs/json_util.h"

namespace hybridflow {

void AppendSimTraceEvents(const std::vector<TraceSpan>& trace, int world_size, int pid,
                          bool* first, std::ostream& out) {
  for (int device = 0; device < world_size; ++device) {
    if (!*first) {
      out << ",\n";
    }
    *first = false;
    out << StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"name\":\"GPU %d\"}}",
        pid, device, device);
  }
  for (const TraceSpan& span : trace) {
    for (DeviceId device : span.devices) {
      if (!*first) {
        out << ",\n";
      }
      *first = false;
      out << StrFormat(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
          "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"queue_delay_us\":%.3f}}",
          JsonEscape(span.name).c_str(), JsonEscape(span.category).c_str(), pid, device,
          span.start * 1e6, span.duration() * 1e6, (span.start - span.ready) * 1e6);
    }
  }
}

std::string TraceToChromeJson(const ClusterState& state) {
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  AppendSimTraceEvents(state.trace(), state.world_size(), /*pid=*/0, &first, out);
  out << "\n]}\n";
  return out.str();
}

bool WriteChromeTrace(const ClusterState& state, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << TraceToChromeJson(state);
  return static_cast<bool>(file);
}

std::map<std::string, double> BusyTimeByCategory(const ClusterState& state) {
  std::map<std::string, double> busy;
  for (const TraceSpan& span : state.trace()) {
    busy[span.category] += span.duration() * static_cast<double>(span.devices.size());
  }
  return busy;
}

double MeanUtilization(const ClusterState& state) {
  const double makespan = state.Makespan();
  if (makespan <= 0.0) {
    return 0.0;
  }
  double busy = 0.0;
  for (int device = 0; device < state.world_size(); ++device) {
    busy += state.BusyTime(device);
  }
  return busy / (makespan * static_cast<double>(state.world_size()));
}

}  // namespace hybridflow
