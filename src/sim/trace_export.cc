#include "src/sim/trace_export.h"

#include <fstream>
#include <sstream>

#include "src/common/strings.h"

namespace hybridflow {

namespace {

// Escapes the small set of characters our op names can contain.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string TraceToChromeJson(const ClusterState& state) {
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  for (int device = 0; device < state.world_size(); ++device) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
        "\"args\":{\"name\":\"GPU %d\"}}",
        device, device);
  }
  for (const TraceSpan& span : state.trace()) {
    for (DeviceId device : span.devices) {
      out << ",\n";
      out << StrFormat(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
          "\"ts\":%.3f,\"dur\":%.3f}",
          JsonEscape(span.name).c_str(), JsonEscape(span.category).c_str(), device,
          span.start * 1e6, span.duration() * 1e6);
    }
  }
  out << "\n]}\n";
  return out.str();
}

bool WriteChromeTrace(const ClusterState& state, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << TraceToChromeJson(state);
  return static_cast<bool>(file);
}

std::map<std::string, double> BusyTimeByCategory(const ClusterState& state) {
  std::map<std::string, double> busy;
  for (const TraceSpan& span : state.trace()) {
    busy[span.category] += span.duration() * static_cast<double>(span.devices.size());
  }
  return busy;
}

double MeanUtilization(const ClusterState& state) {
  const double makespan = state.Makespan();
  if (makespan <= 0.0) {
    return 0.0;
  }
  double busy = 0.0;
  for (int device = 0; device < state.world_size(); ++device) {
    busy += state.BusyTime(device);
  }
  return busy / (makespan * static_cast<double>(state.world_size()));
}

}  // namespace hybridflow
