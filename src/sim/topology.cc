#include "src/sim/topology.h"

#include <algorithm>
#include <set>

namespace hybridflow {

ClusterSpec ClusterSpec::WithGpus(int num_gpus, int gpus_per_node) {
  HF_CHECK_GT(num_gpus, 0);
  HF_CHECK_GT(gpus_per_node, 0);
  ClusterSpec spec;
  if (num_gpus <= gpus_per_node) {
    spec.num_nodes = 1;
    spec.gpus_per_node = num_gpus;
  } else {
    HF_CHECK_MSG(num_gpus % gpus_per_node == 0,
                 "multi-node clusters must use whole nodes: " << num_gpus << " GPUs with "
                                                              << gpus_per_node << " per node");
    spec.num_nodes = num_gpus / gpus_per_node;
    spec.gpus_per_node = gpus_per_node;
  }
  return spec;
}

bool AllOnOneNode(const ClusterSpec& cluster, const std::vector<DeviceId>& devices) {
  return NodesSpanned(cluster, devices) <= 1;
}

int NodesSpanned(const ClusterSpec& cluster, const std::vector<DeviceId>& devices) {
  std::set<int> nodes;
  for (DeviceId device : devices) {
    nodes.insert(cluster.NodeOf(device));
  }
  return static_cast<int>(nodes.size());
}

int MaxDevicesPerNode(const ClusterSpec& cluster, const std::vector<DeviceId>& devices) {
  std::vector<int> counts(cluster.num_nodes, 0);
  int max_count = 0;
  for (DeviceId device : devices) {
    int node = cluster.NodeOf(device);
    counts[node] += 1;
    max_count = std::max(max_count, counts[node]);
  }
  return max_count;
}

}  // namespace hybridflow
