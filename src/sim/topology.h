// Cluster topology description for the simulated GPU cluster.
//
// The default configuration mirrors the paper's testbed (§8.1): machines of
// 8 NVIDIA A100-80GB GPUs connected with 600 GB/s NVLink inside a node and
// 200 Gb/s RDMA between nodes.
#ifndef SRC_SIM_TOPOLOGY_H_
#define SRC_SIM_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/units.h"

namespace hybridflow {

// Global device index within a cluster, dense in [0, world_size).
using DeviceId = int;

struct GpuSpec {
  // Dense BF16 throughput actually achievable (A100 peak 312 TFLOPS; real
  // LLM kernels sustain roughly half, which the efficiency factor captures
  // in the perf models, so we quote the peak here).
  double bf16_flops = 312.0 * kTeraflop;
  // HBM2e bandwidth (A100-80GB: ~2 TB/s).
  double hbm_bandwidth = 2.0e12;
  // Usable device memory in bytes (80 GB minus runtime reservation).
  double memory_bytes = 80.0 * kGB;
};

struct ClusterSpec {
  int num_nodes = 1;
  int gpus_per_node = 8;
  GpuSpec gpu;
  // Per-GPU NVLink bandwidth within a node, bytes/s.
  double nvlink_bandwidth = GBpsToBytesPerSec(600.0 / 2.0);  // 600 GB/s bidirectional.
  // Per-node NIC bandwidth across nodes, bytes/s (200 Gb/s).
  double nic_bandwidth = GbpsToBytesPerSec(200.0);
  // Fixed per-message latency for collectives/p2p, seconds.
  double link_latency = 10e-6;
  // Two-level (intra-node ring + inter-node leader ring) collective
  // algorithms instead of one flat ring. Helps whenever several ranks per
  // node would otherwise share the NIC inside one ring.
  bool hierarchical_collectives = false;

  int world_size() const { return num_nodes * gpus_per_node; }

  int NodeOf(DeviceId device) const {
    HF_CHECK_GE(device, 0);
    HF_CHECK_LT(device, world_size());
    return device / gpus_per_node;
  }

  bool SameNode(DeviceId a, DeviceId b) const { return NodeOf(a) == NodeOf(b); }

  // Builds a cluster with `num_gpus` total devices (must be a multiple of
  // gpus_per_node or fewer than one node's worth).
  static ClusterSpec WithGpus(int num_gpus, int gpus_per_node = 8);
};

// Returns true when every device in `devices` lives on one node.
bool AllOnOneNode(const ClusterSpec& cluster, const std::vector<DeviceId>& devices);

// Number of distinct nodes spanned by `devices`.
int NodesSpanned(const ClusterSpec& cluster, const std::vector<DeviceId>& devices);

// Maximum number of `devices` members that share any single node.
int MaxDevicesPerNode(const ClusterSpec& cluster, const std::vector<DeviceId>& devices);

}  // namespace hybridflow

#endif  // SRC_SIM_TOPOLOGY_H_
