#include "src/sim/collective.h"

#include <algorithm>

namespace hybridflow {

double RingBandwidth(const ClusterSpec& cluster, const std::vector<DeviceId>& devices) {
  HF_CHECK(!devices.empty());
  if (AllOnOneNode(cluster, devices)) {
    return cluster.nvlink_bandwidth;
  }
  // A ring that spans nodes must cross the NIC; the ranks on a node share
  // its NIC bandwidth. A ring ordered node-by-node crosses each NIC once in
  // each direction, so the sustainable per-rank rate is the NIC rate divided
  // by the number of co-resident ranks feeding it.
  int sharing = std::max(1, MaxDevicesPerNode(cluster, devices));
  double cross_node = cluster.nic_bandwidth / static_cast<double>(sharing);
  return std::min(cluster.nvlink_bandwidth, cross_node);
}

double P2pBandwidth(const ClusterSpec& cluster, DeviceId src, DeviceId dst) {
  if (cluster.SameNode(src, dst)) {
    return cluster.nvlink_bandwidth;
  }
  return cluster.nic_bandwidth;
}

namespace {

// Flat single-ring all-gather (the NCCL ring algorithm baseline).
double FlatAllGatherTime(const ClusterSpec& cluster, const std::vector<DeviceId>& devices,
                         double bytes) {
  const int n = static_cast<int>(devices.size());
  double bw = RingBandwidth(cluster, devices);
  double steps = static_cast<double>(n - 1);
  return steps / static_cast<double>(n) * bytes / bw + steps * cluster.link_latency;
}

}  // namespace

double HierarchicalAllGatherTime(const ClusterSpec& cluster,
                                 const std::vector<DeviceId>& devices, double bytes) {
  HF_CHECK_GE(bytes, 0.0);
  const int n = static_cast<int>(devices.size());
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  const int nodes = NodesSpanned(cluster, devices);
  const int per_node = MaxDevicesPerNode(cluster, devices);
  if (nodes <= 1 || per_node <= 1) {
    return FlatAllGatherTime(cluster, devices, bytes);
  }
  const double node_share = bytes * static_cast<double>(per_node) / static_cast<double>(n);
  // Phase 1: gather the node's shards over NVLink.
  const double intra1 = static_cast<double>(per_node - 1) / per_node * node_share /
                            cluster.nvlink_bandwidth +
                        (per_node - 1) * cluster.link_latency;
  // Phase 2: leader ring across nodes, each leader using the full NIC.
  const double inter = static_cast<double>(nodes - 1) / nodes * bytes /
                           cluster.nic_bandwidth +
                       (nodes - 1) * cluster.link_latency;
  // Phase 3: broadcast the remote portion within each node.
  const double remote = bytes * static_cast<double>(nodes - 1) / nodes;
  const double intra2 = remote / cluster.nvlink_bandwidth + (per_node - 1) * cluster.link_latency;
  return std::min(intra1 + inter + intra2, FlatAllGatherTime(cluster, devices, bytes));
}

double HierarchicalAllReduceTime(const ClusterSpec& cluster,
                                 const std::vector<DeviceId>& devices, double bytes) {
  HF_CHECK_GE(bytes, 0.0);
  const int n = static_cast<int>(devices.size());
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  const int nodes = NodesSpanned(cluster, devices);
  const int per_node = MaxDevicesPerNode(cluster, devices);
  if (nodes <= 1 || per_node <= 1) {
    return 2.0 * FlatAllGatherTime(cluster, devices, bytes);
  }
  // Intra reduce-scatter + intra all-gather (each (g-1)/g * bytes / nvlink)
  // around a leader all-reduce of the full tensor.
  const double intra = 2.0 * (static_cast<double>(per_node - 1) / per_node * bytes /
                                  cluster.nvlink_bandwidth +
                              (per_node - 1) * cluster.link_latency);
  const double inter = 2.0 * (static_cast<double>(nodes - 1) / nodes * bytes /
                                  cluster.nic_bandwidth +
                              (nodes - 1) * cluster.link_latency);
  const double flat = 2.0 * FlatAllGatherTime(cluster, devices, bytes);
  return std::min(intra + inter, flat);
}

double AllGatherTime(const ClusterSpec& cluster, const std::vector<DeviceId>& devices,
                     double bytes) {
  HF_CHECK_GE(bytes, 0.0);
  const int n = static_cast<int>(devices.size());
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  if (cluster.hierarchical_collectives) {
    return HierarchicalAllGatherTime(cluster, devices, bytes);
  }
  return FlatAllGatherTime(cluster, devices, bytes);
}

double AllReduceTime(const ClusterSpec& cluster, const std::vector<DeviceId>& devices,
                     double bytes) {
  HF_CHECK_GE(bytes, 0.0);
  const int n = static_cast<int>(devices.size());
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  if (cluster.hierarchical_collectives) {
    return HierarchicalAllReduceTime(cluster, devices, bytes);
  }
  double bw = RingBandwidth(cluster, devices);
  double steps = static_cast<double>(n - 1);
  return 2.0 * steps / static_cast<double>(n) * bytes / bw + 2.0 * steps * cluster.link_latency;
}

double ReduceScatterTime(const ClusterSpec& cluster, const std::vector<DeviceId>& devices,
                         double bytes) {
  HF_CHECK_GE(bytes, 0.0);
  const int n = static_cast<int>(devices.size());
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  double bw = RingBandwidth(cluster, devices);
  double steps = static_cast<double>(n - 1);
  return steps / static_cast<double>(n) * bytes / bw + steps * cluster.link_latency;
}

double BroadcastTime(const ClusterSpec& cluster, const std::vector<DeviceId>& devices,
                     double bytes) {
  HF_CHECK_GE(bytes, 0.0);
  const int n = static_cast<int>(devices.size());
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  double bw = RingBandwidth(cluster, devices);
  return bytes / bw + static_cast<double>(n - 1) * cluster.link_latency;
}

double P2pTime(const ClusterSpec& cluster, DeviceId src, DeviceId dst, double bytes) {
  HF_CHECK_GE(bytes, 0.0);
  if (src == dst || bytes == 0.0) {
    return 0.0;
  }
  return bytes / P2pBandwidth(cluster, src, dst) + cluster.link_latency;
}

double AllGatherWireBytesPerRank(int num_ranks, double bytes) {
  HF_CHECK_GT(num_ranks, 0);
  if (num_ranks == 1) {
    return 0.0;
  }
  return static_cast<double>(num_ranks - 1) / static_cast<double>(num_ranks) * bytes;
}

}  // namespace hybridflow
