// Discrete-event dependency-graph executor.
//
// ClusterState (timeline.h) schedules operations greedily at submission
// time; this executor instead builds an explicit operation DAG and runs it
// through the EventQueue: an operation starts when (a) all of its
// dependencies have finished and (b) it reaches the head of the FIFO queue
// of every device it occupies. For operations submitted in program order
// the two schedulers produce identical spans (list-scheduling
// equivalence), which tests/sim_des_test.cc verifies on random DAGs —
// giving the timeline fast path a ground truth.
//
// Concurrency: thread-compatible, single-owner (see event_queue.h); Submit
// and Run must come from the owning thread. Executed traces satisfy the
// TimelineChecker invariants (src/analysis/timeline_checker.h): per-device
// span exclusivity, monotone time, and start >= ready (max dependency end).
#ifndef SRC_SIM_DES_EXECUTOR_H_
#define SRC_SIM_DES_EXECUTOR_H_

#include <deque>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/timeline.h"
#include "src/sim/topology.h"

namespace hybridflow {

class DesExecutor {
 public:
  using OpId = int;

  explicit DesExecutor(const ClusterSpec& spec);

  // Declares an operation; dependencies must already be submitted.
  OpId Submit(const std::string& name, const std::string& category,
              const std::vector<DeviceId>& devices, SimTime duration,
              const std::vector<OpId>& dependencies = {});

  // Executes every submitted operation; aborts on a dependency cycle
  // (impossible by construction) or an operation that can never start.
  void Run();

  int num_ops() const { return static_cast<int>(ops_.size()); }
  const TraceSpan& SpanOf(OpId id) const;
  SimTime Makespan() const { return queue_.now(); }
  const std::vector<TraceSpan>& trace() const { return spans_; }

 private:
  struct Op {
    std::string name;
    std::string category;
    std::vector<DeviceId> devices;
    SimTime duration = 0.0;
    int unmet_dependencies = 0;
    std::vector<OpId> dependents;
    bool started = false;
    bool finished = false;
  };

  void MaybeStart(OpId id);
  void Finish(OpId id);

  ClusterSpec spec_;
  EventQueue queue_;
  std::vector<Op> ops_;
  std::vector<TraceSpan> spans_;
  // Per-device FIFO of pending op ids (program order).
  std::vector<std::deque<OpId>> device_queues_;
  int finished_count_ = 0;
};

}  // namespace hybridflow

#endif  // SRC_SIM_DES_EXECUTOR_H_
