#include "src/sim/event_queue.h"

#include <utility>

namespace hybridflow {

void EventQueue::ScheduleAt(SimTime when, Callback callback) {
  HF_CHECK_GE(when, now_);
  events_.push(Event{when, next_sequence_++, std::move(callback)});
}

bool EventQueue::Step() {
  if (events_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; move out via const_cast is unsafe,
  // so copy the callback handle (cheap: std::function) before popping.
  Event event = events_.top();
  events_.pop();
  HF_CHECK_GE(event.when, now_);
  now_ = event.when;
  event.callback();
  return true;
}

SimTime EventQueue::RunUntilIdle() {
  while (Step()) {
  }
  return now_;
}

void EventQueue::RunUntil(SimTime deadline) {
  HF_CHECK_GE(deadline, now_);
  while (!events_.empty() && events_.top().when <= deadline) {
    Step();
  }
  now_ = deadline;
}

}  // namespace hybridflow
