#include "src/controller/resource_pool.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/common/check.h"

namespace hybridflow {

ResourcePool::ResourcePool(std::string name, std::vector<DeviceId> devices)
    : name_(std::move(name)), devices_(std::move(devices)) {
  HF_CHECK_MSG(!devices_.empty(), "resource pool " << name_ << " has no devices");
  std::set<DeviceId> unique(devices_.begin(), devices_.end());
  HF_CHECK_MSG(unique.size() == devices_.size(),
               "resource pool " << name_ << " has duplicate devices");
}

bool ResourcePool::Overlaps(const ResourcePool& other) const {
  std::set<DeviceId> mine(devices_.begin(), devices_.end());
  for (DeviceId device : other.devices_) {
    if (mine.count(device) > 0) {
      return true;
    }
  }
  return false;
}

bool ResourcePool::SameDevices(const ResourcePool& other) const {
  std::set<DeviceId> mine(devices_.begin(), devices_.end());
  std::set<DeviceId> theirs(other.devices_.begin(), other.devices_.end());
  return mine == theirs;
}

}  // namespace hybridflow
