// Batch futures: the handles the single controller passes between models.
//
// Following §4.1 / Figure 5(b), the controller never moves payloads itself:
// a call on a worker group returns immediately with a future carrying the
// collected controller-visible data plus the simulated time at which the
// output becomes available on the producing devices. The consuming group's
// distribute function turns the future back into per-rank inputs; actual
// payload movement is GPU-to-GPU and is charged as transfer latency when
// the consumer schedules against `ready_time`.
#ifndef SRC_CONTROLLER_FUTURE_H_
#define SRC_CONTROLLER_FUTURE_H_

#include "src/data/data_batch.h"
#include "src/sim/event_queue.h"

namespace hybridflow {

struct BatchFuture {
  DataBatch data;
  SimTime ready_time = 0.0;
  // Nominal payload size of the full-scale workload this batch stands for
  // (bytes); used for inter-model transfer timing. The toy data-plane batch
  // in `data` is not representative of LLM-scale payloads.
  double nominal_bytes = 0.0;

  static BatchFuture Immediate(DataBatch batch) {
    return BatchFuture{std::move(batch), 0.0, 0.0};
  }
};

}  // namespace hybridflow

#endif  // SRC_CONTROLLER_FUTURE_H_
