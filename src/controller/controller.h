// The single controller (§2.2, §4): owns the simulated cluster, validates
// resource pools, and exposes iteration-level timing. RLHF dataflows are
// ordinary single-threaded C++ programs that call worker-group methods;
// asynchronous dataflow execution (§4.1) is realized through simulated-time
// futures and per-device timelines, so models on disjoint pools overlap
// exactly when data dependencies allow.
#ifndef SRC_CONTROLLER_CONTROLLER_H_
#define SRC_CONTROLLER_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/controller/future.h"
#include "src/controller/resource_pool.h"
#include "src/sim/timeline.h"

namespace hybridflow {

class Controller {
 public:
  explicit Controller(const ClusterSpec& spec);

  ClusterState& cluster() { return cluster_; }
  const ClusterState& cluster() const { return cluster_; }
  const ClusterSpec& spec() const { return cluster_.spec(); }

  // Creates a pool over explicit devices; devices must be in range and must
  // not overlap any existing pool (the §4.1 no-overlap assumption).
  std::shared_ptr<ResourcePool> CreatePool(const std::string& name,
                                           std::vector<DeviceId> devices);
  // Convenience: `count` consecutive devices starting at `first`.
  std::shared_ptr<ResourcePool> CreatePoolRange(const std::string& name, DeviceId first,
                                                int count);

  const std::vector<std::shared_ptr<ResourcePool>>& pools() const { return pools_; }

  // Marks the start of a measured iteration and returns its start time.
  SimTime BeginIteration();
  // Time elapsed since the last BeginIteration(), measured as the cluster
  // makespan delta (the end-to-end latency of the dataflow segment). Pure
  // getter: safe to call repeatedly mid-iteration.
  SimTime IterationSeconds() const;
  // Marks the end of a measured iteration: records IterationSeconds() into
  // the `controller.last_iteration_sim_seconds` gauge and returns it.
  SimTime EndIteration();

 private:
  ClusterState cluster_;
  std::vector<std::shared_ptr<ResourcePool>> pools_;
  SimTime iteration_start_ = 0.0;
};

}  // namespace hybridflow

#endif  // SRC_CONTROLLER_CONTROLLER_H_
