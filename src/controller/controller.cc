#include "src/controller/controller.h"

#include <utility>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace hybridflow {

Controller::Controller(const ClusterSpec& spec) : cluster_(spec) {}

std::shared_ptr<ResourcePool> Controller::CreatePool(const std::string& name,
                                                     std::vector<DeviceId> devices) {
  HF_TRACE_SCOPE("controller.create_pool", "controller");
  MetricsRegistry::Global().GetCounter("controller.pools_created").Increment();
  for (DeviceId device : devices) {
    HF_CHECK_GE(device, 0);
    HF_CHECK_LT(device, cluster_.world_size());
  }
  auto pool = std::make_shared<ResourcePool>(name, std::move(devices));
  for (const std::shared_ptr<ResourcePool>& existing : pools_) {
    // Identical device sets are allowed (colocated models each construct a
    // pool handle over the same GPUs); partial overlap is a config error.
    if (existing->Overlaps(*pool)) {
      HF_CHECK_MSG(existing->SameDevices(*pool),
                   "pool " << pool->name() << " partially overlaps pool " << existing->name());
    }
  }
  pools_.push_back(pool);
  return pool;
}

std::shared_ptr<ResourcePool> Controller::CreatePoolRange(const std::string& name, DeviceId first,
                                                          int count) {
  HF_CHECK_GT(count, 0);
  std::vector<DeviceId> devices;
  devices.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    devices.push_back(first + i);
  }
  return CreatePool(name, std::move(devices));
}

SimTime Controller::BeginIteration() {
  MetricsRegistry::Global().GetCounter("controller.iterations").Increment();
  iteration_start_ = cluster_.Makespan();
  return iteration_start_;
}

SimTime Controller::IterationSeconds() const {
  return cluster_.Makespan() - iteration_start_;
}

SimTime Controller::EndIteration() {
  const SimTime seconds = IterationSeconds();
  MetricsRegistry::Global().GetGauge("controller.last_iteration_sim_seconds").Set(seconds);
  return seconds;
}

}  // namespace hybridflow
