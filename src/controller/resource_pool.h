// ResourcePool: virtualization of a set of GPU devices (§4.1).
//
// Applying a pool to a model worker group maps that model's distributed
// computation onto the pool's devices. Groups sharing one pool are
// colocated (time-sharing, sequential execution); groups on disjoint pools
// execute concurrently whenever data dependencies allow. Pools never
// overlap partially — the controller validates this at creation.
#ifndef SRC_CONTROLLER_RESOURCE_POOL_H_
#define SRC_CONTROLLER_RESOURCE_POOL_H_

#include <string>
#include <vector>

#include "src/sim/topology.h"

namespace hybridflow {

class ResourcePool {
 public:
  ResourcePool(std::string name, std::vector<DeviceId> devices);

  const std::string& name() const { return name_; }
  const std::vector<DeviceId>& devices() const { return devices_; }
  int size() const { return static_cast<int>(devices_.size()); }

  bool Overlaps(const ResourcePool& other) const;
  bool SameDevices(const ResourcePool& other) const;

 private:
  std::string name_;
  std::vector<DeviceId> devices_;
};

}  // namespace hybridflow

#endif  // SRC_CONTROLLER_RESOURCE_POOL_H_
