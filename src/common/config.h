// Minimal key=value configuration parser for the experiment CLI.
//
// Format: one `key = value` per line; `#` starts a comment; whitespace is
// trimmed; later keys override earlier ones. Keys are flat, dotted by
// convention (e.g. `cluster.gpus = 64`).
#ifndef SRC_COMMON_CONFIG_H_
#define SRC_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>

namespace hybridflow {

class ConfigMap {
 public:
  // Parses text; returns false (and fills *error) on malformed lines.
  bool ParseString(const std::string& text, std::string* error = nullptr);
  bool ParseFile(const std::string& path, std::string* error = nullptr);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  // Getters return `fallback` when the key is absent; they abort on a
  // present-but-unparsable value (a config error the user must fix).
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  void Set(const std::string& key, const std::string& value) { values_[key] = value; }
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

// Trims ASCII whitespace from both ends.
std::string TrimWhitespace(const std::string& text);

}  // namespace hybridflow

#endif  // SRC_COMMON_CONFIG_H_
