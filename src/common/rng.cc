#include "src/common/rng.h"

#include "src/common/check.h"

namespace hybridflow {

int64_t Rng::Categorical(const std::vector<double>& weights) {
  HF_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    HF_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) {
    return UniformInt(0, static_cast<int64_t>(weights.size()) - 1);
  }
  double point = Uniform(0.0, total);
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (point < cumulative) {
      return static_cast<int64_t>(i);
    }
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

}  // namespace hybridflow
