// Small string-formatting helpers shared by reports and benches.
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hybridflow {

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

// Joins elements with a separator: JoinInts({1,2,3}, ",") == "1,2,3".
std::string JoinInts(const std::vector<int>& values, const std::string& separator);

// Human-readable byte count, e.g. "14.0 GiB".
std::string HumanBytes(double bytes);

// Human-readable duration, e.g. "1.25 s" or "830 ms".
std::string HumanSeconds(double seconds);

}  // namespace hybridflow

#endif  // SRC_COMMON_STRINGS_H_
