#include "src/common/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>

#include "src/common/annotations.h"

namespace hybridflow {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

// guards: interleaving-free line-at-a-time writes to std::cerr.
Mutex& OutputMutex() {
  static Mutex* mutex = new Mutex();  // hflint: allow(naked-new)
  return *mutex;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel GetLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_min_level.store(level, std::memory_order_relaxed); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LogLevelName(level_) << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    MutexLock lock(OutputMutex());
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace hybridflow
