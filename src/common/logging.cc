#include "src/common/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>

namespace hybridflow {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

std::mutex& OutputMutex() {
  static std::mutex mutex;
  return mutex;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel GetLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_min_level.store(level, std::memory_order_relaxed); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LogLevelName(level_) << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace hybridflow
