#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace hybridflow {

namespace {

// Pool metrics. Registry handles are pointer-stable for the process
// lifetime (the global registry is append-only and leaked), so caching
// them in function-local statics is safe even from pool threads.
Histogram& QueueLatencyHistogram() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "threadpool.queue_latency_us", ExponentialBuckets(1.0, 10.0, 7));
  return histogram;
}

Histogram& TaskRunHistogram() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "threadpool.task_run_us", ExponentialBuckets(1.0, 10.0, 7));
  return histogram;
}

Counter& TasksCompletedCounter() {
  static Counter& counter = MetricsRegistry::Global().GetCounter("threadpool.tasks_completed");
  return counter;
}

// Set for the lifetime of every WorkerLoop; thread_local so it needs no
// synchronization and covers workers of every pool instance.
thread_local bool t_on_pool_thread = false;

}  // namespace

bool ThreadPool::OnPoolThread() { return t_on_pool_thread; }

ThreadPool::ThreadPool(int num_threads) {
  HF_CHECK_GT(num_threads, 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });  // hflint: allow(thread-construction)
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::WorkerLoop() {
  t_on_pool_thread = true;
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) {
        wake_.Wait(mutex_);
      }
      if (queue_.empty()) {
        return;  // stopping_ with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
#if HF_SYNC_CONTRACTS_ENABLED
    // Schedule-fuzz point: perturbing between dequeue and run reorders
    // task completion relative to concurrent submitters and other workers.
    ScheduleFuzzer::Global().MaybeInject(ScheduleFuzzer::Site::kPoolTaskPickup);
#endif
    const double start_us = WallclockTracer::NowMicros();
    QueueLatencyHistogram().Observe(start_us - task.enqueue_us);
    {
      HF_TRACE_SCOPE("threadpool.task", "threadpool");
      task.task();
    }
    TaskRunHistogram().Observe(WallclockTracer::NowMicros() - start_us);
    TasksCompletedCounter().Increment();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  QueuedTask queued;
  queued.task = std::packaged_task<void()>(std::move(task));
  queued.enqueue_us = WallclockTracer::NowMicros();
  std::future<void> future = queued.task.get_future();
  {
    MutexLock lock(mutex_);
    HF_CHECK(!stopping_);
    queue_.push_back(std::move(queued));
  }
  wake_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) {
    return;
  }
  if (count == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Wait for EVERY task before rethrowing: tasks hold a reference to `fn`,
  // so returning early on the first exception would leave queued tasks
  // calling through a dangling reference.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool& ThreadPool::Shared() {
  // Intentionally leaked: worker threads may outlive static destructors.
  static ThreadPool* pool = new ThreadPool(  // hflint: allow(naked-new)
      std::max(2, static_cast<int>(std::thread::hardware_concurrency())));
  return *pool;
}

}  // namespace hybridflow
