#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace hybridflow {

ThreadPool::ThreadPool(int num_threads) {
  HF_CHECK_GT(num_threads, 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HF_CHECK(!stopping_);
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) {
    return;
  }
  if (count == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (std::future<void>& future : futures) {
    future.get();  // Propagates the first exception encountered.
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max(2, static_cast<int>(std::thread::hardware_concurrency())));
  return *pool;
}

}  // namespace hybridflow
