// Minimal leveled logger. Thread-safe line-at-a-time output.
//
// Usage: HF_LOG(kInfo) << "iteration " << i << " done";
// The global minimum level defaults to kWarning so that library code stays
// quiet under tests and benches; examples raise it to kInfo.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hybridflow {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Returns the human-readable tag for a level ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Accumulates one log line and flushes it (with locking) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace hybridflow

#define HF_LOG(severity) \
  ::hybridflow::LogMessage(::hybridflow::LogLevel::severity, __FILE__, __LINE__)

#endif  // SRC_COMMON_LOGGING_H_
