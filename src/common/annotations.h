// Clang thread-safety annotations plus an annotated Mutex/CondVar wrapper.
//
// Clang's -Wthread-safety analysis needs lock acquisition/release to be
// visible in the type system. libstdc++'s std::mutex and std::lock_guard
// carry no such attributes, so annotating data with the raw std types
// produces false positives. Instead, concurrency-bearing code in this repo
// uses hybridflow::Mutex / MutexLock / CondVar below (thin zero-overhead
// wrappers over the std primitives, in the style of absl::Mutex), and marks
// shared state with HF_GUARDED_BY(mutex_name).
//
// On GCC (and any compiler without the capability attributes) every macro
// expands to nothing and the wrappers behave identically.
//
// Conventions (enforced by tools/hflint.cc, see docs/STATIC_ANALYSIS.md):
//   * every mutex member names what it protects, either structurally via
//     HF_GUARDED_BY on the protected members or with a `// guards:` comment;
//   * std::thread is constructed only inside src/common/thread_pool.cc —
//     all other code parallelizes through ThreadPool.
#ifndef SRC_COMMON_ANNOTATIONS_H_
#define SRC_COMMON_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HF_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef HF_THREAD_ANNOTATION_
#define HF_THREAD_ANNOTATION_(x)  // No-op outside Clang.
#endif

// Applied to a class that models a lockable resource.
#define HF_CAPABILITY(name) HF_THREAD_ANNOTATION_(capability(name))
// Applied to an RAII class that holds a capability for its lifetime.
#define HF_SCOPED_CAPABILITY HF_THREAD_ANNOTATION_(scoped_lockable)
// Data members: readable/writable only with the given mutex held.
#define HF_GUARDED_BY(mutex) HF_THREAD_ANNOTATION_(guarded_by(mutex))
#define HF_PT_GUARDED_BY(mutex) HF_THREAD_ANNOTATION_(pt_guarded_by(mutex))
// Functions: caller must hold / must not hold the mutex.
#define HF_REQUIRES(...) HF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define HF_EXCLUDES(...) HF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Functions that acquire / release the mutex themselves.
#define HF_ACQUIRE(...) HF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define HF_RELEASE(...) HF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
// Escape hatch for patterns the analysis cannot follow.
#define HF_NO_THREAD_SAFETY_ANALYSIS HF_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace hybridflow {

// Annotated exclusive mutex. Also satisfies BasicLockable (lock/unlock) so
// CondVar can re-acquire it inside Wait.
class HF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HF_ACQUIRE() { mu_.lock(); }
  void Unlock() HF_RELEASE() { mu_.unlock(); }

  // BasicLockable interface for std::condition_variable_any; annotated the
  // same way so direct use is also analysis-visible.
  void lock() HF_ACQUIRE() { mu_.lock(); }
  void unlock() HF_RELEASE() { mu_.unlock(); }

 private:
  // guards: whatever the owning class marks HF_GUARDED_BY(<this Mutex>).
  std::mutex mu_;
};

// RAII lock; release is implicit at scope exit.
class HF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HF_ACQUIRE(mutex) : mutex_(mutex) { mutex_.Lock(); }
  ~MutexLock() HF_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;  // The held capability itself.  hflint: allow(mutex-guards)
};

// Condition variable paired with Mutex. Wait atomically releases and
// re-acquires the mutex; the analysis treats the capability as held
// throughout, which matches how callers reason about their predicates.
class CondVar {
 public:
  void Wait(Mutex& mutex) HF_REQUIRES(mutex) HF_NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mutex); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hybridflow

#endif  // SRC_COMMON_ANNOTATIONS_H_
