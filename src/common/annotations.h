// Clang thread-safety annotations plus an annotated Mutex/CondVar wrapper.
//
// Clang's -Wthread-safety analysis needs lock acquisition/release to be
// visible in the type system. libstdc++'s std::mutex and std::lock_guard
// carry no such attributes, so annotating data with the raw std types
// produces false positives. Instead, concurrency-bearing code in this repo
// uses hybridflow::Mutex / MutexLock / CondVar below (thin zero-overhead
// wrappers over the std primitives, in the style of absl::Mutex), and marks
// shared state with HF_GUARDED_BY(mutex_name).
//
// On GCC (and any compiler without the capability attributes) every macro
// expands to nothing and the wrappers behave identically.
//
// Beyond the static annotations, the wrappers carry the *dynamic*
// concurrency-contract hooks (docs/STATIC_ANALYSIS.md §4): in
// contract-checked builds (HF_SYNC_CONTRACTS_ENABLED, on for every build
// type except Release) each Lock/Unlock reports to the process-wide
// lock-order graph (src/analysis/lock_graph.h) for potential-deadlock
// detection, and Lock / CondVar wakeups are seeded schedule-perturbation
// points (src/analysis/schedule_fuzz.h, HF_SCHEDULE_FUZZ). With the gate
// off, the hooks — including the per-mutex name slot — compile out
// entirely and Mutex is layout-identical to std::mutex
// (tests/sync_contracts_release_test.cc asserts both).
//
// Conventions (enforced by tools/hflint.cc, see docs/STATIC_ANALYSIS.md):
//   * every mutex member names what it protects, either structurally via
//     HF_GUARDED_BY on the protected members or with a `// guards:` comment;
//   * CondVar::Wait sits inside a while (predicate) loop;
//   * std::thread is constructed only inside src/common/thread_pool.cc —
//     all other code parallelizes through ThreadPool.
#ifndef SRC_COMMON_ANNOTATIONS_H_
#define SRC_COMMON_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

// Contract-checked builds default ON; the top-level CMakeLists defines
// HF_SYNC_CONTRACTS_OFF for Release / -DHF_SYNC_CONTRACTS=OFF. A TU may
// also predefine HF_SYNC_CONTRACTS_ENABLED itself (the release-mode
// no-op test does, and builds without the lock-graph library).
#ifndef HF_SYNC_CONTRACTS_ENABLED
#ifdef HF_SYNC_CONTRACTS_OFF
#define HF_SYNC_CONTRACTS_ENABLED 0
#else
#define HF_SYNC_CONTRACTS_ENABLED 1
#endif
#endif

#if HF_SYNC_CONTRACTS_ENABLED
#include "src/analysis/lock_graph.h"
#include "src/analysis/schedule_fuzz.h"
#endif

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HF_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef HF_THREAD_ANNOTATION_
#define HF_THREAD_ANNOTATION_(x)  // No-op outside Clang.
#endif

// Applied to a class that models a lockable resource.
#define HF_CAPABILITY(name) HF_THREAD_ANNOTATION_(capability(name))
// Applied to an RAII class that holds a capability for its lifetime.
#define HF_SCOPED_CAPABILITY HF_THREAD_ANNOTATION_(scoped_lockable)
// Data members: readable/writable only with the given mutex held.
#define HF_GUARDED_BY(mutex) HF_THREAD_ANNOTATION_(guarded_by(mutex))
#define HF_PT_GUARDED_BY(mutex) HF_THREAD_ANNOTATION_(pt_guarded_by(mutex))
// Functions: caller must hold / must not hold the mutex.
#define HF_REQUIRES(...) HF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define HF_EXCLUDES(...) HF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Functions that acquire / release the mutex themselves.
#define HF_ACQUIRE(...) HF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define HF_RELEASE(...) HF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
// Escape hatch for patterns the analysis cannot follow.
#define HF_NO_THREAD_SAFETY_ANALYSIS HF_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace hybridflow {

// Annotated exclusive mutex. Also satisfies BasicLockable (lock/unlock) so
// CondVar can re-acquire it inside Wait.
class HF_CAPABILITY("mutex") Mutex {
 public:
  // True when this build carries the lock-graph / schedule-fuzz hooks.
  static constexpr bool kSyncContractsEnabled = HF_SYNC_CONTRACTS_ENABLED != 0;

  Mutex() = default;
  // The name appears in potential-deadlock reports (otherwise the report
  // falls back to the mutex address). Ignored in release builds.
#if HF_SYNC_CONTRACTS_ENABLED
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() { LockGraph::Global().OnDestroy(this); }
#else
  explicit Mutex(const char* /*name*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HF_ACQUIRE() {
    AcquireHooks();
    mu_.lock();
  }
  void Unlock() HF_RELEASE() {
    ReleaseHooks();
    mu_.unlock();
  }

  // BasicLockable interface for std::condition_variable_any; annotated the
  // same way so direct use is also analysis-visible. CondVar::Wait calls
  // these around its internal release/re-acquire, so waits keep the
  // held-lock bookkeeping exact and wakeup re-acquisition is a fuzz point.
  void lock() HF_ACQUIRE() {
    AcquireHooks();
    mu_.lock();
  }
  void unlock() HF_RELEASE() {
    ReleaseHooks();
    mu_.unlock();
  }

 private:
#if HF_SYNC_CONTRACTS_ENABLED
  // OnAcquire runs before the underlying lock so a cycle is reported even
  // when this acquisition then deadlocks for real.
  void AcquireHooks() {
    ScheduleFuzzer::Global().MaybeInject(ScheduleFuzzer::Site::kMutexLock);
    LockGraph::Global().OnAcquire(this, name_);
  }
  void ReleaseHooks() { LockGraph::Global().OnRelease(this); }
  const char* name_ = nullptr;
#else
  static void AcquireHooks() {}
  static void ReleaseHooks() {}
#endif
  // The capability primitive itself — there is nothing for HF_GUARDED_BY
  // to reference, so the unreferenced-guard audit is waived here.
  // guards: whatever the owning class marks HF_GUARDED_BY(<this Mutex>).
  std::mutex mu_;  // hflint: allow(unreferenced-guard)
};

// RAII lock; release is implicit at scope exit.
class HF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HF_ACQUIRE(mutex) : mutex_(mutex) { mutex_.Lock(); }
  ~MutexLock() HF_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;  // The held capability itself.  hflint: allow(mutex-guards)
};

// Condition variable paired with Mutex. Wait atomically releases and
// re-acquires the mutex; the analysis treats the capability as held
// throughout, which matches how callers reason about their predicates.
// Wait must sit inside a while (predicate) loop (spurious wakeups are
// real, and the schedule fuzzer's post-wakeup perturbation makes stolen
// wakeups likelier); hflint's condvar-wait rule enforces the shape.
class CondVar {
 public:
  void Wait(Mutex& mutex) HF_REQUIRES(mutex) HF_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mutex);
#if HF_SYNC_CONTRACTS_ENABLED
    // Perturb post-wakeup: widens the window in which another thread can
    // steal the predicate between the notify and the waiter's re-check.
    ScheduleFuzzer::Global().MaybeInject(ScheduleFuzzer::Site::kCondVarWakeup);
#endif
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hybridflow

#endif  // SRC_COMMON_ANNOTATIONS_H_
