// Unit helpers for bytes, bandwidth, FLOPs, and simulated time.
//
// Conventions used throughout HybridFlow:
//   * bytes and FLOPs are double (values routinely exceed 2^53 only in
//     aggregate FLOPs, where double precision is ample for timing math)
//   * bandwidth is bytes per second
//   * simulated time is seconds (double)
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

namespace hybridflow {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

inline constexpr double kTeraflop = 1e12;
inline constexpr double kGigaflop = 1e9;

// Converts a link rate quoted in Gbit/s (network convention) to bytes/s.
constexpr double GbpsToBytesPerSec(double gbps) { return gbps * 1e9 / 8.0; }

// Converts a link rate quoted in GB/s (NVLink convention) to bytes/s.
constexpr double GBpsToBytesPerSec(double gbs) { return gbs * 1e9; }

constexpr double BytesToGiB(double bytes) { return bytes / kGiB; }
constexpr double BytesToGB(double bytes) { return bytes / kGB; }

}  // namespace hybridflow

#endif  // SRC_COMMON_UNITS_H_
