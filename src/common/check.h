// Invariant-checking macros used across HybridFlow.
//
// HF_CHECK* macros are for programmer errors and internal invariants: they
// abort with a diagnostic. User-facing configuration validation should use
// Result or throw std::invalid_argument at API boundaries instead.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hybridflow {

[[noreturn]] inline void CheckFailure(const char* file, int line, const std::string& message) {
  // The process is about to abort: bypass the logger (whose state may be
  // the thing that failed) and write straight to stderr.
  std::cerr << "HF_CHECK failed at " << file << ":" << line << ": "  // hflint: allow(raw-diagnostics)
            << message << std::endl;
  std::abort();
}

}  // namespace hybridflow

#define HF_CHECK(condition)                                                      \
  do {                                                                           \
    if (!(condition)) {                                                          \
      ::hybridflow::CheckFailure(__FILE__, __LINE__, "expected: " #condition);   \
    }                                                                            \
  } while (false)

#define HF_CHECK_MSG(condition, msg)                                             \
  do {                                                                           \
    if (!(condition)) {                                                          \
      std::ostringstream hf_check_stream_;                                       \
      hf_check_stream_ << "expected: " #condition << " — " << msg;               \
      ::hybridflow::CheckFailure(__FILE__, __LINE__, hf_check_stream_.str());    \
    }                                                                            \
  } while (false)

#define HF_CHECK_OP_(lhs, rhs, op)                                               \
  do {                                                                           \
    auto hf_lhs_ = (lhs);                                                        \
    auto hf_rhs_ = (rhs);                                                        \
    if (!(hf_lhs_ op hf_rhs_)) {                                                 \
      std::ostringstream hf_check_stream_;                                       \
      hf_check_stream_ << "expected: " #lhs " " #op " " #rhs << " (" << hf_lhs_  \
                       << " vs " << hf_rhs_ << ")";                              \
      ::hybridflow::CheckFailure(__FILE__, __LINE__, hf_check_stream_.str());    \
    }                                                                            \
  } while (false)

#define HF_CHECK_EQ(lhs, rhs) HF_CHECK_OP_(lhs, rhs, ==)
#define HF_CHECK_NE(lhs, rhs) HF_CHECK_OP_(lhs, rhs, !=)
#define HF_CHECK_LT(lhs, rhs) HF_CHECK_OP_(lhs, rhs, <)
#define HF_CHECK_LE(lhs, rhs) HF_CHECK_OP_(lhs, rhs, <=)
#define HF_CHECK_GT(lhs, rhs) HF_CHECK_OP_(lhs, rhs, >)
#define HF_CHECK_GE(lhs, rhs) HF_CHECK_OP_(lhs, rhs, >=)

#define HF_UNREACHABLE() ::hybridflow::CheckFailure(__FILE__, __LINE__, "unreachable code reached")

#endif  // SRC_COMMON_CHECK_H_
