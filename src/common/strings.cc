#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "src/common/units.h"

namespace hybridflow {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return "";
  }
  std::string result(static_cast<size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

std::string JoinInts(const std::vector<int>& values, const std::string& separator) {
  std::ostringstream out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out << separator;
    }
    out << values[i];
  }
  return out.str();
}

std::string HumanBytes(double bytes) {
  if (bytes >= kGiB) {
    return StrFormat("%.2f GiB", bytes / kGiB);
  }
  if (bytes >= kMiB) {
    return StrFormat("%.2f MiB", bytes / kMiB);
  }
  if (bytes >= kKiB) {
    return StrFormat("%.2f KiB", bytes / kKiB);
  }
  return StrFormat("%.0f B", bytes);
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 60.0) {
    return StrFormat("%.1f min", seconds / 60.0);
  }
  if (seconds >= 1.0) {
    return StrFormat("%.2f s", seconds);
  }
  if (seconds >= 1e-3) {
    return StrFormat("%.2f ms", seconds * 1e3);
  }
  return StrFormat("%.2f us", seconds * 1e6);
}

}  // namespace hybridflow
