// Deterministic random number generation for reproducible experiments.
//
// All stochastic components (dataset synthesis, network init, sampling)
// take an explicit Rng so that every test and bench is seed-reproducible.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace hybridflow {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  double Normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  // Samples an index from an unnormalized non-negative weight vector.
  // Falls back to uniform if all weights are zero.
  int64_t Categorical(const std::vector<double>& weights);

  // Derives an independent child stream; stable for a given
  // (seed, stream_id) pair because it reseeds a fresh engine.
  Rng Fork(uint64_t stream_id) const {
    return Rng(seed_ ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1)));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace hybridflow

#endif  // SRC_COMMON_RNG_H_
