// Fixed-size worker thread pool for the multi-controller compute plane.
//
// Forward-only per-rank computations (generation, inference, reward
// scoring) are independent across data shards and run concurrently here;
// update computations stay sequential because their backward passes
// accumulate into shared parameter gradients.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hybridflow {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  // Enqueues a task; the future resolves when it finishes (exceptions are
  // propagated through the future).
  std::future<void> Submit(std::function<void()> task);

  // Runs fn(i) for i in [0, count) across the pool and blocks until all
  // complete. Rethrows the first task exception, if any.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  // Process-wide pool sized to the hardware concurrency (at least 2).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace hybridflow

#endif  // SRC_COMMON_THREAD_POOL_H_
