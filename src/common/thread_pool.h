// Fixed-size worker thread pool for the multi-controller compute plane.
//
// Forward-only per-rank computations (generation, inference, reward
// scoring) are independent across data shards and run concurrently here;
// update computations stay sequential because their backward passes
// accumulate into shared parameter gradients.
//
// Thread-safety: Submit and ParallelFor may be called concurrently from any
// non-pool thread; pool tasks must not block on the pool (a task waiting on
// work behind it in a saturated queue would deadlock). All shared state is
// guarded by mutex_ and annotated for Clang's -Wthread-safety analysis.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/common/annotations.h"

namespace hybridflow {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  // Enqueues a task; the future resolves when it finishes (exceptions are
  // propagated through the future).
  std::future<void> Submit(std::function<void()> task) HF_EXCLUDES(mutex_);

  // Runs fn(i) for i in [0, count) across the pool and blocks until every
  // task completes, then rethrows the lowest-index task exception, if any.
  void ParallelFor(int count, const std::function<void(int)>& fn) HF_EXCLUDES(mutex_);

  // Process-wide pool sized to the hardware concurrency (at least 2).
  static ThreadPool& Shared();

  // True when the calling thread is a worker of ANY ThreadPool. Library
  // code that fans work out onto a pool (the tensor kernels) checks this
  // and falls back to caller-runs execution, because a pool task that
  // blocks waiting on tasks queued behind it would deadlock a saturated
  // pool.
  static bool OnPoolThread();

 private:
  void WorkerLoop() HF_EXCLUDES(mutex_);

  // Immutable after construction; joined in the destructor.
  std::vector<std::thread> threads_;

  // A task plus the wall-clock instant it was enqueued, so workers can
  // report queue latency to the metrics registry.
  struct QueuedTask {
    std::packaged_task<void()> task;
    double enqueue_us = 0.0;
  };

  Mutex mutex_{"ThreadPool.mutex_"};
  std::deque<QueuedTask> queue_ HF_GUARDED_BY(mutex_);
  CondVar wake_;  // Signaled under mutex_ when queue_ grows or stopping_ flips.
  bool stopping_ HF_GUARDED_BY(mutex_) = false;
};

}  // namespace hybridflow

#endif  // SRC_COMMON_THREAD_POOL_H_
