#include "src/common/config.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/check.h"

namespace hybridflow {

std::string TrimWhitespace(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ConfigMap::ParseString(const std::string& text, std::string* error) {
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    line_number += 1;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) {
      line = line.substr(0, comment);
    }
    line = TrimWhitespace(line);
    if (line.empty()) {
      continue;
    }
    const size_t equals = line.find('=');
    if (equals == std::string::npos) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": expected 'key = value'";
      }
      return false;
    }
    const std::string key = TrimWhitespace(line.substr(0, equals));
    const std::string value = TrimWhitespace(line.substr(equals + 1));
    if (key.empty()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": empty key";
      }
      return false;
    }
    values_[key] = value;
  }
  return true;
}

bool ConfigMap::ParseFile(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseString(contents.str(), error);
}

std::string ConfigMap::GetString(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t ConfigMap::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  HF_CHECK_MSG(end != nullptr && *end == '\0' && !it->second.empty(),
               "config key " << key << " is not an integer: '" << it->second << "'");
  return static_cast<int64_t>(value);
}

double ConfigMap::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  HF_CHECK_MSG(end != nullptr && *end == '\0' && !it->second.empty(),
               "config key " << key << " is not a number: '" << it->second << "'");
  return value;
}

bool ConfigMap::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& value = it->second;
  if (value == "true" || value == "1" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  HF_CHECK_MSG(false, "config key " << key << " is not a boolean: '" << value << "'");
  return fallback;
}

}  // namespace hybridflow
