#include "src/nn/adam.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/parallel.h"
#include "src/tensor/simd.h"

namespace hybridflow {

namespace {

// Flops-equivalent estimate for one Adam element update (clip, two moment
// EMAs, bias correction, rsqrt step).
constexpr int64_t kAdamFlopsPerElem = 12;

}  // namespace

Adam::Adam(std::vector<Tensor> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& param : params_) {
    HF_CHECK(param.requires_grad());
    m_.emplace_back(param.size(), 0.0f);
    v_.emplace_back(param.size(), 0.0f);
  }
}

void Adam::Step() {
  static Histogram& step_us = MetricsRegistry::Global().GetHistogram(
      "tensor.kernel_us", ExponentialBuckets(1.0, 4.0, 10), {{"op", "adam_step"}});
  static Counter& step_flops =
      MetricsRegistry::Global().GetCounter("tensor.flops_total", {{"op", "adam_step"}});
  const double start_us = WallclockTracer::NowMicros();
  int64_t total_elems = 0;
  steps_ += 1;
  const float bias1 = 1.0f - std::pow(config_.beta1, static_cast<float>(steps_));
  const float bias2 = 1.0f - std::pow(config_.beta2, static_cast<float>(steps_));
  for (size_t p = 0; p < params_.size(); ++p) {
    Tensor& param = params_[p];
    TensorNode& node = *param.node();
    node.EnsureGrad();
    std::vector<float>& m = m_[p];
    std::vector<float>& v = v_[p];
    const int64_t size = static_cast<int64_t>(node.data.size());
    total_elems += size;
    // Each element's update is independent, so chunks of the parameter
    // are thread-count invariant by construction; the simd kernel runs
    // the seed's exact per-element sequence (all ops exactly rounded).
    ParallelChunks(size, GetKernelTuning().elem_grain, size * kAdamFlopsPerElem,
                   [&](int64_t begin, int64_t end) {
                     simd::AdamUpdate(end - begin, node.data.data() + begin,
                                      node.grad.data() + begin,
                                      m.data() + begin, v.data() + begin,
                                      config_.lr, config_.beta1, config_.beta2,
                                      config_.epsilon, config_.grad_clip,
                                      bias1, bias2);
                   });
  }
  ZeroGrad();
  step_us.Observe(WallclockTracer::NowMicros() - start_us);
  step_flops.Increment(static_cast<double>(total_elems * kAdamFlopsPerElem));
}

double Adam::GradNorm() const {
  double sum_squares = 0.0;
  for (const Tensor& param : params_) {
    const TensorNode& node = *param.node();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const double g = node.grad[i];
      sum_squares += g * g;
    }
  }
  return std::sqrt(sum_squares);
}

void Adam::ZeroGrad() {
  for (Tensor& param : params_) {
    param.node()->EnsureGrad();
    param.ZeroGrad();
  }
}

}  // namespace hybridflow
