#include "src/nn/adam.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace hybridflow {

Adam::Adam(std::vector<Tensor> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& param : params_) {
    HF_CHECK(param.requires_grad());
    m_.emplace_back(param.size(), 0.0f);
    v_.emplace_back(param.size(), 0.0f);
  }
}

void Adam::Step() {
  steps_ += 1;
  const float bias1 = 1.0f - std::pow(config_.beta1, static_cast<float>(steps_));
  const float bias2 = 1.0f - std::pow(config_.beta2, static_cast<float>(steps_));
  for (size_t p = 0; p < params_.size(); ++p) {
    Tensor& param = params_[p];
    TensorNode& node = *param.node();
    node.EnsureGrad();
    std::vector<float>& m = m_[p];
    std::vector<float>& v = v_[p];
    for (size_t i = 0; i < node.data.size(); ++i) {
      float g = node.grad[i];
      if (config_.grad_clip > 0.0f) {
        g = std::clamp(g, -config_.grad_clip, config_.grad_clip);
      }
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      node.data[i] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
  }
  ZeroGrad();
}

double Adam::GradNorm() const {
  double sum_squares = 0.0;
  for (const Tensor& param : params_) {
    const TensorNode& node = *param.node();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const double g = node.grad[i];
      sum_squares += g * g;
    }
  }
  return std::sqrt(sum_squares);
}

void Adam::ZeroGrad() {
  for (Tensor& param : params_) {
    param.node()->EnsureGrad();
    param.ZeroGrad();
  }
}

}  // namespace hybridflow
