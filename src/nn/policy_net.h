// Tiny causal language models standing in for the RLHF LLMs.
//
// Two architectures share one API:
//   * kMlpMixer (default): the context window is embedded through a shared
//     table, mixed with per-position projections, and passed through a
//     GELU MLP. Cheap and sufficient for the RLHF dataflow tests.
//   * kTransformer: a real (tiny) pre-norm transformer — token + position
//     embeddings, `num_layers` blocks of single-head self-attention and a
//     GELU MLP with residual connections, final layernorm, and the output
//     head applied to the last position. The window holds only
//     already-generated tokens, so full (unmasked) attention inside the
//     window is causal with respect to the token being predicted.
//
// The output head is either vocabulary logits (actor / reference policy)
// or a scalar (critic / reward / cost models — the paper's "language
// modeling head replaced by a scalar output head", §2.1).
//
// These networks run real forward/backward/Adam updates inside the worker
// classes, so every RLHF dataflow in this repo trains something real while
// the simulated cluster accounts the time of the full-size Llama models.
#ifndef SRC_NN_POLICY_NET_H_
#define SRC_NN_POLICY_NET_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace hybridflow {

enum class PolicyArch {
  kMlpMixer,
  kTransformer,
};

struct PolicyNetConfig {
  PolicyArch arch = PolicyArch::kMlpMixer;
  int64_t vocab_size = 16;
  int64_t context_window = 4;  // K last tokens visible to the model.
  int64_t embed_dim = 16;
  int64_t hidden_dim = 32;     // MLP width (both architectures).
  int64_t num_layers = 2;      // Transformer blocks (kTransformer only).
  bool scalar_head = false;    // true -> critic/reward-style scalar output.
};

class PolicyNet {
 public:
  PolicyNet(const PolicyNetConfig& config, Rng& rng);

  const PolicyNetConfig& config() const { return config_; }

  // `contexts` is a [batch][K] window of token ids (left-padded with 0).
  // Returns logits [batch, vocab] (scalar_head=false) or values [batch]
  // (scalar_head=true).
  Tensor Forward(const std::vector<std::vector<int64_t>>& contexts) const;

  // Log-probabilities of `tokens` under the model given `contexts`: [batch].
  Tensor LogProb(const std::vector<std::vector<int64_t>>& contexts,
                 const std::vector<int64_t>& tokens) const;

  // Samples one next token per context at the given temperature. No grad.
  std::vector<int64_t> Sample(const std::vector<std::vector<int64_t>>& contexts,
                              double temperature, Rng& rng) const;
  // Greedy next token per context (do_sample=false path of ReMax).
  std::vector<int64_t> Greedy(const std::vector<std::vector<int64_t>>& contexts) const;

  // All trainable parameters (for the optimizer and for weight transfer).
  std::vector<Tensor> Parameters() const;
  // Copies parameter values from another net with identical config (used
  // to initialize the reference policy from the actor).
  void CopyFrom(const PolicyNet& other);

 private:
  // One transformer block's parameters.
  struct Block {
    Tensor wq, wk, wv, wo;        // [E, E].
    Tensor ln1_gamma, ln1_beta;   // [E].
    Tensor ln2_gamma, ln2_beta;   // [E].
    Tensor ff1, ff1_bias;         // [E, H], [H].
    Tensor ff2, ff2_bias;         // [H, E], [E].
  };

  Tensor Trunk(const std::vector<std::vector<int64_t>>& contexts) const;
  Tensor TransformerTrunk(const std::vector<std::vector<int64_t>>& contexts) const;
  Tensor TransformerSequence(const std::vector<int64_t>& tokens) const;

  PolicyNetConfig config_;
  Tensor embedding_;  // [vocab, embed].

  // kMlpMixer.
  std::vector<Tensor> pos_weights_;  // K of [embed, hidden].
  Tensor hidden_bias_;               // [hidden].

  // kTransformer.
  Tensor pos_embedding_;  // [K, embed].
  std::vector<Block> blocks_;
  Tensor final_gamma_, final_beta_;  // [embed].

  Tensor out_weight_;  // [trunk_dim, vocab] or [trunk_dim, 1].
  Tensor out_bias_;    // [vocab] or [1].
};

// Samples (do_sample=true, at `temperature`) or argmaxes one token from row
// `row` of a [batch, vocab] logits matrix, returning its log-probability
// under the temperature-1 softmax in *log_prob (if non-null). Shared by the
// static generation path and the continuous-batching rollout engine so both
// produce bit-identical tokens and log-probs for the same logits row.
int64_t SampleLogitsRow(const Tensor& logits, int64_t row, double temperature, bool do_sample,
                        Rng& rng, float* log_prob);

}  // namespace hybridflow

#endif  // SRC_NN_POLICY_NET_H_
