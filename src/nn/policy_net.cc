#include "src/nn/policy_net.h"

#include <cmath>

namespace hybridflow {

PolicyNet::PolicyNet(const PolicyNetConfig& config, Rng& rng) : config_(config) {
  HF_CHECK_GT(config_.vocab_size, 1);
  HF_CHECK_GT(config_.context_window, 0);
  const float embed_std = 1.0f / std::sqrt(static_cast<float>(config_.embed_dim));
  const float hidden_std = 1.0f / std::sqrt(static_cast<float>(config_.hidden_dim));
  embedding_ = Tensor::Randn({config_.vocab_size, config_.embed_dim}, rng, embed_std);

  int64_t trunk_dim = 0;
  if (config_.arch == PolicyArch::kMlpMixer) {
    pos_weights_.reserve(static_cast<size_t>(config_.context_window));
    for (int64_t k = 0; k < config_.context_window; ++k) {
      pos_weights_.push_back(
          Tensor::Randn({config_.embed_dim, config_.hidden_dim}, rng, embed_std));
    }
    hidden_bias_ = Tensor::Zeros({config_.hidden_dim}, /*requires_grad=*/true);
    trunk_dim = config_.hidden_dim;
  } else {
    HF_CHECK_GT(config_.num_layers, 0);
    pos_embedding_ =
        Tensor::Randn({config_.context_window, config_.embed_dim}, rng, embed_std);
    blocks_.reserve(static_cast<size_t>(config_.num_layers));
    for (int64_t layer = 0; layer < config_.num_layers; ++layer) {
      Block block;
      block.wq = Tensor::Randn({config_.embed_dim, config_.embed_dim}, rng, embed_std);
      block.wk = Tensor::Randn({config_.embed_dim, config_.embed_dim}, rng, embed_std);
      block.wv = Tensor::Randn({config_.embed_dim, config_.embed_dim}, rng, embed_std);
      block.wo = Tensor::Randn({config_.embed_dim, config_.embed_dim}, rng, embed_std);
      block.ln1_gamma = Tensor::Full({config_.embed_dim}, 1.0f, /*requires_grad=*/true);
      block.ln1_beta = Tensor::Zeros({config_.embed_dim}, /*requires_grad=*/true);
      block.ln2_gamma = Tensor::Full({config_.embed_dim}, 1.0f, /*requires_grad=*/true);
      block.ln2_beta = Tensor::Zeros({config_.embed_dim}, /*requires_grad=*/true);
      block.ff1 = Tensor::Randn({config_.embed_dim, config_.hidden_dim}, rng, embed_std);
      block.ff1_bias = Tensor::Zeros({config_.hidden_dim}, /*requires_grad=*/true);
      block.ff2 = Tensor::Randn({config_.hidden_dim, config_.embed_dim}, rng, hidden_std);
      block.ff2_bias = Tensor::Zeros({config_.embed_dim}, /*requires_grad=*/true);
      blocks_.push_back(std::move(block));
    }
    final_gamma_ = Tensor::Full({config_.embed_dim}, 1.0f, /*requires_grad=*/true);
    final_beta_ = Tensor::Zeros({config_.embed_dim}, /*requires_grad=*/true);
    trunk_dim = config_.embed_dim;
  }

  const int64_t out_dim = config_.scalar_head ? 1 : config_.vocab_size;
  const float trunk_std = 1.0f / std::sqrt(static_cast<float>(trunk_dim));
  out_weight_ = Tensor::Randn({trunk_dim, out_dim}, rng, trunk_std);
  out_bias_ = Tensor::Zeros({out_dim}, /*requires_grad=*/true);
}

Tensor PolicyNet::TransformerSequence(const std::vector<int64_t>& tokens) const {
  HF_CHECK_EQ(static_cast<int64_t>(tokens.size()), config_.context_window);
  const float attention_scale = 1.0f / std::sqrt(static_cast<float>(config_.embed_dim));
  Tensor x = Add(GatherRows(embedding_, tokens), pos_embedding_);
  for (const Block& block : blocks_) {
    // Pre-norm single-head self-attention with a residual connection. The
    // whole window is past context for the next-token prediction, so no
    // causal mask is needed (only the last position feeds the head).
    Tensor normed = LayerNorm(x, block.ln1_gamma, block.ln1_beta);
    Tensor q = MatMul(normed, block.wq);
    Tensor k = MatMul(normed, block.wk);
    Tensor v = MatMul(normed, block.wv);
    // Fused q*k^T: no materialized Transpose(k); forward values are
    // bitwise identical to the composed form.
    Tensor scores = Scale(MatMulNT(q, k), attention_scale);
    Tensor attention = MatMul(Softmax(scores), v);
    x = Add(x, MatMul(attention, block.wo));
    // Pre-norm MLP with a residual connection. ln2 feeds only ff1, so
    // the fused LayerNormMatMul applies (ln1 above is shared by q/k/v
    // and stays composed).
    Tensor mlp_pre = LayerNormMatMul(x, block.ln2_gamma, block.ln2_beta, block.ff1);
    Tensor hidden = Gelu(Add(mlp_pre, block.ff1_bias));
    x = Add(x, Add(MatMul(hidden, block.ff2), block.ff2_bias));
  }
  return LayerNorm(x, final_gamma_, final_beta_);
}

Tensor PolicyNet::TransformerTrunk(const std::vector<std::vector<int64_t>>& contexts) const {
  std::vector<Tensor> last_rows;
  last_rows.reserve(contexts.size());
  for (const std::vector<int64_t>& context : contexts) {
    Tensor sequence = TransformerSequence(context);
    last_rows.push_back(
        SliceRows(sequence, config_.context_window - 1, config_.context_window));
  }
  return ConcatRows(last_rows);
}

Tensor PolicyNet::Trunk(const std::vector<std::vector<int64_t>>& contexts) const {
  HF_CHECK(!contexts.empty());
  if (config_.arch == PolicyArch::kTransformer) {
    return TransformerTrunk(contexts);
  }
  const int64_t batch = static_cast<int64_t>(contexts.size());
  Tensor mixed;
  for (int64_t k = 0; k < config_.context_window; ++k) {
    std::vector<int64_t> position_tokens(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      const std::vector<int64_t>& context = contexts[static_cast<size_t>(i)];
      HF_CHECK_EQ(static_cast<int64_t>(context.size()), config_.context_window);
      position_tokens[static_cast<size_t>(i)] = context[static_cast<size_t>(k)];
    }
    Tensor embedded = GatherRows(embedding_, position_tokens);
    Tensor projected = MatMul(embedded, pos_weights_[static_cast<size_t>(k)]);
    mixed = k == 0 ? projected : Add(mixed, projected);
  }
  return Gelu(Add(mixed, hidden_bias_));
}

Tensor PolicyNet::Forward(const std::vector<std::vector<int64_t>>& contexts) const {
  Tensor hidden = Trunk(contexts);
  Tensor out = Add(MatMul(hidden, out_weight_), out_bias_);
  if (config_.scalar_head) {
    return Reshape(out, {static_cast<int64_t>(contexts.size())});
  }
  return out;
}

Tensor PolicyNet::LogProb(const std::vector<std::vector<int64_t>>& contexts,
                          const std::vector<int64_t>& tokens) const {
  HF_CHECK(!config_.scalar_head);
  HF_CHECK_EQ(contexts.size(), tokens.size());
  Tensor log_probs = LogSoftmax(Forward(contexts));
  return PickPerRow(log_probs, tokens);
}

std::vector<int64_t> PolicyNet::Sample(const std::vector<std::vector<int64_t>>& contexts,
                                       double temperature, Rng& rng) const {
  HF_CHECK(!config_.scalar_head);
  HF_CHECK_GT(temperature, 0.0);
  Tensor logits = Forward(contexts);
  const int64_t batch = logits.dim(0);
  const int64_t vocab = logits.dim(1);
  std::vector<int64_t> tokens(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) {
    std::vector<double> weights(static_cast<size_t>(vocab));
    double max_logit = logits.at(i, 0);
    for (int64_t j = 1; j < vocab; ++j) {
      max_logit = std::max(max_logit, static_cast<double>(logits.at(i, j)));
    }
    for (int64_t j = 0; j < vocab; ++j) {
      weights[static_cast<size_t>(j)] =
          std::exp((static_cast<double>(logits.at(i, j)) - max_logit) / temperature);
    }
    tokens[static_cast<size_t>(i)] = rng.Categorical(weights);
  }
  return tokens;
}

std::vector<int64_t> PolicyNet::Greedy(const std::vector<std::vector<int64_t>>& contexts) const {
  HF_CHECK(!config_.scalar_head);
  Tensor logits = Forward(contexts);
  const int64_t batch = logits.dim(0);
  const int64_t vocab = logits.dim(1);
  std::vector<int64_t> tokens(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) {
    int64_t best = 0;
    for (int64_t j = 1; j < vocab; ++j) {
      if (logits.at(i, j) > logits.at(i, best)) {
        best = j;
      }
    }
    tokens[static_cast<size_t>(i)] = best;
  }
  return tokens;
}

std::vector<Tensor> PolicyNet::Parameters() const {
  std::vector<Tensor> params;
  params.push_back(embedding_);
  if (config_.arch == PolicyArch::kMlpMixer) {
    for (const Tensor& w : pos_weights_) {
      params.push_back(w);
    }
    params.push_back(hidden_bias_);
  } else {
    params.push_back(pos_embedding_);
    for (const Block& block : blocks_) {
      params.push_back(block.wq);
      params.push_back(block.wk);
      params.push_back(block.wv);
      params.push_back(block.wo);
      params.push_back(block.ln1_gamma);
      params.push_back(block.ln1_beta);
      params.push_back(block.ln2_gamma);
      params.push_back(block.ln2_beta);
      params.push_back(block.ff1);
      params.push_back(block.ff1_bias);
      params.push_back(block.ff2);
      params.push_back(block.ff2_bias);
    }
    params.push_back(final_gamma_);
    params.push_back(final_beta_);
  }
  params.push_back(out_weight_);
  params.push_back(out_bias_);
  return params;
}

void PolicyNet::CopyFrom(const PolicyNet& other) {
  std::vector<Tensor> mine = Parameters();
  std::vector<Tensor> theirs = other.Parameters();
  HF_CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    HF_CHECK(mine[i].shape() == theirs[i].shape());
    mine[i].data() = theirs[i].data();
  }
}

int64_t SampleLogitsRow(const Tensor& logits, int64_t row, double temperature, bool do_sample,
                        Rng& rng, float* log_prob) {
  const int64_t vocab = logits.dim(1);
  double max_logit = logits.at(row, 0);
  for (int64_t j = 1; j < vocab; ++j) {
    max_logit = std::max(max_logit, static_cast<double>(logits.at(row, j)));
  }
  double denom = 0.0;
  for (int64_t j = 0; j < vocab; ++j) {
    denom += std::exp(static_cast<double>(logits.at(row, j)) - max_logit);
  }
  int64_t chosen = 0;
  if (do_sample) {
    std::vector<double> weights(static_cast<size_t>(vocab));
    for (int64_t j = 0; j < vocab; ++j) {
      weights[static_cast<size_t>(j)] =
          std::exp((static_cast<double>(logits.at(row, j)) - max_logit) / temperature);
    }
    chosen = rng.Categorical(weights);
  } else {
    for (int64_t j = 1; j < vocab; ++j) {
      if (logits.at(row, j) > logits.at(row, chosen)) {
        chosen = j;
      }
    }
  }
  if (log_prob != nullptr) {
    *log_prob = static_cast<float>(static_cast<double>(logits.at(row, chosen)) - max_logit -
                                   std::log(denom));
  }
  return chosen;
}

}  // namespace hybridflow
