// Adam optimizer (Kingma & Ba) over a list of parameter tensors — the
// optimizer the paper uses for actor and critic updates (§8.1).
#ifndef SRC_NN_ADAM_H_
#define SRC_NN_ADAM_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace hybridflow {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  // Per-element gradient clip (0 disables). Applied before the update, as a
  // cheap stand-in for global-norm clipping.
  float grad_clip = 1.0f;
};

class Adam {
 public:
  Adam(std::vector<Tensor> params, AdamConfig config = AdamConfig());

  // Applies one update using the gradients accumulated on the parameters,
  // then zeroes them.
  void Step();

  // Zeroes parameter gradients without updating.
  void ZeroGrad();

  // Global L2 norm of the currently accumulated (pre-clip) gradients.
  // Call before Step(), which zeroes them.
  double GradNorm() const;

  int64_t steps() const { return steps_; }
  const std::vector<Tensor>& params() const { return params_; }

 private:
  std::vector<Tensor> params_;
  AdamConfig config_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  int64_t steps_ = 0;
};

}  // namespace hybridflow

#endif  // SRC_NN_ADAM_H_
