// Single-process RLHF dataflow programs (Figure 6).
//
// Each algorithm is a short controller-side script over the model classes'
// primitive APIs — this is the paper's flexibility claim made concrete:
// PPO, ReMax, Safe-RLHF and GRPO differ only in which models exist, one
// extra generation pass, and the numerical configuration of
// compute_advantage / the losses.
#ifndef SRC_RLHF_RLHF_PROGRAM_H_
#define SRC_RLHF_RLHF_PROGRAM_H_

#include <map>
#include <memory>
#include <string>

#include "src/controller/controller.h"
#include "src/rlhf/advantage.h"
#include "src/rlhf/kl_controller.h"
#include "src/workers/model_workers.h"

namespace hybridflow {

class TelemetrySink;

enum class RlhfAlgorithm {
  kPpo,
  kRemax,
  kSafeRlhf,
  kGrpo,
};

const char* RlhfAlgorithmName(RlhfAlgorithm algorithm);

struct RlhfProgramConfig {
  RlhfAlgorithm algorithm = RlhfAlgorithm::kPpo;
  RlhfWorkloadSpec workload;
  AdvantageConfig advantage;
  PolicyLossConfig policy_loss;
  ValueLossConfig value_loss;
  float ptx_coef = 0.0f;  // Safe-RLHF / PPO-ptx pretraining-loss mix-in.
  // Recompute response log-probs with a dedicated forward pass in stage 2
  // instead of reusing the generation-time values ("Optional in PPO",
  // Table 4). Adds one actor inference op per iteration.
  bool recompute_log_probs = false;
  // Adaptive KL penalty (InstructGPT): when enabled, the advantage
  // computation's kl_coef tracks `adaptive_kl.target_kl`.
  bool use_adaptive_kl = false;
  AdaptiveKlConfig adaptive_kl;
  // Toy-scale prompts per iteration for the real data plane.
  int64_t real_batch = 32;
};

// Non-owning view of the worker groups participating in a dataflow. Models
// not used by the selected algorithm may be null (e.g. critic for ReMax).
struct RlhfModels {
  ActorWorkerGroup* actor = nullptr;
  CriticWorkerGroup* critic = nullptr;
  ReferenceWorkerGroup* reference = nullptr;
  RewardWorkerGroup* reward = nullptr;
  RewardWorkerGroup* cost = nullptr;  // Safe-RLHF.
};

struct IterationMetrics {
  double iteration_seconds = 0.0;
  double throughput_tokens_per_sec = 0.0;
  // Real-plane learning signals (zero when the data plane is disabled).
  double mean_reward = 0.0;
  double toxicity_rate = 0.0;
  double coherence_rate = 0.0;
  double actor_loss = 0.0;
  double critic_loss = 0.0;
  double mean_kl = 0.0;
  double kl_coef = 0.0;  // KL coefficient in effect (adaptive or fixed).
  // Mean global L2 gradient norm across this iteration's actor updates.
  double grad_norm = 0.0;
  // Mean fraction of tokens outside the PPO clip range across updates.
  double clip_fraction = 0.0;
  // Real elapsed time of the controller loop for this iteration.
  double wall_clock_seconds = 0.0;
  // Performance-plane detail.
  double transition_seconds = 0.0;
  double generation_seconds = 0.0;
  // Busy seconds by op category ("generate", "infer", "train", "reshard").
  std::map<std::string, double> busy_by_category;
};

class RlhfProgram {
 public:
  RlhfProgram(RlhfProgramConfig config, RlhfModels models, Controller* controller,
              PromptDataset* dataset);

  // Runs one full RLHF iteration: generation -> experience preparation ->
  // learning (§2.1's three stages). Returns timing and learning metrics.
  IterationMetrics RunIteration();

  const RlhfProgramConfig& config() const { return config_; }

  // Optional structured-telemetry sink: when set, RunIteration appends one
  // JSONL record per iteration (loss, KL, reward, grad norm, clip
  // fraction, sim makespan, wall-clock ms, tokens/s). Not owned; must
  // outlive the program or be reset to nullptr.
  void SetTelemetrySink(TelemetrySink* sink) { telemetry_ = sink; }

 private:
  void ValidateModels() const;

  RlhfProgramConfig config_;
  RlhfModels models_;
  Controller* controller_;
  PromptDataset* dataset_;
  AdaptiveKlController kl_controller_;
  TelemetrySink* telemetry_ = nullptr;
  int64_t iterations_run_ = 0;
};

}  // namespace hybridflow

#endif  // SRC_RLHF_RLHF_PROGRAM_H_
