// Policy and value losses for the RLHF algorithms of Figure 6.
//
// These run inside the actor/critic workers' update functions; adapting an
// algorithm means swapping the loss configuration, exactly as the paper's
// `update_actor(batch, loss_func=algo_type)` does.
#ifndef SRC_RLHF_LOSSES_H_
#define SRC_RLHF_LOSSES_H_

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace hybridflow {

enum class PolicyLossKind {
  kPpoClip,    // PPO / Safe-RLHF / GRPO clipped surrogate.
  kReinforce,  // ReMax (REINFORCE with baseline-corrected advantages).
};

struct PolicyLossConfig {
  PolicyLossKind kind = PolicyLossKind::kPpoClip;
  float clip_eps = 0.2f;
};

// `log_probs` requires grad; `old_log_probs` and `advantages` are inputs
// (detached). All are flat [N] over (sample, token) pairs.
Tensor PolicyLoss(const Tensor& log_probs, const Tensor& old_log_probs,
                  const Tensor& advantages, const PolicyLossConfig& config);

struct ValueLossConfig {
  // PPO value clipping range (0 disables clipping).
  float clip_eps = 0.2f;
};

// Clipped squared-error critic loss. `values` requires grad; `old_values`
// and `returns` are detached inputs, all flat [N].
Tensor ValueLoss(const Tensor& values, const Tensor& old_values, const Tensor& returns,
                 const ValueLossConfig& config);

// Auxiliary pretraining loss (PPO-ptx / Safe-RLHF): mean NLL of the
// pretrain batch under the actor. `log_probs` are the actor's log-probs of
// the pretrain tokens, requiring grad.
Tensor PretrainLoss(const Tensor& log_probs);

// Mean per-position policy entropy from raw logits [n, vocab]. Used as an
// exploration bonus: total_loss -= entropy_coef * MeanEntropy(logits).
Tensor MeanEntropy(const Tensor& logits);

}  // namespace hybridflow

#endif  // SRC_RLHF_LOSSES_H_
