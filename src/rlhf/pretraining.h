// The two LLM pipeline stages upstream of RLHF (§1):
//
//   * Supervised fine-tuning (SFT): next-token NLL on demonstration data —
//     here, coherent continuations synthesized from the alignment task's
//     ground-truth rule, standing in for instruction-following data.
//   * Reward-model training: Bradley–Terry pairwise preference fitting
//     (-log sigmoid(r_chosen - r_rejected)) on synthetic preference pairs
//     ranked by the task's ground truth, standing in for the
//     human-preference dataset the paper's reward models are fine-tuned on
//     (§2.1).
//
// Both operate on PolicyNet instances so the resulting weights drop
// directly into the RLHF worker groups (see examples/full_pipeline.cpp).
#ifndef SRC_RLHF_PRETRAINING_H_
#define SRC_RLHF_PRETRAINING_H_

#include <cstdint>

#include "src/data/alignment_task.h"
#include "src/nn/adam.h"
#include "src/nn/policy_net.h"

namespace hybridflow {

// --- SFT ----------------------------------------------------------------------

struct SftConfig {
  int steps = 200;
  int batch = 32;
  float lr = 0.01f;
  uint64_t seed = 1;
};

struct SftReport {
  double initial_loss = 0.0;
  double final_loss = 0.0;
  // Greedy next-token accuracy on the demonstration rule after training.
  double greedy_accuracy = 0.0;
};

// Fine-tunes `net` (vocabulary head) toward the task's coherent
// continuation rule. Returns before/after metrics.
SftReport RunSft(PolicyNet* net, const AlignmentTask& task, const SftConfig& config);

// --- Reward-model training ------------------------------------------------------

struct RewardTrainingConfig {
  int steps = 150;
  int pairs_per_step = 16;
  float lr = 0.01f;
  uint64_t seed = 2;
};

struct RewardTrainingReport {
  double initial_loss = 0.0;
  double final_loss = 0.0;
  // Fraction of held-out preference pairs ranked correctly.
  double ranking_accuracy = 0.0;
};

// Trains a scalar-head `reward_net` on synthetic preference pairs: two
// random responses per prompt, the one with the higher ground-truth task
// reward is "chosen". Scores are the mean of the per-position scalar head
// over the response (matching RewardWorkerGroup's kLearnedNet scoring).
RewardTrainingReport TrainRewardModel(PolicyNet* reward_net, const AlignmentTask& task,
                                      const RewardTrainingConfig& config);

// The mean per-position score of one (prompt, response) pair under a
// scalar-head net; differentiable. Exposed for tests.
Tensor ScoreResponse(const PolicyNet& reward_net, const std::vector<int64_t>& prompt,
                     const std::vector<int64_t>& response);

}  // namespace hybridflow

#endif  // SRC_RLHF_PRETRAINING_H_
