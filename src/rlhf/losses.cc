#include "src/rlhf/losses.h"

namespace hybridflow {

Tensor PolicyLoss(const Tensor& log_probs, const Tensor& old_log_probs,
                  const Tensor& advantages, const PolicyLossConfig& config) {
  HF_CHECK_EQ(log_probs.size(), old_log_probs.size());
  HF_CHECK_EQ(log_probs.size(), advantages.size());
  switch (config.kind) {
    case PolicyLossKind::kPpoClip: {
      Tensor ratio = Exp(Sub(log_probs, Detach(old_log_probs)));
      Tensor adv = Detach(advantages);
      Tensor surr1 = Mul(ratio, adv);
      Tensor surr2 = Mul(Clamp(ratio, 1.0f - config.clip_eps, 1.0f + config.clip_eps), adv);
      return Neg(Mean(Minimum(surr1, surr2)));
    }
    case PolicyLossKind::kReinforce: {
      return Neg(Mean(Mul(log_probs, Detach(advantages))));
    }
  }
  HF_UNREACHABLE();
}

Tensor ValueLoss(const Tensor& values, const Tensor& old_values, const Tensor& returns,
                 const ValueLossConfig& config) {
  HF_CHECK_EQ(values.size(), old_values.size());
  HF_CHECK_EQ(values.size(), returns.size());
  Tensor target = Detach(returns);
  Tensor unclipped = Square(Sub(values, target));
  if (config.clip_eps <= 0.0f) {
    return Scale(Mean(unclipped), 0.5f);
  }
  Tensor old_detached = Detach(old_values);
  // values clipped to old +- eps, PPO-style.
  Tensor delta = Clamp(Sub(values, old_detached), -config.clip_eps, config.clip_eps);
  Tensor clipped_values = Add(old_detached, delta);
  Tensor clipped = Square(Sub(clipped_values, target));
  return Scale(Mean(Maximum(unclipped, clipped)), 0.5f);
}

Tensor PretrainLoss(const Tensor& log_probs) { return Neg(Mean(log_probs)); }

Tensor MeanEntropy(const Tensor& logits) {
  Tensor log_probs = LogSoftmax(logits);
  Tensor probs = Exp(log_probs);
  return Neg(Mean(RowSum(Mul(probs, log_probs))));
}

}  // namespace hybridflow
