#include "src/rlhf/kl_controller.h"

#include <algorithm>

namespace hybridflow {

double AdaptiveKlController::Update(double observed_kl) {
  const double target = config_.target_kl;
  if (target > 0.0) {
    const double error =
        std::clamp((observed_kl - target) / target, -config_.error_clip, config_.error_clip);
    coef_ *= 1.0 + config_.horizon_gain * error;
    coef_ = std::clamp(coef_, config_.min_coef, config_.max_coef);
  }
  return coef_;
}

}  // namespace hybridflow
