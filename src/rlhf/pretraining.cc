#include "src/rlhf/pretraining.h"

#include "src/common/check.h"
#include "src/workers/token_context.h"

namespace hybridflow {

namespace {

// Synthesizes one demonstration context/target pair following the task's
// coherent-continuation rule.
void MakeDemonstration(const AlignmentTask& task, Rng& rng,
                       std::vector<int64_t>* context, int64_t* target) {
  const int64_t cycle = task.vocab_size - (task.use_eos ? 2 : 1);
  context->clear();
  // A coherent run ending at a random token; the demonstration target is
  // its successor.
  int64_t token = rng.UniformInt(0, cycle - 1);
  const int64_t window = 4;
  std::vector<int64_t> run;
  for (int64_t k = 0; k < window; ++k) {
    run.push_back(token);
    token = (token + 1) % cycle;
  }
  *context = run;
  *target = token % cycle;
}

// A random response of `length` tokens over the task's non-EOS vocabulary.
std::vector<int64_t> RandomResponse(const AlignmentTask& task, int64_t length, Rng& rng) {
  std::vector<int64_t> response;
  response.reserve(static_cast<size_t>(length));
  for (int64_t k = 0; k < length; ++k) {
    response.push_back(rng.UniformInt(0, task.vocab_size - 1));
  }
  return response;
}

}  // namespace

SftReport RunSft(PolicyNet* net, const AlignmentTask& task, const SftConfig& config) {
  HF_CHECK(net != nullptr);
  HF_CHECK(!net->config().scalar_head);
  const int64_t window = net->config().context_window;
  Rng rng(config.seed);
  AdamConfig adam_config;
  adam_config.lr = config.lr;
  Adam adam(net->Parameters(), adam_config);

  SftReport report;
  for (int step = 0; step < config.steps; ++step) {
    std::vector<std::vector<int64_t>> contexts;
    std::vector<int64_t> targets;
    for (int i = 0; i < config.batch; ++i) {
      std::vector<int64_t> run;
      int64_t target = 0;
      MakeDemonstration(task, rng, &run, &target);
      // Left-pad / truncate the run to the model's window.
      std::vector<int64_t> context(static_cast<size_t>(window), 0);
      for (int64_t k = 0; k < window && k < static_cast<int64_t>(run.size()); ++k) {
        context[static_cast<size_t>(window - 1 - k)] = run[run.size() - 1 - static_cast<size_t>(k)];
      }
      contexts.push_back(std::move(context));
      targets.push_back(target);
    }
    Tensor loss = Neg(Mean(net->LogProb(contexts, targets)));
    if (step == 0) {
      report.initial_loss = loss.item();
    }
    report.final_loss = loss.item();
    loss.Backward();
    adam.Step();
  }

  // Greedy accuracy over the whole cycle.
  const int64_t cycle = task.vocab_size - (task.use_eos ? 2 : 1);
  int correct = 0;
  for (int64_t last = 0; last < cycle; ++last) {
    std::vector<int64_t> context(static_cast<size_t>(window), 0);
    // A coherent run ending at `last`.
    for (int64_t k = 0; k < window; ++k) {
      context[static_cast<size_t>(window - 1 - k)] = ((last - k) % cycle + cycle) % cycle;
    }
    if (net->Greedy({context})[0] == (last + 1) % cycle) {
      correct += 1;
    }
  }
  report.greedy_accuracy = static_cast<double>(correct) / static_cast<double>(cycle);
  return report;
}

Tensor ScoreResponse(const PolicyNet& reward_net, const std::vector<int64_t>& prompt,
                     const std::vector<int64_t>& response) {
  HF_CHECK(reward_net.config().scalar_head);
  HF_CHECK(!response.empty());
  std::vector<std::vector<int64_t>> contexts;
  contexts.reserve(response.size());
  for (size_t k = 0; k < response.size(); ++k) {
    contexts.push_back(
        ContextWindow(prompt, response, k, reward_net.config().context_window));
  }
  return Mean(reward_net.Forward(contexts));
}

RewardTrainingReport TrainRewardModel(PolicyNet* reward_net, const AlignmentTask& task,
                                      const RewardTrainingConfig& config) {
  HF_CHECK(reward_net != nullptr);
  HF_CHECK(reward_net->config().scalar_head);
  Rng rng(config.seed);
  PromptDataset dataset(task, config.seed ^ 0xFEEDULL);
  AdamConfig adam_config;
  adam_config.lr = config.lr;
  Adam adam(reward_net->Parameters(), adam_config);

  RewardTrainingReport report;
  for (int step = 0; step < config.steps; ++step) {
    DataBatch prompts = dataset.NextBatch(config.pairs_per_step);
    Tensor total = Tensor::Scalar(0.0f);
    int pairs = 0;
    for (const std::vector<int64_t>& prompt : prompts.Tokens("prompts")) {
      std::vector<int64_t> a = RandomResponse(task, task.response_len, rng);
      std::vector<int64_t> b = RandomResponse(task, task.response_len, rng);
      const float reward_a = task.SampleReward(prompt, a);
      const float reward_b = task.SampleReward(prompt, b);
      if (reward_a == reward_b) {
        continue;  // No preference signal.
      }
      const std::vector<int64_t>& chosen = reward_a > reward_b ? a : b;
      const std::vector<int64_t>& rejected = reward_a > reward_b ? b : a;
      Tensor margin = Sub(ScoreResponse(*reward_net, prompt, chosen),
                          ScoreResponse(*reward_net, prompt, rejected));
      // Bradley–Terry: -log sigmoid(margin) = softplus(-margin).
      total = Add(total, Softplus(Neg(margin)));
      pairs += 1;
    }
    if (pairs == 0) {
      continue;
    }
    Tensor loss = Scale(total, 1.0f / static_cast<float>(pairs));
    if (report.initial_loss == 0.0) {
      report.initial_loss = loss.item();
    }
    report.final_loss = loss.item();
    loss.Backward();
    adam.Step();
  }

  // Held-out ranking accuracy.
  int correct = 0;
  int total_pairs = 0;
  PromptDataset held_out(task, config.seed ^ 0xBEEFULL);
  DataBatch prompts = held_out.NextBatch(64);
  for (const std::vector<int64_t>& prompt : prompts.Tokens("prompts")) {
    std::vector<int64_t> a = RandomResponse(task, task.response_len, rng);
    std::vector<int64_t> b = RandomResponse(task, task.response_len, rng);
    const float reward_a = task.SampleReward(prompt, a);
    const float reward_b = task.SampleReward(prompt, b);
    if (reward_a == reward_b) {
      continue;
    }
    const float score_a = ScoreResponse(*reward_net, prompt, a).item();
    const float score_b = ScoreResponse(*reward_net, prompt, b).item();
    if ((score_a > score_b) == (reward_a > reward_b)) {
      correct += 1;
    }
    total_pairs += 1;
  }
  report.ranking_accuracy =
      total_pairs > 0 ? static_cast<double>(correct) / total_pairs : 0.0;
  return report;
}

}  // namespace hybridflow
