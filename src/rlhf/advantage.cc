#include "src/rlhf/advantage.h"

#include <cmath>

#include "src/common/check.h"

namespace hybridflow {

std::vector<float> ShapedTokenRewards(const std::vector<float>& log_probs,
                                      const std::vector<float>& ref_log_probs,
                                      float sample_reward, float kl_coef) {
  HF_CHECK_EQ(log_probs.size(), ref_log_probs.size());
  std::vector<float> rewards(log_probs.size(), 0.0f);
  for (size_t k = 0; k < log_probs.size(); ++k) {
    rewards[k] = -kl_coef * (log_probs[k] - ref_log_probs[k]);
  }
  if (!rewards.empty()) {
    rewards.back() += sample_reward;
  }
  return rewards;
}

void GaeFromRewards(const std::vector<float>& rewards, const std::vector<float>& values,
                    float gamma, float lam, std::vector<float>* advantages,
                    std::vector<float>* returns) {
  HF_CHECK_EQ(rewards.size(), values.size());
  const size_t n = rewards.size();
  advantages->assign(n, 0.0f);
  returns->assign(n, 0.0f);
  float next_advantage = 0.0f;
  float next_value = 0.0f;
  for (size_t i = n; i-- > 0;) {
    const float delta = rewards[i] + gamma * next_value - values[i];
    const float advantage = delta + gamma * lam * next_advantage;
    (*advantages)[i] = advantage;
    (*returns)[i] = advantage + values[i];
    next_advantage = advantage;
    next_value = values[i];
  }
}

namespace {

// Per-row GAE advantages driven by a sample-level score.
void GaeColumns(const DataBatch::FloatColumn& log_probs,
                const DataBatch::FloatColumn& ref_log_probs,
                const DataBatch::FloatColumn& values, const std::vector<float>& sample_scores,
                const AdvantageConfig& config, DataBatch::FloatColumn* advantages,
                DataBatch::FloatColumn* returns) {
  const size_t batch = log_probs.size();
  advantages->resize(batch);
  returns->resize(batch);
  for (size_t i = 0; i < batch; ++i) {
    const std::vector<float> rewards = ShapedTokenRewards(
        log_probs[i], ref_log_probs[i], sample_scores[i], config.kl_coef);
    GaeFromRewards(rewards, values[i], config.gamma, config.lam, &(*advantages)[i],
                   &(*returns)[i]);
  }
}

std::vector<float> SampleScores(const DataBatch& batch, const std::string& column) {
  const DataBatch::FloatColumn& rewards = batch.Float(column);
  std::vector<float> scores;
  scores.reserve(rewards.size());
  for (const std::vector<float>& row : rewards) {
    HF_CHECK(!row.empty());
    scores.push_back(row[0]);
  }
  return scores;
}

}  // namespace

DataBatch ComputeAdvantages(const DataBatch& batch, const AdvantageConfig& config) {
  DataBatch out = batch;
  const DataBatch::FloatColumn& log_probs = batch.Float("log_probs");
  const DataBatch::FloatColumn& ref_log_probs = batch.Float("ref_log_probs");
  const std::vector<float> rewards = SampleScores(batch, "rewards");
  const size_t n = log_probs.size();
  HF_CHECK_EQ(ref_log_probs.size(), n);
  HF_CHECK_EQ(rewards.size(), n);

  switch (config.estimator) {
    case AdvantageEstimator::kGae: {
      DataBatch::FloatColumn advantages;
      DataBatch::FloatColumn returns;
      GaeColumns(log_probs, ref_log_probs, batch.Float("values"), rewards, config, &advantages,
                 &returns);
      if (config.cost_lambda > 0.0f) {
        // Safe-RLHF: subtract lambda * cost advantage (costs are "bad", so
        // high-cost trajectories get suppressed).
        const std::vector<float> costs = SampleScores(batch, "costs");
        DataBatch::FloatColumn cost_advantages;
        DataBatch::FloatColumn cost_returns;
        GaeColumns(log_probs, ref_log_probs, batch.Float("cost_values"), costs, config,
                   &cost_advantages, &cost_returns);
        for (size_t i = 0; i < n; ++i) {
          for (size_t k = 0; k < advantages[i].size(); ++k) {
            advantages[i][k] -= config.cost_lambda * cost_advantages[i][k];
          }
        }
        out.SetFloat("cost_returns", std::move(cost_returns));
      }
      out.SetFloat("advantages", std::move(advantages));
      out.SetFloat("returns", std::move(returns));
      return out;
    }
    case AdvantageEstimator::kRemax: {
      const std::vector<float> baselines = SampleScores(batch, "baseline_rewards");
      DataBatch::FloatColumn advantages(n);
      for (size_t i = 0; i < n; ++i) {
        const std::vector<float> shaped = ShapedTokenRewards(
            log_probs[i], ref_log_probs[i], rewards[i] - baselines[i], config.kl_coef);
        // ReMax: every token shares the variance-reduced trajectory signal;
        // accumulate the shaped rewards from the tail so earlier tokens see
        // the full downstream return.
        std::vector<float>& row = advantages[i];
        row.assign(shaped.size(), 0.0f);
        float tail = 0.0f;
        for (size_t k = shaped.size(); k-- > 0;) {
          tail += shaped[k];
          row[k] = tail;
        }
      }
      out.SetFloat("advantages", std::move(advantages));
      return out;
    }
    case AdvantageEstimator::kGrpo: {
      HF_CHECK_GT(config.group_size, 0);
      HF_CHECK_MSG(n % static_cast<size_t>(config.group_size) == 0,
                   "batch size must be a multiple of the GRPO group size");
      DataBatch::FloatColumn advantages(n);
      for (size_t g = 0; g < n; g += static_cast<size_t>(config.group_size)) {
        double mean = 0.0;
        for (int j = 0; j < config.group_size; ++j) {
          mean += rewards[g + static_cast<size_t>(j)];
        }
        mean /= config.group_size;
        double var = 0.0;
        for (int j = 0; j < config.group_size; ++j) {
          const double diff = rewards[g + static_cast<size_t>(j)] - mean;
          var += diff * diff;
        }
        const double stddev = std::sqrt(var / config.group_size) + 1e-6;
        for (int j = 0; j < config.group_size; ++j) {
          const size_t i = g + static_cast<size_t>(j);
          const float normalized = static_cast<float>((rewards[i] - mean) / stddev);
          const std::vector<float> shaped =
              ShapedTokenRewards(log_probs[i], ref_log_probs[i], normalized, config.kl_coef);
          std::vector<float>& row = advantages[i];
          row.assign(shaped.size(), 0.0f);
          float tail = 0.0f;
          for (size_t k = shaped.size(); k-- > 0;) {
            tail += shaped[k];
            row[k] = tail;
          }
        }
      }
      out.SetFloat("advantages", std::move(advantages));
      return out;
    }
  }
  return out;
}

}  // namespace hybridflow
