// Adaptive KL-penalty controller (the InstructGPT recipe [55]): keeps the
// actor's divergence from the reference policy near a target by scaling
// the per-token KL coefficient each iteration:
//
//   error = clip((observed_kl - target) / target, -clip, +clip)
//   coef *= 1 + horizon_gain * error
//
// A fixed coefficient (the default elsewhere in this repo) either
// over-constrains early training or lets the policy run away late; the
// controller trades between the two automatically.
#ifndef SRC_RLHF_KL_CONTROLLER_H_
#define SRC_RLHF_KL_CONTROLLER_H_

namespace hybridflow {

struct AdaptiveKlConfig {
  double target_kl = 0.05;   // Per-token nats.
  double initial_coef = 0.05;
  double horizon_gain = 0.1; // Step size of the multiplicative update.
  double error_clip = 1.0;   // Bounds a single update's relative error.
  double min_coef = 1e-4;
  double max_coef = 10.0;
};

class AdaptiveKlController {
 public:
  explicit AdaptiveKlController(const AdaptiveKlConfig& config)
      : config_(config), coef_(config.initial_coef) {}

  double coef() const { return coef_; }

  // Feeds one iteration's observed mean per-token KL; returns the updated
  // coefficient to use for the next iteration.
  double Update(double observed_kl);

 private:
  AdaptiveKlConfig config_;
  double coef_;
};

}  // namespace hybridflow

#endif  // SRC_RLHF_KL_CONTROLLER_H_
