#include "src/rlhf/rlhf_program.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"

namespace hybridflow {
namespace {

// Sorted union of [start, end) intervals.
std::vector<std::pair<double, double>> MergeIntervals(
    std::vector<std::pair<double, double>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& interval : intervals) {
    if (!merged.empty() && interval.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, interval.second);
    } else {
      merged.push_back(interval);
    }
  }
  return merged;
}

double IntersectionSeconds(const std::vector<std::pair<double, double>>& a,
                           const std::vector<std::pair<double, double>>& b) {
  double total = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) {
      total += hi - lo;
    }
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace

const char* RlhfAlgorithmName(RlhfAlgorithm algorithm) {
  switch (algorithm) {
    case RlhfAlgorithm::kPpo:
      return "PPO";
    case RlhfAlgorithm::kRemax:
      return "ReMax";
    case RlhfAlgorithm::kSafeRlhf:
      return "Safe-RLHF";
    case RlhfAlgorithm::kGrpo:
      return "GRPO";
  }
  return "?";
}

RlhfProgram::RlhfProgram(RlhfProgramConfig config, RlhfModels models, Controller* controller,
                         PromptDataset* dataset)
    : config_(std::move(config)),
      models_(models),
      controller_(controller),
      dataset_(dataset),
      kl_controller_(config_.adaptive_kl) {
  HF_CHECK(controller_ != nullptr);
  HF_CHECK_GE(config_.async_staleness, 0);
  ValidateModels();
  if (config_.use_adaptive_kl) {
    config_.advantage.kl_coef = static_cast<float>(kl_controller_.coef());
  }
  // Wire the advantage estimator to the algorithm.
  switch (config_.algorithm) {
    case RlhfAlgorithm::kPpo:
      config_.advantage.estimator = AdvantageEstimator::kGae;
      config_.advantage.cost_lambda = 0.0f;
      break;
    case RlhfAlgorithm::kSafeRlhf:
      config_.advantage.estimator = AdvantageEstimator::kGae;
      if (config_.advantage.cost_lambda <= 0.0f) {
        config_.advantage.cost_lambda = 0.5f;
      }
      if (config_.ptx_coef <= 0.0f) {
        config_.ptx_coef = 0.1f;
      }
      break;
    case RlhfAlgorithm::kRemax:
      config_.advantage.estimator = AdvantageEstimator::kRemax;
      config_.policy_loss.kind = PolicyLossKind::kReinforce;
      break;
    case RlhfAlgorithm::kGrpo:
      config_.advantage.estimator = AdvantageEstimator::kGrpo;
      break;
  }
}

void RlhfProgram::ValidateModels() const {
  HF_CHECK(models_.actor != nullptr);
  HF_CHECK(models_.reference != nullptr);
  HF_CHECK(models_.reward != nullptr);
  switch (config_.algorithm) {
    case RlhfAlgorithm::kPpo:
      HF_CHECK_MSG(models_.critic != nullptr, "PPO requires a critic");
      break;
    case RlhfAlgorithm::kSafeRlhf:
      HF_CHECK_MSG(models_.critic != nullptr, "Safe-RLHF requires a critic");
      HF_CHECK_MSG(models_.cost != nullptr, "Safe-RLHF requires a cost model");
      break;
    case RlhfAlgorithm::kRemax:
    case RlhfAlgorithm::kGrpo:
      break;  // No critic in the dataflow.
  }
}

RlhfProgram::StagedExperience RlhfProgram::GenerateExperience() {
  const RlhfWorkloadSpec& w = config_.workload;
  ActorWorkerGroup& actor = *models_.actor;
  const bool real = actor.real_enabled();

  // --- Stage 0: load prompts -------------------------------------------------
  DataBatch prompts_data;
  if (real && dataset_ != nullptr) {
    int64_t rows = config_.real_batch;
    if (config_.algorithm == RlhfAlgorithm::kGrpo) {
      // GRPO samples group_size responses per prompt: replicate prompts.
      const int group = config_.advantage.group_size;
      DataBatch unique = dataset_->NextBatch(std::max<int64_t>(1, rows / group));
      DataBatch::TokenColumn repeated;
      for (const std::vector<int64_t>& prompt : unique.Tokens("prompts")) {
        for (int j = 0; j < group; ++j) {
          repeated.push_back(prompt);
        }
      }
      prompts_data.SetTokens("prompts", std::move(repeated));
    } else {
      prompts_data = dataset_->NextBatch(rows);
    }
  }
  BatchFuture prompts = BatchFuture::Immediate(std::move(prompts_data));

  // --- Stage 1: generation ----------------------------------------------------
  StagedExperience experience;
  experience.policy_version = updates_applied_;
  {
    HF_TRACE_SCOPE("rlhf.stage.generation", "rlhf");
    experience.batch = actor.GenerateSequences(prompts, w, /*do_sample=*/true);

    // ReMax: one extra greedy generation pass for the variance-reduction
    // baseline (Figure 6: do_sample=false).
    if (config_.algorithm == RlhfAlgorithm::kRemax) {
      BatchFuture greedy = actor.GenerateSequences(prompts, w, /*do_sample=*/false);
      experience.greedy_rewards = models_.reward->ComputeReward(greedy, w);
    }

    // Behavior-policy log-prob snapshot: when log-probs are recomputed, the
    // pass must run *here*, under the weights that generated the batch — in
    // async mode the actor advances before this batch reaches training, and
    // a late recompute would collapse the PPO importance ratio to 1.
    if (config_.recompute_log_probs) {
      experience.batch = actor.ComputeLogProb(experience.batch, w, "log_probs");
    }
  }
  return experience;
}

IterationMetrics RlhfProgram::RunIteration() {
  HF_TRACE_SCOPE("rlhf.iteration", "rlhf");
  const double wall_start_us = WallclockTracer::NowMicros();
  controller_->BeginIteration();
  const size_t trace_begin = controller_->cluster().trace().size();

  if (!config_.async_pipeline || config_.async_staleness == 0) {
    // Synchronous order (async_staleness == 0 degenerates to it exactly:
    // same op sequence, bitwise-identical data plane).
    StagedExperience experience = GenerateExperience();
    return TrainOnExperience(std::move(experience), trace_begin, wall_start_us);
  }

  // One-step-off pipeline: keep `async_staleness` rollouts staged. The next
  // iteration's generation is issued *before* training on the oldest staged
  // batch, so its spans land on the rollout/generation devices while the
  // experience-prep and training spans land on theirs — disjoint pools
  // genuinely overlap on the DES, colocated pools serialize as they must.
  while (static_cast<int64_t>(staged_.size()) < config_.async_staleness) {
    staged_.push_back(GenerateExperience());  // Prime the queue (first call).
  }
  StagedExperience current = std::move(staged_.front());
  staged_.pop_front();
  staged_.push_back(GenerateExperience());
  return TrainOnExperience(std::move(current), trace_begin, wall_start_us);
}

IterationMetrics RlhfProgram::DrainIteration() {
  HF_CHECK_MSG(config_.async_pipeline, "DrainIteration requires async_pipeline mode");
  HF_CHECK_MSG(!staged_.empty(), "DrainIteration called with no staged experience");
  HF_TRACE_SCOPE("rlhf.iteration.drain", "rlhf");
  const double wall_start_us = WallclockTracer::NowMicros();
  controller_->BeginIteration();
  const size_t trace_begin = controller_->cluster().trace().size();
  StagedExperience current = std::move(staged_.front());
  staged_.pop_front();
  MetricsRegistry::Global().GetCounter("rlhf.async_drains_total").Increment();
  return TrainOnExperience(std::move(current), trace_begin, wall_start_us);
}

IterationMetrics RlhfProgram::TrainOnExperience(StagedExperience experience, size_t trace_begin,
                                                double wall_start_us) {
  const RlhfWorkloadSpec& w = config_.workload;
  ActorWorkerGroup& actor = *models_.actor;
  const bool real = actor.real_enabled();
  BatchFuture batch = std::move(experience.batch);
  const int64_t staleness = updates_applied_ - experience.policy_version;

  // --- Stage 2: experience preparation ---------------------------------------
  // Every preparation op depends only on the generation output (Figure 1);
  // feeding each the same future lets models on disjoint pools run
  // concurrently (Table 1's OpenRLHF/NeMo patterns) while colocated models
  // still serialize on their shared devices. The controller merges the
  // output columns and joins on the latest future.
  IterationMetrics metrics;
  {
  HF_TRACE_SCOPE("rlhf.stage.experience", "rlhf");
  const BatchFuture generated = batch;
  std::vector<BatchFuture> prepared;
  if (models_.critic != nullptr) {
    prepared.push_back(models_.critic->ComputeValues(generated, w));
  }
  prepared.push_back(models_.reference->ComputeRefLogProb(generated, w));
  prepared.push_back(models_.reward->ComputeReward(generated, w));
  if (config_.algorithm == RlhfAlgorithm::kSafeRlhf) {
    prepared.push_back(models_.cost->ComputeReward(generated, w));
  }
  for (const BatchFuture& part : prepared) {
    batch.data.MergeColumns(part.data);
    batch.ready_time = std::max(batch.ready_time, part.ready_time);
    batch.nominal_bytes = std::max(batch.nominal_bytes, part.nominal_bytes);
  }

  // compute_advantage: controller-side numerics (Table 4).
  if (real && !batch.data.empty()) {
    DataBatch data = batch.data;
    if (config_.algorithm == RlhfAlgorithm::kRemax) {
      DataBatch::FloatColumn baselines = experience.greedy_rewards.data.Float("rewards");
      data.SetFloat("baseline_rewards", std::move(baselines));
      batch.ready_time = std::max(batch.ready_time, experience.greedy_rewards.ready_time);
    }
    if (config_.algorithm == RlhfAlgorithm::kSafeRlhf) {
      // Cost value baseline: zeros (cost critic folded into the advantage).
      const DataBatch::FloatColumn& log_probs = data.Float("log_probs");
      DataBatch::FloatColumn zeros(log_probs.size());
      for (size_t i = 0; i < log_probs.size(); ++i) {
        zeros[i].assign(log_probs[i].size(), 0.0f);
      }
      data.SetFloat("cost_values", std::move(zeros));
    }
    batch.data = ComputeAdvantages(data, config_.advantage);
  }
  }

  // --- Stage 3: learning --------------------------------------------------------
  double actor_loss_sum = 0.0;
  double critic_loss_sum = 0.0;
  double grad_norm_sum = 0.0;
  double clip_fraction_sum = 0.0;
  int loss_count = 0;
  {
  HF_TRACE_SCOPE("rlhf.stage.learning", "rlhf");
  // Pretraining corpus for PPO-ptx / Safe-RLHF.
  DataBatch pretrain_data;
  if (real && config_.ptx_coef > 0.0f && dataset_ != nullptr) {
    pretrain_data = dataset_->NextBatch(std::max<int64_t>(4, config_.real_batch / 4));
  }

  const int total_updates = w.ppo_epochs * w.updates_per_iteration;
  for (int epoch = 0; epoch < w.ppo_epochs; ++epoch) {
    std::vector<DataBatch> minibatches;
    if (real && !batch.data.empty()) {
      minibatches = batch.data.SplitChunks(w.updates_per_iteration);
    }
    for (int update = 0; update < w.updates_per_iteration; ++update) {
      BatchFuture minibatch;
      minibatch.ready_time = batch.ready_time;
      minibatch.nominal_bytes = 0.0;  // Experience already resides on-device.
      if (!minibatches.empty()) {
        minibatch.data = minibatches[static_cast<size_t>(update)];
      }
      if (models_.critic != nullptr) {
        BatchFuture critic_out =
            models_.critic->UpdateCritic(minibatch, w, config_.value_loss);
        if (!critic_out.data.empty()) {
          critic_loss_sum += critic_out.data.Float("critic_loss")[0][0];
        }
      }
      ActorUpdateConfig update_config;
      update_config.loss = config_.policy_loss;
      update_config.ptx_coef = config_.ptx_coef;
      update_config.pretrain = pretrain_data.empty() ? nullptr : &pretrain_data;
      BatchFuture actor_out = actor.UpdateActor(minibatch, w, update_config);
      if (!actor_out.data.empty()) {
        actor_loss_sum += actor_out.data.Float("actor_loss")[0][0];
        if (actor_out.data.HasFloat("clip_fraction")) {
          clip_fraction_sum += actor_out.data.Float("clip_fraction")[0][0];
        }
        grad_norm_sum += actor.last_grad_norm();
      }
      loss_count += 1;
    }
  }
  (void)total_updates;
  }
  updates_applied_ += 1;

  // --- Metrics ---------------------------------------------------------------
  metrics.iteration_seconds = controller_->EndIteration();
  if (metrics.iteration_seconds > 0.0) {
    metrics.throughput_tokens_per_sec = w.TokensPerIteration() / metrics.iteration_seconds;
  }
  metrics.transition_seconds = actor.last_transition_seconds();
  metrics.generation_seconds = actor.last_gen_breakdown().total();
  // Continuous rollout: per-iteration scheduler counters and latency
  // percentiles of the most recent generation (in async mode that is the
  // batch issued this iteration, one step ahead of the one consumed).
  if (actor.actor_options().rollout.mode == RolloutMode::kContinuous) {
    const RolloutStats& sim = actor.last_rollout_sim_stats();
    metrics.rollout_preemptions = sim.preemptions;
    metrics.rollout_resumes = sim.resumes;
    metrics.rollout_recomputed_tokens = sim.recomputed_tokens;
    metrics.kvcache_prefix_skipped_tokens = sim.prefix_skipped_tokens;
    metrics.kvcache_cow_splits = sim.cow_splits;
    metrics.kvcache_shared_blocks = sim.shared_blocks_high_water;
    const SeqLatencySummary& latency = actor.last_rollout_sim_latency();
    metrics.rollout_ttft_p50_s = latency.ttft.p50;
    metrics.rollout_ttft_p90_s = latency.ttft.p90;
    metrics.rollout_ttft_p99_s = latency.ttft.p99;
    metrics.rollout_tpot_p50_s = latency.tpot.p50;
    metrics.rollout_tpot_p90_s = latency.tpot.p90;
    metrics.rollout_tpot_p99_s = latency.tpot.p99;
  }
  metrics.async_staleness = staleness;
  metrics.async_queue_depth = static_cast<int64_t>(staged_.size());
  const std::vector<TraceSpan>& trace = controller_->cluster().trace();
  std::vector<std::pair<double, double>> generate_spans;
  std::vector<std::pair<double, double>> learn_spans;
  for (size_t i = trace_begin; i < trace.size(); ++i) {
    metrics.busy_by_category[trace[i].category] +=
        trace[i].duration() * static_cast<double>(trace[i].devices.size());
    if (trace[i].category == "generate") {
      generate_spans.emplace_back(trace[i].start, trace[i].end);
    } else if (trace[i].category == "train" || trace[i].category == "infer") {
      learn_spans.emplace_back(trace[i].start, trace[i].end);
    }
  }
  // Overlap fraction: iteration time during which generation ran
  // concurrently with experience-prep inference or training. Nonzero only
  // when the pipeline genuinely overlaps (async mode, disjoint pools).
  if (metrics.iteration_seconds > 0.0) {
    const double overlap_seconds = IntersectionSeconds(MergeIntervals(std::move(generate_spans)),
                                                       MergeIntervals(std::move(learn_spans)));
    metrics.overlap_fraction =
        std::min(1.0, overlap_seconds / metrics.iteration_seconds);
  }
  if (config_.async_pipeline) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetGauge("rlhf.async_queue_depth")
        .Set(static_cast<double>(metrics.async_queue_depth));
    registry.GetGauge("rlhf.async_staleness").Set(static_cast<double>(staleness));
    registry.GetGauge("rlhf.async_overlap_fraction").Set(metrics.overlap_fraction);
  }
  if (real && !batch.data.empty()) {
    const DataBatch& data = batch.data;
    double reward_sum = 0.0;
    for (const std::vector<float>& row : data.Float("rewards")) {
      reward_sum += row[0];
    }
    metrics.mean_reward = reward_sum / static_cast<double>(data.batch_size());
    const AlignmentTask& task = actor.real().task;
    metrics.toxicity_rate =
        AlignmentTask::ToxicityRate(data.Tokens("responses"), task.toxic_token());
    metrics.coherence_rate =
        task.CoherenceRate(data.Tokens("prompts"), data.Tokens("responses"));
    double kl_sum = 0.0;
    int64_t kl_count = 0;
    const DataBatch::FloatColumn& log_probs = data.Float("log_probs");
    const DataBatch::FloatColumn& ref_log_probs = data.Float("ref_log_probs");
    for (size_t i = 0; i < log_probs.size(); ++i) {
      for (size_t k = 0; k < log_probs[i].size(); ++k) {
        kl_sum += log_probs[i][k] - ref_log_probs[i][k];
        kl_count += 1;
      }
    }
    metrics.mean_kl = kl_count > 0 ? kl_sum / static_cast<double>(kl_count) : 0.0;
    if (loss_count > 0) {
      metrics.actor_loss = actor_loss_sum / loss_count;
      metrics.critic_loss = critic_loss_sum / loss_count;
      metrics.grad_norm = grad_norm_sum / loss_count;
      metrics.clip_fraction = clip_fraction_sum / loss_count;
    }
  }
  // Adaptive KL: track the observed divergence for the next iteration.
  if (config_.use_adaptive_kl && real) {
    config_.advantage.kl_coef = static_cast<float>(kl_controller_.Update(metrics.mean_kl));
  }
  metrics.kl_coef = config_.advantage.kl_coef;
  metrics.wall_clock_seconds = (WallclockTracer::NowMicros() - wall_start_us) / 1e6;
  iterations_run_ += 1;
  if (telemetry_ != nullptr) {
    TelemetryFields record;
    record.Number("iteration", static_cast<double>(iterations_run_))
        .Text("algorithm", RlhfAlgorithmName(config_.algorithm))
        .Number("actor_loss", metrics.actor_loss)
        .Number("critic_loss", metrics.critic_loss)
        .Number("mean_kl", metrics.mean_kl)
        .Number("kl_coef", metrics.kl_coef)
        .Number("mean_reward", metrics.mean_reward)
        .Number("grad_norm", metrics.grad_norm)
        .Number("clip_fraction", metrics.clip_fraction)
        .Number("sim_makespan_seconds", metrics.iteration_seconds)
        .Number("wall_clock_ms", metrics.wall_clock_seconds * 1e3)
        .Number("tokens_per_sec", metrics.throughput_tokens_per_sec);
    if (config_.async_pipeline) {
      record.Number("async_staleness", static_cast<double>(staleness))
          .Number("async_queue_depth", static_cast<double>(metrics.async_queue_depth))
          .Number("overlap_fraction", metrics.overlap_fraction);
    }
    if (actor.actor_options().rollout.mode == RolloutMode::kContinuous) {
      record.Number("rollout_preemptions", static_cast<double>(metrics.rollout_preemptions))
          .Number("rollout_resumes", static_cast<double>(metrics.rollout_resumes))
          .Number("rollout_recomputed_tokens",
                  static_cast<double>(metrics.rollout_recomputed_tokens))
          .Number("kvcache_prefix_skipped_tokens",
                  static_cast<double>(metrics.kvcache_prefix_skipped_tokens))
          .Number("kvcache_cow_splits", static_cast<double>(metrics.kvcache_cow_splits))
          .Number("kvcache_shared_blocks", static_cast<double>(metrics.kvcache_shared_blocks))
          .Number("rollout_ttft_p50_s", metrics.rollout_ttft_p50_s)
          .Number("rollout_ttft_p90_s", metrics.rollout_ttft_p90_s)
          .Number("rollout_ttft_p99_s", metrics.rollout_ttft_p99_s)
          .Number("rollout_tpot_p50_s", metrics.rollout_tpot_p50_s)
          .Number("rollout_tpot_p90_s", metrics.rollout_tpot_p90_s)
          .Number("rollout_tpot_p99_s", metrics.rollout_tpot_p99_s);
    }
    telemetry_->Append(record);
  }
  HF_LOG(kInfo) << RlhfAlgorithmName(config_.algorithm) << " iteration: "
                << metrics.iteration_seconds << "s, throughput "
                << metrics.throughput_tokens_per_sec << " tok/s, reward "
                << metrics.mean_reward;
  return metrics;
}

}  // namespace hybridflow
