// compute_advantage: the controller-side numerical computation of the RLHF
// dataflow (Table 4 — "involves no model forward passes").
//
// Supports the estimators needed by the paper's algorithms:
//   * GAE (PPO, Safe-RLHF): Schulman et al. generalized advantage
//     estimation over the token-level MDP, with the InstructGPT-style
//     per-token KL penalty folded into rewards.
//   * ReMax: trajectory reward minus the greedy-rollout baseline.
//   * GRPO: group-normalized trajectory rewards (DeepSeekMath), group =
//     the `group_size` consecutive responses sampled for one prompt.
//
// Safe-RLHF composes a Lagrangian objective: effective advantage =
// reward advantage - lambda * cost advantage (cost fitted by the cost
// model, §2.1 / Figure 6).
#ifndef SRC_RLHF_ADVANTAGE_H_
#define SRC_RLHF_ADVANTAGE_H_

#include "src/data/data_batch.h"

namespace hybridflow {

enum class AdvantageEstimator {
  kGae,
  kRemax,
  kGrpo,
};

struct AdvantageConfig {
  AdvantageEstimator estimator = AdvantageEstimator::kGae;
  float gamma = 1.0f;
  float lam = 0.95f;
  // Per-token KL penalty coefficient: token reward -= kl_coef * (logp - ref_logp).
  float kl_coef = 0.05f;
  // GRPO group size (responses per prompt); batch rows must be grouped
  // consecutively by prompt.
  int group_size = 4;
  // Safe-RLHF Lagrange multiplier on cost advantages (0 disables).
  float cost_lambda = 0.0f;
};

// Input columns (per estimator):
//   always:  "log_probs" [B,R], "ref_log_probs" [B,R], "rewards" [B,1]
//   kGae:    "values" [B,R]
//   kRemax:  "baseline_rewards" [B,1]
//   Safe-RLHF (cost_lambda > 0): "costs" [B,1], "cost_values" [B,R]
// Returns the batch extended with "advantages" [B,R] and (for kGae)
// "returns" [B,R] / "cost_returns" [B,R].
DataBatch ComputeAdvantages(const DataBatch& batch, const AdvantageConfig& config);

// Token-level rewards after KL shaping: kl penalty each token, sample
// reward added at the final token. Exposed for testing.
std::vector<float> ShapedTokenRewards(const std::vector<float>& log_probs,
                                      const std::vector<float>& ref_log_probs,
                                      float sample_reward, float kl_coef);

// Plain GAE over one sequence; v_next beyond the last token is 0.
void GaeFromRewards(const std::vector<float>& rewards, const std::vector<float>& values,
                    float gamma, float lam, std::vector<float>* advantages,
                    std::vector<float>* returns);

}  // namespace hybridflow

#endif  // SRC_RLHF_ADVANTAGE_H_
