// Checkpointing and fault tolerance (§9 "Discussions").
//
// The single controller coordinates checkpoint operations via RPC: each
// worker group serializes its model parameters; the controller adds the
// dataloader position and RNG state "to ensure system-wide consistency".
// Snapshots are in-memory by default (Gemini-style redundancy-based
// recovery) and can be persisted to disk.
//
// The simulated cluster can inject device failures (NCCL-error detection
// in the paper); recovery restores the latest consistent snapshot and
// replays the dataloader to the recorded position.
#ifndef SRC_CKPT_CHECKPOINT_H_
#define SRC_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/nn/policy_net.h"

namespace hybridflow {

// Serialized state of one model (all parameter tensors, flattened).
struct ModelSnapshot {
  std::vector<std::vector<float>> parameters;
  // Simple integrity checksum for silent-data-corruption detection (§9).
  uint64_t checksum = 0;

  static ModelSnapshot FromNet(const PolicyNet& net);
  // Restores into `net`; returns false on shape or checksum mismatch.
  bool RestoreInto(PolicyNet* net) const;
  bool Verify() const;
};

// A consistent system-wide checkpoint: every model's parameters plus the
// dataloader cursor and iteration counter.
struct SystemCheckpoint {
  int64_t iteration = 0;
  int64_t dataloader_position = 0;
  std::map<std::string, ModelSnapshot> models;

  bool Verify() const;
};

// Controller-side checkpoint coordinator. Keeps the last `max_snapshots`
// checkpoints in memory; optionally spills to a directory.
class CheckpointManager {
 public:
  explicit CheckpointManager(int max_snapshots = 2) : max_snapshots_(max_snapshots) {}

  // Captures a checkpoint from named nets (nullptr entries are skipped).
  const SystemCheckpoint& Capture(int64_t iteration, int64_t dataloader_position,
                                  const std::map<std::string, const PolicyNet*>& nets);

  bool HasCheckpoint() const { return !snapshots_.empty(); }
  const SystemCheckpoint& Latest() const;
  int64_t LatestIteration() const;

  // Restores the latest checkpoint into the given nets. Returns false when
  // no checkpoint exists or any snapshot fails verification.
  bool Restore(const std::map<std::string, PolicyNet*>& nets, int64_t* iteration,
               int64_t* dataloader_position) const;

  // Disk persistence (one binary file per checkpoint).
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  // Corrupts the latest snapshot (testing hook for the checksum path).
  void CorruptLatestForTesting();

 private:
  int max_snapshots_;
  std::vector<SystemCheckpoint> snapshots_;
};

// Computes the FNV-1a checksum over float data, for SDC detection.
uint64_t ChecksumFloats(const std::vector<std::vector<float>>& data);

}  // namespace hybridflow

#endif  // SRC_CKPT_CHECKPOINT_H_
