// Fault-tolerant training driver: runs an RLHF program for many
// iterations, checkpointing every k iterations through the single
// controller, detecting injected failures, and recovering by restoring the
// latest consistent snapshot (§9 "Fault Tolerance").
#ifndef SRC_CKPT_TRAINER_H_
#define SRC_CKPT_TRAINER_H_

#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/rlhf/rlhf_program.h"

namespace hybridflow {

struct TrainerConfig {
  int total_iterations = 10;
  int checkpoint_interval = 5;
  // Injects a failure after this iteration completes (-1 disables). The
  // failed iteration's updates are lost; training resumes from the latest
  // checkpoint.
  int fail_after_iteration = -1;
};

struct TrainerReport {
  std::vector<IterationMetrics> history;
  int checkpoints_taken = 0;
  int failures_recovered = 0;
  int64_t final_iteration = 0;
};

class RlhfTrainer {
 public:
  RlhfTrainer(RlhfProgram* program, RlhfModels models);

  // Runs the training loop with checkpoint/recovery handling.
  TrainerReport Run(const TrainerConfig& config);

  CheckpointManager& checkpoints() { return manager_; }

 private:
  std::map<std::string, const PolicyNet*> ConstNets() const;
  std::map<std::string, PolicyNet*> MutableNets() const;

  RlhfProgram* program_;
  RlhfModels models_;
  CheckpointManager manager_;
};

}  // namespace hybridflow

#endif  // SRC_CKPT_TRAINER_H_
