#include "src/ckpt/checkpoint.h"

#include <cstring>
#include <fstream>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace hybridflow {

uint64_t ChecksumFloats(const std::vector<std::vector<float>>& data) {
  uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a.
  for (const std::vector<float>& block : data) {
    for (float value : block) {
      uint32_t bits;
      std::memcpy(&bits, &value, sizeof(bits));
      for (int shift = 0; shift < 32; shift += 8) {
        hash ^= (bits >> shift) & 0xFFu;
        hash *= 0x100000001B3ULL;
      }
    }
  }
  return hash;
}

ModelSnapshot ModelSnapshot::FromNet(const PolicyNet& net) {
  ModelSnapshot snapshot;
  for (const Tensor& param : net.Parameters()) {
    snapshot.parameters.push_back(param.data());
  }
  snapshot.checksum = ChecksumFloats(snapshot.parameters);
  return snapshot;
}

bool ModelSnapshot::Verify() const { return checksum == ChecksumFloats(parameters); }

bool ModelSnapshot::RestoreInto(PolicyNet* net) const {
  HF_CHECK(net != nullptr);
  if (!Verify()) {
    HF_LOG(kError) << "checkpoint restore refused: checksum mismatch (silent data corruption)";
    return false;
  }
  std::vector<Tensor> params = net->Parameters();
  if (params.size() != parameters.size()) {
    return false;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].data().size() != parameters[i].size()) {
      return false;
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data() = parameters[i];
  }
  return true;
}

bool SystemCheckpoint::Verify() const {
  for (const auto& [name, snapshot] : models) {
    if (!snapshot.Verify()) {
      return false;
    }
  }
  return true;
}

const SystemCheckpoint& CheckpointManager::Capture(
    int64_t iteration, int64_t dataloader_position,
    const std::map<std::string, const PolicyNet*>& nets) {
  SystemCheckpoint checkpoint;
  checkpoint.iteration = iteration;
  checkpoint.dataloader_position = dataloader_position;
  for (const auto& [name, net] : nets) {
    if (net != nullptr) {
      checkpoint.models.emplace(name, ModelSnapshot::FromNet(*net));
    }
  }
  snapshots_.push_back(std::move(checkpoint));
  if (static_cast<int>(snapshots_.size()) > max_snapshots_) {
    snapshots_.erase(snapshots_.begin());
  }
  return snapshots_.back();
}

const SystemCheckpoint& CheckpointManager::Latest() const {
  HF_CHECK(!snapshots_.empty());
  return snapshots_.back();
}

int64_t CheckpointManager::LatestIteration() const {
  return snapshots_.empty() ? -1 : snapshots_.back().iteration;
}

bool CheckpointManager::Restore(const std::map<std::string, PolicyNet*>& nets,
                                int64_t* iteration, int64_t* dataloader_position) const {
  // Walk snapshots newest-first; a corrupted snapshot falls back to the
  // previous one (redundancy-based recovery, §9).
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (!it->Verify()) {
      HF_LOG(kWarning) << "skipping corrupted checkpoint at iteration " << it->iteration;
      continue;
    }
    bool ok = true;
    for (const auto& [name, net] : nets) {
      if (net == nullptr) {
        continue;
      }
      auto found = it->models.find(name);
      if (found == it->models.end() || !found->second.RestoreInto(net)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (iteration != nullptr) {
        *iteration = it->iteration;
      }
      if (dataloader_position != nullptr) {
        *dataloader_position = it->dataloader_position;
      }
      return true;
    }
  }
  return false;
}

namespace {

void WriteU64(std::ofstream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ReadU64(std::ifstream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace

bool CheckpointManager::SaveToFile(const std::string& path) const {
  if (snapshots_.empty()) {
    return false;
  }
  const SystemCheckpoint& checkpoint = snapshots_.back();
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  WriteU64(out, 0x48464B5031ULL);  // "HFKP1" magic.
  WriteU64(out, static_cast<uint64_t>(checkpoint.iteration));
  WriteU64(out, static_cast<uint64_t>(checkpoint.dataloader_position));
  WriteU64(out, checkpoint.models.size());
  for (const auto& [name, snapshot] : checkpoint.models) {
    WriteU64(out, name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WriteU64(out, snapshot.checksum);
    WriteU64(out, snapshot.parameters.size());
    for (const std::vector<float>& block : snapshot.parameters) {
      WriteU64(out, block.size());
      out.write(reinterpret_cast<const char*>(block.data()),
                static_cast<std::streamsize>(block.size() * sizeof(float)));
    }
  }
  return static_cast<bool>(out);
}

bool CheckpointManager::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  uint64_t magic = 0;
  if (!ReadU64(in, &magic) || magic != 0x48464B5031ULL) {
    return false;
  }
  SystemCheckpoint checkpoint;
  uint64_t iteration = 0;
  uint64_t position = 0;
  uint64_t model_count = 0;
  if (!ReadU64(in, &iteration) || !ReadU64(in, &position) || !ReadU64(in, &model_count)) {
    return false;
  }
  checkpoint.iteration = static_cast<int64_t>(iteration);
  checkpoint.dataloader_position = static_cast<int64_t>(position);
  for (uint64_t m = 0; m < model_count; ++m) {
    uint64_t name_size = 0;
    if (!ReadU64(in, &name_size) || name_size > 4096) {
      return false;
    }
    std::string name(name_size, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_size));
    ModelSnapshot snapshot;
    uint64_t block_count = 0;
    if (!ReadU64(in, &snapshot.checksum) || !ReadU64(in, &block_count)) {
      return false;
    }
    for (uint64_t b = 0; b < block_count; ++b) {
      uint64_t size = 0;
      if (!ReadU64(in, &size) || size > (1ULL << 32)) {
        return false;
      }
      std::vector<float> block(size);
      in.read(reinterpret_cast<char*>(block.data()),
              static_cast<std::streamsize>(size * sizeof(float)));
      if (!in) {
        return false;
      }
      snapshot.parameters.push_back(std::move(block));
    }
    if (!snapshot.Verify()) {
      return false;
    }
    checkpoint.models.emplace(std::move(name), std::move(snapshot));
  }
  snapshots_.push_back(std::move(checkpoint));
  if (static_cast<int>(snapshots_.size()) > max_snapshots_) {
    snapshots_.erase(snapshots_.begin());
  }
  return true;
}

void CheckpointManager::CorruptLatestForTesting() {
  HF_CHECK(!snapshots_.empty());
  for (auto& [name, snapshot] : snapshots_.back().models) {
    if (!snapshot.parameters.empty() && !snapshot.parameters[0].empty()) {
      snapshot.parameters[0][0] += 1.0f;  // Checksum now mismatches.
      return;
    }
  }
}

}  // namespace hybridflow
