#include "src/ckpt/trainer.h"

#include "src/common/logging.h"

namespace hybridflow {

RlhfTrainer::RlhfTrainer(RlhfProgram* program, RlhfModels models)
    : program_(program), models_(models) {
  HF_CHECK(program_ != nullptr);
  HF_CHECK(models_.actor != nullptr);
}

std::map<std::string, const PolicyNet*> RlhfTrainer::ConstNets() const {
  std::map<std::string, const PolicyNet*> nets;
  if (models_.actor->real_enabled()) {
    nets["actor"] = &models_.actor->net();
    if (models_.critic != nullptr) {
      nets["critic"] = &models_.critic->net();
    }
  }
  return nets;
}

std::map<std::string, PolicyNet*> RlhfTrainer::MutableNets() const {
  std::map<std::string, PolicyNet*> nets;
  if (models_.actor->real_enabled()) {
    nets["actor"] = &models_.actor->net();
    if (models_.critic != nullptr) {
      nets["critic"] = &models_.critic->net();
    }
  }
  return nets;
}

TrainerReport RlhfTrainer::Run(const TrainerConfig& config) {
  TrainerReport report;
  // Initial checkpoint so iteration-0 failures are recoverable.
  manager_.Capture(0, 0, ConstNets());
  report.checkpoints_taken = 1;

  int64_t iteration = 0;
  bool failure_pending = config.fail_after_iteration >= 0;
  while (iteration < config.total_iterations) {
    IterationMetrics metrics = program_->RunIteration();
    iteration += 1;
    report.history.push_back(metrics);

    if (failure_pending && iteration == config.fail_after_iteration) {
      // "Failures can be detected by NCCL errors": roll back to the latest
      // consistent checkpoint; the iterations since are lost and re-run.
      failure_pending = false;
      int64_t restored_iteration = 0;
      int64_t restored_position = 0;
      const bool ok =
          manager_.Restore(MutableNets(), &restored_iteration, &restored_position);
      HF_CHECK_MSG(ok, "no consistent checkpoint available for recovery");
      HF_LOG(kInfo) << "injected failure after iteration " << iteration
                    << "; recovered to iteration " << restored_iteration;
      iteration = restored_iteration;
      report.failures_recovered += 1;
      continue;
    }

    if (config.checkpoint_interval > 0 && iteration % config.checkpoint_interval == 0) {
      manager_.Capture(iteration, iteration, ConstNets());
      report.checkpoints_taken += 1;
    }
  }
  report.final_iteration = iteration;
  return report;
}

}  // namespace hybridflow
