#include "src/transfer/protocol.h"

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace hybridflow {

const char* TransferProtocolName(TransferProtocol protocol) {
  switch (protocol) {
    case TransferProtocol::kOneToAll:
      return "ONE_TO_ALL";
    case TransferProtocol::k3dProto:
      return "3D_PROTO";
    case TransferProtocol::k3dAllMicroDp:
      return "3D_ALL_MICRO_DP";
    case TransferProtocol::k3dPpOnly:
      return "3D_PP_ONLY";
    case TransferProtocol::kDpProto:
      return "DP_PROTO";
    case TransferProtocol::kAllToAll:
      return "ALL_TO_ALL";
    case TransferProtocol::kMicroDpProto:
      return "MICRO_DP_PROTO";
    case TransferProtocol::kAllGatherProto:
      return "ALL_GATHER_PROTO";
  }
  return "?";
}

namespace {

const ProcessGroups& GroupsOf(const ProtocolContext& context) {
  HF_CHECK(context.groups != nullptr);
  return *context.groups;
}

bool NeedsGen(TransferProtocol protocol) {
  return protocol == TransferProtocol::k3dAllMicroDp ||
         protocol == TransferProtocol::kMicroDpProto;
}

}  // namespace

std::vector<DataBatch> DistributeBatch(TransferProtocol protocol, const DataBatch& input,
                                       const ProtocolContext& context) {
  HF_TRACE_SCOPE("protocol.distribute", "transfer");
  MetricsRegistry::Global()
      .GetCounter("protocol.distribute_calls", {{"protocol", TransferProtocolName(protocol)}})
      .Increment();
  const ProcessGroups& groups = GroupsOf(context);
  const ParallelConfig& cfg = groups.train_config();
  const int world = groups.world_size();
  if (NeedsGen(protocol)) {
    HF_CHECK_MSG(context.has_gen, "protocol " << TransferProtocolName(protocol)
                                              << " requires a generation config");
  }
  std::vector<DataBatch> per_rank(static_cast<size_t>(world));
  switch (protocol) {
    case TransferProtocol::kOneToAll:
    case TransferProtocol::k3dPpOnly:
    case TransferProtocol::kAllGatherProto:
    case TransferProtocol::kAllToAll: {
      for (int rank = 0; rank < world; ++rank) {
        per_rank[static_cast<size_t>(rank)] = input;
      }
      break;
    }
    case TransferProtocol::k3dProto:
    case TransferProtocol::kDpProto: {
      std::vector<DataBatch> chunks = input.SplitChunks(cfg.dp);
      for (int rank = 0; rank < world; ++rank) {
        const TrainCoords coords = groups.TrainCoordsOf(rank);
        per_rank[static_cast<size_t>(rank)] = chunks[static_cast<size_t>(coords.d)];
      }
      break;
    }
    case TransferProtocol::k3dAllMicroDp: {
      const int micro_dp = MicroDpSize(cfg, context.gen);
      std::vector<DataBatch> chunks = input.SplitChunks(cfg.dp * micro_dp);
      for (int rank = 0; rank < world; ++rank) {
        const GenCoords coords = groups.GenCoordsOf(rank, context.gen, context.method);
        const int replica = coords.d * micro_dp + coords.micro_dp;
        per_rank[static_cast<size_t>(rank)] = chunks[static_cast<size_t>(replica)];
      }
      break;
    }
    case TransferProtocol::kMicroDpProto: {
      const int micro_dp = MicroDpSize(cfg, context.gen);
      std::vector<DataBatch> chunks = input.SplitChunks(micro_dp);
      for (int rank = 0; rank < world; ++rank) {
        const GenCoords coords = groups.GenCoordsOf(rank, context.gen, context.method);
        per_rank[static_cast<size_t>(rank)] = chunks[static_cast<size_t>(coords.micro_dp)];
      }
      break;
    }
  }
  return per_rank;
}

std::vector<int> CollectSourceRanks(TransferProtocol protocol, const ProtocolContext& context) {
  const ProcessGroups& groups = GroupsOf(context);
  const ParallelConfig& cfg = groups.train_config();
  std::vector<int> sources;
  switch (protocol) {
    case TransferProtocol::kOneToAll:
    case TransferProtocol::kAllToAll: {
      for (int rank = 0; rank < groups.world_size(); ++rank) {
        sources.push_back(rank);
      }
      break;
    }
    case TransferProtocol::k3dProto: {
      // Output lives on the last pipeline stage, t = 0, duplicated across
      // DP groups (Table 3).
      for (int d = 0; d < cfg.dp; ++d) {
        sources.push_back(groups.RankOf({cfg.pp - 1, 0, d}));
      }
      break;
    }
    case TransferProtocol::kDpProto: {
      for (int d = 0; d < cfg.dp; ++d) {
        sources.push_back(groups.RankOf({0, 0, d}));
      }
      break;
    }
    case TransferProtocol::k3dAllMicroDp:
    case TransferProtocol::kMicroDpProto: {
      HF_CHECK(context.has_gen);
      const int micro_dp = MicroDpSize(cfg, context.gen);
      for (int d = 0; d < cfg.dp; ++d) {
        for (int m = 0; m < micro_dp; ++m) {
          GenCoords coords{0, 0, m, d};
          sources.push_back(groups.RankOfGen(coords, context.gen, context.method));
        }
      }
      break;
    }
    case TransferProtocol::k3dPpOnly: {
      for (int p = 0; p < cfg.pp; ++p) {
        sources.push_back(groups.RankOf({p, 0, 0}));
      }
      break;
    }
    case TransferProtocol::kAllGatherProto: {
      for (int d = 0; d < cfg.dp; ++d) {
        sources.push_back(groups.RankOf({0, 0, d}));
      }
      break;
    }
  }
  return sources;
}

DataBatch CollectBatch(TransferProtocol protocol, const std::vector<DataBatch>& outputs,
                       const ProtocolContext& context) {
  HF_TRACE_SCOPE("protocol.collect", "transfer");
  MetricsRegistry::Global()
      .GetCounter("protocol.collect_calls", {{"protocol", TransferProtocolName(protocol)}})
      .Increment();
  const ProcessGroups& groups = GroupsOf(context);
  HF_CHECK_EQ(static_cast<int>(outputs.size()), groups.world_size());
  std::vector<int> sources = CollectSourceRanks(protocol, context);
  std::vector<DataBatch> parts;
  parts.reserve(sources.size());
  for (int rank : sources) {
    parts.push_back(outputs[static_cast<size_t>(rank)]);
  }
  return DataBatch::ConcatBatches(parts);
}

std::vector<int> PrimaryRanks(TransferProtocol protocol, const ProtocolContext& context) {
  const ProcessGroups& groups = GroupsOf(context);
  const ParallelConfig& cfg = groups.train_config();
  std::vector<int> primaries;
  switch (protocol) {
    case TransferProtocol::kOneToAll:
    case TransferProtocol::k3dPpOnly:
    case TransferProtocol::kAllGatherProto: {
      // Broadcast-style protocols: every rank runs the same computation
      // (the multi-controller SPMD reality); the data plane computes on
      // exactly the ranks collection reads from.
      return CollectSourceRanks(protocol, context);
    }
    case TransferProtocol::kAllToAll: {
      for (int rank = 0; rank < groups.world_size(); ++rank) {
        primaries.push_back(rank);
      }
      break;
    }
    case TransferProtocol::k3dProto: {
      for (int d = 0; d < cfg.dp; ++d) {
        primaries.push_back(groups.RankOf({cfg.pp - 1, 0, d}));
      }
      break;
    }
    case TransferProtocol::kDpProto: {
      for (int d = 0; d < cfg.dp; ++d) {
        primaries.push_back(groups.RankOf({0, 0, d}));
      }
      break;
    }
    case TransferProtocol::k3dAllMicroDp:
    case TransferProtocol::kMicroDpProto: {
      HF_CHECK(context.has_gen);
      const int micro_dp = MicroDpSize(cfg, context.gen);
      for (int d = 0; d < cfg.dp; ++d) {
        for (int m = 0; m < micro_dp; ++m) {
          GenCoords coords{0, 0, m, d};
          primaries.push_back(groups.RankOfGen(coords, context.gen, context.method));
        }
      }
      break;
    }
  }
  return primaries;
}

ProtocolRegistry& ProtocolRegistry::Instance() {
  static ProtocolRegistry* registry = new ProtocolRegistry();  // hflint: allow(naked-new)
  return *registry;
}

int ProtocolRegistry::Register(CustomProtocol protocol) {
  HF_CHECK(protocol.distribute != nullptr);
  HF_CHECK(protocol.collect != nullptr);
  protocols_.push_back(std::move(protocol));
  return static_cast<int>(protocols_.size()) - 1;
}

const CustomProtocol& ProtocolRegistry::Get(int id) const {
  HF_CHECK_GE(id, 0);
  HF_CHECK_LT(static_cast<size_t>(id), protocols_.size());
  return protocols_[static_cast<size_t>(id)];
}

bool ProtocolRegistry::Has(const std::string& name) const {
  for (const CustomProtocol& protocol : protocols_) {
    if (protocol.name == name) {
      return true;
    }
  }
  return false;
}

}  // namespace hybridflow
