// Transfer protocols: the inter-node data resharding layer of the hybrid
// programming model (§4.1, Appendix B / Table 3).
//
// Every worker-group method is registered with a protocol consisting of a
// `distribute` function (how the controller-side input batch is scattered
// to ranks) and a `collect` function (which ranks' outputs are gathered and
// concatenated into the controller-side result). The single controller
// moves only batch *futures*; actual payloads move GPU-to-GPU, which the
// simulation layer accounts separately.
//
// Built-in protocols (Table 3):
//   ONE_TO_ALL       broadcast input to all ranks / gather from all ranks
//   3D_PROTO         split across DP groups, broadcast within each model
//                    block / collect from the (p = last, t = 0) rank of
//                    each DP group
//   3D_ALL_MICRO_DP  split across (d x micro-dp) generation replicas /
//                    collect from the local-rank-0 worker of each micro DP
//                    group (used with the 3D-HybridEngine)
//   3D_PP_ONLY       broadcast to all / collect from (t=0, d=0) of each PP
//                    stage
//   DP_PROTO         split across DP ranks / gather from all DP ranks
//   ALL_TO_ALL       identity distribute (caller supplies per-rank inputs) /
//                    gather from all ranks (debugging)
// plus MICRO_DP_PROTO and ALL_GATHER_PROTO covering the remaining §4.1
// resharding cases. Custom protocols can be registered with user-provided
// collect/distribute functions.
#ifndef SRC_TRANSFER_PROTOCOL_H_
#define SRC_TRANSFER_PROTOCOL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/data/data_batch.h"
#include "src/parallel/process_groups.h"

namespace hybridflow {

enum class TransferProtocol {
  kOneToAll,
  k3dProto,
  k3dAllMicroDp,
  k3dPpOnly,
  kDpProto,
  kAllToAll,
  kMicroDpProto,   // Split across micro DP replicas of one training replica.
  kAllGatherProto, // Broadcast input; collect full gather from DP leaders.
};

const char* TransferProtocolName(TransferProtocol protocol);

// Context a protocol may need beyond the training process groups.
struct ProtocolContext {
  const ProcessGroups* groups = nullptr;
  // Generation regrouping, required by micro-DP protocols.
  GenParallelConfig gen;
  GenGroupingMethod method = GenGroupingMethod::kZeroRedundancy;
  bool has_gen = false;
};

// Scatters `input` into one batch per rank.
std::vector<DataBatch> DistributeBatch(TransferProtocol protocol, const DataBatch& input,
                                       const ProtocolContext& context);

// Gathers per-rank outputs into the controller-side batch.
DataBatch CollectBatch(TransferProtocol protocol, const std::vector<DataBatch>& outputs,
                       const ProtocolContext& context);

// Ranks whose outputs participate in collection, in collection order. For
// protocols that gather from every rank this is 0..world-1.
std::vector<int> CollectSourceRanks(TransferProtocol protocol, const ProtocolContext& context);

// Ranks that perform "primary" computation for the data plane (one per
// distinct data shard): DP leaders for 3D protocols, replica leaders for
// micro-DP protocols, every rank for DP_PROTO/ALL_TO_ALL.
std::vector<int> PrimaryRanks(TransferProtocol protocol, const ProtocolContext& context);

// --- Custom protocol registry (user extension point, §4.1) -----------------
struct CustomProtocol {
  std::string name;
  std::function<std::vector<DataBatch>(const DataBatch&, const ProtocolContext&)> distribute;
  std::function<DataBatch(const std::vector<DataBatch>&, const ProtocolContext&)> collect;
};

class ProtocolRegistry {
 public:
  static ProtocolRegistry& Instance();

  // Returns an id usable with DistributeCustom/CollectCustom.
  int Register(CustomProtocol protocol);
  const CustomProtocol& Get(int id) const;
  bool Has(const std::string& name) const;

 private:
  std::vector<CustomProtocol> protocols_;
};

}  // namespace hybridflow

#endif  // SRC_TRANSFER_PROTOCOL_H_
