// End-to-end RLHF system assembly for HybridFlow and the three baseline
// systems of Table 1:
//
//   DeepSpeed-Chat  colocate all models on every GPU; ZeRO-3 training and
//                   TP generation with a full all-gather reshard between
//                   the stages.
//   OpenRLHF        every model on its own devices; a second copy of the
//                   actor weights on dedicated vLLM GPUs, synchronized by
//                   broadcast each iteration.
//   NeMo-Aligner    actor+reference on one half, critic+reward on the
//                   other; identical 3D parallelism for actor training and
//                   generation (shared weights, no resharding) and no
//                   KVCache in the generation engine.
//   HybridFlow      placement and per-model parallelism from Algorithm 1;
//                   3D-HybridEngine zero-redundancy resharding.
//
// A built instance owns the controller, pools, worker groups, and the
// dataflow program, ready to run iterations.
#ifndef SRC_BASELINES_SYSTEM_BUILDER_H_
#define SRC_BASELINES_SYSTEM_BUILDER_H_

#include <memory>
#include <string>

#include "src/mapping/device_mapper.h"
#include "src/rlhf/rlhf_program.h"

namespace hybridflow {

enum class RlhfSystem {
  kHybridFlow,
  kDeepSpeedChat,
  kOpenRlhf,
  kNemoAligner,
};

const char* RlhfSystemName(RlhfSystem system);

struct SystemBuildConfig {
  RlhfSystem system = RlhfSystem::kHybridFlow;
  RlhfAlgorithm algorithm = RlhfAlgorithm::kPpo;
  int num_gpus = 16;
  int gpus_per_node = 8;
  // Actor & reference share one architecture; critic/reward/cost another
  // (§8.2 uses equal sizes; §8.3 "larger critic" uses 13B/70B).
  ModelSpec actor_model = ModelSpec::Llama7B();
  ModelSpec critic_model = ModelSpec::Llama7B();
  RlhfWorkloadSpec workload;
  // HybridFlow placement restriction (Fig. 12); kAuto runs Algorithm 1.
  PlacementKind placement = PlacementKind::kAuto;
  // Real (toy-scale) data plane; disable for pure timing sweeps.
  bool real_compute = false;
  int64_t real_batch = 32;
  // Architecture of the toy policy networks (MLP mixer or tiny transformer).
  PolicyArch real_arch = PolicyArch::kMlpMixer;
  uint64_t seed = 1;
  PerfParams perf;
  // Generation-stage rollout engine (rollout.mode = static | continuous).
  RolloutOptions rollout;
  // One-step-off asynchronous PPO (docs/ASYNC_PIPELINE.md). Requires the
  // continuous rollout engine; ValidateSystemConfig rejects async with
  // rollout.mode = static.
  bool async_pipeline = false;
  int64_t async_staleness = 1;
  // Worker count for the data-plane tensor kernels (`tensor.threads`
  // config key); 0 = auto (the shared pool size). Any value yields
  // bitwise-identical numerics — see docs/KERNELS.md.
  int tensor_threads = 0;
};

struct RlhfSystemInstance {
  std::unique_ptr<Controller> controller;
  std::unique_ptr<ActorWorkerGroup> actor;
  std::unique_ptr<CriticWorkerGroup> critic;
  std::unique_ptr<ReferenceWorkerGroup> reference;
  std::unique_ptr<RewardWorkerGroup> reward;
  std::unique_ptr<RewardWorkerGroup> cost;
  std::unique_ptr<PromptDataset> dataset;
  std::unique_ptr<RlhfProgram> program;
  MappingResult mapping;  // Populated for HybridFlow.
  bool feasible = true;   // False when models cannot fit the cluster.

  IterationMetrics RunIteration() { return program->RunIteration(); }
  // Runs `warmup` unmeasured iterations then averages `measured` ones
  // (§8.1's measurement protocol).
  IterationMetrics RunAveraged(int warmup, int measured);
};

// Builds a ready-to-run instance. When the models cannot fit (`feasible ==
// false`), the instance has a null program and must not be run.
RlhfSystemInstance BuildSystem(const SystemBuildConfig& config);

// Checks cross-option consistency of a build config. Returns an empty
// string when valid, otherwise a human-readable error (e.g. async_pipeline
// with the static rollout engine). BuildSystem asserts on the same
// conditions; callers that take user input (tools/hybridflow_run) should
// validate first and report the message.
std::string ValidateSystemConfig(const SystemBuildConfig& config);

// The model descriptor list of an algorithm's dataflow (used by the
// mapper and by tests).
std::vector<MappedModelDesc> DataflowModels(RlhfAlgorithm algorithm,
                                            const ModelSpec& actor_model,
                                            const ModelSpec& critic_model);

// Smallest power-of-two TP (<= cap) whose per-GPU share of `bytes` fits
// within `budget`; returns 0 if none does.
int MinTpForBytes(double bytes, double budget, int cap);

}  // namespace hybridflow

#endif  // SRC_BASELINES_SYSTEM_BUILDER_H_
