#include "src/baselines/system_builder.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/tensor/parallel.h"

namespace hybridflow {

const char* RlhfSystemName(RlhfSystem system) {
  switch (system) {
    case RlhfSystem::kHybridFlow:
      return "HybridFlow";
    case RlhfSystem::kDeepSpeedChat:
      return "DeepSpeed-Chat";
    case RlhfSystem::kOpenRlhf:
      return "OpenRLHF";
    case RlhfSystem::kNemoAligner:
      return "NeMo-Aligner";
  }
  return "?";
}

std::vector<MappedModelDesc> DataflowModels(RlhfAlgorithm algorithm,
                                            const ModelSpec& actor_model,
                                            const ModelSpec& critic_model) {
  std::vector<MappedModelDesc> models;
  models.push_back({"actor", actor_model, /*trainable=*/true, /*scalar_head=*/false,
                    /*is_actor=*/true});
  const bool has_critic =
      algorithm == RlhfAlgorithm::kPpo || algorithm == RlhfAlgorithm::kSafeRlhf;
  if (has_critic) {
    models.push_back({"critic", critic_model, true, true, false});
  }
  models.push_back({"reference", actor_model, false, false, false});
  models.push_back({"reward", critic_model, false, true, false});
  if (algorithm == RlhfAlgorithm::kSafeRlhf) {
    models.push_back({"cost", critic_model, false, true, false});
  }
  return models;
}

int MinTpForBytes(double bytes, double budget, int cap) {
  for (int tp = 1; tp <= cap; tp *= 2) {
    if (bytes / tp <= budget) {
      return tp;
    }
  }
  return 0;
}

namespace {

RealComputeOptions MakeReal(const SystemBuildConfig& config) {
  RealComputeOptions real;
  real.enabled = config.real_compute;
  real.seed = config.seed;
  real.task = AlignmentTask{};
  real.net.arch = config.real_arch;
  real.net.vocab_size = real.task.vocab_size;
  real.net.context_window = 4;
  real.net.embed_dim = 16;
  real.net.hidden_dim = 32;
  real.net.num_layers = 2;
  real.adam.lr = 3e-3f;
  return real;
}

// Heuristic 3D strategy: the smallest model-parallel degree that fits in
// memory (TP first up to a node, then PP), data parallelism for the rest.
ParallelConfig Heuristic3d(const MappedModelDesc& model, int gpus, int gpus_per_node,
                           double memory_budget) {
  const double params =
      model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
  const double state = (model.trainable ? ModelSpec::kTrainBytesPerParam : 2.0) * params;
  for (int tp = 1; tp <= std::min(gpus, gpus_per_node); tp *= 2) {
    for (int pp = 1; tp * pp <= gpus; pp *= 2) {
      if (gpus % (tp * pp) != 0) {
        continue;
      }
      if (state / (tp * pp) <= memory_budget) {
        return ParallelConfig{pp, tp, gpus / (tp * pp)};
      }
    }
  }
  return ParallelConfig{0, 0, 0};  // Does not fit.
}

struct BuildContext {
  const SystemBuildConfig& config;
  RlhfSystemInstance& instance;
  std::vector<MappedModelDesc> models;
  RealComputeOptions real;

  const MappedModelDesc& Model(const std::string& name) const {
    for (const MappedModelDesc& model : models) {
      if (model.name == name) {
        return model;
      }
    }
    HF_CHECK_MSG(false, "model " << name << " not in dataflow");
    return models[0];
  }
  bool Has(const std::string& name) const {
    for (const MappedModelDesc& model : models) {
      if (model.name == name) {
        return true;
      }
    }
    return false;
  }
};

WorkerGroupOptions MakeOptions(const MappedModelDesc& model, const ParallelConfig& cfg,
                               WorkerBackend backend, const PerfParams& perf) {
  WorkerGroupOptions options;
  options.name = model.name;
  options.model = model.spec;
  options.scalar_head = model.scalar_head;
  options.trainable = model.trainable;
  options.backend = backend;
  options.train_cfg = cfg;
  options.perf = perf;
  return options;
}

void MakeNonActorGroups(BuildContext& ctx, const std::string& name,
                        std::shared_ptr<ResourcePool> pool, const ParallelConfig& cfg,
                        WorkerBackend backend) {
  RlhfSystemInstance& instance = ctx.instance;
  const MappedModelDesc& model = ctx.Model(name);
  WorkerGroupOptions options = MakeOptions(model, cfg, backend, ctx.config.perf);
  if (name == "critic") {
    instance.critic = std::make_unique<CriticWorkerGroup>(
        std::move(options), std::move(pool), instance.controller.get(), ctx.real);
  } else if (name == "reference") {
    instance.reference = std::make_unique<ReferenceWorkerGroup>(
        std::move(options), std::move(pool), instance.controller.get(), ctx.real,
        ctx.real.enabled ? &instance.actor->net() : nullptr);
  } else if (name == "reward") {
    instance.reward = std::make_unique<RewardWorkerGroup>(
        std::move(options), std::move(pool), instance.controller.get(), ctx.real,
        RewardSource::kRuleReward, "rewards");
  } else if (name == "cost") {
    instance.cost = std::make_unique<RewardWorkerGroup>(
        std::move(options), std::move(pool), instance.controller.get(), ctx.real,
        RewardSource::kRuleCost, "costs");
  } else {
    HF_CHECK_MSG(false, "unexpected model " << name);
  }
}

bool BuildHybridFlow(BuildContext& ctx) {
  const SystemBuildConfig& config = ctx.config;
  RlhfSystemInstance& instance = ctx.instance;

  MapperOptions mapper_options;
  mapper_options.perf = config.perf;
  mapper_options.extra_generation_pass = config.algorithm == RlhfAlgorithm::kRemax;
  DeviceMapper mapper(ctx.models, config.workload,
                      ClusterSpec::WithGpus(config.num_gpus, config.gpus_per_node),
                      mapper_options);
  instance.mapping = mapper.Map(config.num_gpus, config.placement);
  if (!instance.mapping.feasible) {
    return false;
  }

  // One pool per colocated set; groups in a set share the pool handle.
  std::vector<std::shared_ptr<ResourcePool>> set_pools;
  for (size_t s = 0; s < instance.mapping.sets.size(); ++s) {
    const ColocatedSetResult& set = instance.mapping.sets[s];
    set_pools.push_back(instance.controller->CreatePoolRange(
        "set" + std::to_string(s), set.first_device, set.gpus));
  }

  // Actor first (the reference copies its weights). Algorithm 2 may have
  // selected the ZeRO backend, in which case the engine reshards ZeRO->TP
  // (DS-Chat-style); the 3D backend uses the zero-redundancy engine.
  const int actor_set = instance.mapping.SetOf("actor");
  const ModelMapping& actor_mapping = instance.mapping.models.at("actor");
  ActorOptions actor_options;
  actor_options.gen = actor_mapping.gen;
  actor_options.engine_mode = actor_mapping.backend == WorkerBackend::k3dParallel
                                  ? ActorEngineMode::kHybridFlow
                                  : ActorEngineMode::kDsChat;
  actor_options.rollout = config.rollout;
  instance.actor = std::make_unique<ActorWorkerGroup>(
      MakeOptions(ctx.Model("actor"), actor_mapping.train, actor_mapping.backend, config.perf),
      set_pools[static_cast<size_t>(actor_set)], instance.controller.get(), ctx.real,
      actor_options);

  for (const MappedModelDesc& model : ctx.models) {
    if (model.name == "actor") {
      continue;
    }
    const int set = instance.mapping.SetOf(model.name);
    const ModelMapping& mapping = instance.mapping.models.at(model.name);
    MakeNonActorGroups(ctx, model.name, set_pools[static_cast<size_t>(set)], mapping.train,
                       mapping.backend);
  }
  return true;
}

bool BuildDeepSpeedChat(BuildContext& ctx) {
  const SystemBuildConfig& config = ctx.config;
  RlhfSystemInstance& instance = ctx.instance;
  const double capacity = instance.controller->spec().gpu.memory_bytes;

  // Everything colocated on all GPUs; every model ZeRO-3 across N.
  auto pool = instance.controller->CreatePoolRange("all", 0, config.num_gpus);
  const ParallelConfig dp_cfg{1, 1, config.num_gpus};

  // Memory feasibility: sum of ZeRO-3 states across colocated models.
  double total_state = 0.0;
  for (const MappedModelDesc& model : ctx.models) {
    const double params =
        model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
    total_state +=
        (model.trainable ? ModelSpec::kTrainBytesPerParam : 2.0) * params / config.num_gpus;
  }
  if (total_state > 0.85 * capacity) {
    return false;
  }

  // Generation TP: smallest power of two leaving KVCache headroom.
  const int tg = MinTpForBytes(ctx.Model("actor").spec.ParamBytes(), 0.25 * capacity,
                               std::min(config.num_gpus, config.gpus_per_node));
  if (tg == 0) {
    return false;
  }

  ActorOptions actor_options;
  actor_options.gen = GenParallelConfig{1, tg};
  actor_options.engine_mode = ActorEngineMode::kDsChat;
  actor_options.rollout = config.rollout;
  WorkerGroupOptions options =
      MakeOptions(ctx.Model("actor"), dp_cfg, WorkerBackend::kZero, config.perf);
  instance.actor = std::make_unique<ActorWorkerGroup>(
      std::move(options), pool, instance.controller.get(), ctx.real, actor_options);

  for (const MappedModelDesc& model : ctx.models) {
    if (model.name == "actor") {
      continue;
    }
    MakeNonActorGroups(ctx, model.name, pool, dp_cfg, WorkerBackend::kZero);
  }
  return true;
}

bool BuildOpenRlhf(BuildContext& ctx) {
  const SystemBuildConfig& config = ctx.config;
  RlhfSystemInstance& instance = ctx.instance;
  const double capacity = instance.controller->spec().gpu.memory_bytes;
  const int n = config.num_gpus;
  if (n < 4) {
    return false;
  }

  // Standalone placement: actor training, vLLM generation, and each other
  // model on disjoint device sets, sized proportionally to their memory
  // footprint (largest-remainder rounding, each at least one GPU).
  std::vector<std::string> others;
  std::vector<double> weights;
  const double actor_params = ctx.Model("actor").spec.NumParams();
  weights.push_back(ModelSpec::kTrainBytesPerParam * actor_params);  // Actor training.
  weights.push_back(4.0 * actor_params);                             // vLLM copy + KVCache.
  for (const MappedModelDesc& model : ctx.models) {
    if (model.name == "actor") {
      continue;
    }
    others.push_back(model.name);
    const double params =
        model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
    weights.push_back((model.trainable ? ModelSpec::kTrainBytesPerParam : 2.0) * params);
  }
  double weight_sum = 0.0;
  for (double weight : weights) {
    weight_sum += weight;
  }
  std::vector<int> shares(weights.size(), 1);
  int assigned = static_cast<int>(weights.size());
  HF_CHECK_LE(assigned, n);
  // Greedily hand out remaining GPUs to the most under-allocated pool.
  while (assigned < n) {
    size_t argmax = 0;
    double worst = -1.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      const double deficit = weights[i] / weight_sum - static_cast<double>(shares[i]) / n;
      if (deficit > worst) {
        worst = deficit;
        argmax = i;
      }
    }
    shares[argmax] += 1;
    assigned += 1;
  }
  int actor_gpus = shares[0];
  int gen_gpus = shares[1];
  std::vector<int> other_gpus(shares.begin() + 2, shares.end());

  // The vLLM pool must tile into TP-sized replicas: shrink it to the
  // nearest multiple of the needed TP degree, returning the remainder to
  // actor training.
  const double capacity_probe = instance.controller->spec().gpu.memory_bytes;
  int gen_tp = MinTpForBytes(ctx.Model("actor").spec.ParamBytes(), 0.5 * capacity_probe,
                             std::min(gen_gpus, config.gpus_per_node));
  if (gen_tp == 0) {
    return false;
  }
  actor_gpus += gen_gpus % gen_tp;
  gen_gpus -= gen_gpus % gen_tp;
  if (gen_gpus < gen_tp) {
    return false;
  }

  int cursor = 0;
  auto actor_pool = instance.controller->CreatePoolRange("actor_train", cursor, actor_gpus);
  cursor += actor_gpus;
  auto gen_pool = instance.controller->CreatePoolRange("actor_gen", cursor, gen_gpus);
  cursor += gen_gpus;

  // Actor trains with ZeRO-3 across its pool.
  const double actor_state =
      ModelSpec::kTrainBytesPerParam * ctx.Model("actor").spec.NumParams() / actor_gpus;
  if (actor_state > 0.85 * capacity) {
    return false;
  }
  const int tg = gen_tp;
  HF_CHECK_EQ(gen_gpus % tg, 0);

  ActorOptions actor_options;
  actor_options.gen = GenParallelConfig{1, tg};
  actor_options.engine_mode = ActorEngineMode::kTwoCopies;
  actor_options.gen_pool = gen_pool;
  actor_options.rollout = config.rollout;
  instance.actor = std::make_unique<ActorWorkerGroup>(
      MakeOptions(ctx.Model("actor"), ParallelConfig{1, 1, actor_gpus}, WorkerBackend::kZero,
                  config.perf),
      actor_pool, instance.controller.get(), ctx.real, actor_options);

  for (size_t i = 0; i < others.size(); ++i) {
    const MappedModelDesc& model = ctx.Model(others[i]);
    const double params =
        model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
    const double state =
        (model.trainable ? ModelSpec::kTrainBytesPerParam : 2.0) * params / other_gpus[i];
    if (state > 0.85 * capacity) {
      return false;
    }
    auto pool = instance.controller->CreatePoolRange(others[i] + "_pool", cursor, other_gpus[i]);
    cursor += other_gpus[i];
    MakeNonActorGroups(ctx, others[i], pool, ParallelConfig{1, 1, other_gpus[i]},
                       WorkerBackend::kZero);
  }
  return true;
}

bool BuildNemoAligner(BuildContext& ctx) {
  const SystemBuildConfig& config = ctx.config;
  RlhfSystemInstance& instance = ctx.instance;
  const double capacity = instance.controller->spec().gpu.memory_bytes;
  const int n = config.num_gpus;
  if (n < 2) {
    return false;
  }
  const int half = n / 2;

  auto actor_pool = instance.controller->CreatePoolRange("actor_ref", 0, half);
  auto critic_pool = instance.controller->CreatePoolRange("critic_rm", half, n - half);

  const ParallelConfig actor_cfg =
      Heuristic3d(ctx.Model("actor"), half, config.gpus_per_node, 0.55 * capacity);
  if (!actor_cfg.Valid() || actor_cfg.pp == 0) {
    return false;
  }

  // Identical parallelism in training and generation; no KVCache (§8.2).
  ActorOptions actor_options;
  actor_options.engine_mode = ActorEngineMode::kShared;
  actor_options.use_kv_cache = false;
  actor_options.rollout = config.rollout;
  instance.actor = std::make_unique<ActorWorkerGroup>(
      MakeOptions(ctx.Model("actor"), actor_cfg, WorkerBackend::k3dParallel, config.perf),
      actor_pool, instance.controller.get(), ctx.real, actor_options);

  for (const MappedModelDesc& model : ctx.models) {
    if (model.name == "actor") {
      continue;
    }
    const bool with_actor = model.name == "reference";
    auto pool = with_actor ? actor_pool : critic_pool;
    const int gpus = pool->size();
    const double budget = (model.trainable ? 0.55 : 0.25) * capacity;
    const ParallelConfig cfg = Heuristic3d(model, gpus, config.gpus_per_node, budget);
    if (!cfg.Valid() || cfg.pp == 0) {
      return false;
    }
    MakeNonActorGroups(ctx, model.name, pool, cfg, WorkerBackend::k3dParallel);
  }
  return true;
}

}  // namespace

IterationMetrics RlhfSystemInstance::RunAveraged(int warmup, int measured) {
  HF_CHECK(program != nullptr);
  HF_CHECK_GT(measured, 0);
  for (int i = 0; i < warmup; ++i) {
    program->RunIteration();
  }
  IterationMetrics total;
  for (int i = 0; i < measured; ++i) {
    IterationMetrics metrics = program->RunIteration();
    total.iteration_seconds += metrics.iteration_seconds;
    total.throughput_tokens_per_sec += metrics.throughput_tokens_per_sec;
    total.mean_reward += metrics.mean_reward;
    total.toxicity_rate += metrics.toxicity_rate;
    total.coherence_rate += metrics.coherence_rate;
    total.actor_loss += metrics.actor_loss;
    total.critic_loss += metrics.critic_loss;
    total.mean_kl += metrics.mean_kl;
    total.grad_norm += metrics.grad_norm;
    total.clip_fraction += metrics.clip_fraction;
    total.wall_clock_seconds += metrics.wall_clock_seconds;
    total.transition_seconds += metrics.transition_seconds;
    total.generation_seconds += metrics.generation_seconds;
    total.overlap_fraction += metrics.overlap_fraction;
    total.async_staleness = metrics.async_staleness;
    total.async_queue_depth = metrics.async_queue_depth;
    for (const auto& [category, seconds] : metrics.busy_by_category) {
      total.busy_by_category[category] += seconds;
    }
  }
  const double inv = 1.0 / measured;
  total.iteration_seconds *= inv;
  total.throughput_tokens_per_sec *= inv;
  total.mean_reward *= inv;
  total.toxicity_rate *= inv;
  total.coherence_rate *= inv;
  total.actor_loss *= inv;
  total.critic_loss *= inv;
  total.mean_kl *= inv;
  total.grad_norm *= inv;
  total.clip_fraction *= inv;
  total.wall_clock_seconds *= inv;
  total.transition_seconds *= inv;
  total.generation_seconds *= inv;
  total.overlap_fraction *= inv;
  for (auto& [category, seconds] : total.busy_by_category) {
    seconds *= inv;
  }
  return total;
}

std::string ValidateSystemConfig(const SystemBuildConfig& config) {
  if (config.async_pipeline && config.rollout.mode == RolloutMode::kStatic) {
    return "async_pipeline=true requires the continuous rollout engine: the static "
           "generation path has no admission/preemption scheduler to overlap with "
           "training (set rollout.mode=continuous)";
  }
  if (config.async_staleness < 0) {
    return "async_staleness must be >= 0";
  }
  if (config.tensor_threads < 0) {
    return "tensor.threads must be >= 0 (0 = auto)";
  }
  return "";
}

RlhfSystemInstance BuildSystem(const SystemBuildConfig& config) {
  const std::string config_error = ValidateSystemConfig(config);
  HF_CHECK_MSG(config_error.empty(), config_error);
  SetTensorThreads(config.tensor_threads);
  RlhfSystemInstance instance;
  instance.controller = std::make_unique<Controller>(
      ClusterSpec::WithGpus(config.num_gpus, config.gpus_per_node));

  BuildContext ctx{config, instance,
                   DataflowModels(config.algorithm, config.actor_model, config.critic_model),
                   MakeReal(config)};

  bool ok = false;
  switch (config.system) {
    case RlhfSystem::kHybridFlow:
      ok = BuildHybridFlow(ctx);
      break;
    case RlhfSystem::kDeepSpeedChat:
      ok = BuildDeepSpeedChat(ctx);
      break;
    case RlhfSystem::kOpenRlhf:
      ok = BuildOpenRlhf(ctx);
      break;
    case RlhfSystem::kNemoAligner:
      ok = BuildNemoAligner(ctx);
      break;
  }
  if (!ok) {
    instance.feasible = false;
    HF_LOG(kInfo) << RlhfSystemName(config.system) << " infeasible on " << config.num_gpus
                  << " GPUs for " << config.actor_model.name << " models";
    return instance;
  }

  if (config.real_compute) {
    instance.dataset = std::make_unique<PromptDataset>(ctx.real.task, config.seed ^ 0xDA7A);
  }

  RlhfProgramConfig program_config;
  program_config.algorithm = config.algorithm;
  program_config.workload = config.workload;
  program_config.real_batch = config.real_batch;
  program_config.async_pipeline = config.async_pipeline;
  program_config.async_staleness = config.async_staleness;
  RlhfModels models;
  models.actor = instance.actor.get();
  models.critic = instance.critic.get();
  models.reference = instance.reference.get();
  models.reward = instance.reward.get();
  models.cost = instance.cost.get();
  instance.program = std::make_unique<RlhfProgram>(program_config, models,
                                                   instance.controller.get(),
                                                   instance.dataset.get());
  return instance;
}

}  // namespace hybridflow
