#include "src/data/alignment_task.h"

#include "src/common/check.h"

namespace hybridflow {

float AlignmentTask::TokenReward(int64_t prev, int64_t token) const {
  if (token == toxic_token()) {
    return -2.0f;
  }
  if (use_eos && token == eos_token()) {
    return 0.0f;  // Stopping is neither rewarded nor punished.
  }
  // Coherent continuation cycles through the non-toxic (and, with EOS
  // enabled, non-EOS) vocabulary.
  const int64_t cycle = vocab_size - (use_eos ? 2 : 1);
  const int64_t expected = (prev + 1) % cycle;
  return token == expected ? 1.0f : -0.1f;
}

std::vector<float> AlignmentTask::ResponseRewards(const std::vector<int64_t>& prompt,
                                                  const std::vector<int64_t>& response) const {
  HF_CHECK(!prompt.empty());
  std::vector<float> rewards;
  rewards.reserve(response.size());
  int64_t prev = prompt.back();
  for (int64_t token : response) {
    rewards.push_back(TokenReward(prev, token));
    prev = token;
  }
  return rewards;
}

float AlignmentTask::SampleReward(const std::vector<int64_t>& prompt,
                                  const std::vector<int64_t>& response) const {
  if (response.empty()) {
    return 0.0f;
  }
  std::vector<float> rewards = ResponseRewards(prompt, response);
  float total = 0.0f;
  for (float r : rewards) {
    total += r;
  }
  return total / static_cast<float>(rewards.size());
}

float AlignmentTask::SampleCost(const std::vector<int64_t>& response) const {
  if (response.empty()) {
    return 0.0f;
  }
  int64_t toxic = 0;
  for (int64_t token : response) {
    if (token == toxic_token()) {
      toxic += 1;
    }
  }
  return static_cast<float>(toxic) / static_cast<float>(response.size());
}

double AlignmentTask::ToxicityRate(const DataBatch::TokenColumn& responses,
                                   int64_t toxic_token) {
  int64_t total = 0;
  int64_t toxic = 0;
  for (const std::vector<int64_t>& response : responses) {
    for (int64_t token : response) {
      total += 1;
      if (token == toxic_token) {
        toxic += 1;
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(toxic) / static_cast<double>(total);
}

double AlignmentTask::CoherenceRate(const DataBatch::TokenColumn& prompts,
                                    const DataBatch::TokenColumn& responses) const {
  HF_CHECK_EQ(prompts.size(), responses.size());
  int64_t total = 0;
  int64_t coherent = 0;
  for (size_t i = 0; i < prompts.size(); ++i) {
    int64_t prev = prompts[i].back();
    for (int64_t token : responses[i]) {
      total += 1;
      if (token == (prev + 1) % (vocab_size - 1)) {
        coherent += 1;
      }
      prev = token;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(coherent) / static_cast<double>(total);
}

DataBatch PromptDataset::NextBatch(int64_t batch_size) {
  HF_CHECK_GT(batch_size, 0);
  DataBatch::TokenColumn prompts;
  prompts.reserve(static_cast<size_t>(batch_size));
  for (int64_t i = 0; i < batch_size; ++i) {
    std::vector<int64_t> prompt;
    prompt.reserve(static_cast<size_t>(task_.prompt_len));
    const int64_t max_token = task_.vocab_size - (task_.use_eos ? 3 : 2);
    for (int64_t j = 0; j < task_.prompt_len; ++j) {
      // Prompts never contain the toxic (or EOS) token.
      prompt.push_back(rng_.UniformInt(0, max_token));
    }
    prompts.push_back(std::move(prompt));
  }
  DataBatch batch;
  batch.SetTokens("prompts", std::move(prompts));
  return batch;
}

}  // namespace hybridflow
