#include "src/data/arrival_trace.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace hybridflow {

const char* TraceShapeName(TraceShape shape) {
  switch (shape) {
    case TraceShape::kPoisson:
      return "poisson";
    case TraceShape::kBursty:
      return "bursty";
    case TraceShape::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

bool ParseTraceShape(const std::string& name, TraceShape* shape) {
  static constexpr TraceShape kAll[] = {TraceShape::kPoisson, TraceShape::kBursty,
                                        TraceShape::kDiurnal};
  for (TraceShape candidate : kAll) {
    if (name == TraceShapeName(candidate)) {
      *shape = candidate;
      return true;
    }
  }
  return false;
}

double TraceRateAt(const ArrivalTraceConfig& config, double t) {
  switch (config.shape) {
    case TraceShape::kPoisson:
      return config.rate;
    case TraceShape::kBursty: {
      const double cycle = config.burst_on + config.burst_off;
      const double phase = std::fmod(t, cycle);
      return phase < config.burst_on ? config.rate * config.burst_factor : config.rate;
    }
    case TraceShape::kDiurnal: {
      const double omega = 2.0 * M_PI / config.diurnal_period;
      return config.rate * (1.0 + config.diurnal_depth * std::sin(omega * t));
    }
  }
  return config.rate;
}

namespace {

// Peak rate of the shape: the Lewis-Shedler thinning envelope.
double PeakRate(const ArrivalTraceConfig& config) {
  switch (config.shape) {
    case TraceShape::kPoisson:
      return config.rate;
    case TraceShape::kBursty:
      return config.rate * std::max(config.burst_factor, 1.0);
    case TraceShape::kDiurnal:
      return config.rate * (1.0 + config.diurnal_depth);
  }
  return config.rate;
}

// Exponential(rate) draw; Uniform is [0, 1) so 1-u is (0, 1] and the log
// is finite.
double Exponential(Rng& rng, double rate) {
  return -std::log(1.0 - rng.Uniform(0.0, 1.0)) / rate;
}

}  // namespace

std::vector<ArrivalRecord> GenerateArrivalTrace(const ArrivalTraceConfig& config, uint64_t seed) {
  HF_CHECK_GT(config.rate, 0.0);
  HF_CHECK_GT(config.duration, 0.0);
  if (config.shape == TraceShape::kBursty) {
    HF_CHECK_GT(config.burst_on + config.burst_off, 0.0);
    HF_CHECK_GT(config.burst_factor, 0.0);
  }
  if (config.shape == TraceShape::kDiurnal) {
    HF_CHECK_GT(config.diurnal_period, 0.0);
    HF_CHECK_GE(config.diurnal_depth, 0.0);
    HF_CHECK_LE(config.diurnal_depth, 1.0);
  }
  std::vector<TenantSpec> tenants = config.tenants;
  if (tenants.empty()) {
    tenants.push_back(TenantSpec{});
  }
  std::vector<double> shares;
  shares.reserve(tenants.size());
  for (const TenantSpec& spec : tenants) {
    HF_CHECK_GT(spec.share, 0.0);
    HF_CHECK_GT(spec.prompt_min, 0);
    HF_CHECK_GE(spec.prompt_max, spec.prompt_min);
    HF_CHECK_GT(spec.new_tokens_min, 0);
    HF_CHECK_GE(spec.new_tokens_max, spec.new_tokens_min);
    shares.push_back(spec.share);
  }

  // Stream split (see header): arrivals, tenant picks, and per-tenant
  // request shapes are independent so edits to one knob do not cascade.
  Rng root(seed);
  Rng arrivals = root.Fork(0);
  Rng mix = root.Fork(1);
  std::map<int64_t, Rng> shape_rngs;
  for (size_t i = 0; i < tenants.size(); ++i) {
    shape_rngs.emplace(tenants[i].tenant, root.Fork(2 + tenants[i].tenant));
  }

  const double peak = PeakRate(config);
  std::vector<ArrivalRecord> trace;
  double t = 0.0;
  while (true) {
    t += Exponential(arrivals, peak);
    if (t >= config.duration) {
      break;
    }
    // Thinning: keep the candidate with probability lambda(t)/peak.
    if (arrivals.Uniform(0.0, peak) >= TraceRateAt(config, t)) {
      continue;
    }
    const TenantSpec& spec = tenants[static_cast<size_t>(mix.Categorical(shares))];
    Rng& shape_rng = shape_rngs.at(spec.tenant);
    ArrivalRecord record;
    record.index = static_cast<int64_t>(trace.size());
    record.arrival = t;
    record.tenant = spec.tenant;
    record.priority = spec.priority;
    record.prompt_tokens = shape_rng.UniformInt(spec.prompt_min, spec.prompt_max);
    record.target_new_tokens = shape_rng.UniformInt(spec.new_tokens_min, spec.new_tokens_max);
    record.ttft_deadline = spec.ttft_slo > 0.0 ? t + spec.ttft_slo : 0.0;
    record.tpot_slo = spec.tpot_slo > 0.0 ? spec.tpot_slo : 0.0;
    trace.push_back(record);
    if (config.max_requests > 0 &&
        static_cast<int64_t>(trace.size()) >= config.max_requests) {
      break;
    }
  }
  return trace;
}

}  // namespace hybridflow
