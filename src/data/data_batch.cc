#include "src/data/data_batch.h"

#include <algorithm>

#include "src/common/check.h"

namespace hybridflow {

void DataBatch::CheckRowCount(int64_t rows) {
  if (batch_size_ == 0 && floats_.empty() && tokens_.empty()) {
    batch_size_ = rows;
  } else {
    HF_CHECK_MSG(rows == batch_size_,
                 "column row count " << rows << " != batch size " << batch_size_);
  }
}

void DataBatch::SetFloat(const std::string& name, FloatColumn column) {
  CheckRowCount(static_cast<int64_t>(column.size()));
  floats_[name] = std::move(column);
}

void DataBatch::SetTokens(const std::string& name, TokenColumn column) {
  CheckRowCount(static_cast<int64_t>(column.size()));
  tokens_[name] = std::move(column);
}

const DataBatch::FloatColumn& DataBatch::Float(const std::string& name) const {
  auto it = floats_.find(name);
  HF_CHECK_MSG(it != floats_.end(), "missing float column: " << name);
  return it->second;
}

const DataBatch::TokenColumn& DataBatch::Tokens(const std::string& name) const {
  auto it = tokens_.find(name);
  HF_CHECK_MSG(it != tokens_.end(), "missing token column: " << name);
  return it->second;
}

std::vector<std::string> DataBatch::FloatNames() const {
  std::vector<std::string> names;
  names.reserve(floats_.size());
  for (const auto& [name, column] : floats_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> DataBatch::TokenNames() const {
  std::vector<std::string> names;
  names.reserve(tokens_.size());
  for (const auto& [name, column] : tokens_) {
    names.push_back(name);
  }
  return names;
}

DataBatch DataBatch::Slice(int64_t begin, int64_t end) const {
  HF_CHECK_GE(begin, 0);
  HF_CHECK_LE(begin, end);
  HF_CHECK_LE(end, batch_size_);
  DataBatch out;
  for (const auto& [name, column] : floats_) {
    out.SetFloat(name, FloatColumn(column.begin() + begin, column.begin() + end));
  }
  for (const auto& [name, column] : tokens_) {
    out.SetTokens(name, TokenColumn(column.begin() + begin, column.begin() + end));
  }
  if (out.batch_size_ == 0) {
    out.batch_size_ = end - begin;
  }
  return out;
}

std::vector<DataBatch> DataBatch::SplitChunks(int chunks) const {
  HF_CHECK_GT(chunks, 0);
  std::vector<DataBatch> out;
  out.reserve(static_cast<size_t>(chunks));
  const int64_t base = batch_size_ / chunks;
  const int64_t remainder = batch_size_ % chunks;
  int64_t begin = 0;
  for (int c = 0; c < chunks; ++c) {
    const int64_t rows = base + (c < remainder ? 1 : 0);
    out.push_back(Slice(begin, begin + rows));
    begin += rows;
  }
  HF_CHECK_EQ(begin, batch_size_);
  return out;
}

DataBatch DataBatch::ConcatBatches(const std::vector<DataBatch>& raw_parts) {
  DataBatch out;
  // Column-less empty batches are the neutral element: a rank whose shard
  // was empty (more DP ranks than rows) contributes nothing.
  std::vector<DataBatch> parts;
  for (const DataBatch& part : raw_parts) {
    if (!part.floats_.empty() || !part.tokens_.empty()) {
      parts.push_back(part);
    }
  }
  if (parts.empty()) {
    return out;
  }
  for (const std::string& name : parts[0].FloatNames()) {
    FloatColumn column;
    for (const DataBatch& part : parts) {
      const FloatColumn& src = part.Float(name);
      column.insert(column.end(), src.begin(), src.end());
    }
    out.SetFloat(name, std::move(column));
  }
  for (const std::string& name : parts[0].TokenNames()) {
    TokenColumn column;
    for (const DataBatch& part : parts) {
      const TokenColumn& src = part.Tokens(name);
      column.insert(column.end(), src.begin(), src.end());
    }
    out.SetTokens(name, std::move(column));
  }
  return out;
}

void DataBatch::MergeColumns(const DataBatch& other) {
  if (other.empty() && other.floats_.empty() && other.tokens_.empty()) {
    return;
  }
  for (const auto& [name, column] : other.floats_) {
    SetFloat(name, column);
  }
  for (const auto& [name, column] : other.tokens_) {
    SetTokens(name, column);
  }
}

double DataBatch::ApproxBytes() const {
  double bytes = 0.0;
  for (const auto& [name, column] : floats_) {
    for (const std::vector<float>& row : column) {
      bytes += static_cast<double>(row.size()) * sizeof(float);
    }
  }
  for (const auto& [name, column] : tokens_) {
    for (const std::vector<int64_t>& row : column) {
      bytes += static_cast<double>(row.size()) * sizeof(int64_t);
    }
  }
  return bytes;
}

}  // namespace hybridflow
