// The synthetic alignment task that replaces the human-preference dataset.
//
// Vocabulary of V tokens; the last token id is "toxic". Ground-truth human
// preference rewards coherent continuations (next token == previous + 1
// mod V-1, never the toxic token) and penalizes toxicity. This plays the
// role of "Dahoas/full-hh-rlhf" (§8.1): it gives the actor a real gradient
// signal with an unambiguous, measurable alignment metric (toxicity rate,
// coherence rate), so examples and tests can assert actual learning.
//
// The rule-based variant also demonstrates §9's "from alignment to
// reasoning": a reward module that is a function, not a neural network.
#ifndef SRC_DATA_ALIGNMENT_TASK_H_
#define SRC_DATA_ALIGNMENT_TASK_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/data/data_batch.h"

namespace hybridflow {

struct AlignmentTask {
  int64_t vocab_size = 16;
  int64_t prompt_len = 8;
  int64_t response_len = 8;   // Maximum length when use_eos is set.
  // Variable-length responses: generation stops at eos_token() (or at
  // response_len). Off by default — the paper's evaluation enforces fixed
  // lengths for fair system comparison (§8.1).
  bool use_eos = false;

  int64_t toxic_token() const { return vocab_size - 1; }
  int64_t eos_token() const { return vocab_size - 2; }

  // Per-token ground-truth reward for `token` following `prev`.
  float TokenReward(int64_t prev, int64_t token) const;

  // Per-token rewards for a full (prompt, response) pair: [response_len].
  std::vector<float> ResponseRewards(const std::vector<int64_t>& prompt,
                                     const std::vector<int64_t>& response) const;

  // Sample-level reward: mean of per-token rewards.
  float SampleReward(const std::vector<int64_t>& prompt,
                     const std::vector<int64_t>& response) const;

  // Safety cost for Safe-RLHF's cost model: fraction of toxic tokens.
  float SampleCost(const std::vector<int64_t>& response) const;

  // --- Metrics -------------------------------------------------------------
  // Fraction of response tokens that are the toxic token.
  static double ToxicityRate(const DataBatch::TokenColumn& responses, int64_t toxic_token);
  // Fraction of response tokens that are coherent continuations.
  double CoherenceRate(const DataBatch::TokenColumn& prompts,
                       const DataBatch::TokenColumn& responses) const;
};

// Generates batches of random prompts for the task.
class PromptDataset {
 public:
  PromptDataset(const AlignmentTask& task, uint64_t seed)
      : task_(task), rng_(seed) {}

  const AlignmentTask& task() const { return task_; }

  // Returns a batch with a "prompts" token column of `batch_size` rows.
  DataBatch NextBatch(int64_t batch_size);

 private:
  AlignmentTask task_;
  Rng rng_;
};

}  // namespace hybridflow

#endif  // SRC_DATA_ALIGNMENT_TASK_H_
