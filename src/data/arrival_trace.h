// Seeded arrival-trace generators for the serving front end
// (src/serving/): open-loop request streams with Poisson, bursty ON-OFF,
// or diurnal rate shapes over a multi-tenant mix.
//
// Traces are fully deterministic given (config, seed): arrival instants
// come from one dedicated Rng stream via Lewis-Shedler thinning against the
// shape's peak rate, the tenant of each arrival from a second stream, and
// each tenant's request shapes (prompt/response lengths) from a per-tenant
// forked stream — so changing one tenant's mix or weights never perturbs
// another tenant's request sizes. The serving simulator and bench replay
// the same trace across admission policies to compare like with like.
#ifndef SRC_DATA_ARRIVAL_TRACE_H_
#define SRC_DATA_ARRIVAL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hybridflow {

enum class TraceShape {
  kPoisson,  // Homogeneous Poisson process at `rate`.
  kBursty,   // ON-OFF square wave: rate*burst_factor for burst_on seconds,
             // then `rate` for burst_off seconds, repeating.
  kDiurnal,  // Sinusoidal: rate * (1 + diurnal_depth * sin(2*pi*t/period)).
};

// Stable lowercase name used in configs and bench rows ("poisson", ...).
const char* TraceShapeName(TraceShape shape);
// Inverse of TraceShapeName; false if `name` is not a known shape.
bool ParseTraceShape(const std::string& name, TraceShape* shape);

// One tenant of the serving mix. `share` weights how often arrivals belong
// to this tenant (normalized over the mix); the SLOs are *relative* budgets
// stamped onto each request as absolute deadlines at generation time.
struct TenantSpec {
  int64_t tenant = 0;
  double share = 1.0;      // Arrival-mix weight (any positive scale).
  int64_t priority = 0;    // AdmissionPolicy::kPriority rank (higher first).
  double ttft_slo = 0.0;   // Seconds from arrival to first token; <= 0 = none.
  double tpot_slo = 0.0;   // Seconds per output token; <= 0 = none.
  int64_t prompt_min = 8;
  int64_t prompt_max = 24;
  int64_t new_tokens_min = 4;
  int64_t new_tokens_max = 16;
};

struct ArrivalTraceConfig {
  TraceShape shape = TraceShape::kPoisson;
  double rate = 8.0;          // Mean (baseline) arrivals per second.
  double duration = 10.0;     // Trace horizon in seconds.
  int64_t max_requests = 0;   // Hard cap on emitted requests; 0 = horizon only.
  // kBursty knobs: ON window length, OFF window length, ON rate multiplier.
  double burst_on = 0.5;
  double burst_off = 1.5;
  double burst_factor = 4.0;
  // kDiurnal knobs: sinusoid period (seconds) and modulation depth in
  // [0, 1] (depth 1 swings between 0 and 2x the baseline rate).
  double diurnal_period = 10.0;
  double diurnal_depth = 0.8;
  // The tenant mix; empty = one default tenant 0.
  std::vector<TenantSpec> tenants;
};

// One generated request, sorted by arrival time.
struct ArrivalRecord {
  int64_t index = 0;     // 0-based position in the trace.
  double arrival = 0.0;  // Seconds from trace start.
  int64_t tenant = 0;
  int64_t priority = 0;
  int64_t prompt_tokens = 0;
  int64_t target_new_tokens = 0;
  double ttft_deadline = 0.0;  // Absolute (arrival + ttft_slo); 0 = none.
  double tpot_slo = 0.0;       // Relative per-token budget; 0 = none.
  // Count-based prompt identity for the prefix-sharing KV cache: records
  // with the same non-negative group carry an identical prompt (shared
  // when ServingPolicyConfig::prefix_cache is on); -1 = unique prompt.
  int64_t prompt_group = -1;
};

// Instantaneous arrival rate lambda(t) of `config`'s shape (exposed for
// tests pinning the thinning envelope).
double TraceRateAt(const ArrivalTraceConfig& config, double t);

// Generates the trace. Deterministic given (config, seed); records are in
// nondecreasing arrival order with dense indices 0..n-1.
std::vector<ArrivalRecord> GenerateArrivalTrace(const ArrivalTraceConfig& config, uint64_t seed);

}  // namespace hybridflow

#endif  // SRC_DATA_ARRIVAL_TRACE_H_
