// DataBatch: the unit of data exchanged between models in the RLHF
// dataflow — HybridFlow's equivalent of the TensorDict the paper stores
// intermediate data in (§7).
//
// A batch is a set of named columns over the same rows (sequences):
//   * token columns: [batch][len] int64 (prompts, responses)
//   * float columns: [batch][width] float (log-probs, values, rewards,
//     advantages, returns; width is per-token or 1 for per-sample scalars)
//
// Transfer protocols (src/transfer) manipulate batches only through the
// split/concat/merge operations here, which is what makes resharding
// generic across models.
#ifndef SRC_DATA_DATA_BATCH_H_
#define SRC_DATA_DATA_BATCH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hybridflow {

class DataBatch {
 public:
  using FloatColumn = std::vector<std::vector<float>>;
  using TokenColumn = std::vector<std::vector<int64_t>>;

  DataBatch() = default;

  // Number of rows; 0 for an empty batch. All columns must agree.
  int64_t batch_size() const { return batch_size_; }
  bool empty() const { return batch_size_ == 0; }

  void SetFloat(const std::string& name, FloatColumn column);
  void SetTokens(const std::string& name, TokenColumn column);

  bool HasFloat(const std::string& name) const { return floats_.count(name) > 0; }
  bool HasTokens(const std::string& name) const { return tokens_.count(name) > 0; }

  const FloatColumn& Float(const std::string& name) const;
  const TokenColumn& Tokens(const std::string& name) const;

  std::vector<std::string> FloatNames() const;
  std::vector<std::string> TokenNames() const;

  // Rows [begin, end) of every column.
  DataBatch Slice(int64_t begin, int64_t end) const;

  // Splits into `chunks` near-equal row ranges (first chunks get the
  // remainder). Used by distribute functions to scatter across DP groups.
  std::vector<DataBatch> SplitChunks(int chunks) const;

  // Row-wise concatenation; all parts must have identical column sets.
  static DataBatch ConcatBatches(const std::vector<DataBatch>& parts);

  // Adds the columns of `other` (same batch size) to this batch;
  // overwrites columns with matching names.
  void MergeColumns(const DataBatch& other);

  // Approximate payload size, for transfer-time accounting.
  double ApproxBytes() const;

 private:
  void CheckRowCount(int64_t rows);

  int64_t batch_size_ = 0;
  std::map<std::string, FloatColumn> floats_;
  std::map<std::string, TokenColumn> tokens_;
};

}  // namespace hybridflow

#endif  // SRC_DATA_DATA_BATCH_H_
