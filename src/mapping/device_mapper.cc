#include "src/mapping/device_mapper.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/hybridengine/hybrid_engine.h"

namespace hybridflow {

namespace {

std::vector<DeviceId> Iota(int n) {
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    devices[static_cast<size_t>(i)] = i;
  }
  return devices;
}

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

const char* PlacementKindName(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kAuto:
      return "hybridflow";
    case PlacementKind::kColocate:
      return "colocate";
    case PlacementKind::kStandalone:
      return "standalone";
    case PlacementKind::kSplit:
      return "split";
  }
  return "?";
}

int MappingResult::SetOf(const std::string& name) const {
  for (size_t s = 0; s < sets.size(); ++s) {
    for (const std::string& member : sets[s].model_names) {
      if (member == name) {
        return static_cast<int>(s);
      }
    }
  }
  HF_CHECK_MSG(false, "model " << name << " not present in any colocated set");
  return -1;
}

DeviceMapper::DeviceMapper(std::vector<MappedModelDesc> models, RlhfWorkloadSpec workload,
                           ClusterSpec node_template, MapperOptions options)
    : models_(std::move(models)),
      workload_(workload),
      node_template_(node_template),
      options_(options) {
  HF_CHECK(!models_.empty());
}

double DeviceMapper::MappedStateBytesPerGpu(const MappedModelDesc& model,
                                            const ModelMapping& mapping) const {
  const double params =
      model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
  if (mapping.backend != WorkerBackend::k3dParallel) {
    ZeroConfig zero{ZeroStage::kStage3, mapping.train.dp};
    return model.trainable ? ZeroTrainStateBytesPerGpu(params, zero)
                           : ZeroParamBytesPerGpu(params, zero);
  }
  return StateBytesPerGpu(model, mapping.train);
}

double DeviceMapper::StateBytesPerGpu(const MappedModelDesc& model,
                                      const ParallelConfig& cfg) const {
  const double params =
      model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
  const double mp = static_cast<double>(cfg.model_parallel_size());
  return (model.trainable ? ModelSpec::kTrainBytesPerParam : 2.0) * params / mp;
}

bool DeviceMapper::SetFits(const std::vector<int>& model_indices, int gpus) const {
  const double budget = node_template_.gpu.memory_bytes * options_.memory_fraction;
  double total = 0.0;
  for (int index : model_indices) {
    const MappedModelDesc& model = models_[static_cast<size_t>(index)];
    const double params =
        model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
    const double state = (model.trainable ? ModelSpec::kTrainBytesPerParam : 2.0) * params;
    // Best-case sharding: TP up to a node, PP up to the layer count.
    const double max_shards = std::min<double>(
        gpus, static_cast<double>(node_template_.gpus_per_node) *
                  static_cast<double>(model.spec.num_layers));
    total += state / std::min<double>(max_shards, gpus);
  }
  return total <= budget;
}

int DeviceMapper::MinAlloc(const std::vector<int>& model_indices, int num_gpus) const {
  for (int size : CandidateSizes(num_gpus)) {
    if (SetFits(model_indices, size)) {
      return size;
    }
  }
  return num_gpus + 1;  // Infeasible even with every GPU.
}

std::vector<int> DeviceMapper::CandidateSizes(int num_gpus) const {
  std::vector<int> sizes;
  if (num_gpus <= node_template_.gpus_per_node) {
    for (int s = 1; s <= num_gpus; s *= 2) {
      sizes.push_back(s);
    }
    if (sizes.back() != num_gpus) {
      sizes.push_back(num_gpus);
    }
    return sizes;
  }
  // Multi-node: sub-node slices of 2/4, then whole-node multiples.
  sizes = {2, 4};
  const int per_node = node_template_.gpus_per_node;
  for (int s = per_node; s <= num_gpus; s += per_node) {
    // Keep the list small: powers-of-two node counts plus halves.
    const int nodes = s / per_node;
    const bool keep = (nodes & (nodes - 1)) == 0 || nodes % 3 == 0 || s == num_gpus;
    if (keep) {
      sizes.push_back(s);
    }
  }
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

ModelMapping DeviceMapper::AutoParallel(const MappedModelDesc& model, int gpus,
                                        double reserved_bytes) {
  // Bucket reserved memory at 1 GiB so near-identical contexts share cache
  // entries.
  const int reserved_bucket = static_cast<int>(reserved_bytes / kGiB);
  const auto key = std::make_tuple(model.name, gpus, reserved_bucket);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    cache_hits_ += 1;
    return it->second;
  }

  const ClusterSpec cluster = ClusterSpec::WithGpus(gpus, node_template_.gpus_per_node);
  const std::vector<DeviceId> devices = Iota(gpus);
  PerfModel perf(model.spec, cluster, model.scalar_head, options_.perf);
  const double memory_budget =
      cluster.gpu.memory_bytes * options_.memory_fraction - reserved_bytes;

  ModelMapping best;
  double best_cost = std::numeric_limits<double>::infinity();
  const int max_tp = std::min(gpus, cluster.gpus_per_node);
  for (int tp = 1; tp <= max_tp; tp *= 2) {
    for (int pp = 1; tp * pp <= gpus && pp <= model.spec.num_layers; ++pp) {
      if (gpus % (tp * pp) != 0) {
        continue;
      }
      ParallelConfig cfg{pp, tp, gpus / (tp * pp)};
      if (StateBytesPerGpu(model, cfg) > memory_budget) {
        continue;
      }
      ModelMapping candidate;
      candidate.feasible = true;
      candidate.train = cfg;

      // Training stage: the per-iteration update schedule.
      if (model.trainable) {
        const int64_t minibatch = workload_.minibatch();
        const int microbatches = static_cast<int>(std::min<int64_t>(
            std::max<int64_t>(CeilDiv(minibatch, cfg.dp), 1), 4 * cfg.pp));
        simulations_ += 1;
        const double step = perf.TrainStepTime(cfg, devices, minibatch, workload_.total_len(),
                                               std::max(microbatches, 1));
        candidate.stage_seconds[static_cast<int>(RlhfStage::kTraining)] =
            step * workload_.ppo_epochs * workload_.updates_per_iteration;
      }

      // Preparation stage: one forward pass for non-actor models.
      if (!model.is_actor) {
        simulations_ += 1;
        candidate.stage_seconds[static_cast<int>(RlhfStage::kPreparation)] =
            perf.InferTime(cfg, devices, workload_.global_batch, workload_.total_len());
      }

      // Generation stage (actor only): sweep generation strategies.
      if (model.is_actor) {
        double best_gen = std::numeric_limits<double>::infinity();
        GenParallelConfig best_gen_cfg{cfg.pp, cfg.tp};
        for (int tg = 1; tg <= cfg.tp; tg *= 2) {
          if (cfg.tp % tg != 0) {
            continue;
          }
          for (int pg = 1; pg <= cfg.pp; pg *= 2) {
            if (cfg.pp % pg != 0) {
              continue;
            }
            GenParallelConfig gen{pg, tg};
            // Generation must hold params + some KVCache.
            const double gen_params = perf.GenParamBytesPerGpu(gen);
            const double resident = StateBytesPerGpu(model, cfg);
            const double extra = std::max(0.0, gen_params - 2.0 * perf.num_params() /
                                                   static_cast<double>(cfg.model_parallel_size()));
            const double kv_budget = memory_budget - resident - extra;  // Colocated models already subtracted.
            if (kv_budget <= 0.0) {
              continue;
            }
            HybridEngine engine(model.spec, cfg, gen, ActorEngineMode::kHybridFlow, cluster,
                                devices);
            const int replicas = engine.NumGenReplicas();
            const int64_t per_replica = CeilDiv(workload_.global_batch, replicas);
            simulations_ += 1;
            const GenTimeBreakdown breakdown = perf.GenerateTime(
                gen, engine.GenReplicaDevices(0), per_replica, workload_.prompt_len,
                workload_.response_len, kv_budget, /*use_kv_cache=*/true);
            double total = breakdown.total() + engine.TrainToGenTransition().seconds;
            if (options_.extra_generation_pass) {
              total += breakdown.total();
            }
            if (total < best_gen) {
              best_gen = total;
              best_gen_cfg = gen;
            }
          }
        }
        if (!std::isfinite(best_gen)) {
          continue;  // No generation strategy fits.
        }
        candidate.gen = best_gen_cfg;
        candidate.stage_seconds[static_cast<int>(RlhfStage::kGeneration)] = best_gen;
      }

      double cost = 0.0;
      for (double stage : candidate.stage_seconds) {
        cost += stage;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = candidate;
      }
    }
  }
  // ZeRO-3 data-parallel candidate (Table 1: HybridFlow also supports
  // ZeRO/FSDP training backends): often the best choice on small,
  // single-node allocations where full DP keeps kernels saturated.
  {
    ZeroConfig zero{ZeroStage::kStage3, gpus};
    const double params =
        model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
    const double state = model.trainable ? ZeroTrainStateBytesPerGpu(params, zero)
                                         : ZeroParamBytesPerGpu(params, zero);
    if (state <= memory_budget) {
      ModelMapping candidate;
      candidate.feasible = true;
      candidate.backend = WorkerBackend::kZero;
      candidate.train = ParallelConfig{1, 1, gpus};
      if (model.trainable) {
        simulations_ += 1;
        const double step =
            perf.ZeroTrainStepTime(zero, devices, workload_.minibatch(), workload_.total_len());
        candidate.stage_seconds[static_cast<int>(RlhfStage::kTraining)] =
            step * workload_.ppo_epochs * workload_.updates_per_iteration;
      }
      if (!model.is_actor) {
        simulations_ += 1;
        candidate.stage_seconds[static_cast<int>(RlhfStage::kPreparation)] =
            perf.ZeroInferTime(zero, devices, workload_.global_batch, workload_.total_len());
      }
      if (model.is_actor) {
        // ZeRO -> TP regrouping (DS-Chat-style engine) for generation.
        double best_gen = std::numeric_limits<double>::infinity();
        GenParallelConfig best_gen_cfg{1, 1};
        for (int tg = 1; tg <= std::min(gpus, cluster.gpus_per_node); tg *= 2) {
          if (gpus % tg != 0) {
            continue;
          }
          GenParallelConfig gen{1, tg};
          const double gen_params = perf.GenParamBytesPerGpu(gen);
          const double kv_budget = memory_budget - state - gen_params;
          if (kv_budget <= 0.0) {
            continue;
          }
          HybridEngine engine(model.spec, candidate.train, gen, ActorEngineMode::kDsChat,
                              cluster, devices);
          const int replicas = engine.NumGenReplicas();
          const int64_t per_replica = CeilDiv(workload_.global_batch, replicas);
          simulations_ += 1;
          const GenTimeBreakdown breakdown = perf.GenerateTime(
              gen, engine.GenReplicaDevices(0), per_replica, workload_.prompt_len,
              workload_.response_len, kv_budget, /*use_kv_cache=*/true);
          double total = breakdown.total() + engine.TrainToGenTransition().seconds;
          if (options_.extra_generation_pass) {
            total += breakdown.total();
          }
          if (total < best_gen) {
            best_gen = total;
            best_gen_cfg = gen;
          }
        }
        if (std::isfinite(best_gen)) {
          candidate.gen = best_gen_cfg;
          candidate.stage_seconds[static_cast<int>(RlhfStage::kGeneration)] = best_gen;
        } else {
          candidate.feasible = false;
        }
      }
      if (candidate.feasible) {
        double cost = 0.0;
        for (double stage : candidate.stage_seconds) {
          cost += stage;
        }
        if (cost < best_cost) {
          best_cost = cost;
          best = candidate;
        }
      }
    }
  }

  // An infeasible (model, gpus) pair is cached too, so repeated placements
  // skip it cheaply.
  cache_.emplace(key, best);
  return best;
}

std::vector<std::vector<std::vector<int>>> DeviceMapper::AllPartitions(
    PlacementKind kind) const {
  const int k = static_cast<int>(models_.size());
  std::vector<std::vector<std::vector<int>>> partitions;
  if (kind == PlacementKind::kColocate) {
    std::vector<int> all(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      all[static_cast<size_t>(i)] = i;
    }
    partitions.push_back({all});
    return partitions;
  }
  if (kind == PlacementKind::kStandalone) {
    std::vector<std::vector<int>> sets;
    for (int i = 0; i < k; ++i) {
      sets.push_back({i});
    }
    partitions.push_back(sets);
    return partitions;
  }
  if (kind == PlacementKind::kSplit) {
    // {actor, reference} on one set, everything else on the other.
    std::vector<int> first;
    std::vector<int> second;
    for (int i = 0; i < k; ++i) {
      const MappedModelDesc& model = models_[static_cast<size_t>(i)];
      if (model.is_actor || model.name.rfind("ref", 0) == 0) {
        first.push_back(i);
      } else {
        second.push_back(i);
      }
    }
    HF_CHECK(!first.empty());
    HF_CHECK(!second.empty());
    partitions.push_back({first, second});
    return partitions;
  }
  // kAuto: all set partitions via restricted growth strings.
  std::vector<int> assignment(static_cast<size_t>(k), 0);
  std::function<void(int, int)> recurse = [&](int index, int max_label) {
    if (index == k) {
      int num_sets = max_label;
      std::vector<std::vector<int>> sets(static_cast<size_t>(num_sets));
      for (int i = 0; i < k; ++i) {
        sets[static_cast<size_t>(assignment[static_cast<size_t>(i)])].push_back(i);
      }
      partitions.push_back(std::move(sets));
      return;
    }
    for (int label = 0; label <= max_label; ++label) {
      assignment[static_cast<size_t>(index)] = label;
      recurse(index + 1, std::max(max_label, label + 1));
    }
  };
  recurse(0, 0);
  return partitions;
}

void DeviceMapper::EnumerateAllocations(const std::vector<int>& min_alloc, int num_gpus,
                                        const std::vector<int>& sizes,
                                        std::vector<std::vector<int>>* out) const {
  std::vector<int> current(min_alloc.size(), 0);
  std::function<void(size_t, int)> recurse = [&](size_t set, int remaining) {
    if (set == min_alloc.size()) {
      if (remaining == 0) {
        out->push_back(current);
      }
      return;
    }
    // Remaining sets need at least their minimum.
    int tail_min = 0;
    for (size_t s = set + 1; s < min_alloc.size(); ++s) {
      tail_min += min_alloc[s];
    }
    for (int size : sizes) {
      if (size < min_alloc[set] || size + tail_min > remaining) {
        continue;
      }
      current[set] = size;
      recurse(set + 1, remaining - size);
    }
  };
  recurse(0, num_gpus);
}

MappingResult DeviceMapper::Map(int num_gpus, PlacementKind kind) {
  const auto start = std::chrono::steady_clock::now();
  MappingResult best;
  best.est_iteration_seconds = std::numeric_limits<double>::infinity();

  const std::vector<int> sizes = CandidateSizes(num_gpus);
  for (const std::vector<std::vector<int>>& partition : AllPartitions(kind)) {
    best.placements_examined += 1;
    // get_min_alloc per colocated set.
    std::vector<int> min_alloc;
    bool feasible = true;
    for (const std::vector<int>& set : partition) {
      const int min = MinAlloc(set, num_gpus);
      if (min > num_gpus) {
        feasible = false;
        break;
      }
      min_alloc.push_back(min);
    }
    if (!feasible) {
      continue;
    }

    std::vector<std::vector<int>> allocations;
    EnumerateAllocations(min_alloc, num_gpus, sizes, &allocations);
    for (const std::vector<int>& allocation : allocations) {
      // auto_parallel per model; d_cost over stages.
      std::vector<std::vector<ModelMapping>> mapped(partition.size());
      bool allocation_ok = true;
      double set_state_bytes = 0.0;
      for (size_t s = 0; s < partition.size() && allocation_ok; ++s) {
        set_state_bytes = 0.0;
        // Pass 1: non-actor models choose their strategies under a memory
        // budget proportional to their share of the set's total state, so
        // colocated models cannot each claim the whole GPU (Algorithm 2's
        // colocation-aware minimal parallel sizes).
        double set_total_state = 0.0;
        for (int index : partition[s]) {
          const MappedModelDesc& model = models_[static_cast<size_t>(index)];
          const double params =
              model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
          set_total_state +=
              (model.trainable ? ModelSpec::kTrainBytesPerParam : 2.0) * params;
        }
        const double budget = node_template_.gpu.memory_bytes * options_.memory_fraction;
        int actor_slot = -1;
        for (int index : partition[s]) {
          const MappedModelDesc& model = models_[static_cast<size_t>(index)];
          if (model.is_actor) {
            actor_slot = static_cast<int>(mapped[s].size());
            mapped[s].push_back(ModelMapping{});
            continue;
          }
          const double params =
              model.scalar_head ? model.spec.NumParamsScalarHead() : model.spec.NumParams();
          const double state =
              (model.trainable ? ModelSpec::kTrainBytesPerParam : 2.0) * params;
          const double share = partition[s].size() == 1 ? 1.0 : state / set_total_state;
          const ModelMapping mapping =
              AutoParallel(model, allocation[s], budget * (1.0 - share));
          if (!mapping.feasible) {
            allocation_ok = false;
            break;
          }
          set_state_bytes += MappedStateBytesPerGpu(model, mapping);
          mapped[s].push_back(mapping);
        }
        // Pass 2: the actor sees the colocated models' memory, which
        // constrains its parallelism and KVCache budget (Algorithm 2).
        if (allocation_ok && actor_slot >= 0) {
          const MappedModelDesc& model = models_[static_cast<size_t>(
              partition[s][static_cast<size_t>(actor_slot)])];
          const ModelMapping mapping =
              AutoParallel(model, allocation[s], set_state_bytes);
          if (!mapping.feasible) {
            allocation_ok = false;
          } else {
            set_state_bytes += MappedStateBytesPerGpu(model, mapping);
            mapped[s][static_cast<size_t>(actor_slot)] = mapping;
          }
        }
        if (set_state_bytes > node_template_.gpu.memory_bytes * options_.memory_fraction) {
          allocation_ok = false;
        }
      }
      if (!allocation_ok) {
        continue;
      }

      // d_cost: stage latency = max over sets of the set's model-sum.
      double stage_total = 0.0;
      for (int stage = 0; stage < kNumStages; ++stage) {
        double stage_max = 0.0;
        for (size_t s = 0; s < partition.size(); ++s) {
          double set_sum = 0.0;
          for (const ModelMapping& mapping : mapped[s]) {
            set_sum += mapping.stage_seconds[stage];
          }
          stage_max = std::max(stage_max, set_sum);
        }
        stage_total += stage_max;
      }

      if (stage_total < best.est_iteration_seconds) {
        best.feasible = true;
        best.est_iteration_seconds = stage_total;
        best.sets.clear();
        best.models.clear();
        int first_device = 0;
        for (size_t s = 0; s < partition.size(); ++s) {
          ColocatedSetResult set_result;
          set_result.model_indices = partition[s];
          set_result.gpus = allocation[s];
          set_result.first_device = first_device;
          first_device += allocation[s];
          best.sets.push_back(set_result);
          for (size_t m = 0; m < partition[s].size(); ++m) {
            const MappedModelDesc& model =
                models_[static_cast<size_t>(partition[s][m])];
            best.sets.back().model_names.push_back(model.name);
            best.models[model.name] = mapped[s][m];
          }
        }
      }
    }
  }

  best.simulations = simulations_;
  best.cache_hits = cache_hits_;
  best.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  HF_LOG(kInfo) << "Map(" << num_gpus << ", " << PlacementKindName(kind) << "): "
                << (best.feasible ? "feasible" : "INFEASIBLE") << ", est "
                << best.est_iteration_seconds << " s/iter, " << best.placements_examined
                << " placements, " << best.simulations << " simulations";
  return best;
}

}  // namespace hybridflow
