// Auto device mapping (§6, Algorithm 1) and auto-parallelism search
// (Appendix C, Algorithm 2).
//
// Given the RLHF dataflow's models, a workload, and a cluster, the mapper:
//   1. enumerates all placements — set partitions of the model list
//     (15 for PPO's four models, from the Bell partition problem);
//   2. computes the minimum GPU allocation of each colocated set from the
//      models' memory footprints (get_min_alloc);
//   3. enumerates feasible device allocations (integer compositions of N
//      over the colocated sets, quantized to hardware-friendly sizes);
//   4. for each model and allocation runs auto_parallel, sweeping (p, t, d)
//      with the analytical simulators and caching per (model, A);
//   5. estimates end-to-end iteration latency with d_cost: per stage, the
//      latency of a colocated set is the SUM over its models (time-
//      sharing), the latency of the stage is the MAX over sets (parallel
//      execution), and the iteration is the sum over stages.
#ifndef SRC_MAPPING_DEVICE_MAPPER_H_
#define SRC_MAPPING_DEVICE_MAPPER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/model/model_spec.h"
#include "src/parallel/parallel_config.h"
#include "src/perf/perf_model.h"
#include "src/sim/topology.h"
#include "src/workers/worker_group.h"
#include "src/workers/workload.h"

namespace hybridflow {

// One model (node) of the RLHF dataflow graph.
struct MappedModelDesc {
  std::string name;
  ModelSpec spec;
  bool trainable = false;
  bool scalar_head = false;
  bool is_actor = false;  // Runs generation; needs a generation strategy.
};

// The three dataflow stages of §2.1.
enum class RlhfStage {
  kGeneration = 0,
  kPreparation = 1,
  kTraining = 2,
};
inline constexpr int kNumStages = 3;

struct ModelMapping {
  bool feasible = false;
  ParallelConfig train;
  GenParallelConfig gen;      // Meaningful only for the actor.
  // Training/inference backend (Table 1: HybridFlow supports 3D, ZeRO, and
  // FSDP): Algorithm 2 also evaluates a ZeRO-3 data-parallel candidate,
  // which wins on small intra-node allocations.
  WorkerBackend backend = WorkerBackend::k3dParallel;
  double stage_seconds[kNumStages] = {0.0, 0.0, 0.0};
};

struct ColocatedSetResult {
  std::vector<int> model_indices;
  std::vector<std::string> model_names;
  int gpus = 0;
  int first_device = 0;  // Device range [first_device, first_device + gpus).
};

struct MappingResult {
  bool feasible = false;
  std::vector<ColocatedSetResult> sets;
  std::map<std::string, ModelMapping> models;  // By model name.
  double est_iteration_seconds = 0.0;
  // Search statistics (Fig. 16).
  int64_t simulations = 0;
  int64_t cache_hits = 0;
  int64_t placements_examined = 0;
  double wall_seconds = 0.0;

  // The colocated-set index a model landed in, by name.
  int SetOf(const std::string& name) const;
};

// Named canonical placements for the §8.3 comparison.
enum class PlacementKind {
  kAuto,        // Algorithm 1 output.
  kColocate,    // All models on all GPUs (DeepSpeed-Chat).
  kStandalone,  // Every model on its own devices (OpenRLHF).
  kSplit,       // {actor, ref} / {critic, reward(, cost)} (NeMo-Aligner).
};

const char* PlacementKindName(PlacementKind kind);

struct MapperOptions {
  PerfParams perf;
  // Fraction of device memory usable by model state (rest: activations,
  // KVCache headroom).
  double memory_fraction = 0.85;
  // Extra generation pass (ReMax).
  bool extra_generation_pass = false;
};

class DeviceMapper {
 public:
  DeviceMapper(std::vector<MappedModelDesc> models, RlhfWorkloadSpec workload,
               ClusterSpec node_template, MapperOptions options = MapperOptions());

  // Algorithm 1 over `num_gpus` devices. With kind != kAuto, restricts the
  // placement search to that canonical partition (allocation and
  // parallelism are still optimized).
  MappingResult Map(int num_gpus, PlacementKind kind = PlacementKind::kAuto);

  // Algorithm 2: best (p, t, d) for `model` on `gpus` devices, and for the
  // actor additionally the best generation strategy. `reserved_bytes` is
  // the per-GPU memory held by colocated models, which shrinks this
  // model's memory budget and (for the actor) its KVCache headroom —
  // Algorithm 2's "prevent OOM when colocating with multiple workers".
  ModelMapping AutoParallel(const MappedModelDesc& model, int gpus, double reserved_bytes = 0.0);

  // Minimum GPUs for a colocated set (get_min_alloc).
  int MinAlloc(const std::vector<int>& model_indices, int num_gpus) const;

 private:
  double StateBytesPerGpu(const MappedModelDesc& model, const ParallelConfig& cfg) const;
  double MappedStateBytesPerGpu(const MappedModelDesc& model, const ModelMapping& mapping) const;
  bool SetFits(const std::vector<int>& model_indices, int gpus) const;
  std::vector<int> CandidateSizes(int num_gpus) const;
  std::vector<std::vector<std::vector<int>>> AllPartitions(PlacementKind kind) const;
  void EnumerateAllocations(const std::vector<int>& min_alloc, int num_gpus,
                            const std::vector<int>& sizes,
                            std::vector<std::vector<int>>* out) const;
  double StageCost(const ModelMapping& mapping, RlhfStage stage) const;

  std::vector<MappedModelDesc> models_;
  RlhfWorkloadSpec workload_;
  ClusterSpec node_template_;
  MapperOptions options_;
  // Cache: (model name, gpus, reserved-memory bucket) -> mapping (§6's
  // parallelism-strategy cache).
  std::map<std::tuple<std::string, int, int>, ModelMapping> cache_;
  int64_t simulations_ = 0;
  int64_t cache_hits_ = 0;
};

}  // namespace hybridflow

#endif  // SRC_MAPPING_DEVICE_MAPPER_H_
