// 3D-HybridEngine (§5): efficient actor-model resharding between the
// training and generation stages executed on the same devices.
//
// The engine owns the actor's training parallel groups (p-t-d) and its
// generation regrouping (p_g-t_g-d_g-d). On each training->generation
// transition it performs concurrent all-gathers, one per micro DP group,
// and accounts per-GPU communication volume, peak parameter memory, and
// weight redundancy. Three engine designs are supported for comparison:
//
//   kDsChat       full all-gather across all N GPUs (ZeRO-style engine)
//   kHybridFlowV  all-gather within training TP x PP groups (vanilla
//                 generation grouping)
//   kHybridFlow   all-gather within micro DP groups (zero-redundancy
//                 grouping, §5.3)
//   kShared       identical parallelism in both stages (NeMo-Aligner):
//                 no transition at all
//   kTwoCopies    separate generation devices holding a second weight copy
//                 synchronized each iteration (OpenRLHF)
//
// The accounting must match Table 2 exactly; property tests enforce this.
#ifndef SRC_HYBRIDENGINE_HYBRID_ENGINE_H_
#define SRC_HYBRIDENGINE_HYBRID_ENGINE_H_

#include <string>
#include <vector>

#include "src/model/model_spec.h"
#include "src/parallel/process_groups.h"
#include "src/parallel/shard_range.h"
#include "src/sim/timeline.h"

namespace hybridflow {

enum class ActorEngineMode {
  kDsChat,
  kHybridFlowV,
  kHybridFlow,
  kShared,
  kTwoCopies,
};

const char* ActorEngineModeName(ActorEngineMode mode);

struct TransitionStats {
  // Per-GPU bytes moved over the wire during the transition (the Table 2
  // "Comm. Vol" row; worst GPU).
  double comm_bytes_per_gpu = 0.0;
  // Peak per-GPU parameter memory during the transition ("Peak Mem.").
  double peak_param_bytes = 0.0;
  // Extra training-weight copy retained during generation ("Redundancy").
  double redundant_bytes = 0.0;
  // Wall-clock transition latency on the simulated cluster.
  double seconds = 0.0;
};

class HybridEngine {
 public:
  // `devices` maps actor training rank -> device (rank-major). For
  // kTwoCopies, `gen_devices` holds the separate generation devices.
  HybridEngine(const ModelSpec& model, const ParallelConfig& train, const GenParallelConfig& gen,
               ActorEngineMode mode, const ClusterSpec& cluster, std::vector<DeviceId> devices,
               std::vector<DeviceId> gen_devices = {});

  ActorEngineMode mode() const { return mode_; }
  const ProcessGroups& groups() const { return groups_; }
  const GenParallelConfig& gen_config() const { return gen_; }
  GenGroupingMethod grouping() const;

  // Number of generation model replicas (d * d_g for resharding engines,
  // d for kShared, gen-device count / (pg*tg) for kTwoCopies).
  int NumGenReplicas() const;
  // Devices of one generation replica (the representative first replica).
  std::vector<DeviceId> GenReplicaDevices(int replica) const;

  // Accounting + latency for the training -> generation transition.
  TransitionStats TrainToGenTransition() const;
  // Generation -> training re-partition (step 4 of Fig. 7): frees gathered
  // weights; for kTwoCopies this is a no-op (weights live apart).
  TransitionStats GenToTrainTransition() const;

  // --- Table 2 closed forms (fractions of model size M) ----------------------
  static double DsChatCommFraction(const ParallelConfig& train);
  static double HybridFlowVCommFraction(const ParallelConfig& train);
  static double HybridFlowCommFraction(const ParallelConfig& train, const GenParallelConfig& gen);
  static double DsChatRedundancyFraction(const ParallelConfig& train);
  static double HybridFlowVRedundancyFraction(const ParallelConfig& train);
  static double HybridFlowPeakFraction(const GenParallelConfig& gen);

 private:
  ModelSpec model_;
  ParallelConfig train_;
  GenParallelConfig gen_;
  ActorEngineMode mode_;
  ClusterSpec cluster_;
  ProcessGroups groups_;
  std::vector<DeviceId> gen_devices_;
  double model_bytes_;
};

}  // namespace hybridflow

#endif  // SRC_HYBRIDENGINE_HYBRID_ENGINE_H_
