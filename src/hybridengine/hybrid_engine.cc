#include "src/hybridengine/hybrid_engine.h"

#include <algorithm>
#include <utility>

#include "src/obs/trace.h"
#include "src/sim/collective.h"

namespace hybridflow {

const char* ActorEngineModeName(ActorEngineMode mode) {
  switch (mode) {
    case ActorEngineMode::kDsChat:
      return "ds-chat";
    case ActorEngineMode::kHybridFlowV:
      return "hybridflow-v";
    case ActorEngineMode::kHybridFlow:
      return "hybridflow";
    case ActorEngineMode::kShared:
      return "shared";
    case ActorEngineMode::kTwoCopies:
      return "two-copies";
  }
  return "?";
}

HybridEngine::HybridEngine(const ModelSpec& model, const ParallelConfig& train,
                           const GenParallelConfig& gen, ActorEngineMode mode,
                           const ClusterSpec& cluster, std::vector<DeviceId> devices,
                           std::vector<DeviceId> gen_devices)
    : model_(model),
      train_(train),
      gen_(gen),
      mode_(mode),
      cluster_(cluster),
      groups_(train, std::move(devices)),
      gen_devices_(std::move(gen_devices)),
      model_bytes_(model.ParamBytes()) {
  if (mode_ == ActorEngineMode::kShared) {
    HF_CHECK_MSG(gen_.pp == train_.pp && gen_.tp == train_.tp,
                 "kShared requires identical training and generation parallelism");
  } else if (mode_ == ActorEngineMode::kDsChat || mode_ == ActorEngineMode::kTwoCopies) {
    // ZeRO-trained engines re-partition across the whole allocation (or a
    // separate one); the only requirement is that generation replicas tile
    // their device set.
    const int span = gen_.pp * gen_.tp;
    const int total = mode_ == ActorEngineMode::kTwoCopies
                          ? static_cast<int>(gen_devices_.size())
                          : groups_.world_size();
    HF_CHECK_MSG(total % span == 0, "generation strategy " << gen_.ToString()
                                                           << " does not tile " << total
                                                           << " GPUs");
  } else {
    HF_CHECK(GenConfigCompatible(train_, gen_));
  }
  if (mode_ == ActorEngineMode::kTwoCopies) {
    HF_CHECK_MSG(!gen_devices_.empty(), "kTwoCopies requires separate generation devices");
    HF_CHECK_EQ(static_cast<int>(gen_devices_.size()) % (gen_.pp * gen_.tp), 0);
  }
}

GenGroupingMethod HybridEngine::grouping() const {
  return mode_ == ActorEngineMode::kHybridFlow ? GenGroupingMethod::kZeroRedundancy
                                               : GenGroupingMethod::kVanilla;
}

int HybridEngine::NumGenReplicas() const {
  switch (mode_) {
    case ActorEngineMode::kShared:
      return train_.dp;
    case ActorEngineMode::kTwoCopies:
      return static_cast<int>(gen_devices_.size()) / (gen_.pp * gen_.tp);
    case ActorEngineMode::kDsChat:
      // ZeRO -> TP regrouping tiles the whole allocation.
      return groups_.world_size() / (gen_.pp * gen_.tp);
    default:
      return train_.dp * MicroDpSize(train_, gen_);
  }
}

std::vector<DeviceId> HybridEngine::GenReplicaDevices(int replica) const {
  HF_CHECK_GE(replica, 0);
  HF_CHECK_LT(replica, NumGenReplicas());
  switch (mode_) {
    case ActorEngineMode::kShared: {
      return groups_.DevicesOf(groups_.ModelParallelBlock(groups_.RankOf({0, 0, replica})));
    }
    case ActorEngineMode::kTwoCopies: {
      const int span = gen_.pp * gen_.tp;
      std::vector<DeviceId> devices(
          gen_devices_.begin() + static_cast<size_t>(replica) * span,
          gen_devices_.begin() + static_cast<size_t>(replica + 1) * span);
      return devices;
    }
    case ActorEngineMode::kDsChat: {
      const int span = gen_.pp * gen_.tp;
      std::vector<int> ranks;
      ranks.reserve(static_cast<size_t>(span));
      for (int i = 0; i < span; ++i) {
        ranks.push_back(replica * span + i);
      }
      return groups_.DevicesOf(ranks);
    }
    default: {
      const int micro_dp = MicroDpSize(train_, gen_);
      const int d = replica / micro_dp;
      const int m = replica % micro_dp;
      std::vector<int> ranks;
      ranks.reserve(static_cast<size_t>(gen_.pp * gen_.tp));
      for (int pg = 0; pg < gen_.pp; ++pg) {
        for (int tg = 0; tg < gen_.tp; ++tg) {
          ranks.push_back(groups_.RankOfGen({pg, tg, m, d}, gen_, grouping()));
        }
      }
      return groups_.DevicesOf(ranks);
    }
  }
}

TransitionStats HybridEngine::TrainToGenTransition() const {
  HF_TRACE_SCOPE("hybrid_engine.train_to_gen", "reshard");
  TransitionStats stats;
  switch (mode_) {
    case ActorEngineMode::kShared: {
      return stats;  // Same weights, no resharding.
    }
    case ActorEngineMode::kDsChat: {
      // ZeRO-3 engine: all-gather the full model across all N GPUs, then
      // re-partition for generation (§5.4).
      const int n = groups_.world_size();
      stats.comm_bytes_per_gpu = AllGatherWireBytesPerRank(n, model_bytes_);
      stats.peak_param_bytes = model_bytes_;
      stats.redundant_bytes = model_bytes_ / static_cast<double>(n);
      std::vector<int> all_ranks(static_cast<size_t>(n));
      for (int rank = 0; rank < n; ++rank) {
        all_ranks[static_cast<size_t>(rank)] = rank;
      }
      stats.seconds = AllGatherTime(cluster_, groups_.DevicesOf(all_ranks), model_bytes_);
      return stats;
    }
    case ActorEngineMode::kHybridFlowV: {
      // All-gather within the training TP x PP groups; vanilla generation
      // grouping retains no guaranteed overlap with training shards.
      if (MicroDpSize(train_, gen_) == 1) {
        return stats;  // Identical partition in both stages: nothing to move.
      }
      const int mp = train_.model_parallel_size();
      stats.comm_bytes_per_gpu = AllGatherWireBytesPerRank(mp, model_bytes_);
      stats.peak_param_bytes = model_bytes_;
      double worst_redundant = 0.0;
      for (int rank = 0; rank < groups_.world_size(); ++rank) {
        const ReshardMemoryProfile profile =
            ComputeReshardMemory(groups_, rank, gen_, GenGroupingMethod::kVanilla);
        worst_redundant = std::max(worst_redundant, profile.redundant_fraction);
      }
      stats.redundant_bytes = worst_redundant * model_bytes_;
      stats.seconds = AllGatherTime(
          cluster_, groups_.DevicesOf(groups_.ModelParallelBlock(0)), model_bytes_);
      return stats;
    }
    case ActorEngineMode::kHybridFlow: {
      // Concurrent all-gathers, one per micro DP group, of the generation
      // shard (§5.3). Zero redundancy by construction — verified here.
      const int micro_dp = MicroDpSize(train_, gen_);
      const double gen_shard_bytes =
          model_bytes_ / static_cast<double>(gen_.pp * gen_.tp);
      stats.comm_bytes_per_gpu = AllGatherWireBytesPerRank(micro_dp, gen_shard_bytes);
      stats.peak_param_bytes = gen_shard_bytes;
      for (int rank = 0; rank < groups_.world_size(); ++rank) {
        const ReshardMemoryProfile profile =
            ComputeReshardMemory(groups_, rank, gen_, GenGroupingMethod::kZeroRedundancy);
        HF_CHECK_MSG(profile.redundant_fraction < 1e-9,
                     "zero-redundancy grouping produced redundancy at rank " << rank);
      }
      stats.redundant_bytes = 0.0;
      double worst_seconds = 0.0;
      for (int rank = 0; rank < groups_.world_size(); ++rank) {
        const std::vector<int> group =
            groups_.MicroDpGroup(rank, gen_, GenGroupingMethod::kZeroRedundancy);
        worst_seconds = std::max(
            worst_seconds, AllGatherTime(cluster_, groups_.DevicesOf(group), gen_shard_bytes));
      }
      stats.seconds = worst_seconds;
      return stats;
    }
    case ActorEngineMode::kTwoCopies: {
      // OpenRLHF: broadcast updated training weights to the standalone
      // generation copy each iteration.
      stats.comm_bytes_per_gpu = model_bytes_;
      stats.peak_param_bytes =
          model_bytes_ / static_cast<double>(gen_.pp * gen_.tp);
      stats.redundant_bytes = stats.peak_param_bytes;  // The full second copy.
      std::vector<DeviceId> participants;
      participants.push_back(groups_.DeviceOf(0));
      participants.insert(participants.end(), gen_devices_.begin(), gen_devices_.end());
      stats.seconds = BroadcastTime(cluster_, participants, model_bytes_);
      return stats;
    }
  }
  return stats;
}

TransitionStats HybridEngine::GenToTrainTransition() const {
  // Re-partitioning for training (step 4 of Fig. 7) is local: each GPU
  // frees the gathered generation weights and keeps its training shard. No
  // communication is required for any engine design.
  return TransitionStats{};
}

double HybridEngine::DsChatCommFraction(const ParallelConfig& train) {
  const double n = static_cast<double>(train.world_size());
  return (n - 1.0) / n;
}

double HybridEngine::HybridFlowVCommFraction(const ParallelConfig& train) {
  const double mp = static_cast<double>(train.model_parallel_size());
  return (mp - 1.0) / mp;
}

double HybridEngine::HybridFlowCommFraction(const ParallelConfig& train,
                                            const GenParallelConfig& gen) {
  const double tp = static_cast<double>(train.model_parallel_size());
  const double gp = static_cast<double>(gen.pp * gen.tp);
  return (tp - gp) / (gp * tp);
}

double HybridEngine::DsChatRedundancyFraction(const ParallelConfig& train) {
  return 1.0 / static_cast<double>(train.world_size());
}

double HybridEngine::HybridFlowVRedundancyFraction(const ParallelConfig& train) {
  return 1.0 / static_cast<double>(train.model_parallel_size());
}

double HybridEngine::HybridFlowPeakFraction(const GenParallelConfig& gen) {
  return 1.0 / static_cast<double>(gen.pp * gen.tp);
}

}  // namespace hybridflow
