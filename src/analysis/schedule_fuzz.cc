#include "src/analysis/schedule_fuzz.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

namespace hybridflow {

namespace {

// SplitMix64: tiny, stateless-seedable, and not libc rand() — every
// decision is a pure function of (seed, ordinal, step).
uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct FuzzThreadState {
  uint64_t epoch = 0;  // 0 = never seeded (global epoch starts at 1).
  uint64_t rng = 0;
  bool capturing = false;
  std::vector<ScheduleFuzzer::Injection> trace;
};

FuzzThreadState& Tls() {
  thread_local FuzzThreadState tls;
  return tls;
}

}  // namespace

ScheduleFuzzer& ScheduleFuzzer::Global() {
  // Intentionally leaked: injection sites may run during static destruction.
  static ScheduleFuzzer* fuzzer = new ScheduleFuzzer();  // hflint: allow(naked-new)
  return *fuzzer;
}

ScheduleFuzzer::ScheduleFuzzer() {
  uint64_t seed = 0;
  if (ParseSeed(std::getenv("HF_SCHEDULE_FUZZ"), &seed)) {
    EnableWithSeed(seed);
  }
}

bool ScheduleFuzzer::ParseSeed(const char* text, uint64_t* seed) {
  if (text == nullptr || text[0] == '\0') {
    return false;
  }
  // strtoull tolerates leading whitespace and a sign ("-1" wraps to
  // ULLONG_MAX); a seed must be digits only, so reject those up front.
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') {
    return false;  // Not a plain non-negative decimal: treated as unset.
  }
  *seed = static_cast<uint64_t>(value);
  return true;
}

void ScheduleFuzzer::EnableWithSeed(uint64_t seed) {
  seed_.store(seed, std::memory_order_relaxed);
  next_ordinal_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void ScheduleFuzzer::Disable() { enabled_.store(false, std::memory_order_release); }

void ScheduleFuzzer::Inject(Site site) {
  FuzzThreadState& tls = Tls();
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls.epoch != epoch) {
    tls.epoch = epoch;
    const uint64_t ordinal = next_ordinal_.fetch_add(1, std::memory_order_relaxed);
    // Decorrelate per-thread streams: golden-ratio spacing in seed space.
    tls.rng = seed_.load(std::memory_order_relaxed) ^
              ((ordinal + 1) * 0x9e3779b97f4a7c15ULL);
  }
  const uint64_t draw = SplitMix64Next(tls.rng);
  Injection injection{site, Action::kNone, 0};
  switch (draw & 15) {
    case 12:
    case 13:
      injection.action = Action::kYield;
      break;
    case 14:
    case 15:
      injection.action = Action::kSleep;
      // 1..50us: long enough to reorder wakeups, short enough that the
      // 3-seed gate phase stays minutes, not hours, under TSan.
      injection.sleep_us = static_cast<uint32_t>(1 + ((draw >> 8) % 50));
      break;
    default:
      break;  // 12/16: no perturbation at this site.
  }
  if (tls.capturing) {
    tls.trace.push_back(injection);
  }
  if (injection.action == Action::kYield) {
    std::this_thread::yield();
  } else if (injection.action == Action::kSleep) {
    std::this_thread::sleep_for(std::chrono::microseconds(injection.sleep_us));
  }
}

void ScheduleFuzzer::StartCaptureForCurrentThread() {
  FuzzThreadState& tls = Tls();
  tls.capturing = true;
  tls.trace.clear();
}

std::vector<ScheduleFuzzer::Injection> ScheduleFuzzer::StopCaptureForCurrentThread() {
  FuzzThreadState& tls = Tls();
  tls.capturing = false;
  return std::move(tls.trace);
}

}  // namespace hybridflow
