// Static analysis of executed simulation timelines.
//
// The DES performance plane is only trustworthy if its traces are
// physically consistent: a device never computes two things at once, time
// never runs backwards, operations never start before their inputs exist,
// and grouped operations stay inside the process group (resource pool)
// that owns them. TimelineChecker replays a recorded trace and verifies
// those invariants after the fact — a "race detector" for simulated
// schedules. Tests run it over every RLHF example dataflow; a violation
// means the scheduler (not the workload) is buggy.
//
// The checker is pure and side-effect free: it consumes the TraceSpan
// stream recorded by ClusterState / DesExecutor and reports violations
// instead of aborting, so negative tests can assert on specific findings.
#ifndef SRC_ANALYSIS_TIMELINE_CHECKER_H_
#define SRC_ANALYSIS_TIMELINE_CHECKER_H_

#include <string>
#include <vector>

#include "src/sim/timeline.h"
#include "src/sim/topology.h"

namespace hybridflow {

enum class TimelineViolationKind {
  kBadTime,           // Negative/NaN start, or end < start.
  kStartBeforeReady,  // Span starts before its inputs were available.
  kUnknownDevice,     // Device id outside the cluster.
  kDeviceOverlap,     // Two spans occupy one device at the same instant.
  kIdleInconsistency, // Start disagrees with greedy list scheduling.
  kGroupNotCovered,   // Grouped op touches devices outside every registered group.
};

const char* TimelineViolationKindName(TimelineViolationKind kind);

struct TimelineViolation {
  TimelineViolationKind kind;
  // Index into the checked trace of the offending span (the later span for
  // overlaps); -1 when not tied to a single span.
  int span_index = -1;
  DeviceId device = -1;  // Offending device, when device-specific.
  std::string message;
};

struct TimelineCheckOptions {
  // Verify start == max(ready, device-group free time) under greedy
  // list scheduling (exact for ClusterState traces recorded in submission
  // order from t=0). Disable for executors with other queueing disciplines
  // (e.g. DesExecutor's per-device FIFOs) or for mid-run trace fragments.
  bool check_list_scheduling = true;
  // Require every non-transfer span's devices to lie inside a single
  // registered group. Only meaningful after RegisterGroup calls.
  bool check_group_coverage = true;
  // Slack for floating-point comparisons, seconds of virtual time. Spans on
  // one device abut exactly by construction, so 0 is correct; a tiny slack
  // keeps the checker robust to future schedulers that recompute times.
  double epsilon = 1e-12;
};

class TimelineChecker {
 public:
  explicit TimelineChecker(const ClusterSpec& spec, TimelineCheckOptions options = {});

  // Declares a legal device group (a resource pool or process group);
  // grouped spans must be covered by exactly one of these.
  void RegisterGroup(const std::string& name, std::vector<DeviceId> devices);

  // Replays `trace` (in recorded order) and returns every violation found.
  std::vector<TimelineViolation> Check(const std::vector<TraceSpan>& trace) const;
  // Convenience over a cluster's recorded trace.
  std::vector<TimelineViolation> Check(const ClusterState& state) const;

  const TimelineCheckOptions& options() const { return options_; }

 private:
  struct Group {
    std::string name;
    std::vector<DeviceId> devices;  // Sorted.
  };

  bool CoveredByOneGroup(const std::vector<DeviceId>& devices) const;

  ClusterSpec spec_;
  TimelineCheckOptions options_;
  std::vector<Group> groups_;
};

// Human-readable one-line-per-violation report ("" when clean).
std::string FormatViolations(const std::vector<TimelineViolation>& violations);

// Bit-exact comparison of two traces (the determinism harness): returns ""
// when identical, otherwise a description of the first mismatch. Times are
// compared with ==, not a tolerance — re-running the same program must
// reproduce the identical schedule.
std::string CompareTraces(const std::vector<TraceSpan>& a, const std::vector<TraceSpan>& b);

}  // namespace hybridflow

#endif  // SRC_ANALYSIS_TIMELINE_CHECKER_H_
