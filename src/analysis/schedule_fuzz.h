// Seeded schedule perturbation at annotated synchronization points.
//
// TSan only sees the interleavings that actually happen, and a quiet CI
// box settles into very few of them. When HF_SCHEDULE_FUZZ=<seed> is set
// (or a test calls EnableWithSeed), the annotated primitives inject
// deterministic, seed-derived yields and short sleeps at three sites —
// Mutex::Lock (before acquisition), CondVar::Wait wakeups, and ThreadPool
// task pickup — so a sanitizer run explores many more schedules.
//
// Determinism contract: every thread draws from its own SplitMix64 stream
// seeded by (seed, thread ordinal), where ordinals are handed out in
// first-injection order. A thread's decision sequence is therefore a pure
// function of the seed and its ordinal — same seed, same per-thread
// injection trace — so a finding from `tools/check.sh --schedule-fuzz`
// reproduces by exporting the same HF_SCHEDULE_FUZZ value. (Across
// threads, *which* thread gets which ordinal can vary with the very
// schedule being fuzzed; single-threaded traces are bit-identical,
// which is what tests/schedule_fuzz_test.cc pins down.)
//
// Like the lock graph, the fuzzer is compiled out of the primitives when
// HF_SYNC_CONTRACTS_ENABLED is 0 (Release); when compiled in but not
// enabled, MaybeInject is one relaxed atomic load.
#ifndef SRC_ANALYSIS_SCHEDULE_FUZZ_H_
#define SRC_ANALYSIS_SCHEDULE_FUZZ_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace hybridflow {

class ScheduleFuzzer {
 public:
  enum class Site : uint8_t {
    kMutexLock = 0,      // Mutex::Lock, before the underlying acquisition.
    kCondVarWakeup = 1,  // CondVar::Wait, after the wait returns.
    kPoolTaskPickup = 2, // ThreadPool worker, between dequeue and run.
  };
  enum class Action : uint8_t { kNone = 0, kYield = 1, kSleep = 2 };

  // One decision, recorded (capture mode) even when the action is kNone so
  // a trace is the complete per-thread decision sequence.
  struct Injection {
    Site site;
    Action action;
    uint32_t sleep_us;  // Nonzero only for kSleep.
  };

  // Process-lifetime singleton; reads HF_SCHEDULE_FUZZ once at creation.
  static ScheduleFuzzer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Hot path: called by the sync primitives at every site.
  void MaybeInject(Site site) {
    if (enabled()) {
      Inject(site);
    }
  }

  // (Re)seeds the fuzzer: resets thread ordinals and invalidates every
  // thread's stream so per-thread sequences restart from the new seed.
  void EnableWithSeed(uint64_t seed);
  void Disable();
  uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }

  // Parses an HF_SCHEDULE_FUZZ value (non-negative decimal integer).
  static bool ParseSeed(const char* text, uint64_t* seed);

  // Trace capture for the calling thread only (determinism tests).
  void StartCaptureForCurrentThread();
  std::vector<Injection> StopCaptureForCurrentThread();

 private:
  ScheduleFuzzer();
  void Inject(Site site);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> seed_{0};
  // Bumped by EnableWithSeed; threads reseed their stream lazily.
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> next_ordinal_{0};
};

inline bool operator==(const ScheduleFuzzer::Injection& a,
                       const ScheduleFuzzer::Injection& b) {
  return a.site == b.site && a.action == b.action && a.sleep_us == b.sleep_us;
}

}  // namespace hybridflow

#endif  // SRC_ANALYSIS_SCHEDULE_FUZZ_H_
