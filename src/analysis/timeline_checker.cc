#include "src/analysis/timeline_checker.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/strings.h"

namespace hybridflow {

namespace {

// Spans that model data movement between groups rather than grouped
// compute; exempt from group coverage (they legitimately cross pools).
bool IsTransferCategory(const std::string& category) {
  return category == "transfer" || category == "broadcast" || category == "sync";
}

std::string SpanLabel(const TraceSpan& span, int index) {
  return StrFormat("#%d '%s' [%s] %.9f..%.9f", index, span.name.c_str(),
                   span.category.c_str(), span.start, span.end);
}

}  // namespace

const char* TimelineViolationKindName(TimelineViolationKind kind) {
  switch (kind) {
    case TimelineViolationKind::kBadTime:
      return "bad-time";
    case TimelineViolationKind::kStartBeforeReady:
      return "start-before-ready";
    case TimelineViolationKind::kUnknownDevice:
      return "unknown-device";
    case TimelineViolationKind::kDeviceOverlap:
      return "device-overlap";
    case TimelineViolationKind::kIdleInconsistency:
      return "idle-inconsistency";
    case TimelineViolationKind::kGroupNotCovered:
      return "group-not-covered";
  }
  return "?";
}

TimelineChecker::TimelineChecker(const ClusterSpec& spec, TimelineCheckOptions options)
    : spec_(spec), options_(options) {}

void TimelineChecker::RegisterGroup(const std::string& name, std::vector<DeviceId> devices) {
  std::sort(devices.begin(), devices.end());
  groups_.push_back(Group{name, std::move(devices)});
}

bool TimelineChecker::CoveredByOneGroup(const std::vector<DeviceId>& devices) const {
  for (const Group& group : groups_) {
    bool all = true;
    for (DeviceId device : devices) {
      if (!std::binary_search(group.devices.begin(), group.devices.end(), device)) {
        all = false;
        break;
      }
    }
    if (all) {
      return true;
    }
  }
  return false;
}

std::vector<TimelineViolation> TimelineChecker::Check(
    const std::vector<TraceSpan>& trace) const {
  std::vector<TimelineViolation> violations;
  const double eps = options_.epsilon;
  const int world = spec_.world_size();

  // Replayed per-device state: end time and index of the last span seen on
  // the device. Trace order is submission order, and every scheduler in the
  // repo assigns non-decreasing start times per device, so a linear replay
  // suffices for the exclusivity check.
  std::vector<SimTime> free_at(static_cast<size_t>(world), 0.0);
  std::vector<int> last_span(static_cast<size_t>(world), -1);

  for (int i = 0; i < static_cast<int>(trace.size()); ++i) {
    const TraceSpan& span = trace[static_cast<size_t>(i)];

    // --- Time sanity -------------------------------------------------------
    if (!std::isfinite(span.start) || !std::isfinite(span.end) || span.start < 0.0 ||
        span.end < span.start) {
      violations.push_back(TimelineViolation{
          TimelineViolationKind::kBadTime, i, -1,
          SpanLabel(span, i) + ": non-monotone or non-finite interval"});
      continue;  // Derived checks would only cascade.
    }
    if (!std::isfinite(span.ready) || span.start < span.ready - eps) {
      violations.push_back(TimelineViolation{
          TimelineViolationKind::kStartBeforeReady, i, -1,
          SpanLabel(span, i) +
              StrFormat(": starts before its inputs are ready at %.9f", span.ready)});
    }

    // --- Device checks -----------------------------------------------------
    if (span.devices.empty()) {
      violations.push_back(TimelineViolation{TimelineViolationKind::kUnknownDevice, i, -1,
                                             SpanLabel(span, i) + ": occupies no devices"});
      continue;
    }
    SimTime group_free = 0.0;
    bool devices_ok = true;
    for (DeviceId device : span.devices) {
      if (device < 0 || device >= world) {
        violations.push_back(TimelineViolation{
            TimelineViolationKind::kUnknownDevice, i, device,
            SpanLabel(span, i) + StrFormat(": device %d outside world of %d", device, world)});
        devices_ok = false;
        continue;
      }
      group_free = std::max(group_free, free_at[static_cast<size_t>(device)]);
      // Exclusivity: the simulated race detector. Two compute spans sharing
      // an instant of one device means the scheduler double-booked it.
      if (span.start < free_at[static_cast<size_t>(device)] - eps) {
        violations.push_back(TimelineViolation{
            TimelineViolationKind::kDeviceOverlap, i, device,
            SpanLabel(span, i) +
                StrFormat(": overlaps span #%d on device %d (busy until %.9f)",
                          last_span[static_cast<size_t>(device)], device,
                          free_at[static_cast<size_t>(device)])});
      }
    }
    if (devices_ok && options_.check_list_scheduling) {
      // Greedy list scheduling: an op starts the instant both its data and
      // all of its devices are available — any later start is lost time the
      // perf model would misreport, any earlier start is time travel.
      const SimTime expected = std::max(span.ready, group_free);
      if (std::abs(span.start - expected) > eps) {
        violations.push_back(TimelineViolation{
            TimelineViolationKind::kIdleInconsistency, i, -1,
            SpanLabel(span, i) +
                StrFormat(": start deviates from greedy schedule time %.9f", expected)});
      }
    }
    if (devices_ok && options_.check_group_coverage && !groups_.empty() &&
        !IsTransferCategory(span.category) && !CoveredByOneGroup(span.devices)) {
      violations.push_back(TimelineViolation{
          TimelineViolationKind::kGroupNotCovered, i, -1,
          SpanLabel(span, i) + ": devices not covered by any registered group"});
    }
    for (DeviceId device : span.devices) {
      if (device >= 0 && device < world) {
        free_at[static_cast<size_t>(device)] =
            std::max(free_at[static_cast<size_t>(device)], span.end);
        last_span[static_cast<size_t>(device)] = i;
      }
    }
  }
  return violations;
}

std::vector<TimelineViolation> TimelineChecker::Check(const ClusterState& state) const {
  return Check(state.trace());
}

std::string FormatViolations(const std::vector<TimelineViolation>& violations) {
  std::ostringstream out;
  for (const TimelineViolation& violation : violations) {
    out << "[" << TimelineViolationKindName(violation.kind) << "] " << violation.message
        << "\n";
  }
  return out.str();
}

std::string CompareTraces(const std::vector<TraceSpan>& a, const std::vector<TraceSpan>& b) {
  if (a.size() != b.size()) {
    return StrFormat("trace lengths differ: %zu vs %zu", a.size(), b.size());
  }
  for (size_t i = 0; i < a.size(); ++i) {
    const TraceSpan& lhs = a[i];
    const TraceSpan& rhs = b[i];
    if (lhs.name != rhs.name || lhs.category != rhs.category) {
      return StrFormat("span %zu identity differs: '%s' [%s] vs '%s' [%s]", i,
                       lhs.name.c_str(), lhs.category.c_str(), rhs.name.c_str(),
                       rhs.category.c_str());
    }
    if (lhs.devices != rhs.devices) {
      return StrFormat("span %zu ('%s') device sets differ", i, lhs.name.c_str());
    }
    // Bit-exact: determinism means the identical schedule, not a similar one.
    if (lhs.start != rhs.start || lhs.end != rhs.end || lhs.ready != rhs.ready) {
      return StrFormat("span %zu ('%s') times differ: %.17g..%.17g vs %.17g..%.17g", i,
                       lhs.name.c_str(), lhs.start, lhs.end, rhs.start, rhs.end);
    }
  }
  return "";
}

}  // namespace hybridflow
