// Process-wide lock-acquisition-order graph for potential-deadlock
// detection (absl DeadlockCheck style).
//
// In contract-checked builds (HF_SYNC_CONTRACTS_ENABLED, the default for
// every build type except Release), the annotated Mutex from
// src/common/annotations.h reports every acquisition and release here.
// Each thread keeps a thread-local held-lock stack; acquiring mutex B
// while holding mutex A records the directed edge A -> B into one global
// graph. A cycle in that graph is a *potential* deadlock: two code paths
// acquire the same mutexes in opposite orders, so some interleaving can
// deadlock — even if this run never did. The report names every mutex on
// the cycle and carries the acquisition stack of each edge (the stack
// recorded when the edge was first seen, plus the stack of the
// acquisition that closed the cycle).
//
// Cost model: the held stack and an edge-seen cache are thread-local, so
// the steady state (edge already recorded) takes no lock and performs no
// allocation; only the first observation of an ordering per thread takes
// the internal graph mutex. That also bounds how much happens-before the
// checker itself injects under TSan. In Release (or -DHF_SYNC_CONTRACTS=OFF)
// the hooks are compiled out of the primitives entirely; this library
// still builds, it just never gets called (zero-overhead contract,
// asserted by tests/sync_contracts_release_test.cc).
//
// The graph deliberately does not know about hybridflow::Mutex — it keys
// nodes by opaque pointers — so it sits below src/common/ in the layer
// stack (annotations.h includes this header) and uses raw std primitives
// internally, which also keeps its own locks out of the graph.
#ifndef SRC_ANALYSIS_LOCK_GRAPH_H_
#define SRC_ANALYSIS_LOCK_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hybridflow {

// One potential-deadlock finding. Reports are recorded once per edge that
// closes a cycle (re-running the same inversion does not re-report).
struct LockCycleReport {
  // Mutex names around the cycle, in acquisition-order direction, with the
  // first name repeated at the end: {"a", "b", "a"} for an ABBA inversion.
  std::vector<std::string> cycle;
  // Human-readable report: the cycle plus one acquisition stack per edge.
  std::string message;
};

class LockGraph {
 public:
  // Process-lifetime singleton (leaked, safe during static destruction).
  static LockGraph& Global();

  // Hooks, called by the annotated primitives. `mutex` is an opaque node
  // key; `name` may be null (the report falls back to the address).
  // OnAcquire must be called before the underlying lock is taken so a
  // cycle is reported even when the acquisition then deadlocks for real.
  void OnAcquire(const void* mutex, const char* name);
  void OnRelease(const void* mutex);
  // Removes the node and every incident edge; a destroyed mutex's address
  // may be reused by an unrelated one.
  void OnDestroy(const void* mutex);

  std::vector<LockCycleReport> Reports() const;
  size_t ReportCount() const;
  size_t NodeCount() const;  // Mutexes seen in at least one nested order.
  size_t EdgeCount() const;

  // Reports are additionally printed to stderr as they are found (so a
  // cycle surfaces even when nothing polls Reports()); negative tests
  // silence that.
  void SetStderrReports(bool enabled);

  // Test helper: clears the graph, the reports, and (via an epoch bump)
  // every thread's edge-seen cache. Held-lock stacks are untouched.
  void Reset();

 private:
  LockGraph() = default;
};

}  // namespace hybridflow

#endif  // SRC_ANALYSIS_LOCK_GRAPH_H_
