#include "src/analysis/lock_graph.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <utility>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define HF_LOCK_GRAPH_HAVE_BACKTRACE 1
#endif
#endif

namespace hybridflow {

namespace {

constexpr int kMaxStackFrames = 24;

// Acquisition stack of the first observation of an edge.
struct EdgeInfo {
  std::vector<void*> frames;
  size_t thread_hash = 0;
};

struct Node {
  std::string name;
  std::map<const void*, EdgeInfo> out;
};

// All cross-thread state, behind one internal mutex. The graph must not
// use hybridflow::Mutex underneath itself (its Lock would re-enter the
// hooks), so this is one of the two sanctioned raw-std spots; the
// thread-local reentrancy flag below is a second line of defense.
struct GraphState {
  std::mutex mu;  // guards: nodes, reports, stderr_reports.
  std::map<const void*, Node> nodes;
  std::vector<LockCycleReport> reports;
  bool stderr_reports = true;
  // Bumped by Reset()/OnDestroy() to invalidate thread-local edge caches.
  std::atomic<uint64_t> epoch{1};
};

GraphState& State() {
  // Intentionally leaked: hooks may run during static destruction.
  static GraphState* state = new GraphState();  // hflint: allow(naked-new)
  return *state;
}

struct HeldLock {
  const void* mutex;
  const char* name;  // May be null.
};

// Per-thread hook state. `seen_edges` makes the steady state lock-free:
// an ordering this thread has already recorded never touches GraphState.
struct ThreadLocalState {
  bool in_hook = false;
  uint64_t epoch = 0;  // 0 = never synced (global epoch starts at 1).
  std::vector<HeldLock> held;
  std::unordered_set<uint64_t> seen_edges;
};

ThreadLocalState& Tls() {
  thread_local ThreadLocalState tls;
  return tls;
}

uint64_t EdgeKey(const void* from, const void* to) {
  const uint64_t a = reinterpret_cast<uintptr_t>(from);
  const uint64_t b = reinterpret_cast<uintptr_t>(to);
  return (a * 0x9e3779b97f4a7c15ULL) ^ b;
}

size_t CurrentThreadHash() {
  return std::hash<std::thread::id>()(std::this_thread::get_id());
}

std::vector<void*> CaptureStack() {
  std::vector<void*> frames;
#ifdef HF_LOCK_GRAPH_HAVE_BACKTRACE
  void* buffer[kMaxStackFrames];
  const int depth = backtrace(buffer, kMaxStackFrames);
  // Skip the two innermost frames (CaptureStack + the hook itself).
  for (int i = 2; i < depth; ++i) {
    frames.push_back(buffer[i]);
  }
#endif
  return frames;
}

void AppendStack(const std::vector<void*>& frames, std::ostringstream& out) {
  if (frames.empty()) {
    out << "    (stack capture unavailable)\n";
    return;
  }
#ifdef HF_LOCK_GRAPH_HAVE_BACKTRACE
  char** symbols = backtrace_symbols(const_cast<void* const*>(frames.data()),
                                     static_cast<int>(frames.size()));
  for (size_t i = 0; i < frames.size(); ++i) {
    out << "    #" << i << " ";
    if (symbols != nullptr && symbols[i] != nullptr) {
      out << symbols[i];
    } else {
      out << frames[i];
    }
    out << "\n";
  }
  std::free(symbols);
#else
  for (size_t i = 0; i < frames.size(); ++i) {
    out << "    #" << i << " " << frames[i] << "\n";
  }
#endif
}

std::string NodeName(const GraphState& g, const void* mutex, const char* fallback) {
  const auto it = g.nodes.find(mutex);
  if (it != g.nodes.end() && !it->second.name.empty()) {
    return it->second.name;
  }
  if (fallback != nullptr && fallback[0] != '\0') {
    return fallback;
  }
  std::ostringstream address;
  address << "Mutex@" << mutex;
  return address.str();
}

// DFS for a path from -> ... -> to over the recorded edges. Fills `path`
// with the node keys from `from` to `to` inclusive when one exists.
bool FindPath(const GraphState& g, const void* from, const void* to,
              std::vector<const void*>* path) {
  std::map<const void*, const void*> parent;
  std::vector<const void*> stack = {from};
  parent[from] = nullptr;
  while (!stack.empty()) {
    const void* node = stack.back();
    stack.pop_back();
    if (node == to) {
      for (const void* walk = to; walk != nullptr; walk = parent[walk]) {
        path->push_back(walk);
      }
      std::reverse(path->begin(), path->end());
      return true;
    }
    const auto it = g.nodes.find(node);
    if (it == g.nodes.end()) {
      continue;
    }
    for (const auto& [next, info] : it->second.out) {
      (void)info;
      if (parent.emplace(next, node).second) {
        stack.push_back(next);
      }
    }
  }
  return false;
}

// Builds and records the potential-deadlock report for the cycle
// path[0] -> ... -> path[n-1] -> path[0], where the final edge
// (holding -> acquiring, i.e. path[n-1] -> path[0]) is the acquisition
// that closed it. Caller holds g.mu.
void RecordCycle(GraphState& g, const std::vector<const void*>& path,
                 const char* acquiring_name, const std::vector<void*>& closing_stack) {
  LockCycleReport report;
  for (const void* node : path) {
    report.cycle.push_back(NodeName(g, node, node == path.front() ? acquiring_name : nullptr));
  }
  report.cycle.push_back(report.cycle.front());

  std::ostringstream out;
  out << "POTENTIAL DEADLOCK: lock-order cycle ";
  for (size_t i = 0; i < report.cycle.size(); ++i) {
    out << (i == 0 ? "" : " -> ") << report.cycle[i];
  }
  out << "\n";
  // Stored stack for every edge already in the graph along the path.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const EdgeInfo& info = g.nodes.at(path[i]).out.at(path[i + 1]);
    out << "  edge " << report.cycle[i] << " -> " << report.cycle[i + 1]
        << ": '" << report.cycle[i + 1] << "' first acquired while holding '"
        << report.cycle[i] << "' (thread " << info.thread_hash << ") at:\n";
    AppendStack(info.frames, out);
  }
  // The acquisition closing the cycle (about to happen on this thread).
  out << "  edge " << report.cycle[path.size() - 1] << " -> " << report.cycle.back()
      << ": acquiring '" << report.cycle.back() << "' while holding '"
      << report.cycle[path.size() - 1] << "' (thread " << CurrentThreadHash()
      << ") at:\n";
  AppendStack(closing_stack, out);
  report.message = out.str();

  if (g.stderr_reports) {
    // The graph sits below src/common/logging.h in the layer stack (and
    // must not re-enter an instrumented mutex), so this is a sanctioned
    // raw writer, like the logger itself.
    std::cerr << report.message;  // hflint: allow(raw-diagnostics)
  }
  g.reports.push_back(std::move(report));
}

}  // namespace

LockGraph& LockGraph::Global() {
  // Intentionally leaked, same rationale as State().
  static LockGraph* graph = new LockGraph();  // hflint: allow(naked-new)
  return *graph;
}

void LockGraph::OnAcquire(const void* mutex, const char* name) {
  ThreadLocalState& tls = Tls();
  if (tls.in_hook) {
    return;
  }
  tls.in_hook = true;
  GraphState& g = State();
  const uint64_t epoch = g.epoch.load(std::memory_order_acquire);
  if (tls.epoch != epoch) {
    tls.seen_edges.clear();
    tls.epoch = epoch;
  }
  for (const HeldLock& held : tls.held) {
    const uint64_t key = EdgeKey(held.mutex, mutex);
    if (!tls.seen_edges.insert(key).second) {
      continue;  // Ordering already recorded by this thread: lock-free path.
    }
    const std::vector<void*> stack = CaptureStack();
    std::lock_guard<std::mutex> lock(g.mu);
    Node& from = g.nodes[held.mutex];
    if (from.name.empty() && held.name != nullptr) {
      from.name = held.name;
    }
    Node& to = g.nodes[mutex];
    if (to.name.empty() && name != nullptr) {
      to.name = name;
    }
    if (held.mutex == mutex) {
      // Re-acquiring a lock this thread already holds: a guaranteed
      // self-deadlock for a non-recursive mutex.
      RecordCycle(g, {mutex}, name, stack);
      continue;
    }
    if (from.out.find(mutex) != from.out.end()) {
      continue;  // Another thread recorded this edge first.
    }
    // Adding held -> mutex closes a cycle iff mutex already reaches held.
    std::vector<const void*> path;
    if (FindPath(g, mutex, held.mutex, &path)) {
      RecordCycle(g, path, name, stack);
    }
    from.out.emplace(mutex, EdgeInfo{stack, CurrentThreadHash()});
  }
  tls.held.push_back({mutex, name});
  tls.in_hook = false;
}

void LockGraph::OnRelease(const void* mutex) {
  ThreadLocalState& tls = Tls();
  if (tls.in_hook) {
    return;
  }
  // Erase the most recent matching entry; out-of-order release is legal.
  for (auto it = tls.held.rbegin(); it != tls.held.rend(); ++it) {
    if (it->mutex == mutex) {
      tls.held.erase(std::next(it).base());
      return;
    }
  }
}

void LockGraph::OnDestroy(const void* mutex) {
  ThreadLocalState& tls = Tls();
  if (tls.in_hook) {
    return;
  }
  tls.in_hook = true;
  GraphState& g = State();
  {
    std::lock_guard<std::mutex> lock(g.mu);
    bool erased = g.nodes.erase(mutex) > 0;
    for (auto& [key, node] : g.nodes) {
      (void)key;
      erased = node.out.erase(mutex) > 0 || erased;
    }
    if (erased) {
      // The address may be recycled for an unrelated mutex: flush every
      // thread's edge cache so stale (from, to) pairs cannot suppress a
      // fresh edge (or report) involving the new occupant.
      g.epoch.fetch_add(1, std::memory_order_release);
    }
  }
  tls.in_hook = false;
}

std::vector<LockCycleReport> LockGraph::Reports() const {
  GraphState& g = State();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.reports;
}

size_t LockGraph::ReportCount() const {
  GraphState& g = State();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.reports.size();
}

size_t LockGraph::NodeCount() const {
  GraphState& g = State();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.nodes.size();
}

size_t LockGraph::EdgeCount() const {
  GraphState& g = State();
  std::lock_guard<std::mutex> lock(g.mu);
  size_t edges = 0;
  for (const auto& [key, node] : g.nodes) {
    (void)key;
    edges += node.out.size();
  }
  return edges;
}

void LockGraph::SetStderrReports(bool enabled) {
  GraphState& g = State();
  std::lock_guard<std::mutex> lock(g.mu);
  g.stderr_reports = enabled;
}

void LockGraph::Reset() {
  GraphState& g = State();
  std::lock_guard<std::mutex> lock(g.mu);
  g.nodes.clear();
  g.reports.clear();
  g.epoch.fetch_add(1, std::memory_order_release);
}

}  // namespace hybridflow
