// Transformer architecture descriptions and first-principles accounting of
// parameter counts, memory footprints, and FLOPs.
//
// These are the quantities the paper's analytical simulators (Appendix C,
// following llm-analysis [42]) are built on. The built-in presets are the
// Llama family sizes used throughout §8 (7B, 13B, 34B, 70B).
#ifndef SRC_MODEL_MODEL_SPEC_H_
#define SRC_MODEL_MODEL_SPEC_H_

#include <cstdint>
#include <string>

namespace hybridflow {

struct ModelSpec {
  std::string name;
  int64_t num_layers = 0;
  int64_t hidden_size = 0;
  int64_t num_heads = 0;
  int64_t num_kv_heads = 0;  // < num_heads for grouped-query attention.
  int64_t ffn_hidden = 0;
  int64_t vocab_size = 32000;

  // --- Parameter counts ---------------------------------------------------
  // Parameters in one transformer layer (attention + gated MLP + norms).
  double ParamsPerLayer() const;
  // Total parameters including embeddings and LM head (untied, like Llama).
  double NumParams() const;
  // Parameters when the LM head is replaced by a scalar output head, as for
  // the critic / reward / cost models (§2.1).
  double NumParamsScalarHead() const;

  // --- Memory -------------------------------------------------------------
  // BF16 weights.
  double ParamBytes() const { return 2.0 * NumParams(); }
  // Mixed-precision training state per parameter (§8.1: BF16 params, FP32
  // gradients and Adam optimizer states): 2 + 4 + 4 + 4 + 4 = 18 bytes.
  static constexpr double kTrainBytesPerParam = 18.0;
  double TrainStateBytes() const { return kTrainBytesPerParam * NumParams(); }
  // KVCache for one token of one sequence (BF16 K and V per layer).
  double KvCacheBytesPerToken() const;
  // Training activation footprint per token (with selective recomputation).
  double ActivationBytesPerToken() const;

  // --- Compute ------------------------------------------------------------
  // Forward FLOPs to process one token given `context` tokens of attention
  // context (2*N matmul term + quadratic attention term).
  double FwdFlopsPerToken(int64_t context) const;
  // Forward FLOPs for a full sequence of `seq_len` tokens (prefill/infer).
  double FwdFlopsPerSequence(int64_t seq_len) const;
  // Training FLOPs (forward + backward ≈ 3x forward) for a full sequence.
  double TrainFlopsPerSequence(int64_t seq_len) const;
  // Bytes of weights + KV cache read from HBM to decode one token with
  // `context` tokens already cached (the memory-bound decode cost, [40]).
  double DecodeBytesPerToken(int64_t context, int64_t batch) const;

  // --- Presets (Llama family, §8.1) ----------------------------------------
  static ModelSpec Llama7B();
  static ModelSpec Llama13B();
  static ModelSpec Llama34B();
  static ModelSpec Llama70B();
  // Nearest preset at or above `billions` parameters; used for sweeps.
  static ModelSpec FromBillions(double billions);
  // Preset lookup by name ("7B", "13B", "34B", "70B").
  static ModelSpec ByName(const std::string& name);
};

}  // namespace hybridflow

#endif  // SRC_MODEL_MODEL_SPEC_H_
