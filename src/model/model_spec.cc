#include "src/model/model_spec.h"

#include "src/common/check.h"

namespace hybridflow {

double ModelSpec::ParamsPerLayer() const {
  const double h = static_cast<double>(hidden_size);
  const double kv_ratio = static_cast<double>(num_kv_heads) / static_cast<double>(num_heads);
  // Attention: Q (h*h), K and V (h*h*kv_ratio each), O (h*h).
  const double attention = 2.0 * h * h + 2.0 * h * h * kv_ratio;
  // Gated MLP: gate + up + down projections.
  const double mlp = 3.0 * h * static_cast<double>(ffn_hidden);
  // Two RMSNorm weights.
  const double norms = 2.0 * h;
  return attention + mlp + norms;
}

double ModelSpec::NumParams() const {
  const double h = static_cast<double>(hidden_size);
  const double v = static_cast<double>(vocab_size);
  // Untied input embedding + output head, plus final norm.
  return static_cast<double>(num_layers) * ParamsPerLayer() + 2.0 * v * h + h;
}

double ModelSpec::NumParamsScalarHead() const {
  const double h = static_cast<double>(hidden_size);
  const double v = static_cast<double>(vocab_size);
  // LM head (v*h) replaced by a scalar head (h); embedding retained.
  return static_cast<double>(num_layers) * ParamsPerLayer() + v * h + h + h;
}

double ModelSpec::KvCacheBytesPerToken() const {
  const double head_dim = static_cast<double>(hidden_size) / static_cast<double>(num_heads);
  const double kv_width = head_dim * static_cast<double>(num_kv_heads);
  // K and V, BF16, every layer.
  return 2.0 * 2.0 * kv_width * static_cast<double>(num_layers);
}

double ModelSpec::ActivationBytesPerToken() const {
  // With selective activation recomputation, roughly 16 bytes * hidden per
  // layer must be retained per token (Korthikanti et al. analysis, rounded).
  return 16.0 * static_cast<double>(hidden_size) * static_cast<double>(num_layers);
}

double ModelSpec::FwdFlopsPerToken(int64_t context) const {
  HF_CHECK_GE(context, 0);
  // Matmul term: 2 FLOPs per parameter per token.
  const double matmul = 2.0 * NumParams();
  // Attention scores + weighted values: 2 * 2 * hidden * context per layer;
  // causal masking halves the average effective context.
  const double attention = 2.0 * static_cast<double>(hidden_size) *
                           static_cast<double>(context) * static_cast<double>(num_layers);
  return matmul + attention;
}

double ModelSpec::FwdFlopsPerSequence(int64_t seq_len) const {
  HF_CHECK_GT(seq_len, 0);
  // Average causal context is seq_len / 2.
  return static_cast<double>(seq_len) * FwdFlopsPerToken(seq_len / 2);
}

double ModelSpec::TrainFlopsPerSequence(int64_t seq_len) const {
  return 3.0 * FwdFlopsPerSequence(seq_len);
}

double ModelSpec::DecodeBytesPerToken(int64_t context, int64_t batch) const {
  HF_CHECK_GE(context, 0);
  HF_CHECK_GT(batch, 0);
  // Each decode step streams all weights once (amortized over the batch)
  // plus this sequence's KV cache.
  return ParamBytes() / static_cast<double>(batch) +
         KvCacheBytesPerToken() * static_cast<double>(context);
}

ModelSpec ModelSpec::Llama7B() {
  return ModelSpec{"7B", 32, 4096, 32, 32, 11008, 32000};
}

ModelSpec ModelSpec::Llama13B() {
  return ModelSpec{"13B", 40, 5120, 40, 40, 13824, 32000};
}

ModelSpec ModelSpec::Llama34B() {
  return ModelSpec{"34B", 48, 8192, 64, 8, 22016, 32000};
}

ModelSpec ModelSpec::Llama70B() {
  return ModelSpec{"70B", 80, 8192, 64, 8, 28672, 32000};
}

ModelSpec ModelSpec::FromBillions(double billions) {
  HF_CHECK_GT(billions, 0.0);
  if (billions <= 7.5) {
    return Llama7B();
  }
  if (billions <= 14.0) {
    return Llama13B();
  }
  if (billions <= 40.0) {
    return Llama34B();
  }
  return Llama70B();
}

ModelSpec ModelSpec::ByName(const std::string& name) {
  if (name == "7B") {
    return Llama7B();
  }
  if (name == "13B") {
    return Llama13B();
  }
  if (name == "34B") {
    return Llama34B();
  }
  if (name == "70B") {
    return Llama70B();
  }
  HF_CHECK_MSG(false, "unknown model preset: " << name);
  return {};
}

}  // namespace hybridflow
