#include "src/kvcache/block_manager.h"

#include <algorithm>

#include "src/common/check.h"

namespace hybridflow {

KvBlockManager::KvBlockManager(const KvBlockConfig& config) : config_(config) {
  HF_CHECK_GT(config_.block_tokens, 0);
  HF_CHECK_GE(config_.num_blocks, 0);
  free_list_.reserve(static_cast<size_t>(config_.num_blocks));
  // Blocks handed out from the back: highest ids first (order is an
  // implementation detail; tests only rely on set semantics).
  for (int64_t block = 0; block < config_.num_blocks; ++block) {
    free_list_.push_back(block);
  }
}

int64_t KvBlockManager::BlocksFor(int64_t tokens) const {
  return (tokens + config_.block_tokens - 1) / config_.block_tokens;
}

bool KvBlockManager::AddSequence(int64_t sequence_id, int64_t prompt_tokens) {
  HF_CHECK_GE(prompt_tokens, 0);
  HF_CHECK_MSG(tables_.count(sequence_id) == 0, "sequence " << sequence_id << " already exists");
  const int64_t needed = BlocksFor(prompt_tokens);
  if (needed > free_blocks()) {
    return false;
  }
  SequenceState state;
  state.tokens = prompt_tokens;
  state.blocks.reserve(static_cast<size_t>(needed));
  for (int64_t i = 0; i < needed; ++i) {
    state.blocks.push_back(free_list_.back());
    free_list_.pop_back();
  }
  tables_.emplace(sequence_id, std::move(state));
  NoteAllocation();
  return true;
}

bool KvBlockManager::CanAdmit(int64_t prompt_tokens, int64_t reserve_tokens) const {
  HF_CHECK_GE(prompt_tokens, 0);
  HF_CHECK_GE(reserve_tokens, 0);
  return BlocksFor(prompt_tokens + reserve_tokens) <= free_blocks();
}

bool KvBlockManager::AppendToken(int64_t sequence_id) {
  auto it = tables_.find(sequence_id);
  HF_CHECK_MSG(it != tables_.end(), "unknown sequence " << sequence_id);
  SequenceState& state = it->second;
  const bool needs_block = state.tokens % config_.block_tokens == 0 &&
                           BlocksFor(state.tokens + 1) > static_cast<int64_t>(state.blocks.size());
  if (needs_block) {
    if (free_list_.empty()) {
      return false;
    }
    state.blocks.push_back(free_list_.back());
    free_list_.pop_back();
    NoteAllocation();
  }
  state.tokens += 1;
  return true;
}

void KvBlockManager::NoteAllocation() {
  high_water_blocks_ = std::max(high_water_blocks_, used_blocks());
}

void KvBlockManager::FreeSequence(int64_t sequence_id) {
  auto it = tables_.find(sequence_id);
  HF_CHECK_MSG(it != tables_.end(), "unknown sequence " << sequence_id);
  for (int64_t block : it->second.blocks) {
    free_list_.push_back(block);
  }
  tables_.erase(it);
}

void KvBlockManager::FreeSequences(const std::vector<int64_t>& sequence_ids) {
  for (int64_t sequence_id : sequence_ids) {
    FreeSequence(sequence_id);
  }
}

int64_t KvBlockManager::SequenceTokens(int64_t sequence_id) const {
  auto it = tables_.find(sequence_id);
  HF_CHECK_MSG(it != tables_.end(), "unknown sequence " << sequence_id);
  return it->second.tokens;
}

const std::vector<int64_t>& KvBlockManager::BlockTable(int64_t sequence_id) const {
  auto it = tables_.find(sequence_id);
  HF_CHECK_MSG(it != tables_.end(), "unknown sequence " << sequence_id);
  return it->second.blocks;
}

double KvBlockManager::used_bytes() const {
  return static_cast<double>(used_blocks()) * static_cast<double>(config_.block_tokens) *
         config_.bytes_per_token;
}

double KvBlockManager::Occupancy() const {
  const int64_t allocated_tokens = used_blocks() * config_.block_tokens;
  if (allocated_tokens == 0) {
    return 1.0;
  }
  int64_t live_tokens = 0;
  for (const auto& [id, state] : tables_) {
    live_tokens += state.tokens;
  }
  return static_cast<double>(live_tokens) / static_cast<double>(allocated_tokens);
}

int64_t KvBlockManager::CapacitySequences(int64_t tokens_per_sequence) const {
  HF_CHECK_GT(tokens_per_sequence, 0);
  const int64_t blocks_each = BlocksFor(tokens_per_sequence);
  return blocks_each == 0 ? 0 : free_blocks() / blocks_each;
}

DistributedKvManager::DistributedKvManager(int num_ranks, const KvBlockConfig& per_rank_config) {
  HF_CHECK_GT(num_ranks, 0);
  ranks_.reserve(static_cast<size_t>(num_ranks));
  for (int rank = 0; rank < num_ranks; ++rank) {
    ranks_.emplace_back(per_rank_config);
  }
}

KvBlockManager& DistributedKvManager::rank(int index) {
  HF_CHECK_GE(index, 0);
  HF_CHECK_LT(static_cast<size_t>(index), ranks_.size());
  return ranks_[static_cast<size_t>(index)];
}

bool DistributedKvManager::AddSequence(int64_t sequence_id, int64_t prompt_tokens) {
  // All-or-nothing: probe rank 0's capacity first (ranks are symmetric).
  for (KvBlockManager& manager : ranks_) {
    if (manager.CapacitySequences(std::max<int64_t>(prompt_tokens, 1)) == 0 &&
        prompt_tokens > 0) {
      return false;
    }
  }
  bool ok = true;
  for (KvBlockManager& manager : ranks_) {
    ok = manager.AddSequence(sequence_id, prompt_tokens) && ok;
  }
  HF_CHECK_MSG(ok, "symmetric ranks diverged while adding a sequence");
  return true;
}

bool DistributedKvManager::AppendToken(int64_t sequence_id) {
  // Symmetric geometry: either every rank can append or none can.
  for (KvBlockManager& manager : ranks_) {
    const bool at_boundary =
        manager.SequenceTokens(sequence_id) % manager.config().block_tokens == 0;
    if (at_boundary && manager.free_blocks() == 0) {
      return false;
    }
  }
  for (KvBlockManager& manager : ranks_) {
    HF_CHECK(manager.AppendToken(sequence_id));
  }
  return true;
}

void DistributedKvManager::FreeSequence(int64_t sequence_id) {
  for (KvBlockManager& manager : ranks_) {
    manager.FreeSequence(sequence_id);
  }
}

void DistributedKvManager::FreeSequences(const std::vector<int64_t>& sequence_ids) {
  for (KvBlockManager& manager : ranks_) {
    manager.FreeSequences(sequence_ids);
  }
}

bool DistributedKvManager::CanAdmit(int64_t prompt_tokens, int64_t reserve_tokens) const {
  for (const KvBlockManager& manager : ranks_) {
    if (!manager.CanAdmit(prompt_tokens, reserve_tokens)) {
      return false;
    }
  }
  return true;
}

int64_t DistributedKvManager::high_water_blocks() const {
  int64_t high_water = 0;
  for (const KvBlockManager& manager : ranks_) {
    high_water = std::max(high_water, manager.high_water_blocks());
  }
  return high_water;
}

bool DistributedKvManager::TablesInLockstep() const {
  for (size_t rank = 1; rank < ranks_.size(); ++rank) {
    if (ranks_[rank].num_sequences() != ranks_[0].num_sequences() ||
        ranks_[rank].used_blocks() != ranks_[0].used_blocks()) {
      return false;
    }
  }
  return true;
}

double DistributedKvManager::total_used_bytes() const {
  double total = 0.0;
  for (const KvBlockManager& manager : ranks_) {
    total += manager.used_bytes();
  }
  return total;
}

}  // namespace hybridflow
