#include "src/kvcache/block_manager.h"

#include <algorithm>

#include "src/common/check.h"

namespace hybridflow {
namespace {

// splitmix64 finalizer — the standard cheap 64-bit mixer. Chained hashing
// only needs collision resistance good enough that distinct prefixes never
// alias in practice (64-bit keyspace, thousands of blocks).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t NonZero(uint64_t h) { return h == 0 ? 0x9e3779b97f4a7c15ULL : h; }

}  // namespace

std::vector<uint64_t> PromptBlockHashes(const std::vector<int64_t>& tokens,
                                        int64_t block_tokens) {
  HF_CHECK_GT(block_tokens, 0);
  std::vector<uint64_t> hashes;
  const int64_t full_blocks = static_cast<int64_t>(tokens.size()) / block_tokens;
  hashes.reserve(static_cast<size_t>(full_blocks));
  uint64_t h = 0x243f6a8885a308d3ULL;  // Arbitrary fixed seed (pi digits).
  for (int64_t block = 0; block < full_blocks; ++block) {
    for (int64_t i = 0; i < block_tokens; ++i) {
      h = Mix64(h ^ static_cast<uint64_t>(tokens[static_cast<size_t>(block * block_tokens + i)]));
    }
    hashes.push_back(NonZero(h));
  }
  return hashes;
}

std::vector<uint64_t> GroupBlockHashes(int64_t group, int64_t full_blocks) {
  HF_CHECK_GE(full_blocks, 0);
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(full_blocks));
  uint64_t h = Mix64(0x452821e638d01377ULL ^ static_cast<uint64_t>(group));
  for (int64_t block = 0; block < full_blocks; ++block) {
    h = Mix64(h ^ static_cast<uint64_t>(block + 1));
    hashes.push_back(NonZero(h));
  }
  return hashes;
}

KvBlockManager::KvBlockManager(const KvBlockConfig& config) : config_(config) {
  HF_CHECK_GT(config_.block_tokens, 0);
  HF_CHECK_GE(config_.num_blocks, 0);
  blocks_.resize(static_cast<size_t>(config_.num_blocks));
  free_list_.reserve(static_cast<size_t>(config_.num_blocks));
  // Blocks handed out from the back: highest ids first (order is an
  // implementation detail; tests only rely on set semantics).
  for (int64_t block = 0; block < config_.num_blocks; ++block) {
    free_list_.push_back(block);
  }
}

int64_t KvBlockManager::BlocksFor(int64_t tokens) const {
  return (tokens + config_.block_tokens - 1) / config_.block_tokens;
}

KvBlockManager::SequenceState& KvBlockManager::State(int64_t sequence_id) {
  auto it = tables_.find(sequence_id);
  HF_CHECK_MSG(it != tables_.end(), "unknown sequence " << sequence_id);
  return it->second;
}

const KvBlockManager::SequenceState& KvBlockManager::State(int64_t sequence_id) const {
  auto it = tables_.find(sequence_id);
  HF_CHECK_MSG(it != tables_.end(), "unknown sequence " << sequence_id);
  return it->second;
}

int64_t KvBlockManager::AllocateBlock() {
  if (!free_list_.empty()) {
    const int64_t block = free_list_.back();
    free_list_.pop_back();
    return block;
  }
  if (evictable_lru_.empty()) {
    return -1;
  }
  // Evict the least recently used cached block; its prefix-index entry is
  // pruned so later probes can't hit a block that no longer holds the
  // content.
  const int64_t block = evictable_lru_.front();
  evictable_lru_.pop_front();
  Block& b = blocks_[static_cast<size_t>(block)];
  HF_CHECK_EQ(b.refs, 0);
  auto indexed = prefix_index_.find(b.hash);
  if (indexed != prefix_index_.end() && indexed->second == block) {
    prefix_index_.erase(indexed);
  }
  b = Block{};
  ++evictions_total_;
  return block;
}

void KvBlockManager::Ref(int64_t block) {
  Block& b = blocks_[static_cast<size_t>(block)];
  if (b.evictable) {
    HF_CHECK_EQ(b.refs, 0);
    evictable_lru_.erase(b.lru);
    b.evictable = false;
  }
  if (b.refs == 0) {
    ++used_blocks_;
  }
  b.refs += 1;
  if (b.refs == 2) {
    ++shared_blocks_;
    NoteSharing();
  }
}

void KvBlockManager::Unref(int64_t block) {
  Block& b = blocks_[static_cast<size_t>(block)];
  HF_CHECK_GT(b.refs, 0);
  b.refs -= 1;
  if (b.refs == 1) {
    --shared_blocks_;
  }
  if (b.refs > 0) {
    return;
  }
  --used_blocks_;
  auto indexed = b.hash == 0 ? prefix_index_.end() : prefix_index_.find(b.hash);
  if (config_.enable_prefix_cache && indexed != prefix_index_.end() && indexed->second == block) {
    // Retain for future prefix hits: unreferenced but still materialized,
    // reclaimable by AllocateBlock's LRU eviction.
    evictable_lru_.push_back(block);
    b.evictable = true;
    b.lru = std::prev(evictable_lru_.end());
    return;
  }
  if (indexed != prefix_index_.end() && indexed->second == block) {
    prefix_index_.erase(indexed);
  }
  b = Block{};
  free_list_.push_back(block);
}

void KvBlockManager::IndexFullBlocks(SequenceState& state) {
  if (!config_.enable_prefix_cache) {
    return;
  }
  const int64_t hashed = std::min<int64_t>(static_cast<int64_t>(state.hashes.size()),
                                           state.tokens / config_.block_tokens);
  for (int64_t i = 0; i < hashed; ++i) {
    Block& b = blocks_[static_cast<size_t>(state.blocks[static_cast<size_t>(i)])];
    if (b.hash != 0) {
      continue;  // Already stamped (shared hit or earlier pass).
    }
    b.hash = state.hashes[static_cast<size_t>(i)];
    // First writer wins: if another block already serves this hash, this
    // one simply stays un-indexed (and frees normally on last unref).
    prefix_index_.emplace(b.hash, state.blocks[static_cast<size_t>(i)]);
  }
}

bool KvBlockManager::AddSequence(int64_t sequence_id, int64_t prompt_tokens) {
  return AddSequenceShared(sequence_id, prompt_tokens, {});
}

bool KvBlockManager::AddSequenceShared(int64_t sequence_id, int64_t resident_tokens,
                                       const std::vector<uint64_t>& block_hashes) {
  HF_CHECK_GE(resident_tokens, 0);
  HF_CHECK_MSG(tables_.count(sequence_id) == 0, "sequence " << sequence_id << " already exists");
  const int64_t hit_tokens =
      config_.enable_prefix_cache ? PrefixHitTokens(block_hashes) : 0;
  const int64_t hit_count = hit_tokens / config_.block_tokens;
  // Sharing is free, so residency covers at least every hit block even if
  // the caller asked for less.
  const int64_t tokens = std::max(resident_tokens, hit_tokens);
  const int64_t needed = BlocksFor(tokens) - hit_count;
  // Evictable hit blocks are inside available_blocks() but stop being
  // available the moment we re-reference them below.
  if (needed > available_blocks() - EvictableHitBlocks(block_hashes, hit_count)) {
    return false;
  }
  SequenceState state;
  state.tokens = tokens;
  if (config_.enable_prefix_cache) {
    state.hashes = block_hashes;
  }
  state.blocks.reserve(static_cast<size_t>(BlocksFor(tokens)));
  // Reference the shared prefix first so eviction (inside AllocateBlock)
  // can never reclaim a block we are about to share.
  for (int64_t i = 0; i < hit_count; ++i) {
    const int64_t block = prefix_index_.at(block_hashes[static_cast<size_t>(i)]);
    Ref(block);
    state.blocks.push_back(block);
  }
  for (int64_t i = hit_count; i < BlocksFor(tokens); ++i) {
    const int64_t block = AllocateBlock();
    HF_CHECK_GE(block, 0);  // Guaranteed by the available_blocks() probe.
    Block& b = blocks_[static_cast<size_t>(block)];
    b.refs = 1;
    b.tokens = std::min<int64_t>(config_.block_tokens, tokens - i * config_.block_tokens);
    ++used_blocks_;
    state.blocks.push_back(block);
  }
  prefix_hit_tokens_total_ += hit_tokens;
  auto [it, inserted] = tables_.emplace(sequence_id, std::move(state));
  HF_CHECK(inserted);
  IndexFullBlocks(it->second);
  NoteAllocation();
  return true;
}

int64_t KvBlockManager::EvictableHitBlocks(const std::vector<uint64_t>& block_hashes,
                                           int64_t hit_count) const {
  int64_t evictable = 0;
  for (int64_t i = 0; i < hit_count; ++i) {
    const int64_t block = prefix_index_.at(block_hashes[static_cast<size_t>(i)]);
    if (blocks_[static_cast<size_t>(block)].evictable) {
      ++evictable;
    }
  }
  return evictable;
}

int64_t KvBlockManager::PrefixHitTokens(const std::vector<uint64_t>& block_hashes) const {
  if (!config_.enable_prefix_cache) {
    return 0;
  }
  int64_t hits = 0;
  for (uint64_t hash : block_hashes) {
    if (prefix_index_.count(hash) == 0) {
      break;
    }
    ++hits;
  }
  return hits * config_.block_tokens;
}

int64_t KvBlockManager::PrefixHitBlocksReferenced(
    const std::vector<uint64_t>& block_hashes) const {
  if (!config_.enable_prefix_cache) {
    return 0;
  }
  int64_t referenced = 0;
  for (uint64_t hash : block_hashes) {
    auto it = prefix_index_.find(hash);
    if (it == prefix_index_.end()) {
      break;  // Contiguous leading run only, mirroring PrefixHitTokens.
    }
    if (blocks_[static_cast<size_t>(it->second)].refs > 0) {
      ++referenced;
    }
  }
  return referenced;
}

bool KvBlockManager::CanExtendSequence(int64_t sequence_id, int64_t resident_tokens) const {
  const SequenceState& state = State(sequence_id);
  const int64_t needed =
      BlocksFor(std::max(resident_tokens, state.tokens)) -
      static_cast<int64_t>(state.blocks.size());
  return needed <= available_blocks();
}

bool KvBlockManager::ExtendSequence(int64_t sequence_id, int64_t resident_tokens) {
  SequenceState& state = State(sequence_id);
  if (resident_tokens <= state.tokens) {
    return true;
  }
  const int64_t needed = BlocksFor(resident_tokens) - static_cast<int64_t>(state.blocks.size());
  if (needed > available_blocks()) {
    return false;
  }
  // The existing tail block (if partial) simply fills further; only whole
  // new blocks are allocated. Residency growth never shares: prefix hits
  // are taken once, at admission, so compute-skip accounting stays simple.
  for (int64_t i = 0; i < needed; ++i) {
    const int64_t block = AllocateBlock();
    HF_CHECK_GE(block, 0);
    Block& b = blocks_[static_cast<size_t>(block)];
    b.refs = 1;
    ++used_blocks_;
    state.blocks.push_back(block);
  }
  state.tokens = resident_tokens;
  // Recompute per-block fill for this sequence's own (unshared) blocks.
  for (size_t i = 0; i < state.blocks.size(); ++i) {
    Block& b = blocks_[state.blocks[i]];
    if (b.refs == 1) {
      b.tokens = std::min<int64_t>(config_.block_tokens,
                                   state.tokens - static_cast<int64_t>(i) * config_.block_tokens);
    }
  }
  IndexFullBlocks(state);
  NoteAllocation();
  return true;
}

void KvBlockManager::Fork(int64_t parent_id, int64_t child_id) {
  HF_CHECK_MSG(tables_.count(child_id) == 0, "sequence " << child_id << " already exists");
  const SequenceState& parent = State(parent_id);
  SequenceState child;
  child.tokens = parent.tokens;
  child.hashes = parent.hashes;
  child.blocks = parent.blocks;
  for (int64_t block : child.blocks) {
    Ref(block);
  }
  tables_.emplace(child_id, std::move(child));
  NoteAllocation();
}

bool KvBlockManager::CanAdmit(int64_t prompt_tokens, int64_t reserve_tokens) const {
  HF_CHECK_GE(prompt_tokens, 0);
  HF_CHECK_GE(reserve_tokens, 0);
  return BlocksFor(prompt_tokens + reserve_tokens) <= available_blocks();
}

bool KvBlockManager::CanAdmitShared(int64_t resident_tokens, int64_t reserve_tokens,
                                    const std::vector<uint64_t>& block_hashes) const {
  HF_CHECK_GE(resident_tokens, 0);
  HF_CHECK_GE(reserve_tokens, 0);
  const int64_t hit_tokens = PrefixHitTokens(block_hashes);
  const int64_t hit_count = hit_tokens / config_.block_tokens;
  const int64_t tokens = std::max(resident_tokens, hit_tokens);
  return BlocksFor(tokens + reserve_tokens) - hit_count <=
         available_blocks() - EvictableHitBlocks(block_hashes, hit_count);
}

bool KvBlockManager::CanAppendToken(int64_t sequence_id) const {
  const SequenceState& state = State(sequence_id);
  const bool needs_block = state.tokens % config_.block_tokens == 0 &&
                           BlocksFor(state.tokens + 1) > static_cast<int64_t>(state.blocks.size());
  if (needs_block) {
    return available_blocks() > 0;
  }
  // Writing into the tail block: a shared tail must copy-on-write split,
  // which also needs one block.
  const Block& tail = blocks_[state.blocks.back()];
  return tail.refs == 1 || available_blocks() > 0;
}

bool KvBlockManager::AppendToken(int64_t sequence_id) {
  SequenceState& state = State(sequence_id);
  const bool needs_block = state.tokens % config_.block_tokens == 0 &&
                           BlocksFor(state.tokens + 1) > static_cast<int64_t>(state.blocks.size());
  if (needs_block) {
    const int64_t block = AllocateBlock();
    if (block < 0) {
      return false;
    }
    Block& b = blocks_[static_cast<size_t>(block)];
    b.refs = 1;
    b.tokens = 1;
    ++used_blocks_;
    state.blocks.push_back(block);
    state.tokens += 1;
    NoteAllocation();
    return true;
  }
  Block& tail = blocks_[state.blocks.back()];
  if (tail.refs > 1) {
    // First divergent write into a shared tail: copy-on-write split. The
    // writer gets a private copy holding the same tokens; readers keep the
    // original untouched. Full shared blocks are never written (appends at
    // a boundary allocate fresh), so COW only ever hits the partial tail.
    const int64_t block = AllocateBlock();
    if (block < 0) {
      return false;
    }
    Block& copy = blocks_[static_cast<size_t>(block)];
    copy.refs = 1;
    copy.tokens = tail.tokens;
    ++used_blocks_;
    Unref(state.blocks.back());
    state.blocks.back() = block;
    ++cow_splits_total_;
    blocks_[static_cast<size_t>(block)].tokens += 1;
    state.tokens += 1;
    NoteAllocation();
    return true;
  }
  tail.tokens += 1;
  state.tokens += 1;
  return true;
}

void KvBlockManager::NoteAllocation() {
  high_water_blocks_ = std::max(high_water_blocks_, used_blocks_);
}

void KvBlockManager::NoteSharing() {
  shared_blocks_high_water_ = std::max(shared_blocks_high_water_, shared_blocks_);
}

void KvBlockManager::FreeSequence(int64_t sequence_id) {
  auto it = tables_.find(sequence_id);
  HF_CHECK_MSG(it != tables_.end(), "unknown sequence " << sequence_id);
  for (int64_t block : it->second.blocks) {
    Unref(block);
  }
  tables_.erase(it);
}

void KvBlockManager::FreeSequences(const std::vector<int64_t>& sequence_ids) {
  for (int64_t sequence_id : sequence_ids) {
    FreeSequence(sequence_id);
  }
}

int64_t KvBlockManager::SequenceTokens(int64_t sequence_id) const {
  return State(sequence_id).tokens;
}

const std::vector<int64_t>& KvBlockManager::BlockTable(int64_t sequence_id) const {
  return State(sequence_id).blocks;
}

double KvBlockManager::used_bytes() const {
  return static_cast<double>(used_blocks()) * static_cast<double>(config_.block_tokens) *
         config_.bytes_per_token;
}

double KvBlockManager::Occupancy() const {
  // Physical accounting: a block shared by n sequences contributes its
  // capacity and its fill exactly once (summing per-sequence token counts
  // would overstate fill n-fold under sharing).
  const int64_t allocated_tokens = used_blocks_ * config_.block_tokens;
  if (allocated_tokens == 0) {
    return 1.0;
  }
  int64_t live_tokens = 0;
  for (const Block& block : blocks_) {
    if (block.refs > 0) {
      live_tokens += block.tokens;
    }
  }
  return static_cast<double>(live_tokens) / static_cast<double>(allocated_tokens);
}

int64_t KvBlockManager::CapacitySequences(int64_t tokens_per_sequence) const {
  HF_CHECK_GT(tokens_per_sequence, 0);
  const int64_t blocks_each = BlocksFor(tokens_per_sequence);
  return blocks_each == 0 ? 0 : available_blocks() / blocks_each;
}

bool KvBlockManager::RefcountsConsistent() const {
  // Recount references from the tables and compare with the per-block
  // refcounts and the cached aggregates.
  std::vector<int64_t> counted(blocks_.size(), 0);
  for (const auto& [id, state] : tables_) {
    for (int64_t block : state.blocks) {
      counted[static_cast<size_t>(block)] += 1;
    }
  }
  int64_t used = 0;
  int64_t shared = 0;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].refs != counted[i]) {
      return false;
    }
    if (blocks_[i].refs > 0) {
      ++used;
    }
    if (blocks_[i].refs > 1) {
      ++shared;
    }
    if (blocks_[i].evictable && blocks_[i].refs != 0) {
      return false;
    }
  }
  if (used != used_blocks_ || shared != shared_blocks_) {
    return false;
  }
  // Free + evictable + referenced must partition the block space.
  std::vector<int> where(blocks_.size(), 0);
  for (int64_t block : free_list_) {
    where[static_cast<size_t>(block)] += 1;
    if (blocks_[static_cast<size_t>(block)].refs != 0 ||
        blocks_[static_cast<size_t>(block)].evictable) {
      return false;
    }
  }
  for (int64_t block : evictable_lru_) {
    where[static_cast<size_t>(block)] += 1;
    if (!blocks_[static_cast<size_t>(block)].evictable) {
      return false;
    }
  }
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const int expected = blocks_[i].refs > 0 ? 0 : 1;
    if (where[i] != expected) {
      return false;
    }
  }
  // Every index entry must name a materialized block carrying that hash.
  for (const auto& [hash, block] : prefix_index_) {
    const Block& b = blocks_[static_cast<size_t>(block)];
    if (b.hash != hash || (b.refs == 0 && !b.evictable)) {
      return false;
    }
  }
  return true;
}

DistributedKvManager::DistributedKvManager(int num_ranks, const KvBlockConfig& per_rank_config) {
  HF_CHECK_GT(num_ranks, 0);
  ranks_.reserve(static_cast<size_t>(num_ranks));
  for (int rank = 0; rank < num_ranks; ++rank) {
    ranks_.emplace_back(per_rank_config);
  }
}

KvBlockManager& DistributedKvManager::rank(int index) {
  HF_CHECK_GE(index, 0);
  HF_CHECK_LT(static_cast<size_t>(index), ranks_.size());
  return ranks_[static_cast<size_t>(index)];
}

const KvBlockManager& DistributedKvManager::rank(int index) const {
  HF_CHECK_GE(index, 0);
  HF_CHECK_LT(static_cast<size_t>(index), ranks_.size());
  return ranks_[static_cast<size_t>(index)];
}

bool DistributedKvManager::AddSequence(int64_t sequence_id, int64_t prompt_tokens) {
  return AddSequenceShared(sequence_id, prompt_tokens, {});
}

bool DistributedKvManager::AddSequenceShared(int64_t sequence_id, int64_t resident_tokens,
                                             const std::vector<uint64_t>& block_hashes) {
  // All-or-nothing: ranks are symmetric and in lockstep, so either every
  // rank can place the sequence or none can.
  for (const KvBlockManager& manager : ranks_) {
    if (!manager.CanAdmitShared(resident_tokens, 0, block_hashes)) {
      return false;
    }
  }
  for (KvBlockManager& manager : ranks_) {
    HF_CHECK_MSG(manager.AddSequenceShared(sequence_id, resident_tokens, block_hashes),
                 "symmetric ranks diverged while adding a sequence");
  }
  return true;
}

bool DistributedKvManager::ExtendSequence(int64_t sequence_id, int64_t resident_tokens) {
  for (const KvBlockManager& manager : ranks_) {
    if (!manager.CanExtendSequence(sequence_id, resident_tokens)) {
      return false;
    }
  }
  for (KvBlockManager& manager : ranks_) {
    HF_CHECK_MSG(manager.ExtendSequence(sequence_id, resident_tokens),
                 "symmetric ranks diverged while extending a sequence");
  }
  return true;
}

void DistributedKvManager::Fork(int64_t parent_id, int64_t child_id) {
  for (KvBlockManager& manager : ranks_) {
    manager.Fork(parent_id, child_id);
  }
}

bool DistributedKvManager::AppendToken(int64_t sequence_id) {
  // Either every rank can append (allocating or COW-splitting as needed)
  // or none does.
  for (const KvBlockManager& manager : ranks_) {
    if (!manager.CanAppendToken(sequence_id)) {
      return false;
    }
  }
  for (KvBlockManager& manager : ranks_) {
    HF_CHECK(manager.AppendToken(sequence_id));
  }
  return true;
}

void DistributedKvManager::FreeSequence(int64_t sequence_id) {
  for (KvBlockManager& manager : ranks_) {
    manager.FreeSequence(sequence_id);
  }
}

void DistributedKvManager::FreeSequences(const std::vector<int64_t>& sequence_ids) {
  for (KvBlockManager& manager : ranks_) {
    manager.FreeSequences(sequence_ids);
  }
}

bool DistributedKvManager::CanAdmit(int64_t prompt_tokens, int64_t reserve_tokens) const {
  for (const KvBlockManager& manager : ranks_) {
    if (!manager.CanAdmit(prompt_tokens, reserve_tokens)) {
      return false;
    }
  }
  return true;
}

bool DistributedKvManager::CanAdmitShared(int64_t resident_tokens, int64_t reserve_tokens,
                                          const std::vector<uint64_t>& block_hashes) const {
  for (const KvBlockManager& manager : ranks_) {
    if (!manager.CanAdmitShared(resident_tokens, reserve_tokens, block_hashes)) {
      return false;
    }
  }
  return true;
}

int64_t DistributedKvManager::PrefixHitTokens(const std::vector<uint64_t>& block_hashes) const {
  // Lockstep makes rank 0 authoritative for index contents.
  return ranks_[0].PrefixHitTokens(block_hashes);
}

int64_t DistributedKvManager::high_water_blocks() const {
  int64_t high_water = 0;
  for (const KvBlockManager& manager : ranks_) {
    high_water = std::max(high_water, manager.high_water_blocks());
  }
  return high_water;
}

bool DistributedKvManager::TablesInLockstep() const {
  for (size_t rank = 1; rank < ranks_.size(); ++rank) {
    if (ranks_[rank].num_sequences() != ranks_[0].num_sequences() ||
        ranks_[rank].used_blocks() != ranks_[0].used_blocks() ||
        ranks_[rank].shared_blocks() != ranks_[0].shared_blocks() ||
        ranks_[rank].cached_blocks() != ranks_[0].cached_blocks()) {
      return false;
    }
  }
  return true;
}

double DistributedKvManager::total_used_bytes() const {
  double total = 0.0;
  for (const KvBlockManager& manager : ranks_) {
    total += manager.used_bytes();
  }
  return total;
}

}  // namespace hybridflow
