// Paged KVCache block manager (§7).
//
// vLLM manages the KV cache as fixed-size blocks with per-sequence block
// tables (PagedAttention); the paper replaces its *centralized* manager
// with a *distributed* one so each worker manages its own shard under the
// multi-controller paradigm. This module implements both pieces:
//
//   * KvBlockManager — one rank's allocator: a free list of fixed-size
//     blocks, per-sequence block tables, append-token/free operations, and
//     occupancy statistics. Capacity exhaustion is reported, not fatal —
//     the generation loop reacts by scheduling sequences in waves.
//   * DistributedKvManager — the per-TP-group view: one KvBlockManager per
//     participating rank, kept in lockstep because KV tensors are sharded
//     (every rank holds 1/t_g of each token's KV, so block tables are
//     replicated while bytes are divided).
#ifndef SRC_KVCACHE_BLOCK_MANAGER_H_
#define SRC_KVCACHE_BLOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <vector>

namespace hybridflow {

struct KvBlockConfig {
  int64_t block_tokens = 16;       // Tokens per block (vLLM default 16).
  int64_t num_blocks = 1024;       // Blocks available on this rank.
  double bytes_per_token = 1024.0; // KV bytes per token on this rank's shard.
};

class KvBlockManager {
 public:
  explicit KvBlockManager(const KvBlockConfig& config);

  const KvBlockConfig& config() const { return config_; }

  // Registers a new sequence with `prompt_tokens` of initial context.
  // Returns false (allocating nothing) if the blocks don't fit.
  bool AddSequence(int64_t sequence_id, int64_t prompt_tokens);

  // Admission probe for schedulers: would a new sequence of
  // `prompt_tokens` fit right now with `reserve_tokens` of decode headroom
  // on top? Pure capacity check — allocates nothing.
  bool CanAdmit(int64_t prompt_tokens, int64_t reserve_tokens) const;

  // Appends one generated token; may allocate one block. Returns false on
  // capacity exhaustion (sequence state unchanged).
  bool AppendToken(int64_t sequence_id);

  // Releases all blocks of a finished sequence.
  void FreeSequence(int64_t sequence_id);

  // Bulk release (preemption path): frees every listed sequence in one
  // call so a scheduler can reclaim a victim set atomically.
  void FreeSequences(const std::vector<int64_t>& sequence_ids);

  bool HasSequence(int64_t sequence_id) const { return tables_.count(sequence_id) > 0; }
  int64_t SequenceTokens(int64_t sequence_id) const;
  // The block table (physical block ids, in order) of a sequence.
  const std::vector<int64_t>& BlockTable(int64_t sequence_id) const;

  int64_t free_blocks() const { return static_cast<int64_t>(free_list_.size()); }
  int64_t used_blocks() const { return config_.num_blocks - free_blocks(); }
  int64_t num_sequences() const { return static_cast<int64_t>(tables_.size()); }
  double used_bytes() const;
  // Fraction of allocated block capacity actually holding tokens (1 -
  // internal fragmentation).
  double Occupancy() const;
  // Tail waste of partially filled blocks: 1 - Occupancy().
  double InternalFragmentation() const { return 1.0 - Occupancy(); }
  // Most blocks ever simultaneously allocated over this manager's
  // lifetime (high-water mark; never decreases).
  int64_t high_water_blocks() const { return high_water_blocks_; }
  // Sequences that fit if each needs `tokens_per_sequence` in total.
  int64_t CapacitySequences(int64_t tokens_per_sequence) const;
  // Blocks needed to hold `tokens` (ceiling division).
  int64_t BlocksFor(int64_t tokens) const;

 private:
  struct SequenceState {
    std::vector<int64_t> blocks;
    int64_t tokens = 0;
  };

  void NoteAllocation();

  KvBlockConfig config_;
  std::vector<int64_t> free_list_;
  std::map<int64_t, SequenceState> tables_;
  int64_t high_water_blocks_ = 0;
};

// The TP-group view: block tables replicated across ranks, bytes sharded.
class DistributedKvManager {
 public:
  // `ranks` managers share one logical cache; all must have identical
  // block geometry.
  DistributedKvManager(int num_ranks, const KvBlockConfig& per_rank_config);

  int num_ranks() const { return static_cast<int>(ranks_.size()); }
  KvBlockManager& rank(int index);

  // Group-level operations keep every rank's tables in lockstep; they
  // succeed only if every rank can allocate (all-or-nothing).
  bool AddSequence(int64_t sequence_id, int64_t prompt_tokens);
  bool AppendToken(int64_t sequence_id);
  void FreeSequence(int64_t sequence_id);
  void FreeSequences(const std::vector<int64_t>& sequence_ids);

  // True iff every rank can admit (symmetric geometry makes rank 0
  // authoritative, but all ranks are probed to preserve the invariant).
  bool CanAdmit(int64_t prompt_tokens, int64_t reserve_tokens) const;
  // Group high-water mark (max over ranks; ranks move in lockstep).
  int64_t high_water_blocks() const;

  // Invariant check: every rank holds identical block tables.
  bool TablesInLockstep() const;

  double total_used_bytes() const;

 private:
  std::vector<KvBlockManager> ranks_;
};

}  // namespace hybridflow

#endif  // SRC_KVCACHE_BLOCK_MANAGER_H_
