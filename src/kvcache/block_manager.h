// Paged KVCache block manager (§7) with prefix sharing.
//
// vLLM manages the KV cache as fixed-size blocks with per-sequence block
// tables (PagedAttention); the paper replaces its *centralized* manager
// with a *distributed* one so each worker manages its own shard under the
// multi-controller paradigm. On top of the paged allocator this module
// layers the proven sharing shape of production engines (LLMInfer's
// block_manager, SGLang-style RadixAttention prefix caching):
//
//   * Ref-counted blocks — a physical block may appear in many sequences'
//     block tables; it returns to circulation only when its last reference
//     drops.
//   * Hash-keyed prefix cache — full prompt blocks carry a content hash
//     (chained over the token prefix, so equal hash => equal prefix) and
//     are indexed; a new sequence whose leading blocks hit the index
//     shares them instead of re-allocating and re-prefilling.
//   * Copy-on-write forking — Fork() gives a child all of its parent's
//     blocks by reference; the first divergent AppendToken into a shared
//     block splits it (allocate + logical copy) so writers never perturb
//     readers.
//   * Cached-block retention — when prefix caching is enabled, a hashed
//     block whose refcount drops to zero is *retained* in an LRU list
//     instead of freed, so a later identical prompt still hits; retained
//     blocks are evicted (LRU, index pruned) when allocation runs dry.
//
// Block lifecycle, refcount invariants, and the greedy-equivalence
// contract under sharing are documented in docs/KVCACHE.md.
//
// Two managers:
//   * KvBlockManager — one rank's allocator.
//   * DistributedKvManager — the per-TP-group view: one KvBlockManager per
//     participating rank, kept in lockstep because KV tensors are sharded
//     (every rank holds 1/t_g of each token's KV, so block tables are
//     replicated while bytes are divided).
#ifndef SRC_KVCACHE_BLOCK_MANAGER_H_
#define SRC_KVCACHE_BLOCK_MANAGER_H_

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

namespace hybridflow {

struct KvBlockConfig {
  int64_t block_tokens = 16;       // Tokens per block (vLLM default 16).
  int64_t num_blocks = 1024;       // Blocks available on this rank.
  double bytes_per_token = 1024.0; // KV bytes per token on this rank's shard.
  // Prefix cache switch. Off (the default), hashes are ignored, blocks are
  // never shared or retained, and the manager behaves exactly like the
  // pre-sharing allocator.
  bool enable_prefix_cache = false;
};

// Chained content hashes for the *full* blocks of a token prefix: entry i
// covers tokens [0, (i+1) * block_tokens) — hashing is cumulative, so two
// sequences share entry i only if their entire prefixes up to that point
// are identical. Partial tail blocks are never hashed (they are mutable).
// Hashes are never zero (zero is the "unhashed" sentinel).
std::vector<uint64_t> PromptBlockHashes(const std::vector<int64_t>& tokens,
                                        int64_t block_tokens);
// Same keying for count-based planes that lack token content: one chained
// hash per full block of a `group`-identified prompt (equal group =>
// identical simulated prompt). `full_blocks` = prompt_tokens / block_tokens.
std::vector<uint64_t> GroupBlockHashes(int64_t group, int64_t full_blocks);

class KvBlockManager {
 public:
  explicit KvBlockManager(const KvBlockConfig& config);

  const KvBlockConfig& config() const { return config_; }

  // Registers a new sequence with `prompt_tokens` of initial context,
  // allocated privately (no sharing). Returns false (allocating nothing)
  // if the blocks don't fit.
  bool AddSequence(int64_t sequence_id, int64_t prompt_tokens);

  // Registers a new sequence resident to `resident_tokens`, sharing the
  // leading full blocks whose content hashes hit the prefix index and
  // allocating the rest fresh. Freshly allocated full blocks that carry a
  // hash are registered in the index. All-or-nothing; returns false on
  // capacity exhaustion. `block_hashes` may be shorter than the full-block
  // count of `resident_tokens` (trailing blocks are simply unhashed) and is
  // ignored entirely when the prefix cache is disabled.
  bool AddSequenceShared(int64_t sequence_id, int64_t resident_tokens,
                         const std::vector<uint64_t>& block_hashes);

  // Longest run of leading hashed blocks currently materialized in the
  // cache, in tokens. Pure probe — allocates and touches nothing.
  int64_t PrefixHitTokens(const std::vector<uint64_t>& block_hashes) const;

  // Of that same leading hit run, how many blocks are currently *referenced*
  // (refs > 0) by live sequences. Sharing those consumes no extra capacity,
  // unlike evictable hits, which leave the reclaimable pool when re-refed.
  // Admission planners use this to discount genuinely-free sharing only.
  int64_t PrefixHitBlocksReferenced(const std::vector<uint64_t>& block_hashes) const;

  // Grows a sequence's residency to cover `resident_tokens` (no-op if it
  // already does). All-or-nothing; returns false on exhaustion. The
  // incremental-residency path: chunked prefill acquires blocks chunk by
  // chunk instead of all at admission.
  bool ExtendSequence(int64_t sequence_id, int64_t resident_tokens);

  // Registers `child_id` sharing every one of `parent_id`'s blocks by
  // reference (group sampling: n responses over one prompt prefill).
  // Allocates nothing; the first divergent AppendToken copy-on-write
  // splits the shared tail.
  void Fork(int64_t parent_id, int64_t child_id);

  // Admission probe for schedulers: would a new sequence of
  // `prompt_tokens` fit right now with `reserve_tokens` of decode headroom
  // on top? Pure capacity check — allocates nothing.
  bool CanAdmit(int64_t prompt_tokens, int64_t reserve_tokens) const;
  // Sharing-aware probe: like CanAdmit but discounts the leading blocks
  // `block_hashes` would share instead of allocate.
  bool CanAdmitShared(int64_t resident_tokens, int64_t reserve_tokens,
                      const std::vector<uint64_t>& block_hashes) const;

  // Appends one generated token. May allocate one block (at a block
  // boundary) or copy-on-write split a shared tail block (first divergent
  // write after Fork). Returns false on capacity exhaustion (sequence
  // state unchanged).
  bool AppendToken(int64_t sequence_id);
  // Would AppendToken succeed right now? Pure probe (used by the
  // distributed manager to keep ranks all-or-nothing).
  bool CanAppendToken(int64_t sequence_id) const;
  // Would ExtendSequence succeed right now? Pure probe.
  bool CanExtendSequence(int64_t sequence_id, int64_t resident_tokens) const;

  // Drops all of a finished sequence's references. A block returns to the
  // free list when its last reference drops — unless it is hashed and the
  // prefix cache is on, in which case it is retained (evictable, LRU).
  void FreeSequence(int64_t sequence_id);

  // Bulk release (preemption path): frees every listed sequence in one
  // call so a scheduler can reclaim a victim set atomically.
  void FreeSequences(const std::vector<int64_t>& sequence_ids);

  bool HasSequence(int64_t sequence_id) const { return tables_.count(sequence_id) > 0; }
  int64_t SequenceTokens(int64_t sequence_id) const;
  // The block table (physical block ids, in order) of a sequence.
  const std::vector<int64_t>& BlockTable(int64_t sequence_id) const;

  // Never-written blocks on the free list.
  int64_t free_blocks() const { return static_cast<int64_t>(free_list_.size()); }
  // Blocks referenced by at least one live sequence. Shared blocks count
  // once — this is physical usage, and the leak invariant: it must return
  // to zero once every sequence is freed, cached retention notwithstanding.
  int64_t used_blocks() const { return used_blocks_; }
  // Unreferenced hashed blocks retained for future prefix hits (evictable).
  int64_t cached_blocks() const { return static_cast<int64_t>(evictable_lru_.size()); }
  // Blocks an allocation could draw on right now: free + evictable.
  int64_t available_blocks() const { return free_blocks() + cached_blocks(); }
  // Blocks currently referenced by two or more sequences.
  int64_t shared_blocks() const { return shared_blocks_; }
  int64_t num_sequences() const { return static_cast<int64_t>(tables_.size()); }
  double used_bytes() const;
  // Fraction of allocated block capacity actually holding tokens (1 -
  // internal fragmentation). Physical: a block shared by n sequences
  // counts its capacity and its tokens once, not n times.
  double Occupancy() const;
  // Tail waste of partially filled blocks: 1 - Occupancy().
  double InternalFragmentation() const { return 1.0 - Occupancy(); }
  // Most blocks ever simultaneously referenced over this manager's
  // lifetime (high-water mark; never decreases).
  int64_t high_water_blocks() const { return high_water_blocks_; }
  // Sequences that fit if each needs `tokens_per_sequence` in total.
  int64_t CapacitySequences(int64_t tokens_per_sequence) const;
  // Blocks needed to hold `tokens` (ceiling division).
  int64_t BlocksFor(int64_t tokens) const;

  // Lifetime counters (docs/KVCACHE.md; surfaced as kvcache.* metrics).
  int64_t prefix_hit_tokens_total() const { return prefix_hit_tokens_total_; }
  int64_t cow_splits_total() const { return cow_splits_total_; }
  int64_t evictions_total() const { return evictions_total_; }
  int64_t shared_blocks_high_water() const { return shared_blocks_high_water_; }

  // Invariant audit (test hook): per-block refcounts equal the number of
  // block-table entries naming the block, every block is in exactly one of
  // {free, evictable, referenced}, and the three partitions sum to
  // num_blocks. Cheap enough to call after every test scenario.
  bool RefcountsConsistent() const;

 private:
  struct Block {
    int64_t refs = 0;
    int64_t tokens = 0;    // Tokens written into this block.
    uint64_t hash = 0;     // Content key; 0 = unhashed (never indexed).
    bool evictable = false;
    std::list<int64_t>::iterator lru;  // Valid iff evictable.
  };
  struct SequenceState {
    std::vector<int64_t> blocks;
    int64_t tokens = 0;
    // Content hashes for this sequence's prompt blocks (AddSequenceShared
    // keeps them so later ExtendSequence calls can index blocks once they
    // fill). Empty on the private AddSequence path.
    std::vector<uint64_t> hashes;
  };

  SequenceState& State(int64_t sequence_id);
  const SequenceState& State(int64_t sequence_id) const;
  // Takes a block from the free list, or evicts the LRU cached block
  // (pruning its index entry). Returns -1 when neither is possible.
  int64_t AllocateBlock();
  // Adds one reference; a previously evictable block leaves the LRU.
  void Ref(int64_t block);
  // Drops one reference; on zero, retain (hashed + indexed) or free.
  void Unref(int64_t block);
  // Stamps + indexes any of `state`'s own blocks that are now completely
  // filled and have a known content hash (first writer wins per hash).
  void IndexFullBlocks(SequenceState& state);
  // How many of the first `hit_count` prefix hits currently sit in the
  // evictable cache (refs == 0). Those blocks are counted by
  // available_blocks() but leave the pool the moment admission re-refs
  // them, so admission probes must discount them.
  int64_t EvictableHitBlocks(const std::vector<uint64_t>& block_hashes, int64_t hit_count) const;
  void NoteAllocation();
  void NoteSharing();

  KvBlockConfig config_;
  std::vector<Block> blocks_;
  std::vector<int64_t> free_list_;
  // Unreferenced-but-retained blocks, least recently used at the front.
  std::list<int64_t> evictable_lru_;
  std::unordered_map<uint64_t, int64_t> prefix_index_;  // hash -> block id.
  std::map<int64_t, SequenceState> tables_;
  int64_t used_blocks_ = 0;
  int64_t shared_blocks_ = 0;
  int64_t high_water_blocks_ = 0;
  int64_t shared_blocks_high_water_ = 0;
  int64_t prefix_hit_tokens_total_ = 0;
  int64_t cow_splits_total_ = 0;
  int64_t evictions_total_ = 0;
};

// The TP-group view: block tables replicated across ranks, bytes sharded.
class DistributedKvManager {
 public:
  // `ranks` managers share one logical cache; all must have identical
  // block geometry.
  DistributedKvManager(int num_ranks, const KvBlockConfig& per_rank_config);

  int num_ranks() const { return static_cast<int>(ranks_.size()); }
  KvBlockManager& rank(int index);
  const KvBlockManager& rank(int index) const;

  // Group-level operations keep every rank's tables in lockstep; they
  // succeed only if every rank can allocate (all-or-nothing).
  bool AddSequence(int64_t sequence_id, int64_t prompt_tokens);
  bool AddSequenceShared(int64_t sequence_id, int64_t resident_tokens,
                         const std::vector<uint64_t>& block_hashes);
  bool ExtendSequence(int64_t sequence_id, int64_t resident_tokens);
  void Fork(int64_t parent_id, int64_t child_id);
  bool AppendToken(int64_t sequence_id);
  void FreeSequence(int64_t sequence_id);
  void FreeSequences(const std::vector<int64_t>& sequence_ids);

  // True iff every rank can admit (symmetric geometry makes rank 0
  // authoritative, but all ranks are probed to preserve the invariant).
  bool CanAdmit(int64_t prompt_tokens, int64_t reserve_tokens) const;
  bool CanAdmitShared(int64_t resident_tokens, int64_t reserve_tokens,
                      const std::vector<uint64_t>& block_hashes) const;
  // Ranks are in lockstep, so rank 0's prefix index is authoritative.
  int64_t PrefixHitTokens(const std::vector<uint64_t>& block_hashes) const;
  // Group high-water mark (max over ranks; ranks move in lockstep).
  int64_t high_water_blocks() const;

  // Invariant check: every rank holds identical block tables.
  bool TablesInLockstep() const;

  double total_used_bytes() const;

 private:
  std::vector<KvBlockManager> ranks_;
};

}  // namespace hybridflow

#endif  // SRC_KVCACHE_BLOCK_MANAGER_H_
