// Performance-plane hook of the rollout engine: replays the same
// RolloutScheduler over *nominal* (full-scale) sequence lengths and charges
// each step's prefill/decode/comm cost through PerfModel, replacing the
// closed-form wave approximation of PerfModel::GenerateTime when continuous
// batching is enabled. KV-pressure effects (waves, preemption, tail
// stragglers) emerge from actual block-granular scheduling.
#ifndef SRC_ROLLOUT_TIMING_H_
#define SRC_ROLLOUT_TIMING_H_

#include <cstdint>
#include <vector>

#include "src/perf/perf_model.h"
#include "src/rollout/engine.h"

namespace hybridflow {

// One full-scale sequence of the simulated workload.
struct NominalSequence {
  int64_t prompt_tokens = 0;
  int64_t response_tokens = 0;
  // Content identity for the prefix cache (count-based plane): sequences
  // with the same non-negative group are declared to share an identical
  // prompt (group sampling: n responses per prompt), so their full prompt
  // blocks hash equal and share. -1 = unique prompt, never shared.
  int64_t prompt_group = -1;
};

struct RolloutSimResult {
  GenTimeBreakdown time;
  RolloutStats stats;
  // Largest single engine-step latency (prefill + decode + comm). Chunked
  // prefill bounds this: without it a long prompt's one-shot prefill spikes
  // the step every decode row must wait behind.
  double max_step_seconds = 0.0;
  // Sim-plane per-sequence latency digests (TTFT / TPOT / queue delay /
  // preemption stall, all in sim-seconds), derived from the lifecycle
  // event stream the scheduler records against the advancing step clock.
  // Always populated; the raw events additionally outlive the call when
  // RolloutOptions::sim_event_log is set.
  SeqLatencySummary latency;
};

// Simulates continuous-batching generation of `sequences` on one model
// replica (sharded per `gen` over `replica_devices`) with a per-GPU KV
// budget of `kv_budget_bytes`. Block geometry follows GenerateTime's
// convention (16-token blocks, KvBytesPerTokenPerGpu), raised if needed so
// the longest sequence fits alone. Preempted sequences recompute their
// context on resume, charged as prefill.
RolloutSimResult SimulateContinuousGeneration(const PerfModel& perf,
                                              const GenParallelConfig& gen,
                                              const std::vector<DeviceId>& replica_devices,
                                              const std::vector<NominalSequence>& sequences,
                                              double kv_budget_bytes,
                                              const RolloutOptions& options);

}  // namespace hybridflow

#endif  // SRC_ROLLOUT_TIMING_H_
