// Request-level sequence state for the continuous-batching rollout engine
// (vLLM/ScaleLLM-style, adapted to the dual-plane design; docs/ROLLOUT.md).
//
// A RolloutSequence is *count-based* metadata only — prompt/response token
// counts, lifecycle state, and KV residency — so the same scheduler drives
// both the real data plane (RolloutEngine over the toy PolicyNet) and the
// simulated performance plane (SimulateContinuousGeneration over PerfModel).
#ifndef SRC_ROLLOUT_SEQUENCE_H_
#define SRC_ROLLOUT_SEQUENCE_H_

#include <cstdint>
#include <vector>

namespace hybridflow {

// waiting -> prefill -> decode -> finished, with preempted -> waiting on
// capacity exhaustion (free-and-requeue; recompute on resume). The serving
// front end (src/serving/) adds two terminal exits reachable from any
// non-terminal state: cancelled (client-side) and expired (TTFT deadline
// passed before the first token); both release KV residency immediately.
enum class SequenceState {
  kWaiting,
  kPrefill,
  kDecode,
  kFinished,
  kPreempted,
  kCancelled,
  kExpired,
};

struct RolloutSequence {
  int64_t id = 0;
  int64_t prompt_tokens = 0;
  // Response tokens emitted so far. Survives preemption: generated tokens
  // are kept by the data plane and only their KV entries are recomputed
  // (charged as prefill) on resume.
  int64_t generated = 0;
  int64_t target_new_tokens = 0;  // Response-length cap.
  SequenceState state = SequenceState::kWaiting;
  int64_t kv_tokens = 0;  // Tokens currently resident in the KV cache.
  // Context tokens whose prefill compute has run since (re)admission.
  // Under chunked prefill a sequence stays in kPrefill across steps until
  // this catches up with total_tokens(); preemption resets it to zero
  // (recompute-on-resume covers the whole grown context).
  int64_t prefill_computed = 0;
  int64_t enqueue_step = 0;
  int64_t first_admit_step = -1;  // -1 until first admitted.
  int64_t preemptions = 0;

  // Prefix-sharing metadata (src/kvcache/ prefix cache): chained content
  // hashes of the full prompt blocks, from PromptBlockHashes (data plane)
  // or GroupBlockHashes (sim plane). Empty disables sharing for this
  // sequence; ignored entirely when the KV manager's prefix cache is off.
  std::vector<uint64_t> block_hashes;
  // Prompt-prefix tokens whose prefill compute was skipped at the last
  // (re)admission because their blocks were served from the prefix cache.
  int64_t prefix_skipped_tokens = 0;
  // Full-length block reservation held while running (scheduler-side
  // accounting, RolloutSchedulerConfig::reserve_full_length): blocks this
  // sequence will occupy at prompt + target length, minus prefix blocks
  // already referenced by live sequences at admission. Zero while not
  // running or when reservations are disabled.
  int64_t reserved_blocks = 0;

  // Serving metadata (src/serving/); inert on the plain RLHF rollout path.
  // `tenant` keys weighted fair queueing, `priority` orders admission under
  // AdmissionPolicy::kPriority (higher first), and `ttft_deadline` is an
  // absolute scheduler-clock instant (SetSimNow units) after which an
  // un-started sequence is expired rather than served late; <= 0 disables.
  int64_t tenant = 0;
  int64_t priority = 0;
  double ttft_deadline = 0.0;

  // Context length a (re)admission must cover.
  int64_t total_tokens() const { return prompt_tokens + generated; }
  int64_t remaining_tokens() const { return target_new_tokens - generated; }
};

// Rolling context window of one sequence: reproduces
// ContextWindow(prompt, response, emitted, window) — the last `window`
// tokens of prompt+response, left-padded with 0 — but maintained
// incrementally (one shift+append per generated token) instead of being
// rebuilt from the full prompt+response at every decode step.
class IncrementalContext {
 public:
  IncrementalContext(const std::vector<int64_t>& prompt, int64_t window);

  // Appends one generated token, sliding the window left by one.
  void Push(int64_t token);

  const std::vector<int64_t>& tokens() const { return window_; }

 private:
  std::vector<int64_t> window_;
};

}  // namespace hybridflow

#endif  // SRC_ROLLOUT_SEQUENCE_H_
