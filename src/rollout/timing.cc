#include "src/rollout/timing.h"

#include <algorithm>

#include "src/common/check.h"

namespace hybridflow {

RolloutSimResult SimulateContinuousGeneration(const PerfModel& perf,
                                              const GenParallelConfig& gen,
                                              const std::vector<DeviceId>& replica_devices,
                                              const std::vector<NominalSequence>& sequences,
                                              double kv_budget_bytes,
                                              const RolloutOptions& options) {
  RolloutSimResult result;
  result.stats.sequences = static_cast<int64_t>(sequences.size());
  if (sequences.empty()) {
    return result;
  }

  // Same block geometry as PerfModel::GenerateTime's wave capacity model:
  // 16-token blocks of sharded per-token KV bytes, budget-limited, raised
  // to fit the longest sequence alone (progress contract).
  KvBlockConfig kv_config;
  kv_config.block_tokens = 16;
  kv_config.bytes_per_token = perf.KvBytesPerTokenPerGpu(gen);
  kv_config.enable_prefix_cache = options.enable_prefix_cache;
  int64_t fit_largest = 0;
  for (const NominalSequence& sequence : sequences) {
    HF_CHECK_GT(sequence.prompt_tokens, 0);
    HF_CHECK_GE(sequence.response_tokens, 0);
    const int64_t full = sequence.prompt_tokens + sequence.response_tokens;
    fit_largest =
        std::max(fit_largest, (full + kv_config.block_tokens - 1) / kv_config.block_tokens);
  }
  const double block_bytes =
      static_cast<double>(kv_config.block_tokens) * kv_config.bytes_per_token;
  const int64_t budget_blocks =
      block_bytes > 0.0 ? static_cast<int64_t>(kv_budget_bytes / block_bytes) : fit_largest;
  kv_config.num_blocks = std::max(budget_blocks, fit_largest);
  DistributedKvManager kv(1, kv_config);

  std::vector<RolloutSequence> states(sequences.size());
  RolloutSchedulerConfig scheduler_config;
  scheduler_config.policy = options.policy;
  scheduler_config.reserve_tokens = options.reserve_tokens;
  scheduler_config.max_running = options.max_running;
  scheduler_config.prefill_chunk_tokens = options.prefill_chunk_tokens;
  scheduler_config.reserve_full_length = options.reserve_full_length;
  RolloutScheduler scheduler(scheduler_config, &kv, &states);
  // Lifecycle events always feed the latency digests; they only outlive
  // this call when the caller provides a sink.
  SeqEventLog local_events;
  SeqEventLog* events = options.sim_event_log != nullptr ? options.sim_event_log : &local_events;
  const int64_t event_run = events->BeginRun();
  scheduler.SetEventLog(events, event_run);
  for (size_t i = 0; i < sequences.size(); ++i) {
    RolloutSequence& state = states[i];
    state.id = static_cast<int64_t>(i);
    state.prompt_tokens = sequences[i].prompt_tokens;
    state.target_new_tokens = sequences[i].response_tokens;
    if (options.enable_prefix_cache) {
      // Count-based content identity: equal groups hash equal, so the sim
      // plane shares (and skips prefill over) the same prompt blocks the
      // data plane would. Unique prompts (group < 0) still get hashes — in
      // their own per-sequence namespace, disjoint from the non-negative
      // group ids — because the data plane hashes every prompt's actual
      // tokens: a preempted victim's retained prompt blocks are prefix
      // hits on resume, so recompute covers only the response tail.
      const int64_t group = sequences[i].prompt_group >= 0
                                ? sequences[i].prompt_group
                                : -static_cast<int64_t>(i) - 1;
      state.block_hashes =
          GroupBlockHashes(group, sequences[i].prompt_tokens / kv_config.block_tokens);
    }
    if (state.target_new_tokens > 0) {
      scheduler.Enqueue(state.id);
    } else {
      state.state = SequenceState::kFinished;
    }
  }

  double sim_now = 0.0;
  while (scheduler.HasWork()) {
    // Admission/preemption events carry the step-start clock; the commit's
    // token events carry the step-end clock (after this step's cost).
    scheduler.SetSimNow(sim_now);
    const StepPlan plan = scheduler.BeginStep();

    const KvBlockManager& rank0 = kv.rank(0);
    const double utilization =
        kv_config.num_blocks > 0
            ? static_cast<double>(rank0.used_blocks()) / static_cast<double>(kv_config.num_blocks)
            : 0.0;
    result.stats.kv_peak_utilization =
        std::max(result.stats.kv_peak_utilization, utilization);

    // Prefill: (re)admitted contexts are computed from scratch —
    // recompute-on-resume charges prompt + kept response tokens again.
    // Under chunked prefill each chunk charges only its own tokens, so the
    // per-step prefill cost is bounded by the chunk budget.
    double step_seconds = 0.0;
    if (!plan.prefill.empty()) {
      std::vector<int64_t> prefill_tokens;
      prefill_tokens.reserve(plan.prefill.size());
      for (const PrefillChunk& chunk : plan.prefill) {
        prefill_tokens.push_back(chunk.tokens);
      }
      const double prefill_seconds = perf.PrefillStepTime(gen, replica_devices, prefill_tokens);
      result.time.prefill_seconds += prefill_seconds;
      step_seconds += prefill_seconds;
    }

    // Decode: rows that caught up with their context emit one token against
    // its live KV; partial chunks do not run the decode step yet.
    const int64_t emitting = plan.EmittingRows();
    if (emitting > 0) {
      int64_t context_tokens = 0;
      for (const PrefillChunk& chunk : plan.prefill) {
        if (chunk.completes) {
          context_tokens += states[static_cast<size_t>(chunk.id)].kv_tokens;
        }
      }
      for (int64_t id : plan.decode) {
        context_tokens += states[static_cast<size_t>(id)].kv_tokens;
      }
      const double decode_seconds =
          perf.DecodeStepTime(gen, replica_devices, emitting, context_tokens);
      const double comm_seconds = perf.DecodeCommStepTime(gen, replica_devices, emitting);
      result.time.decode_seconds += decode_seconds;
      result.time.comm_seconds += comm_seconds;
      step_seconds += decode_seconds + comm_seconds;
    }
    result.max_step_seconds = std::max(result.max_step_seconds, step_seconds);

    sim_now += step_seconds;
    scheduler.SetSimNow(sim_now);
    scheduler.CommitStep(plan, /*eos_finished=*/{});
  }

  const RolloutSchedulerStats& scheduler_stats = scheduler.stats();
  result.stats.steps = scheduler_stats.steps;
  result.stats.admissions = scheduler_stats.admissions;
  result.stats.preemptions = scheduler_stats.preemptions;
  result.stats.max_running_batch = scheduler_stats.max_running;
  result.stats.prefill_chunks = scheduler_stats.prefill_chunks;
  result.stats.max_prefill_tokens_step = scheduler_stats.max_prefill_tokens_step;
  result.stats.resumes = scheduler_stats.resumes;
  result.stats.recomputed_tokens = scheduler_stats.recomputed_tokens;
  result.stats.kv_high_water_blocks = kv.high_water_blocks();
  result.stats.prefix_skipped_tokens = scheduler_stats.prefix_skipped_tokens;
  result.stats.cow_splits = kv.rank(0).cow_splits_total();
  result.stats.shared_blocks_high_water = kv.rank(0).shared_blocks_high_water();
  result.latency = SummarizeSeqLatencies(
      DeriveSeqLatencies(events == &local_events ? local_events.Snapshot()
                                                 : events->SnapshotRun(event_run),
                         /*wall=*/false));
  for (const RolloutSequence& state : states) {
    if (state.target_new_tokens == 0) {
      continue;
    }
    const int64_t wait = std::max<int64_t>(state.first_admit_step - state.enqueue_step, 0);
    result.stats.queue_wait_steps_total += wait;
    result.stats.queue_wait_steps_max = std::max(result.stats.queue_wait_steps_max, wait);
  }
  result.time.waves = 1;
  return result;
}

}  // namespace hybridflow
