#include "src/rollout/scheduler.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace hybridflow {

RolloutScheduler::RolloutScheduler(const RolloutSchedulerConfig& config, DistributedKvManager* kv,
                                   std::vector<RolloutSequence>* sequences)
    : config_(config), kv_(kv), sequences_(sequences) {
  HF_CHECK(kv_ != nullptr);
  HF_CHECK(sequences_ != nullptr);
  HF_CHECK_GE(config_.reserve_tokens, 0);
  HF_CHECK_GE(config_.max_running, 0);
  HF_CHECK_GE(config_.prefill_chunk_tokens, 0);
}

RolloutSequence& RolloutScheduler::seq(int64_t id) {
  HF_CHECK_GE(id, 0);
  HF_CHECK_LT(static_cast<size_t>(id), sequences_->size());
  return (*sequences_)[static_cast<size_t>(id)];
}

void RolloutScheduler::SetEventLog(SeqEventLog* log, int64_t run) {
  event_log_ = log;
  event_run_ = run;
}

void RolloutScheduler::RecordEvent(SeqEventKind kind, int64_t id, int64_t tokens, int64_t step) {
  if (event_log_ == nullptr) {
    return;  // Recording disabled: the hook costs one pointer compare.
  }
  SeqEvent event;
  event.run = event_run_;
  event.seq = id;
  event.kind = kind;
  event.step = step;
  event.tokens = tokens;
  event.sim_seconds = sim_now_;
  event_log_->RecordNow(event);
}

void RolloutScheduler::Enqueue(int64_t id) {
  RolloutSequence& sequence = seq(id);
  HF_CHECK(sequence.state == SequenceState::kWaiting);
  sequence.enqueue_step = stats_.steps;
  waiting_.push_back(id);
  RecordEvent(SeqEventKind::kEnqueue, id, sequence.total_tokens(), stats_.steps);
}

void RolloutScheduler::RemoveFromRunning(int64_t id) {
  auto it = std::find(running_.begin(), running_.end(), id);
  HF_CHECK(it != running_.end());
  running_.erase(it);
}

void RolloutScheduler::Preempt(int64_t id) {
  RolloutSequence& sequence = seq(id);
  HF_CHECK(sequence.state == SequenceState::kPrefill ||
           sequence.state == SequenceState::kDecode);
  RecordEvent(SeqEventKind::kPreempt, id, sequence.kv_tokens, stats_.steps - 1);
  kv_->FreeSequence(id);
  sequence.kv_tokens = 0;
  sequence.prefill_computed = 0;
  sequence.state = SequenceState::kPreempted;
  sequence.preemptions += 1;
  stats_.preemptions += 1;
  RemoveFromRunning(id);
  // Recompute-on-resume: the victim goes to the *front* of the waiting
  // queue (vLLM semantics) so preemption reorders, never starves.
  waiting_.push_front(id);
  sequence.state = SequenceState::kWaiting;
}

int64_t RolloutScheduler::BlocksNeededForDecode() const {
  const int64_t block_tokens = kv_->rank(0).config().block_tokens;
  int64_t needed = 0;
  for (int64_t id : running_) {
    const RolloutSequence& sequence = (*sequences_)[static_cast<size_t>(id)];
    // Mid-prefill rows (chunked prefill) do not append until their chunks
    // catch up; their completion appends preempt on demand in CommitStep.
    if (sequence.state != SequenceState::kDecode) {
      continue;
    }
    if (sequence.kv_tokens % block_tokens == 0) {
      needed += 1;  // The next append crosses a block boundary.
    }
  }
  return needed;
}

StepPlan RolloutScheduler::BeginStep() {
  HF_CHECK_MSG(HasWork(), "BeginStep called with no waiting or running sequences");
  stats_.steps += 1;

  // 1. Reserve the running set's next-token blocks before admitting anyone;
  // evict the youngest until the incumbents fit (free-and-requeue).
  while (!running_.empty() && BlocksNeededForDecode() > kv_->rank(0).free_blocks()) {
    Preempt(running_.back());
  }

  StepPlan plan;
  int64_t budget = config_.prefill_chunk_tokens > 0 ? config_.prefill_chunk_tokens
                                                    : std::numeric_limits<int64_t>::max();

  // 2. Continue the running set: decode rows emit a token; mid-prefill rows
  // (chunked prefill) consume the step's prefill budget in admission order
  // until they catch up with their full context.
  for (int64_t id : running_) {
    RolloutSequence& sequence = seq(id);
    if (sequence.state == SequenceState::kDecode) {
      plan.decode.push_back(id);
      continue;
    }
    const int64_t pending = sequence.total_tokens() - sequence.prefill_computed;
    const int64_t grant = std::min(budget, pending);
    if (grant <= 0) {
      continue;  // Budget exhausted: the row idles this step.
    }
    budget -= grant;
    plan.prefill.push_back({id, grant, grant == pending});
  }

  // 3. Admission in policy order, gated by real block allocation (the full
  // context's blocks are allocated up front; only the *compute* is chunked).
  // Strict priority: stop at the first candidate that does not fit, so the
  // head of the queue is never starved by smaller requests behind it.
  std::vector<int64_t> candidates(waiting_.begin(), waiting_.end());
  if (config_.policy == RolloutPolicy::kLongestPrefixFirst) {
    std::stable_sort(candidates.begin(), candidates.end(), [this](int64_t a, int64_t b) {
      return seq(a).total_tokens() > seq(b).total_tokens();
    });
  }
  for (int64_t id : candidates) {
    if (config_.max_running > 0 &&
        static_cast<int64_t>(running_.size()) >= config_.max_running) {
      break;
    }
    if (budget <= 0) {
      break;  // No prefill compute left this step (chunked prefill).
    }
    RolloutSequence& sequence = seq(id);
    const int64_t reserve =
        std::min(config_.reserve_tokens, std::max<int64_t>(sequence.remaining_tokens() - 1, 0));
    if (!kv_->CanAdmit(sequence.total_tokens(), reserve)) {
      break;
    }
    HF_CHECK(kv_->AddSequence(id, sequence.total_tokens()));
    sequence.kv_tokens = sequence.total_tokens();
    sequence.prefill_computed = 0;
    sequence.state = SequenceState::kPrefill;
    if (sequence.first_admit_step < 0) {
      sequence.first_admit_step = stats_.steps - 1;
      RecordEvent(SeqEventKind::kAdmit, id, sequence.total_tokens(), stats_.steps - 1);
    } else {
      // Recompute-on-resume: the whole current context re-enters prefill.
      stats_.resumes += 1;
      stats_.recomputed_tokens += sequence.total_tokens();
      RecordEvent(SeqEventKind::kResume, id, sequence.total_tokens(), stats_.steps - 1);
    }
    stats_.admissions += 1;
    running_.push_back(id);
    const int64_t grant = std::min(budget, sequence.total_tokens());
    budget -= grant;
    plan.prefill.push_back({id, grant, grant == sequence.total_tokens()});
    waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
  }

  HF_CHECK_MSG(!plan.empty(),
               "scheduler made no progress: a sequence exceeds KV capacity at full length");
  stats_.max_running = std::max(stats_.max_running, plan.rows());
  int64_t prefill_tokens = 0;
  for (const PrefillChunk& chunk : plan.prefill) {
    prefill_tokens += chunk.tokens;
    if (!chunk.completes) {
      stats_.prefill_chunks += 1;
    }
  }
  stats_.max_prefill_tokens_step = std::max(stats_.max_prefill_tokens_step, prefill_tokens);
  if (event_log_ != nullptr) {
    for (const PrefillChunk& chunk : plan.prefill) {
      RecordEvent(SeqEventKind::kPrefillChunk, chunk.id, chunk.tokens, stats_.steps - 1);
    }
  }
  return plan;
}

void RolloutScheduler::CommitStep(const StepPlan& plan, const std::vector<int64_t>& eos_finished) {
  for (const PrefillChunk& chunk : plan.prefill) {
    RolloutSequence& sequence = seq(chunk.id);
    const bool resident = sequence.state == SequenceState::kPrefill ||
                          sequence.state == SequenceState::kDecode;
    if (resident) {
      sequence.prefill_computed += chunk.tokens;
    }
    // Non-resident: preempted earlier in this commit as someone's victim;
    // the chunk's compute is lost and recomputed on resume.
    if (chunk.completes) {
      CommitEmittedToken(chunk.id, eos_finished);
    }
  }
  for (int64_t id : plan.decode) {
    CommitEmittedToken(id, eos_finished);
  }
}

void RolloutScheduler::CommitEmittedToken(int64_t id, const std::vector<int64_t>& eos_finished) {
  RolloutSequence& sequence = seq(id);
  // A row preempted earlier in this commit (as someone's victim) still
  // emitted its token; it just lost its KV residency.
  const bool resident = sequence.state == SequenceState::kPrefill ||
                        sequence.state == SequenceState::kDecode;
  sequence.generated += 1;
  RecordEvent(sequence.generated == 1 ? SeqEventKind::kFirstToken : SeqEventKind::kDecodeStep, id,
              sequence.generated, stats_.steps - 1);
  const bool finished =
      sequence.generated >= sequence.target_new_tokens ||
      std::find(eos_finished.begin(), eos_finished.end(), id) != eos_finished.end();
  if (finished) {
    if (resident) {
      kv_->FreeSequence(id);
      RemoveFromRunning(id);
    } else {
      // Preempted mid-commit but its freshly emitted token ends it:
      // drop it from the waiting queue it was just pushed onto.
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
    }
    sequence.kv_tokens = 0;
    sequence.prefill_computed = 0;
    sequence.state = SequenceState::kFinished;
    RecordEvent(SeqEventKind::kFinish, id, sequence.generated, stats_.steps - 1);
    return;
  }
  if (!resident) {
    return;  // Waits for re-admission; token kept, KV recomputed later.
  }
  // Append the new token's KV entry, evicting youngest-first on
  // exhaustion (possibly this sequence itself, if it is the only one
  // left — only possible when admission overcommitted shared headroom).
  while (!kv_->AppendToken(id)) {
    int64_t victim = -1;
    for (auto it = running_.rbegin(); it != running_.rend(); ++it) {
      if (*it != id) {
        victim = *it;
        break;
      }
    }
    Preempt(victim >= 0 ? victim : id);
    if (victim < 0) {
      return;  // Preempted itself; the appended token is recomputed later.
    }
  }
  if (sequence.state == SequenceState::kPrefill || sequence.state == SequenceState::kDecode) {
    sequence.kv_tokens += 1;
    sequence.prefill_computed = 0;
    sequence.state = SequenceState::kDecode;
  }
}

}  // namespace hybridflow
