#include "src/rollout/scheduler.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace hybridflow {

RolloutScheduler::RolloutScheduler(const RolloutSchedulerConfig& config, DistributedKvManager* kv,
                                   std::vector<RolloutSequence>* sequences)
    : config_(config), kv_(kv), sequences_(sequences) {
  HF_CHECK(kv_ != nullptr);
  HF_CHECK(sequences_ != nullptr);
  HF_CHECK_GE(config_.reserve_tokens, 0);
  HF_CHECK_GE(config_.max_running, 0);
  HF_CHECK_GE(config_.prefill_chunk_tokens, 0);
  HF_CHECK_GT(config_.fair_quantum_tokens, 0);
}

RolloutSequence& RolloutScheduler::seq(int64_t id) {
  HF_CHECK_GE(id, 0);
  HF_CHECK_LT(static_cast<size_t>(id), sequences_->size());
  return (*sequences_)[static_cast<size_t>(id)];
}

void RolloutScheduler::SetEventLog(SeqEventLog* log, int64_t run) {
  event_log_ = log;
  event_run_ = run;
}

void RolloutScheduler::RecordEvent(SeqEventKind kind, int64_t id, int64_t tokens, int64_t step) {
  if (event_log_ == nullptr) {
    return;  // Recording disabled: the hook costs one pointer compare.
  }
  SeqEvent event;
  event.run = event_run_;
  event.seq = id;
  event.kind = kind;
  event.step = step;
  event.tokens = tokens;
  event.sim_seconds = sim_now_;
  event_log_->RecordNow(event);
}

void RolloutScheduler::Enqueue(int64_t id) {
  RolloutSequence& sequence = seq(id);
  HF_CHECK(sequence.state == SequenceState::kWaiting);
  sequence.enqueue_step = stats_.steps;
  waiting_.push_back(id);
  RecordEvent(SeqEventKind::kEnqueue, id, sequence.total_tokens(), stats_.steps);
}

void RolloutScheduler::RemoveFromRunning(int64_t id) {
  auto it = std::find(running_.begin(), running_.end(), id);
  HF_CHECK(it != running_.end());
  running_.erase(it);
}

void RolloutScheduler::ReleaseReservation(RolloutSequence& sequence) {
  reserved_blocks_total_ -= sequence.reserved_blocks;
  HF_CHECK_GE(reserved_blocks_total_, 0);
  sequence.reserved_blocks = 0;
}

void RolloutScheduler::Preempt(int64_t id) {
  RolloutSequence& sequence = seq(id);
  HF_CHECK(sequence.state == SequenceState::kPrefill ||
           sequence.state == SequenceState::kDecode);
  RecordEvent(SeqEventKind::kPreempt, id, sequence.kv_tokens, stats_.steps - 1);
  ReleaseReservation(sequence);
  kv_->FreeSequence(id);
  sequence.kv_tokens = 0;
  sequence.prefill_computed = 0;
  sequence.state = SequenceState::kPreempted;
  sequence.preemptions += 1;
  stats_.preemptions += 1;
  RemoveFromRunning(id);
  // Recompute-on-resume: the victim goes to the *front* of the waiting
  // queue (vLLM semantics) so preemption reorders, never starves.
  waiting_.push_front(id);
  sequence.state = SequenceState::kWaiting;
}

void RolloutScheduler::Cancel(int64_t id, bool expired) {
  RolloutSequence& sequence = seq(id);
  HF_CHECK_MSG(sequence.state == SequenceState::kWaiting ||
                   sequence.state == SequenceState::kPrefill ||
                   sequence.state == SequenceState::kDecode,
               "Cancel on a sequence that is not waiting or running");
  const bool resident = sequence.state == SequenceState::kPrefill ||
                        sequence.state == SequenceState::kDecode;
  RecordEvent(expired ? SeqEventKind::kExpire : SeqEventKind::kCancel, id, sequence.kv_tokens,
              std::max<int64_t>(stats_.steps - 1, 0));
  if (resident) {
    ReleaseReservation(sequence);
    kv_->FreeSequence(id);
    RemoveFromRunning(id);
  } else {
    auto it = std::find(waiting_.begin(), waiting_.end(), id);
    HF_CHECK(it != waiting_.end());
    waiting_.erase(it);
  }
  sequence.kv_tokens = 0;
  sequence.prefill_computed = 0;
  sequence.state = expired ? SequenceState::kExpired : SequenceState::kCancelled;
  if (expired) {
    stats_.expired += 1;
  } else {
    stats_.cancelled += 1;
  }
}

void RolloutScheduler::ExpireOverdue() {
  if (!config_.expire_overdue) {
    return;
  }
  // A sequence is overdue when its first token has not been emitted by its
  // TTFT deadline; rows already streaming (generated > 0, including ones
  // sitting preempted in the waiting queue) met their deadline and run on.
  std::vector<int64_t> overdue;
  for (const auto& queue : {waiting_, std::deque<int64_t>(running_.begin(), running_.end())}) {
    for (int64_t id : queue) {
      const RolloutSequence& sequence = (*sequences_)[static_cast<size_t>(id)];
      if (sequence.ttft_deadline > 0.0 && sequence.generated == 0 &&
          sim_now_ > sequence.ttft_deadline) {
        overdue.push_back(id);
      }
    }
  }
  for (int64_t id : overdue) {
    Cancel(id, /*expired=*/true);
  }
}

int64_t RolloutScheduler::BlocksNeededForRunning() const {
  const KvBlockManager& rank0 = kv_->rank(0);
  const int64_t block_tokens = rank0.config().block_tokens;
  // Mirrors BeginStep's plan-building loop: same running order, same
  // budget accounting, so the preemption pass reserves exactly the blocks
  // the plan will then take.
  int64_t budget = config_.prefill_chunk_tokens > 0 ? config_.prefill_chunk_tokens
                                                    : std::numeric_limits<int64_t>::max();
  int64_t needed = 0;
  for (int64_t id : running_) {
    const RolloutSequence& sequence = (*sequences_)[static_cast<size_t>(id)];
    if (sequence.state == SequenceState::kDecode) {
      if (sequence.kv_tokens % block_tokens == 0) {
        needed += 1;  // The next append crosses a block boundary.
      }
      continue;
    }
    // Mid-prefill row (chunked prefill): its next chunk must extend KV
    // residency to cover the tokens it computes (incremental residency).
    const int64_t pending = sequence.total_tokens() - sequence.prefill_computed;
    const int64_t grant = std::min(budget, pending);
    if (grant <= 0) {
      continue;  // Budget exhausted: the row idles this step, needs nothing.
    }
    budget -= grant;
    const int64_t resident_target =
        std::max(sequence.kv_tokens, sequence.prefill_computed + grant);
    needed += rank0.BlocksFor(resident_target) - rank0.BlocksFor(sequence.kv_tokens);
  }
  return needed;
}

std::vector<int64_t> RolloutScheduler::AdmissionOrder() const {
  std::vector<int64_t> candidates(waiting_.begin(), waiting_.end());
  const auto total = [this](int64_t id) {
    return (*sequences_)[static_cast<size_t>(id)].total_tokens();
  };
  if (config_.policy == RolloutPolicy::kLongestPrefixFirst) {
    // Stable: equal-length pending sequences keep their waiting-queue
    // (arrival) order — the determinism contract the tie-break test pins.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&total](int64_t a, int64_t b) { return total(a) > total(b); });
  }
  switch (config_.admission) {
    case AdmissionPolicy::kQueueOrder:
    case AdmissionPolicy::kWeightedFair:  // Handled by AdmitWeightedFair.
      break;
    case AdmissionPolicy::kPriority: {
      std::stable_sort(candidates.begin(), candidates.end(), [this](int64_t a, int64_t b) {
        return (*sequences_)[static_cast<size_t>(a)].priority >
               (*sequences_)[static_cast<size_t>(b)].priority;
      });
      break;
    }
    case AdmissionPolicy::kDeadline: {
      // EDF over TTFT deadlines; deadline-free sequences sort last in
      // queue order.
      std::stable_sort(candidates.begin(), candidates.end(), [this](int64_t a, int64_t b) {
        const double da = (*sequences_)[static_cast<size_t>(a)].ttft_deadline;
        const double db = (*sequences_)[static_cast<size_t>(b)].ttft_deadline;
        if ((da > 0.0) != (db > 0.0)) {
          return da > 0.0;
        }
        return da > 0.0 && da < db;
      });
      break;
    }
  }
  return candidates;
}

bool RolloutScheduler::TryAdmit(int64_t id, StepPlan* plan, int64_t* budget) {
  if (config_.max_running > 0 &&
      static_cast<int64_t>(running_.size()) >= config_.max_running) {
    return false;
  }
  if (*budget <= 0) {
    return false;  // No prefill compute left this step (chunked prefill).
  }
  RolloutSequence& sequence = seq(id);
  const int64_t total = sequence.total_tokens();
  const int64_t reserve =
      std::min(config_.reserve_tokens, std::max<int64_t>(sequence.remaining_tokens() - 1, 0));
  // Prefix-cache probe: leading prompt blocks already materialized are
  // shared instead of allocated, and their prefill compute is skipped —
  // capped at total-1 so the completing chunk always computes at least the
  // last context token (its logits emit the first response token).
  const int64_t hit_tokens = std::min(kv_->PrefixHitTokens(sequence.block_hashes), total);
  const int64_t skip = std::min(hit_tokens, std::max<int64_t>(total - 1, 0));
  const int64_t grant = std::min(*budget, total - skip);
  // Full-length reservation gate: never commit the running set to more
  // blocks than the rank holds, counting every member at its final length.
  // Prefix blocks already referenced by live sequences are shared for free
  // and discounted; evictable hits are not (re-refing them drains the
  // reclaimable pool). An empty running set admits unconditionally — the
  // fit-alone-at-full-length contract guarantees progress.
  int64_t reservation = 0;
  if (config_.reserve_full_length) {
    const KvBlockManager& rank0 = kv_->rank(0);
    const int64_t full_tokens = total + sequence.remaining_tokens();
    reservation = std::max<int64_t>(
        rank0.BlocksFor(full_tokens) - rank0.PrefixHitBlocksReferenced(sequence.block_hashes), 0);
    if (!running_.empty() &&
        reserved_blocks_total_ + reservation > rank0.config().num_blocks) {
      return false;
    }
  }
  // Incremental residency (chunked prefill only): admit with blocks for
  // the first chunk, not the full context; later chunks extend in
  // BeginStep phase 2. Without chunking, residency is the full context at
  // admission, exactly as before.
  const int64_t resident_target =
      config_.prefill_chunk_tokens > 0 ? std::max(hit_tokens, skip + grant) : total;
  if (!kv_->CanAdmitShared(resident_target, reserve, sequence.block_hashes)) {
    return false;
  }
  HF_CHECK(kv_->AddSequenceShared(id, resident_target, sequence.block_hashes));
  sequence.reserved_blocks = reservation;
  reserved_blocks_total_ += reservation;
  sequence.kv_tokens = kv_->rank(0).SequenceTokens(id);
  sequence.prefill_computed = skip;
  sequence.prefix_skipped_tokens = skip;
  sequence.state = SequenceState::kPrefill;
  stats_.prefix_skipped_tokens += skip;
  if (skip > 0) {
    RecordEvent(SeqEventKind::kPrefixHit, id, skip, stats_.steps - 1);
  }
  if (sequence.first_admit_step < 0) {
    sequence.first_admit_step = stats_.steps - 1;
    RecordEvent(SeqEventKind::kAdmit, id, total, stats_.steps - 1);
  } else {
    // Recompute-on-resume: the current context re-enters prefill, minus
    // any prompt prefix still held by the cache (the victim's own freed
    // blocks are retained evictable, so resumes often hit their prompt).
    stats_.resumes += 1;
    stats_.recomputed_tokens += total - skip;
    RecordEvent(SeqEventKind::kResume, id, total - skip, stats_.steps - 1);
  }
  stats_.admissions += 1;
  running_.push_back(id);
  *budget -= grant;
  plan->prefill.push_back({id, grant, skip + grant == total});
  waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
  return true;
}

void RolloutScheduler::AdmitWeightedFair(StepPlan* plan, int64_t* budget) {
  // Per-tenant FIFOs in waiting-queue order (preempted resumes stay at
  // their tenant's head).
  std::map<int64_t, std::deque<int64_t>> queues;
  for (int64_t id : waiting_) {
    queues[(*sequences_)[static_cast<size_t>(id)].tenant].push_back(id);
  }
  if (queues.empty()) {
    return;
  }
  std::vector<int64_t> tenants;
  tenants.reserve(queues.size());
  for (const auto& [tenant, queue] : queues) {
    tenants.push_back(tenant);
  }
  // Round-robin sweep order: ascending tenant id, starting from the tenant
  // the previous step stopped at (wrapping).
  size_t start = 0;
  for (size_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i] >= fair_cursor_) {
      start = i;
      break;
    }
  }
  // Work-conserving DRR rounds: accrue one quantum of credit per pending
  // tenant, then sweep from the cursor admitting while credit and capacity
  // allow. A tenant whose head is blocked (TryAdmit false: KV, prefill
  // budget, or max_running) yields to the *next* tenant — cross-tenant
  // isolation, the point of fair queueing; its FIFO order is untouched and
  // the first blocked tenant takes the cursor, giving it first claim on
  // capacity freed by the next step. Rounds repeat while they admit
  // anything, so ample capacity is never left idle by the quantum.
  bool blocked_seen = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& [tenant, queue] : queues) {
      if (!queue.empty()) {
        const auto weight_it = config_.tenant_weights.find(tenant);
        const double weight = weight_it == config_.tenant_weights.end() ? 1.0 : weight_it->second;
        fair_deficit_[tenant] += static_cast<double>(config_.fair_quantum_tokens) * weight;
      }
    }
    for (size_t k = 0; k < tenants.size(); ++k) {
      const int64_t tenant = tenants[(start + k) % tenants.size()];
      std::deque<int64_t>& queue = queues[tenant];
      double& deficit = fair_deficit_[tenant];
      while (!queue.empty()) {
        const int64_t id = queue.front();
        const double cost =
            static_cast<double>((*sequences_)[static_cast<size_t>(id)].total_tokens());
        if (deficit < cost) {
          break;  // Out of credit; earns more next round.
        }
        if (!TryAdmit(id, plan, budget)) {
          if (!blocked_seen) {
            fair_cursor_ = tenant;
            blocked_seen = true;
          }
          break;
        }
        deficit -= cost;
        queue.pop_front();
        progress = true;
      }
      if (queue.empty()) {
        deficit = 0.0;  // Classic DRR: an idle tenant hoards no credit.
      }
    }
  }
}

StepPlan RolloutScheduler::BeginStep() {
  HF_CHECK_MSG(HasWork(), "BeginStep called with no waiting or running sequences");
  stats_.steps += 1;

  // 0. Deadline enforcement: reject overdue sequences instead of serving
  // them late (no KV or compute is spent on them this step).
  ExpireOverdue();
  StepPlan plan;
  if (!HasWork()) {
    return plan;  // Expiry drained every remaining sequence.
  }

  // 1. Reserve the running set's blocks for this step — decode rows' next-
  // token appends plus mid-prefill rows' residency extensions (incremental
  // residency) — before admitting anyone; evict the youngest until the
  // incumbents fit (free-and-requeue). Recomputed after every eviction: a
  // preempted mid-prefill victim returns its chunk grant to the budget.
  while (!running_.empty() &&
         BlocksNeededForRunning() > kv_->rank(0).available_blocks()) {
    Preempt(running_.back());
  }

  int64_t budget = config_.prefill_chunk_tokens > 0 ? config_.prefill_chunk_tokens
                                                    : std::numeric_limits<int64_t>::max();

  // 2. Continue the running set: decode rows emit a token; mid-prefill rows
  // (chunked prefill) consume the step's prefill budget in admission order
  // until they catch up with their full context, growing their KV residency
  // to cover each chunk as it enters compute. The extensions cannot fail:
  // phase 1 preempted until exactly these needs fit, and nothing else has
  // allocated since.
  for (int64_t id : running_) {
    RolloutSequence& sequence = seq(id);
    if (sequence.state == SequenceState::kDecode) {
      plan.decode.push_back(id);
      continue;
    }
    const int64_t pending = sequence.total_tokens() - sequence.prefill_computed;
    const int64_t grant = std::min(budget, pending);
    if (grant <= 0) {
      continue;  // Budget exhausted: the row idles this step.
    }
    budget -= grant;
    const int64_t resident_target =
        std::max(sequence.kv_tokens, sequence.prefill_computed + grant);
    if (resident_target > sequence.kv_tokens) {
      HF_CHECK_MSG(kv_->ExtendSequence(id, resident_target),
                   "residency extension failed after the preemption pass reserved it");
      sequence.kv_tokens = resident_target;
    }
    plan.prefill.push_back({id, grant, grant == pending});
  }

  // 3. Admission in policy order, gated by real block allocation. Without
  // chunking the full context's blocks are allocated up front; with it,
  // admission gates on the first chunk's need only (incremental residency),
  // discounting prefix-cache hits either way.
  // Strict priority: stop at the first candidate that does not fit, so the
  // head of the order is never starved by smaller requests behind it.
  if (config_.admission == AdmissionPolicy::kWeightedFair) {
    AdmitWeightedFair(&plan, &budget);
  } else {
    for (int64_t id : AdmissionOrder()) {
      if (!TryAdmit(id, &plan, &budget)) {
        break;
      }
    }
  }

  HF_CHECK_MSG(!plan.empty(),
               "scheduler made no progress: a sequence exceeds KV capacity at full length");
  stats_.max_running = std::max(stats_.max_running, plan.rows());
  int64_t prefill_tokens = 0;
  for (const PrefillChunk& chunk : plan.prefill) {
    prefill_tokens += chunk.tokens;
    if (!chunk.completes) {
      stats_.prefill_chunks += 1;
    }
  }
  stats_.max_prefill_tokens_step = std::max(stats_.max_prefill_tokens_step, prefill_tokens);
  if (event_log_ != nullptr) {
    for (const PrefillChunk& chunk : plan.prefill) {
      RecordEvent(SeqEventKind::kPrefillChunk, chunk.id, chunk.tokens, stats_.steps - 1);
    }
  }
  return plan;
}

void RolloutScheduler::CommitStep(const StepPlan& plan, const std::vector<int64_t>& eos_finished) {
  for (const PrefillChunk& chunk : plan.prefill) {
    RolloutSequence& sequence = seq(chunk.id);
    const bool resident = sequence.state == SequenceState::kPrefill ||
                          sequence.state == SequenceState::kDecode;
    if (resident) {
      sequence.prefill_computed += chunk.tokens;
    }
    // Non-resident: preempted earlier in this commit as someone's victim;
    // the chunk's compute is lost and recomputed on resume.
    if (chunk.completes) {
      CommitEmittedToken(chunk.id, eos_finished);
    }
  }
  for (int64_t id : plan.decode) {
    CommitEmittedToken(id, eos_finished);
  }
}

void RolloutScheduler::CommitEmittedToken(int64_t id, const std::vector<int64_t>& eos_finished) {
  RolloutSequence& sequence = seq(id);
  // A row preempted earlier in this commit (as someone's victim) still
  // emitted its token; it just lost its KV residency.
  const bool resident = sequence.state == SequenceState::kPrefill ||
                        sequence.state == SequenceState::kDecode;
  sequence.generated += 1;
  RecordEvent(sequence.generated == 1 ? SeqEventKind::kFirstToken : SeqEventKind::kDecodeStep, id,
              sequence.generated, stats_.steps - 1);
  const bool finished =
      sequence.generated >= sequence.target_new_tokens ||
      std::find(eos_finished.begin(), eos_finished.end(), id) != eos_finished.end();
  if (finished) {
    if (resident) {
      ReleaseReservation(sequence);
      kv_->FreeSequence(id);
      RemoveFromRunning(id);
    } else {
      // Preempted mid-commit but its freshly emitted token ends it:
      // drop it from the waiting queue it was just pushed onto.
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
    }
    sequence.kv_tokens = 0;
    sequence.prefill_computed = 0;
    sequence.state = SequenceState::kFinished;
    RecordEvent(SeqEventKind::kFinish, id, sequence.generated, stats_.steps - 1);
    return;
  }
  if (!resident) {
    return;  // Waits for re-admission; token kept, KV recomputed later.
  }
  // Append the new token's KV entry, evicting youngest-first on
  // exhaustion (possibly this sequence itself, if it is the only one
  // left — only possible when admission overcommitted shared headroom).
  while (!kv_->AppendToken(id)) {
    int64_t victim = -1;
    for (auto it = running_.rbegin(); it != running_.rend(); ++it) {
      if (*it != id) {
        victim = *it;
        break;
      }
    }
    Preempt(victim >= 0 ? victim : id);
    if (victim < 0) {
      return;  // Preempted itself; the appended token is recomputed later.
    }
  }
  if (sequence.state == SequenceState::kPrefill || sequence.state == SequenceState::kDecode) {
    sequence.kv_tokens += 1;
    sequence.prefill_computed = 0;
    sequence.state = SequenceState::kDecode;
  }
}

}  // namespace hybridflow
