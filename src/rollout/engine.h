// RolloutEngine: the data-plane continuous-batching generation loop.
//
// Drives the real PolicyNet over dynamically composed batches (mixed
// prefill + decode rows chosen by RolloutScheduler against a real
// DistributedKvManager). The per-row forward is independent of batch
// composition and token selection goes through the shared SampleLogitsRow,
// so greedy decoding produces bitwise-identical responses and log-probs to
// the static path regardless of schedule, admission order, or preemption.
//
// Sampling mode draws from per-sequence forked RNG streams (schedule-
// independent), which intentionally differs from the static path's single
// shared stream; exact equivalence is promised for greedy decoding only.
#ifndef SRC_ROLLOUT_ENGINE_H_
#define SRC_ROLLOUT_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/rng.h"
#include "src/nn/policy_net.h"
#include "src/obs/metrics.h"
#include "src/rollout/scheduler.h"

namespace hybridflow {

enum class RolloutMode {
  kStatic,      // Whole-shard static batch (legacy GenerateShard loop).
  kContinuous,  // Request-level continuous batching through src/rollout/.
};

// Engine knobs; shared between ActorOptions and the timing simulator.
struct RolloutOptions {
  RolloutMode mode = RolloutMode::kStatic;
  RolloutPolicy policy = RolloutPolicy::kFcfs;
  // Data-plane KV geometry (toy scale). num_blocks == 0 auto-sizes the
  // cache to fit the whole shard at full length (no preemption).
  int64_t block_tokens = 4;
  int64_t num_blocks = 0;
  int64_t reserve_tokens = 1;
  int64_t max_running = 0;  // 0 = KV-capacity-bounded only.
  // Per-step prefill token budget (chunked prefill); 0 = whole-context
  // prefill in one step. Applies to both planes: the data-plane engine and
  // the timing simulator chunk identically. When > 0, KV residency is also
  // acquired incrementally per chunk instead of in full at admission
  // (docs/ROLLOUT.md, docs/KVCACHE.md).
  int64_t prefill_chunk_tokens = 0;
  // Prefix-sharing KV cache (docs/KVCACHE.md): ref-counted blocks with a
  // content-hash index over full prompt blocks. Identical prompt prefixes
  // share blocks and skip the shared tokens' prefill compute; blocks of
  // finished sequences are retained (evictable) for later hits. Greedy
  // outputs stay bitwise-identical — sharing changes residency and
  // scheduling, never per-row compute. Applies to both planes.
  bool enable_prefix_cache = false;
  // Full-length admission reservations (RolloutSchedulerConfig::
  // reserve_full_length): admission charges each sequence's block demand at
  // prompt + target length against capacity, eliminating decode-time
  // preemption churn when targets are accurate. Off = optimistic admission.
  bool reserve_full_length = false;
  // Optional per-sequence lifecycle event sink (src/obs/seq_events.h),
  // borrowed, shared safely by concurrent per-rank engines. Null (the
  // default) disables data-plane recording entirely: the scheduler hooks
  // no-op and no latency derivation runs. When set, the engine also
  // observes per-sequence wall-clock TTFT/TPOT into the
  // `rollout.ttft_us`/`rollout.tpot_us` quantile instruments.
  SeqEventLog* event_log = nullptr;
  // Same, for the timing simulator's sim-plane events. Kept separate from
  // `event_log` because sim-plane volume scales with the *simulated*
  // workload (full-scale batches), not the toy data plane. The simulator
  // derives RolloutSimResult::latency from an internal log either way;
  // this sink only controls whether the raw events outlive the call.
  SeqEventLog* sim_event_log = nullptr;
};

// Termination rules for one generation call (mirrors AlignmentTask's
// response_len / use_eos without depending on hf_data).
struct RolloutLimits {
  int64_t max_new_tokens = 0;
  bool use_eos = false;
  int64_t eos_token = -1;
};

// Aggregate counters of one engine run (or many, via the collector).
struct RolloutStats {
  int64_t steps = 0;
  int64_t sequences = 0;
  int64_t admissions = 0;
  int64_t preemptions = 0;
  int64_t max_running_batch = 0;
  int64_t queue_wait_steps_total = 0;  // Enqueue -> first admission.
  int64_t queue_wait_steps_max = 0;
  int64_t kv_high_water_blocks = 0;
  double kv_peak_utilization = 0.0;  // used/num_blocks peak (rank 0).
  // Chunked prefill: partial (non-completing) chunks scheduled, and the
  // largest per-step prefill token total.
  int64_t prefill_chunks = 0;
  int64_t max_prefill_tokens_step = 0;
  // Recompute-on-resume overhead: re-admissions after preemption and the
  // context tokens they re-prefilled.
  int64_t resumes = 0;
  int64_t recomputed_tokens = 0;
  // Prefix-sharing KV cache: prefill compute skipped over cached prompt
  // prefixes, copy-on-write splits of shared tail blocks, and the peak
  // number of physically shared blocks (rank 0).
  int64_t prefix_skipped_tokens = 0;
  int64_t cow_splits = 0;
  int64_t shared_blocks_high_water = 0;

  void Merge(const RolloutStats& other);
};

// Thread-safe accumulator: per-rank engines run concurrently inside
// Dispatch's ParallelFor, each merging its shard's stats here.
class RolloutStatsCollector {
 public:
  void Add(const RolloutStats& stats) HF_EXCLUDES(mutex_);
  RolloutStats Snapshot() const HF_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  RolloutStats total_ HF_GUARDED_BY(mutex_);
};

struct RolloutShardResult {
  std::vector<std::vector<int64_t>> responses;
  std::vector<std::vector<float>> log_probs;
  RolloutStats stats;
};

class RolloutEngine {
 public:
  // `net` is borrowed (read-only); `kv_ranks` is the tensor-parallel degree
  // of the generation strategy — the DistributedKvManager keeps that many
  // block tables in lockstep, as the paper's distributed KV manager does.
  RolloutEngine(const PolicyNet& net, const RolloutLimits& limits,
                const RolloutOptions& options, int kv_ranks);

  // Generates one response per prompt. `rng` seeds per-sequence streams
  // for sampling mode; greedy decoding never draws from it.
  RolloutShardResult Run(const std::vector<std::vector<int64_t>>& prompts, bool do_sample,
                         double temperature, Rng& rng) const;

 private:
  const PolicyNet& net_;
  RolloutLimits limits_;
  RolloutOptions options_;
  int kv_ranks_;
  // Cached registry handles (hot loop; see src/obs/metrics.h).
  Counter& steps_total_;
  Counter& admissions_total_;
  Counter& preemptions_total_;
  Histogram& queue_wait_steps_;
  Histogram& running_batch_;
  Histogram& kv_utilization_;
  QuantileHistogram& ttft_us_;
  QuantileHistogram& tpot_us_;
  Counter& prefix_hits_total_;
  Counter& cow_splits_total_;
  Gauge& shared_blocks_;
};

}  // namespace hybridflow

#endif  // SRC_ROLLOUT_ENGINE_H_
