#include "src/rollout/sequence.h"

#include "src/common/check.h"

namespace hybridflow {

IncrementalContext::IncrementalContext(const std::vector<int64_t>& prompt, int64_t window) {
  HF_CHECK_GT(window, 0);
  window_.assign(static_cast<size_t>(window), 0);
  // Fill from the end: the last min(window, prompt) prompt tokens.
  int64_t pos = window - 1;
  for (int64_t k = static_cast<int64_t>(prompt.size()) - 1; k >= 0 && pos >= 0; --k, --pos) {
    window_[static_cast<size_t>(pos)] = prompt[static_cast<size_t>(k)];
  }
}

void IncrementalContext::Push(int64_t token) {
  for (size_t i = 0; i + 1 < window_.size(); ++i) {
    window_[i] = window_[i + 1];
  }
  window_.back() = token;
}

}  // namespace hybridflow
