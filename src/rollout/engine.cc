#include "src/rollout/engine.h"

#include <algorithm>

#include "src/common/check.h"

namespace hybridflow {

void RolloutStats::Merge(const RolloutStats& other) {
  steps += other.steps;
  sequences += other.sequences;
  admissions += other.admissions;
  preemptions += other.preemptions;
  max_running_batch = std::max(max_running_batch, other.max_running_batch);
  queue_wait_steps_total += other.queue_wait_steps_total;
  queue_wait_steps_max = std::max(queue_wait_steps_max, other.queue_wait_steps_max);
  kv_high_water_blocks = std::max(kv_high_water_blocks, other.kv_high_water_blocks);
  kv_peak_utilization = std::max(kv_peak_utilization, other.kv_peak_utilization);
  prefill_chunks += other.prefill_chunks;
  max_prefill_tokens_step = std::max(max_prefill_tokens_step, other.max_prefill_tokens_step);
  resumes += other.resumes;
  recomputed_tokens += other.recomputed_tokens;
  prefix_skipped_tokens += other.prefix_skipped_tokens;
  cow_splits += other.cow_splits;
  shared_blocks_high_water = std::max(shared_blocks_high_water, other.shared_blocks_high_water);
}

void RolloutStatsCollector::Add(const RolloutStats& stats) {
  MutexLock lock(mutex_);
  total_.Merge(stats);
}

RolloutStats RolloutStatsCollector::Snapshot() const {
  MutexLock lock(mutex_);
  return total_;
}

RolloutEngine::RolloutEngine(const PolicyNet& net, const RolloutLimits& limits,
                             const RolloutOptions& options, int kv_ranks)
    : net_(net),
      limits_(limits),
      options_(options),
      kv_ranks_(kv_ranks),
      steps_total_(MetricsRegistry::Global().GetCounter("rollout.steps_total",
                                                        {{"plane", "data"}})),
      admissions_total_(MetricsRegistry::Global().GetCounter("rollout.admissions_total",
                                                             {{"plane", "data"}})),
      preemptions_total_(MetricsRegistry::Global().GetCounter("rollout.preemptions_total",
                                                              {{"plane", "data"}})),
      queue_wait_steps_(MetricsRegistry::Global().GetHistogram(
          "rollout.queue_wait_steps", ExponentialBuckets(1, 2, 10), {{"plane", "data"}})),
      running_batch_(MetricsRegistry::Global().GetHistogram(
          "rollout.running_batch", ExponentialBuckets(1, 2, 10), {{"plane", "data"}})),
      kv_utilization_(MetricsRegistry::Global().GetHistogram(
          "rollout.kv_utilization", LinearBuckets(0.1, 0.1, 10), {{"plane", "data"}})),
      ttft_us_(MetricsRegistry::Global().GetQuantileHistogram(
          "rollout.ttft_us", QuantileHistogram::kDefaultRelativeError, {{"plane", "data"}})),
      tpot_us_(MetricsRegistry::Global().GetQuantileHistogram(
          "rollout.tpot_us", QuantileHistogram::kDefaultRelativeError, {{"plane", "data"}})),
      prefix_hits_total_(MetricsRegistry::Global().GetCounter("kvcache.prefix_hits_total",
                                                              {{"plane", "data"}})),
      cow_splits_total_(MetricsRegistry::Global().GetCounter("kvcache.cow_splits_total",
                                                             {{"plane", "data"}})),
      shared_blocks_(MetricsRegistry::Global().GetGauge("kvcache.shared_blocks",
                                                        {{"plane", "data"}})) {
  HF_CHECK_GT(kv_ranks_, 0);
  HF_CHECK_GT(options_.block_tokens, 0);
  HF_CHECK_GE(limits_.max_new_tokens, 0);
}

RolloutShardResult RolloutEngine::Run(const std::vector<std::vector<int64_t>>& prompts,
                                      bool do_sample, double temperature, Rng& rng) const {
  const size_t batch = prompts.size();
  RolloutShardResult result;
  result.responses.resize(batch);
  result.log_probs.resize(batch);
  result.stats.sequences = static_cast<int64_t>(batch);
  if (batch == 0 || limits_.max_new_tokens == 0) {
    return result;
  }

  // KV geometry: auto-size to fit the whole shard at full length when
  // unset; otherwise honor the configured budget but always fit the
  // largest single sequence (the scheduler's progress contract).
  KvBlockConfig kv_config;
  kv_config.block_tokens = options_.block_tokens;
  kv_config.enable_prefix_cache = options_.enable_prefix_cache;
  int64_t fit_all = 0;
  int64_t fit_largest = 0;
  for (const std::vector<int64_t>& prompt : prompts) {
    const int64_t full = static_cast<int64_t>(prompt.size()) + limits_.max_new_tokens;
    const int64_t blocks = (full + kv_config.block_tokens - 1) / kv_config.block_tokens;
    fit_all += blocks;
    fit_largest = std::max(fit_largest, blocks);
  }
  kv_config.num_blocks =
      options_.num_blocks > 0 ? std::max(options_.num_blocks, fit_largest) : fit_all;
  DistributedKvManager kv(kv_ranks_, kv_config);

  std::vector<RolloutSequence> sequences(batch);
  std::vector<IncrementalContext> contexts_by_id;
  std::vector<Rng> sequence_rngs;
  contexts_by_id.reserve(batch);
  sequence_rngs.reserve(batch);
  RolloutSchedulerConfig scheduler_config;
  scheduler_config.policy = options_.policy;
  scheduler_config.reserve_tokens = options_.reserve_tokens;
  scheduler_config.max_running = options_.max_running;
  scheduler_config.prefill_chunk_tokens = options_.prefill_chunk_tokens;
  scheduler_config.reserve_full_length = options_.reserve_full_length;
  RolloutScheduler scheduler(scheduler_config, &kv, &sequences);
  // Opt-in lifecycle recording: a distinct run id per engine call keeps
  // concurrent per-rank shards apart in the shared log.
  const int64_t event_run =
      options_.event_log != nullptr ? options_.event_log->BeginRun() : 0;
  scheduler.SetEventLog(options_.event_log, event_run);
  for (size_t i = 0; i < batch; ++i) {
    RolloutSequence& sequence = sequences[i];
    sequence.id = static_cast<int64_t>(i);
    sequence.prompt_tokens = static_cast<int64_t>(prompts[i].size());
    sequence.target_new_tokens = limits_.max_new_tokens;
    if (options_.enable_prefix_cache) {
      // Content identity for the prefix cache: identical prompt prefixes
      // (e.g. group sampling's n copies of one prompt) share blocks.
      sequence.block_hashes = PromptBlockHashes(prompts[i], kv_config.block_tokens);
    }
    contexts_by_id.emplace_back(prompts[i], net_.config().context_window);
    sequence_rngs.push_back(rng.Fork(static_cast<uint64_t>(i)));
    result.responses[i].reserve(static_cast<size_t>(limits_.max_new_tokens));
    result.log_probs[i].reserve(static_cast<size_t>(limits_.max_new_tokens));
    scheduler.Enqueue(sequence.id);
  }

  while (scheduler.HasWork()) {
    const StepPlan plan = scheduler.BeginStep();

    // KV pressure right after admission is the step's peak residency.
    const KvBlockManager& rank0 = kv.rank(0);
    const double utilization =
        kv_config.num_blocks > 0
            ? static_cast<double>(rank0.used_blocks()) / static_cast<double>(kv_config.num_blocks)
            : 0.0;
    result.stats.kv_peak_utilization =
        std::max(result.stats.kv_peak_utilization, utilization);
    running_batch_.Observe(static_cast<double>(plan.rows()));
    kv_utilization_.Observe(utilization);

    // Only rows that caught up with their full context run the LM head:
    // partial prefill chunks (chunked prefill) do compute but emit nothing.
    std::vector<int64_t> rows;
    rows.reserve(static_cast<size_t>(plan.rows()));
    for (const PrefillChunk& chunk : plan.prefill) {
      if (chunk.completes) {
        rows.push_back(chunk.id);
      }
    }
    rows.insert(rows.end(), plan.decode.begin(), plan.decode.end());
    std::vector<std::vector<int64_t>> step_contexts;
    step_contexts.reserve(rows.size());
    for (int64_t id : rows) {
      step_contexts.push_back(contexts_by_id[static_cast<size_t>(id)].tokens());
    }

    std::vector<int64_t> eos_finished;
    const Tensor logits = rows.empty() ? Tensor() : net_.Forward(step_contexts);
    for (size_t a = 0; a < rows.size(); ++a) {
      const int64_t id = rows[a];
      float log_prob = 0.0f;
      const int64_t token =
          SampleLogitsRow(logits, static_cast<int64_t>(a), temperature, do_sample,
                          sequence_rngs[static_cast<size_t>(id)], &log_prob);
      result.responses[static_cast<size_t>(id)].push_back(token);
      result.log_probs[static_cast<size_t>(id)].push_back(log_prob);
      contexts_by_id[static_cast<size_t>(id)].Push(token);
      if (limits_.use_eos && token == limits_.eos_token) {
        eos_finished.push_back(id);
      }
    }
    scheduler.CommitStep(plan, eos_finished);
  }

  const RolloutSchedulerStats& scheduler_stats = scheduler.stats();
  result.stats.steps = scheduler_stats.steps;
  result.stats.admissions = scheduler_stats.admissions;
  result.stats.preemptions = scheduler_stats.preemptions;
  result.stats.max_running_batch = scheduler_stats.max_running;
  result.stats.prefill_chunks = scheduler_stats.prefill_chunks;
  result.stats.max_prefill_tokens_step = scheduler_stats.max_prefill_tokens_step;
  result.stats.resumes = scheduler_stats.resumes;
  result.stats.recomputed_tokens = scheduler_stats.recomputed_tokens;
  result.stats.kv_high_water_blocks = kv.high_water_blocks();
  result.stats.prefix_skipped_tokens = scheduler_stats.prefix_skipped_tokens;
  result.stats.cow_splits = kv.rank(0).cow_splits_total();
  result.stats.shared_blocks_high_water = kv.rank(0).shared_blocks_high_water();
  prefix_hits_total_.Increment(static_cast<double>(kv.rank(0).prefix_hit_tokens_total()));
  cow_splits_total_.Increment(static_cast<double>(result.stats.cow_splits));
  shared_blocks_.Set(static_cast<double>(result.stats.shared_blocks_high_water));
  if (options_.event_log != nullptr) {
    // Wall-clock per-sequence latency distributions for this shard's run.
    for (const SeqLatency& latency :
         DeriveSeqLatencies(options_.event_log->SnapshotRun(event_run), /*wall=*/true)) {
      if (latency.tokens >= 1) {
        ttft_us_.Observe(latency.ttft);
      }
      if (latency.tokens >= 2) {
        tpot_us_.Observe(latency.tpot);
      }
    }
  }
  for (const RolloutSequence& sequence : sequences) {
    HF_CHECK(sequence.state == SequenceState::kFinished);
    const int64_t wait = std::max<int64_t>(sequence.first_admit_step - sequence.enqueue_step, 0);
    result.stats.queue_wait_steps_total += wait;
    result.stats.queue_wait_steps_max = std::max(result.stats.queue_wait_steps_max, wait);
    queue_wait_steps_.Observe(static_cast<double>(wait));
  }
  steps_total_.Increment(static_cast<double>(result.stats.steps));
  admissions_total_.Increment(static_cast<double>(result.stats.admissions));
  preemptions_total_.Increment(static_cast<double>(result.stats.preemptions));
  return result;
}

}  // namespace hybridflow
