// Request-level continuous-batching scheduler for the generation stage.
//
// Each engine step the scheduler composes a mixed prefill+decode batch:
// it first reserves KV headroom for the running sequences' next token
// (preempting the youngest on exhaustion — vLLM's recompute-on-resume
// policy), then admits waiting sequences in policy order while the
// KvBlockManager accepts their full current context plus a configurable
// token reserve. Admission and appends go through the *real*
// DistributedKvManager, so capacity effects are block-granular, not
// analytical.
//
// Contract: every enqueued sequence must fit alone at full length
// (BlocksFor(prompt + target_new_tokens) <= num_blocks per rank);
// otherwise it would preempt itself forever. RolloutEngine and the timing
// simulator size or validate the cache accordingly.
#ifndef SRC_ROLLOUT_SCHEDULER_H_
#define SRC_ROLLOUT_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/kvcache/block_manager.h"
#include "src/obs/seq_events.h"
#include "src/rollout/sequence.h"

namespace hybridflow {

enum class RolloutPolicy {
  kFcfs,               // Admit in arrival order.
  kLongestPrefixFirst, // Admit the longest pending context first.
};

// Serving-surface admission orderings (src/serving/) layered over the base
// RolloutPolicy. kQueueOrder preserves the plain RLHF behavior exactly; the
// other three reorder only *which* waiting sequence is admitted next, never
// what an admitted sequence computes — greedy outputs per sequence are
// schedule-invariant, so every policy keeps the bitwise-equivalence
// contract (docs/ROLLOUT.md).
enum class AdmissionPolicy {
  kQueueOrder,    // RolloutPolicy over the waiting queue (legacy default).
  kPriority,      // Higher RolloutSequence::priority first; queue-order ties.
  kDeadline,      // Earliest ttft_deadline first (EDF); no deadline sorts last.
  kWeightedFair,  // Weighted deficit round-robin across tenants.
};

struct RolloutSchedulerConfig {
  RolloutPolicy policy = RolloutPolicy::kFcfs;
  // Decode-headroom tokens demanded (beyond the current context) when
  // admitting a sequence; higher values admit less but preempt less.
  int64_t reserve_tokens = 1;
  // Cap on concurrently running sequences; 0 = bounded by KV capacity only.
  int64_t max_running = 0;
  // Chunked prefill (vLLM-style): per-step token budget for prefill
  // compute. Contexts longer than the remaining budget enter compute in
  // chunks across consecutive steps, so a long prompt never stalls the
  // decode batch for a whole step. 0 disables chunking (each admitted
  // context prefills in one step, the pre-chunking behavior).
  //
  // Chunking also switches KV residency to *incremental*: a sequence is
  // admitted with blocks for its first chunk only (plus any prefix-cache
  // hits) and acquires the rest chunk by chunk as its prefill progresses,
  // so admission gates on the next chunk's need — not the full context —
  // raising effective admission under tight budgets. The fit-alone-at-
  // full-length progress contract is unchanged.
  int64_t prefill_chunk_tokens = 0;
  // Full-length admission reservations. When on, admission additionally
  // charges each candidate its block demand at full length (prompt +
  // target_new_tokens), discounted by prefix blocks already referenced by
  // live sequences, against the rank's total block count; a candidate whose
  // reservation does not fit next to the running set's reservations waits.
  // Physical blocks are still acquired incrementally (chunked prefill), but
  // the scheduler never over-commits beyond what the running set will need
  // at completion, so decode-time preemption churn disappears whenever
  // targets are accurate (RLHF rollouts with a known response cap, and the
  // perf plane, where targets are the simulated lengths). Off by default:
  // optimistic vLLM-style admission, which bets on early finishes and
  // preempts when the bet loses — better when targets are loose caps.
  // An empty running set always admits (the progress contract).
  bool reserve_full_length = false;
  // SLO-aware admission (serving front end). kQueueOrder leaves the plain
  // RLHF path untouched.
  AdmissionPolicy admission = AdmissionPolicy::kQueueOrder;
  // kWeightedFair: context tokens of credit granted per tenant visit; a
  // tenant admits its queue head only while its accumulated deficit covers
  // the head's full context, so admitted tokens track weights over time.
  int64_t fair_quantum_tokens = 256;
  // kWeightedFair: per-tenant service weights (missing tenants weigh 1.0).
  std::map<int64_t, double> tenant_weights;
  // Expire un-started sequences whose ttft_deadline is behind the SetSimNow
  // clock at the top of BeginStep — rejected rather than served late. Off by
  // default (deadlines are inert on the plain RLHF path).
  bool expire_overdue = false;
};

// One slice of prefill compute for one sequence this step. A sequence's
// context enters compute chunk by chunk; only the chunk that reaches the
// full context (`completes`) runs the LM head and emits a token.
struct PrefillChunk {
  int64_t id = 0;
  int64_t tokens = 0;      // Context tokens entering compute this step.
  bool completes = false;  // Caught up with the full context -> emits a token.
};

// One engine step's batch composition: prefill chunks (newly admitted or
// still catching up) plus decode rows (already running). Decode rows and
// *completing* prefill chunks emit exactly one token this step; partial
// chunks emit nothing yet.
struct StepPlan {
  std::vector<PrefillChunk> prefill;
  std::vector<int64_t> decode;

  bool empty() const { return prefill.empty() && decode.empty(); }
  int64_t rows() const {
    return static_cast<int64_t>(prefill.size() + decode.size());
  }
  // Rows that run the LM head and emit a token this step.
  int64_t EmittingRows() const {
    int64_t emitting = static_cast<int64_t>(decode.size());
    for (const PrefillChunk& chunk : prefill) {
      emitting += chunk.completes ? 1 : 0;
    }
    return emitting;
  }
};

struct RolloutSchedulerStats {
  int64_t steps = 0;
  int64_t admissions = 0;   // Includes re-admissions after preemption.
  int64_t preemptions = 0;
  int64_t max_running = 0;  // Largest planned batch (rows) of any step.
  // Chunked prefill: partial (non-completing) chunks planned, and the
  // largest per-step prefill token total (bounded by prefill_chunk_tokens
  // when chunking is on).
  int64_t prefill_chunks = 0;
  int64_t max_prefill_tokens_step = 0;
  // Re-admissions after preemption, and the context tokens those resumes
  // re-prefilled (the recompute-on-resume overhead; disjoint from first
  // admissions' prefill work).
  int64_t resumes = 0;
  int64_t recomputed_tokens = 0;
  // Serving exits: client cancellations and TTFT-deadline expiries.
  int64_t cancelled = 0;
  int64_t expired = 0;
  // Prefill compute skipped over prefix-cache hits at (re)admission
  // (docs/KVCACHE.md): the structural win of sharing — group sampling
  // skips n-1 prompt prefills, resumes skip their still-cached prompt.
  int64_t prefix_skipped_tokens = 0;
};

// Single-threaded by design: one scheduler drives one replica's engine
// loop (concurrency lives across replicas, which never share a scheduler).
class RolloutScheduler {
 public:
  // `kv` and `sequences` are borrowed; ids index into *sequences.
  RolloutScheduler(const RolloutSchedulerConfig& config, DistributedKvManager* kv,
                   std::vector<RolloutSequence>* sequences);

  // Adds a waiting sequence (state must be kWaiting).
  void Enqueue(int64_t id);

  // Reserves decode headroom (preempting if needed), expires overdue
  // waiting/prefilling sequences (when configured), admits waiting
  // sequences, and returns the step's batch. Aborts if no progress is
  // possible while work remains (violated fit contract) — except when
  // expiry drained all remaining work, which returns an empty plan.
  StepPlan BeginStep();

  // Terminates a non-terminal sequence from the outside: removes it from
  // the waiting queue or running set, releases its KV blocks, and marks it
  // kCancelled (or kExpired when `expired` is set). Legal in any
  // non-terminal state — waiting, mid-prefill-chunk, decoding, or requeued
  // after preemption. Must not be called between BeginStep and the matching
  // CommitStep (the plan would hold a dangling row).
  void Cancel(int64_t id, bool expired = false);

  // Completes a step: every decode row and completing prefill chunk
  // emitted one token; partial chunks only advance their prefill progress.
  // Emitting sequences in `eos_finished` (plus any that reached
  // target_new_tokens) release their blocks; the rest append their new
  // token to the KV cache, preempting victims (youngest-first, possibly
  // themselves) on exhaustion.
  void CommitStep(const StepPlan& plan, const std::vector<int64_t>& eos_finished);

  bool HasWork() const { return !waiting_.empty() || !running_.empty(); }
  const std::deque<int64_t>& waiting() const { return waiting_; }
  const std::vector<int64_t>& running() const { return running_; }
  const RolloutSchedulerStats& stats() const { return stats_; }
  int64_t current_step() const { return stats_.steps; }

  // Attaches a per-sequence lifecycle event sink (src/obs/seq_events.h);
  // events are tagged with `run` (from SeqEventLog::BeginRun). A null log
  // (the default) makes every recording hook a single pointer compare, so
  // the scheduler's behavior and hot-path cost are unchanged when nobody
  // is listening — the same no-op contract as the sync-contract hooks.
  void SetEventLog(SeqEventLog* log, int64_t run);
  // Advances the sim-time stamp on subsequent events. The timing simulator
  // calls this as its DES clock moves; data-plane callers leave it at 0
  // (events then carry wall-clock only).
  void SetSimNow(double sim_seconds) { sim_now_ = sim_seconds; }

 private:
  RolloutSequence& seq(int64_t id);
  // Frees the victim's KV and requeues it at the front of the waiting
  // queue (its context is recomputed on resume).
  void Preempt(int64_t id);
  void RemoveFromRunning(int64_t id);
  // Expires every waiting or still-prefilling sequence whose ttft_deadline
  // is strictly behind sim_now_ (first token not yet emitted).
  void ExpireOverdue();
  // Admits one waiting candidate if the KV, prefill-budget, and max_running
  // gates allow; returns false when admission must stop for this step.
  bool TryAdmit(int64_t id, StepPlan* plan, int64_t* budget);
  // Waiting queue reordered per config_.admission (all but kWeightedFair).
  std::vector<int64_t> AdmissionOrder() const;
  // Weighted deficit round-robin admission over per-tenant FIFOs.
  void AdmitWeightedFair(StepPlan* plan, int64_t* budget);
  // Blocks the running set needs this step on one rank: decode rows'
  // boundary appends plus mid-prefill rows' residency extensions under
  // this step's prefill budget (incremental residency).
  int64_t BlocksNeededForRunning() const;
  // Retires or appends one row that emitted a token this step.
  void CommitEmittedToken(int64_t id, const std::vector<int64_t>& eos_finished);
  // Returns the sequence's full-length reservation to the pool (no-op if it
  // holds none). Called wherever a sequence leaves the running set.
  void ReleaseReservation(RolloutSequence& sequence);
  // No-op unless an event log is attached. `step` is the 0-based step
  // index the event belongs to.
  void RecordEvent(SeqEventKind kind, int64_t id, int64_t tokens, int64_t step);

  RolloutSchedulerConfig config_;
  DistributedKvManager* kv_;
  std::vector<RolloutSequence>* sequences_;
  std::deque<int64_t> waiting_;
  std::vector<int64_t> running_;  // Admission order: oldest first.
  RolloutSchedulerStats stats_;
  SeqEventLog* event_log_ = nullptr;
  int64_t event_run_ = 0;
  double sim_now_ = 0.0;
  // Sum of running sequences' reserved_blocks (reserve_full_length only).
  int64_t reserved_blocks_total_ = 0;
  // kWeightedFair state: unspent per-tenant credit (context tokens) and the
  // tenant the next round-robin sweep starts from, both persisted across
  // steps so service converges on the weight ratios.
  std::map<int64_t, double> fair_deficit_;
  int64_t fair_cursor_ = 0;
};

}  // namespace hybridflow

#endif  // SRC_ROLLOUT_SCHEDULER_H_
