// Request-level continuous-batching scheduler for the generation stage.
//
// Each engine step the scheduler composes a mixed prefill+decode batch:
// it first reserves KV headroom for the running sequences' next token
// (preempting the youngest on exhaustion — vLLM's recompute-on-resume
// policy), then admits waiting sequences in policy order while the
// KvBlockManager accepts their full current context plus a configurable
// token reserve. Admission and appends go through the *real*
// DistributedKvManager, so capacity effects are block-granular, not
// analytical.
//
// Contract: every enqueued sequence must fit alone at full length
// (BlocksFor(prompt + target_new_tokens) <= num_blocks per rank);
// otherwise it would preempt itself forever. RolloutEngine and the timing
// simulator size or validate the cache accordingly.
#ifndef SRC_ROLLOUT_SCHEDULER_H_
#define SRC_ROLLOUT_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/kvcache/block_manager.h"
#include "src/rollout/sequence.h"

namespace hybridflow {

enum class RolloutPolicy {
  kFcfs,               // Admit in arrival order.
  kLongestPrefixFirst, // Admit the longest pending context first.
};

struct RolloutSchedulerConfig {
  RolloutPolicy policy = RolloutPolicy::kFcfs;
  // Decode-headroom tokens demanded (beyond the current context) when
  // admitting a sequence; higher values admit less but preempt less.
  int64_t reserve_tokens = 1;
  // Cap on concurrently running sequences; 0 = bounded by KV capacity only.
  int64_t max_running = 0;
};

// One engine step's batch composition: newly admitted sequences (prefill
// rows) plus continuing ones (decode rows). Every planned row emits exactly
// one token this step.
struct StepPlan {
  std::vector<int64_t> prefill;
  std::vector<int64_t> decode;

  bool empty() const { return prefill.empty() && decode.empty(); }
  int64_t rows() const {
    return static_cast<int64_t>(prefill.size() + decode.size());
  }
};

struct RolloutSchedulerStats {
  int64_t steps = 0;
  int64_t admissions = 0;   // Includes re-admissions after preemption.
  int64_t preemptions = 0;
  int64_t max_running = 0;  // Largest planned batch (rows) of any step.
};

// Single-threaded by design: one scheduler drives one replica's engine
// loop (concurrency lives across replicas, which never share a scheduler).
class RolloutScheduler {
 public:
  // `kv` and `sequences` are borrowed; ids index into *sequences.
  RolloutScheduler(const RolloutSchedulerConfig& config, DistributedKvManager* kv,
                   std::vector<RolloutSequence>* sequences);

  // Adds a waiting sequence (state must be kWaiting).
  void Enqueue(int64_t id);

  // Reserves decode headroom (preempting if needed), admits waiting
  // sequences, and returns the step's batch. Aborts if no progress is
  // possible while work remains (violated fit contract).
  StepPlan BeginStep();

  // Completes a step: every planned row emitted one token. Sequences in
  // `eos_finished` (plus any that reached target_new_tokens) release their
  // blocks; the rest append their new token to the KV cache, preempting
  // victims (youngest-first, possibly themselves) on exhaustion.
  void CommitStep(const StepPlan& plan, const std::vector<int64_t>& eos_finished);

  bool HasWork() const { return !waiting_.empty() || !running_.empty(); }
  const std::deque<int64_t>& waiting() const { return waiting_; }
  const std::vector<int64_t>& running() const { return running_; }
  const RolloutSchedulerStats& stats() const { return stats_; }
  int64_t current_step() const { return stats_.steps; }

 private:
  RolloutSequence& seq(int64_t id);
  // Frees the victim's KV and requeues it at the front of the waiting
  // queue (its context is recomputed on resume).
  void Preempt(int64_t id);
  void RemoveFromRunning(int64_t id);
  // Blocks the running set needs for its next appends on one rank.
  int64_t BlocksNeededForDecode() const;

  RolloutSchedulerConfig config_;
  DistributedKvManager* kv_;
  std::vector<RolloutSequence>* sequences_;
  std::deque<int64_t> waiting_;
  std::vector<int64_t> running_;  // Admission order: oldest first.
  RolloutSchedulerStats stats_;
};

}  // namespace hybridflow

#endif  // SRC_ROLLOUT_SCHEDULER_H_
