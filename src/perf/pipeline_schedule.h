// 1F1B pipeline-parallel schedule construction (PipeDream-flush /
// Megatron-LM's default training schedule [54]).
//
// Given p stages, m microbatches, and per-microbatch forward/backward
// stage times, builds the exact interleaving each stage executes: a warmup
// of (p - 1 - stage) forwards, a steady 1F1B phase, and a cooldown of the
// remaining backwards. The resulting per-stage spans give the schedule's
// makespan and bubble fraction; the closed-form bubble (p-1)/m used by the
// analytical TrainStepTime is validated against this construction in
// tests/pipeline_schedule_test.cc.
#ifndef SRC_PERF_PIPELINE_SCHEDULE_H_
#define SRC_PERF_PIPELINE_SCHEDULE_H_

#include <string>
#include <vector>

namespace hybridflow {

struct PipelineTask {
  int stage = 0;
  int microbatch = 0;
  bool backward = false;
  double start = 0.0;
  double end = 0.0;
};

struct PipelineSchedule {
  int num_stages = 0;
  int num_microbatches = 0;
  std::vector<PipelineTask> tasks;  // All stages, by completion order.
  double makespan = 0.0;

  // Ideal time = m * (tf + tb) (one stage's serial work); bubble fraction =
  // makespan / ideal - 1.
  double ideal_seconds = 0.0;
  double BubbleFraction() const {
    return ideal_seconds > 0.0 ? makespan / ideal_seconds - 1.0 : 0.0;
  }

  // ASCII Gantt chart (one row per stage, F/B per microbatch).
  std::string Render(int columns = 80) const;
};

// Builds the 1F1B schedule. `forward_seconds` and `backward_seconds` are
// per-microbatch per-stage times (uniform across stages, the Megatron
// assumption for balanced partitions).
PipelineSchedule Build1F1BSchedule(int num_stages, int num_microbatches,
                                   double forward_seconds, double backward_seconds);

// GPipe (all-forward-then-all-backward) schedule, for comparison: same
// bubble, far higher activation memory.
PipelineSchedule BuildGpipeSchedule(int num_stages, int num_microbatches,
                                    double forward_seconds, double backward_seconds);

// Peak number of in-flight microbatches (activations held) at any stage.
int PeakActivationsInFlight(const PipelineSchedule& schedule);

}  // namespace hybridflow

#endif  // SRC_PERF_PIPELINE_SCHEDULE_H_
