// Analytical performance simulators for training, inference, and
// auto-regressive generation workloads (the `simu` module of Appendix C,
// following llm-analysis [42] and DistServe [92] style roofline models).
//
// Training and inference are compute-bound: time = FLOPs / (peak * MFU)
// plus tensor-parallel activation collectives, the pipeline bubble, and the
// data-parallel gradient all-reduce. Generation decode is memory-bound:
// each step streams the weight shard and the KV cache from HBM. A
// no-KVCache mode (NeMo-Aligner, §8.2) recomputes the full forward pass per
// generated token.
#ifndef SRC_PERF_PERF_MODEL_H_
#define SRC_PERF_PERF_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/model/model_spec.h"
#include "src/parallel/parallel_config.h"
#include "src/parallel/zero_config.h"
#include "src/sim/collective.h"
#include "src/sim/topology.h"

namespace hybridflow {

struct PerfParams {
  double mfu_train = 0.45;    // Sustained fraction of peak FLOPs in training.
  double mfu_infer = 0.50;    // ... in single-forward inference.
  double mfu_prefill = 0.55;  // ... in generation prefill (large matmuls).
  double hbm_efficiency = 0.75;  // Achievable fraction of peak HBM bandwidth.
  double decode_overhead = 15e-6;  // Fixed per-decode-step kernel launch cost.
  // Fraction of tensor-parallel activation collectives hidden behind
  // compute (Megatron sequence parallelism + async collectives).
  double tp_comm_overlap = 0.3;
  // Fraction of the DP gradient all-reduce hidden behind backward compute
  // (Megatron/DDP overlap); the remainder is exposed latency.
  double dp_comm_overlap = 0.7;
  // Fraction of ZeRO-3 parameter all-gathers hidden behind compute.
  double zero_comm_overlap = 0.3;
  // Per-token pipeline handoff cost in generation: each decode step crosses
  // pp-1 stage boundaries that cannot be hidden at batch sizes typical of
  // RLHF generation.
  double pipeline_decode_penalty = 0.08;
  // Kernel efficiency saturates with per-GPU work: below this many tokens
  // per microbatch per GPU, achieved MFU degrades linearly (the paper's
  // Â§8.3 observation that fixed global batches stop scaling on large
  // clusters as the per-worker batch shrinks).
  double full_util_tokens = 8192.0;
  double min_util_fraction = 0.35;
};

struct GenTimeBreakdown {
  double prefill_seconds = 0.0;
  double decode_seconds = 0.0;
  double comm_seconds = 0.0;  // TP collectives during decode.
  int waves = 1;              // KVCache-capacity-limited batch waves.

  double total() const { return prefill_seconds + decode_seconds + comm_seconds; }
};

class PerfModel {
 public:
  // `scalar_head` selects the critic/reward-model variant whose LM head is
  // replaced by a scalar output (§2.1).
  PerfModel(const ModelSpec& model, const ClusterSpec& cluster, bool scalar_head = false,
            PerfParams params = PerfParams());

  const ModelSpec& model() const { return model_; }
  double num_params() const { return num_params_; }
  double param_bytes() const { return 2.0 * num_params_; }

  // --- Timing ---------------------------------------------------------------
  // One 3D-parallel training step over `sequences` sequences of `seq_len`
  // tokens on `devices` (rank-major order, size cfg.world_size()).
  double TrainStepTime(const ParallelConfig& cfg, const std::vector<DeviceId>& devices,
                       int64_t sequences, int64_t seq_len, int num_microbatches) const;

  // ZeRO data-parallel training step (DeepSpeed-Chat / OpenRLHF baselines).
  double ZeroTrainStepTime(const ZeroConfig& zero, const std::vector<DeviceId>& devices,
                           int64_t sequences, int64_t seq_len) const;

  // Single forward pass over `sequences` sequences of `seq_len` tokens.
  double InferTime(const ParallelConfig& cfg, const std::vector<DeviceId>& devices,
                   int64_t sequences, int64_t seq_len) const;

  // Forward pass with ZeRO-3-sharded parameters: adds the per-layer
  // parameter all-gathers a sharded model needs for inference
  // (DeepSpeed-Chat's colocated reference/reward models).
  double ZeroInferTime(const ZeroConfig& zero, const std::vector<DeviceId>& devices,
                       int64_t sequences, int64_t seq_len) const;

  // Auto-regressive generation on ONE model replica sharded pg x tg over
  // `replica_devices`. `batch` prompts; `kv_budget_bytes` is the per-GPU
  // memory available for KV cache (best-effort allocation, §8.4). When
  // `use_kv_cache` is false every step recomputes the full forward pass.
  GenTimeBreakdown GenerateTime(const GenParallelConfig& gen,
                                const std::vector<DeviceId>& replica_devices, int64_t batch,
                                int64_t prompt_len, int64_t response_len,
                                double kv_budget_bytes, bool use_kv_cache) const;

  // --- Per-step costs for the continuous-batching rollout engine -------------
  // These expose the internals of GenerateTime at engine-step granularity so
  // src/rollout/ can charge time from the actual batch composition instead
  // of the closed-form wave approximation.
  //
  // Prefill of newly admitted sequences (one entry per sequence, its prompt
  // length): compute-bound forward over the listed prompts.
  double PrefillStepTime(const GenParallelConfig& gen,
                         const std::vector<DeviceId>& replica_devices,
                         const std::vector<int64_t>& sequence_tokens) const;
  // One decode step over `rows` running sequences whose cached contexts
  // total `context_tokens`: streams the weight shard plus the live KV once.
  double DecodeStepTime(const GenParallelConfig& gen,
                        const std::vector<DeviceId>& replica_devices, int64_t rows,
                        int64_t context_tokens) const;
  // TP activation collectives of one decode step over `rows` sequences.
  double DecodeCommStepTime(const GenParallelConfig& gen,
                            const std::vector<DeviceId>& replica_devices, int64_t rows) const;

  // --- Memory (per GPU, bytes) -----------------------------------------------
  double TrainMemoryPerGpu(const ParallelConfig& cfg, int64_t tokens_per_microbatch,
                           int num_microbatches) const;
  double ZeroTrainMemoryPerGpu(const ZeroConfig& zero, int64_t tokens_per_microbatch) const;
  double InferMemoryPerGpu(const ParallelConfig& cfg) const;
  double GenParamBytesPerGpu(const GenParallelConfig& gen) const;
  // KV bytes per cached token per GPU under tg-way sharding.
  double KvBytesPerTokenPerGpu(const GenParallelConfig& gen) const;

 private:
  double FwdFlopsPerSequence(int64_t seq_len) const;
  double ComputeSeconds(double flops, double mfu) const;
  // Achieved-utilization multiplier for a given per-GPU microbatch size.
  double UtilizationFactor(double tokens_per_microbatch) const;

  ModelSpec model_;
  ClusterSpec cluster_;
  double num_params_;
  PerfParams params_;
};

}  // namespace hybridflow

#endif  // SRC_PERF_PERF_MODEL_H_
