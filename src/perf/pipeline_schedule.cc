#include "src/perf/pipeline_schedule.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/common/check.h"
#include "src/sim/des_executor.h"

namespace hybridflow {

namespace {

struct StageOp {
  int microbatch;
  bool backward;
};

// Stage-local execution orders.
std::vector<std::vector<StageOp>> OneFOneBOrders(int p, int m) {
  std::vector<std::vector<StageOp>> orders(static_cast<size_t>(p));
  for (int stage = 0; stage < p; ++stage) {
    std::vector<StageOp>& order = orders[static_cast<size_t>(stage)];
    const int warmup = std::min(m, p - 1 - stage);
    int next_forward = 0;
    int next_backward = 0;
    for (int i = 0; i < warmup; ++i) {
      order.push_back({next_forward++, false});
    }
    while (next_forward < m) {
      order.push_back({next_forward++, false});
      order.push_back({next_backward++, true});
    }
    while (next_backward < m) {
      order.push_back({next_backward++, true});
    }
  }
  return orders;
}

std::vector<std::vector<StageOp>> GpipeOrders(int p, int m) {
  std::vector<std::vector<StageOp>> orders(static_cast<size_t>(p));
  for (int stage = 0; stage < p; ++stage) {
    for (int i = 0; i < m; ++i) {
      orders[static_cast<size_t>(stage)].push_back({i, false});
    }
    for (int i = 0; i < m; ++i) {
      orders[static_cast<size_t>(stage)].push_back({i, true});
    }
  }
  return orders;
}

PipelineSchedule BuildFromOrders(int p, int m, double tf, double tb,
                                 const std::vector<std::vector<StageOp>>& orders) {
  HF_CHECK_GT(p, 0);
  HF_CHECK_GT(m, 0);
  HF_CHECK_GT(tf, 0.0);
  HF_CHECK_GE(tb, 0.0);
  // Cross-stage dependencies: F(s,i) needs F(s-1,i); B(s,i) needs B(s+1,i)
  // (the last stage's B(i) needs its own F(i), implied by stage order).
  // The DES executor requires dependencies to be submitted first, so we
  // submit stage-local ops in a global round-robin until all are in,
  // deferring ops whose cross-stage dependency is not yet submitted.
  DesExecutor executor(ClusterSpec::WithGpus(p));
  std::map<std::pair<int, std::pair<int, int>>, DesExecutor::OpId> ids;  // (bwd,(s,i)).
  std::vector<size_t> cursor(static_cast<size_t>(p), 0);
  size_t remaining = 0;
  for (const auto& order : orders) {
    remaining += order.size();
  }
  while (remaining > 0) {
    bool progressed = false;
    for (int stage = 0; stage < p; ++stage) {
      if (cursor[static_cast<size_t>(stage)] >= orders[static_cast<size_t>(stage)].size()) {
        continue;
      }
      const StageOp op = orders[static_cast<size_t>(stage)][cursor[static_cast<size_t>(stage)]];
      std::vector<DesExecutor::OpId> deps;
      if (!op.backward && stage > 0) {
        auto it = ids.find({0, {stage - 1, op.microbatch}});
        if (it == ids.end()) {
          continue;  // Upstream forward not yet submitted.
        }
        deps.push_back(it->second);
      }
      if (op.backward && stage < p - 1) {
        auto it = ids.find({1, {stage + 1, op.microbatch}});
        if (it == ids.end()) {
          continue;
        }
        deps.push_back(it->second);
      }
      const std::string name = (op.backward ? "B" : "F") + std::to_string(op.microbatch);
      const DesExecutor::OpId id = executor.Submit(
          name, op.backward ? "backward" : "forward", {stage}, op.backward ? tb : tf, deps);
      ids[{op.backward ? 1 : 0, {stage, op.microbatch}}] = id;
      cursor[static_cast<size_t>(stage)] += 1;
      remaining -= 1;
      progressed = true;
    }
    HF_CHECK_MSG(progressed, "pipeline schedule has a dependency cycle");
  }
  executor.Run();

  PipelineSchedule schedule;
  schedule.num_stages = p;
  schedule.num_microbatches = m;
  schedule.makespan = executor.Makespan();
  schedule.ideal_seconds = static_cast<double>(m) * (tf + tb);
  for (const auto& [key, id] : ids) {
    PipelineTask task;
    task.backward = key.first == 1;
    task.stage = key.second.first;
    task.microbatch = key.second.second;
    task.start = executor.SpanOf(id).start;
    task.end = executor.SpanOf(id).end;
    schedule.tasks.push_back(task);
  }
  std::sort(schedule.tasks.begin(), schedule.tasks.end(),
            [](const PipelineTask& a, const PipelineTask& b) { return a.start < b.start; });
  return schedule;
}

}  // namespace

PipelineSchedule Build1F1BSchedule(int num_stages, int num_microbatches, double forward_seconds,
                                   double backward_seconds) {
  return BuildFromOrders(num_stages, num_microbatches, forward_seconds, backward_seconds,
                         OneFOneBOrders(num_stages, num_microbatches));
}

PipelineSchedule BuildGpipeSchedule(int num_stages, int num_microbatches, double forward_seconds,
                                    double backward_seconds) {
  return BuildFromOrders(num_stages, num_microbatches, forward_seconds, backward_seconds,
                         GpipeOrders(num_stages, num_microbatches));
}

int PeakActivationsInFlight(const PipelineSchedule& schedule) {
  int peak = 0;
  for (int stage = 0; stage < schedule.num_stages; ++stage) {
    // Activation of microbatch i is held from its forward's start to its
    // backward's end on this stage.
    std::map<int, std::pair<double, double>> intervals;
    for (const PipelineTask& task : schedule.tasks) {
      if (task.stage != stage) {
        continue;
      }
      auto& interval = intervals[task.microbatch];
      if (!task.backward) {
        interval.first = task.start;
      } else {
        interval.second = task.end;
      }
    }
    for (const auto& [i, interval] : intervals) {
      int live = 0;
      for (const auto& [j, other] : intervals) {
        if (other.first <= interval.first && interval.first < other.second) {
          live += 1;
        }
      }
      peak = std::max(peak, live);
    }
  }
  return peak;
}

std::string PipelineSchedule::Render(int columns) const {
  std::ostringstream out;
  if (makespan <= 0.0) {
    return "(empty schedule)\n";
  }
  for (int stage = 0; stage < num_stages; ++stage) {
    std::string row(static_cast<size_t>(columns), '.');
    for (const PipelineTask& task : tasks) {
      if (task.stage != stage) {
        continue;
      }
      int begin = static_cast<int>(task.start / makespan * columns);
      int finish = static_cast<int>(task.end / makespan * columns);
      begin = std::clamp(begin, 0, columns - 1);
      finish = std::clamp(finish, begin + 1, columns);
      for (int c = begin; c < finish; ++c) {
        row[static_cast<size_t>(c)] = task.backward ? 'B' : 'F';
      }
    }
    out << "stage " << stage << " |" << row << "|\n";
  }
  return out.str();
}

}  // namespace hybridflow
