#include "src/perf/perf_model.h"

#include "src/kvcache/block_manager.h"

#include <algorithm>
#include <cmath>

namespace hybridflow {

namespace {

// Representative TP group for timing: the first `tp` devices of the replica
// (rank-major layout puts a TP group on consecutive ranks).
std::vector<DeviceId> FirstN(const std::vector<DeviceId>& devices, int n) {
  HF_CHECK_LE(static_cast<size_t>(n), devices.size());
  return std::vector<DeviceId>(devices.begin(), devices.begin() + n);
}

// Representative DP group: ranks at stride pp*tp.
std::vector<DeviceId> Strided(const std::vector<DeviceId>& devices, int stride, int count) {
  std::vector<DeviceId> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    size_t index = static_cast<size_t>(i) * static_cast<size_t>(stride);
    HF_CHECK_LT(index, devices.size());
    out.push_back(devices[index]);
  }
  return out;
}

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

PerfModel::PerfModel(const ModelSpec& model, const ClusterSpec& cluster, bool scalar_head,
                     PerfParams params)
    : model_(model),
      cluster_(cluster),
      num_params_(scalar_head ? model.NumParamsScalarHead() : model.NumParams()),
      params_(params) {}

double PerfModel::FwdFlopsPerSequence(int64_t seq_len) const {
  HF_CHECK_GT(seq_len, 0);
  const double matmul = 2.0 * num_params_ * static_cast<double>(seq_len);
  const double attention = 2.0 * static_cast<double>(model_.hidden_size) *
                           static_cast<double>(model_.num_layers) *
                           static_cast<double>(seq_len) * static_cast<double>(seq_len) / 2.0;
  return matmul + attention;
}

double PerfModel::ComputeSeconds(double flops, double mfu) const {
  HF_CHECK_GT(mfu, 0.0);
  return flops / (cluster_.gpu.bf16_flops * mfu);
}

double PerfModel::UtilizationFactor(double tokens_per_microbatch) const {
  const double ratio = tokens_per_microbatch / params_.full_util_tokens;
  return std::clamp(ratio, params_.min_util_fraction, 1.0);
}

double PerfModel::TrainStepTime(const ParallelConfig& cfg, const std::vector<DeviceId>& devices,
                                int64_t sequences, int64_t seq_len, int num_microbatches) const {
  HF_CHECK(cfg.Valid());
  HF_CHECK_EQ(static_cast<int>(devices.size()), cfg.world_size());
  HF_CHECK_GT(num_microbatches, 0);
  const int64_t shard_sequences = CeilDiv(sequences, cfg.dp);
  const double shard_flops =
      3.0 * FwdFlopsPerSequence(seq_len) * static_cast<double>(shard_sequences);
  const double per_gpu_flops = shard_flops / static_cast<double>(cfg.model_parallel_size());
  const double tokens_per_microbatch = static_cast<double>(shard_sequences) *
                                       static_cast<double>(seq_len) /
                                       static_cast<double>(num_microbatches);
  double compute = ComputeSeconds(
      per_gpu_flops, params_.mfu_train * UtilizationFactor(tokens_per_microbatch));

  // Pipeline bubble: with m microbatches and p stages, the bubble fraction
  // is (p-1)/m of the useful work [54].
  compute *= 1.0 + static_cast<double>(cfg.pp - 1) / static_cast<double>(num_microbatches);

  // Tensor-parallel activation collectives: 2 all-reduces per layer in the
  // forward pass and 2 in the backward pass of BF16 activations.
  double tp_comm = 0.0;
  if (cfg.tp > 1) {
    const std::vector<DeviceId> tp_group = FirstN(devices, cfg.tp);
    const double tokens = static_cast<double>(shard_sequences) * static_cast<double>(seq_len);
    const double bytes_per_allreduce = tokens * static_cast<double>(model_.hidden_size) * 2.0;
    const double layers_per_stage =
        static_cast<double>(model_.num_layers) / static_cast<double>(cfg.pp);
    tp_comm = 4.0 * layers_per_stage * AllReduceTime(cluster_, tp_group, bytes_per_allreduce) *
              (1.0 - params_.tp_comm_overlap);
  }

  // Pipeline stage-boundary activation transfers (p2p per microbatch).
  double pp_comm = 0.0;
  if (cfg.pp > 1) {
    const double tokens_per_microbatch =
        static_cast<double>(shard_sequences) * static_cast<double>(seq_len) /
        static_cast<double>(num_microbatches);
    const double bytes = tokens_per_microbatch * static_cast<double>(model_.hidden_size) * 2.0;
    // Forward and backward each cross pp-1 boundaries per microbatch.
    pp_comm = 2.0 * static_cast<double>(cfg.pp - 1) *
              static_cast<double>(num_microbatches) *
              (bytes / cluster_.nvlink_bandwidth + cluster_.link_latency);
  }

  // Data-parallel gradient all-reduce of the FP32 gradient shard; partially
  // overlapped with backward compute.
  double dp_comm = 0.0;
  if (cfg.dp > 1) {
    const std::vector<DeviceId> dp_group =
        Strided(devices, cfg.model_parallel_size(), cfg.dp);
    const double grad_bytes =
        4.0 * num_params_ / static_cast<double>(cfg.model_parallel_size());
    dp_comm = AllReduceTime(cluster_, dp_group, grad_bytes) * (1.0 - params_.dp_comm_overlap);
  }

  // Optimizer update: stream master weights + moments + grads through HBM.
  const double update_bytes =
      ModelSpec::kTrainBytesPerParam * num_params_ / static_cast<double>(cfg.model_parallel_size());
  const double update = update_bytes / (cluster_.gpu.hbm_bandwidth * params_.hbm_efficiency);

  return compute + tp_comm + pp_comm + dp_comm + update;
}

double PerfModel::ZeroTrainStepTime(const ZeroConfig& zero, const std::vector<DeviceId>& devices,
                                    int64_t sequences, int64_t seq_len) const {
  HF_CHECK_EQ(static_cast<int>(devices.size()), zero.dp);
  const int64_t shard_sequences = CeilDiv(sequences, zero.dp);
  const double shard_flops =
      3.0 * FwdFlopsPerSequence(seq_len) * static_cast<double>(shard_sequences);
  const double shard_tokens =
      static_cast<double>(shard_sequences) * static_cast<double>(seq_len);
  double compute =
      ComputeSeconds(shard_flops, params_.mfu_train * UtilizationFactor(shard_tokens));

  // Gradient reduce-scatter (stage >= 2 shards grads) or all-reduce;
  // partially overlapped with backward compute.
  double grad_comm;
  const double grad_bytes = 4.0 * num_params_;
  if (zero.stage == ZeroStage::kNone) {
    grad_comm = AllReduceTime(cluster_, devices, grad_bytes);
  } else {
    grad_comm = ReduceScatterTime(cluster_, devices, grad_bytes);
  }
  grad_comm *= 1.0 - params_.dp_comm_overlap;

  // ZeRO-3 parameter all-gathers for forward and backward, partially
  // hidden behind layer compute (prefetching).
  double param_comm = 0.0;
  if (zero.stage == ZeroStage::kStage3 && zero.dp > 1) {
    param_comm = 2.0 * AllGatherTime(cluster_, devices, 2.0 * num_params_) *
                 (1.0 - params_.zero_comm_overlap);
  }

  const double update_bytes = ModelSpec::kTrainBytesPerParam * num_params_ /
                              static_cast<double>(std::max(1, zero.dp));
  const double update = update_bytes / (cluster_.gpu.hbm_bandwidth * params_.hbm_efficiency);

  return compute + grad_comm + param_comm + update;
}

double PerfModel::InferTime(const ParallelConfig& cfg, const std::vector<DeviceId>& devices,
                            int64_t sequences, int64_t seq_len) const {
  HF_CHECK(cfg.Valid());
  HF_CHECK_EQ(static_cast<int>(devices.size()), cfg.world_size());
  const int64_t shard_sequences = CeilDiv(sequences, cfg.dp);
  const double shard_flops =
      FwdFlopsPerSequence(seq_len) * static_cast<double>(shard_sequences);
  const double per_gpu_flops = shard_flops / static_cast<double>(cfg.model_parallel_size());
  double compute = ComputeSeconds(per_gpu_flops, params_.mfu_infer);
  // Pipeline fill overhead with microbatch count ~= shard batch.
  const double microbatches = std::max<double>(1.0, static_cast<double>(shard_sequences));
  compute *= 1.0 + static_cast<double>(cfg.pp - 1) / microbatches;

  double tp_comm = 0.0;
  if (cfg.tp > 1) {
    const std::vector<DeviceId> tp_group = FirstN(devices, cfg.tp);
    const double tokens = static_cast<double>(shard_sequences) * static_cast<double>(seq_len);
    const double bytes_per_allreduce = tokens * static_cast<double>(model_.hidden_size) * 2.0;
    const double layers_per_stage =
        static_cast<double>(model_.num_layers) / static_cast<double>(cfg.pp);
    tp_comm = 2.0 * layers_per_stage * AllReduceTime(cluster_, tp_group, bytes_per_allreduce) *
              (1.0 - params_.tp_comm_overlap);
  }
  return compute + tp_comm;
}

double PerfModel::ZeroInferTime(const ZeroConfig& zero, const std::vector<DeviceId>& devices,
                                int64_t sequences, int64_t seq_len) const {
  const ParallelConfig cfg{1, 1, zero.dp};
  double time = InferTime(cfg, devices, sequences, seq_len);
  if (zero.stage == ZeroStage::kStage3 && zero.dp > 1) {
    // One parameter all-gather for the forward pass, partially prefetched.
    time += AllGatherTime(cluster_, devices, 2.0 * num_params_) *
            (1.0 - params_.zero_comm_overlap);
  }
  return time;
}

GenTimeBreakdown PerfModel::GenerateTime(const GenParallelConfig& gen,
                                         const std::vector<DeviceId>& replica_devices,
                                         int64_t batch, int64_t prompt_len, int64_t response_len,
                                         double kv_budget_bytes, bool use_kv_cache) const {
  HF_CHECK_EQ(static_cast<int>(replica_devices.size()), gen.pp * gen.tp);
  HF_CHECK_GT(batch, 0);
  HF_CHECK_GT(prompt_len, 0);
  HF_CHECK_GE(response_len, 0);
  const double mp = static_cast<double>(gen.pp * gen.tp);
  GenTimeBreakdown out;

  // --- KVCache capacity: how many sequences fit at full length. ------------
  const int64_t seq_total = prompt_len + response_len;
  int64_t wave_batch = batch;
  if (use_kv_cache) {
    // Capacity through the paged block manager (vLLM semantics): block-
    // granular allocation slightly under-packs relative to raw bytes.
    const double bytes_per_token = KvBytesPerTokenPerGpu(gen);
    if (bytes_per_token > 0.0 && kv_budget_bytes > 0.0) {
      KvBlockConfig blocks;
      blocks.block_tokens = 16;
      blocks.bytes_per_token = bytes_per_token;
      blocks.num_blocks = static_cast<int64_t>(
          kv_budget_bytes / (static_cast<double>(blocks.block_tokens) * bytes_per_token));
      const KvBlockManager manager(blocks);
      wave_batch = std::clamp<int64_t>(manager.CapacitySequences(seq_total), 1, batch);
    }
    out.waves = static_cast<int>(CeilDiv(batch, wave_batch));
    // Balance the batch across waves (a scheduler would): the wave count is
    // capacity-determined, the per-wave batch is not maximal.
    wave_batch = CeilDiv(batch, out.waves);
  }

  const std::vector<DeviceId> tp_group = FirstN(replica_devices, gen.tp);
  const double layers_per_stage =
      static_cast<double>(model_.num_layers) / static_cast<double>(gen.pp);

  if (!use_kv_cache) {
    // NeMo-Aligner's KVCache-less generation engine (§8.2): each decode
    // step re-processes a chunk of the running context instead of reading
    // cached K/V. We model this as per-step FLOPs of
    //   2*N*b * (1 + context / kRecomputeChunk)
    // — a calibrated stand-in (full naive recompute would be context/1 and
    // is far slower than the engine the paper measured, which still
    // batches matmuls efficiently). The calibration target is the paper's
    // observation that generation dominates up to 81.2% of NeMo's
    // iteration and yields an order-of-magnitude overall slowdown.
    constexpr double kRecomputeChunk = 24.0;
    const double b = static_cast<double>(batch);
    const double r = static_cast<double>(response_len);
    const double p = static_cast<double>(prompt_len);
    const double avg_context = p + r / 2.0;
    const double prefill_flops = FwdFlopsPerSequence(prompt_len) * b;
    out.prefill_seconds = ComputeSeconds(prefill_flops / mp, params_.mfu_prefill);
    const double flops_per_step =
        2.0 * num_params_ * b * (1.0 + avg_context / kRecomputeChunk);
    double step_time = ComputeSeconds(flops_per_step / mp, params_.mfu_infer) +
                       params_.decode_overhead * layers_per_stage / 8.0;
    if (gen.pp > 1) {
      step_time *= 1.0 + params_.pipeline_decode_penalty * static_cast<double>(gen.pp - 1);
      step_time += static_cast<double>(gen.pp - 1) * cluster_.link_latency;
    }
    out.decode_seconds = step_time * r;
    if (gen.tp > 1) {
      const double bytes = b * static_cast<double>(model_.hidden_size) * 2.0;
      out.comm_seconds = 2.0 * layers_per_stage * r * AllReduceTime(cluster_, tp_group, bytes);
    }
    return out;
  }

  const double waves = static_cast<double>(out.waves);
  const double b = static_cast<double>(std::min(wave_batch, batch));

  // Prefill: compute-bound forward over the prompts (all waves).
  const double prefill_flops =
      FwdFlopsPerSequence(prompt_len) * static_cast<double>(batch);
  out.prefill_seconds = ComputeSeconds(prefill_flops / mp, params_.mfu_prefill);

  // Decode: per step, stream the weight shard once plus the live KV cache.
  const double weight_shard_bytes = param_bytes() / mp;
  const double avg_context = static_cast<double>(prompt_len) + static_cast<double>(response_len) / 2.0;
  const double kv_bytes_per_step = KvBytesPerTokenPerGpu(gen) * avg_context * b;
  const double bytes_per_step = weight_shard_bytes + kv_bytes_per_step;
  const double flops_per_step = 2.0 * num_params_ * b / mp;
  double step_time =
      std::max(bytes_per_step / (cluster_.gpu.hbm_bandwidth * params_.hbm_efficiency),
               ComputeSeconds(flops_per_step, params_.mfu_infer)) +
      params_.decode_overhead * layers_per_stage / 8.0;
  // Pipeline-parallel decode: every token crosses pp-1 stage handoffs that
  // cannot be hidden at RLHF generation batch sizes.
  if (gen.pp > 1) {
    step_time *= 1.0 + params_.pipeline_decode_penalty * static_cast<double>(gen.pp - 1);
    step_time += static_cast<double>(gen.pp - 1) * cluster_.link_latency;
  }
  out.decode_seconds = step_time * static_cast<double>(response_len) * waves;

  // TP collectives during decode: 2 all-reduces/layer/step of b*h BF16.
  if (gen.tp > 1) {
    const double bytes = b * static_cast<double>(model_.hidden_size) * 2.0;
    const double per_step = 2.0 * layers_per_stage * AllReduceTime(cluster_, tp_group, bytes);
    out.comm_seconds = per_step * static_cast<double>(response_len) * waves;
  }
  return out;
}

double PerfModel::PrefillStepTime(const GenParallelConfig& gen,
                                  const std::vector<DeviceId>& replica_devices,
                                  const std::vector<int64_t>& sequence_tokens) const {
  HF_CHECK_EQ(static_cast<int>(replica_devices.size()), gen.pp * gen.tp);
  const double mp = static_cast<double>(gen.pp * gen.tp);
  double flops = 0.0;
  for (int64_t tokens : sequence_tokens) {
    flops += FwdFlopsPerSequence(tokens);
  }
  return ComputeSeconds(flops / mp, params_.mfu_prefill);
}

double PerfModel::DecodeStepTime(const GenParallelConfig& gen,
                                 const std::vector<DeviceId>& replica_devices, int64_t rows,
                                 int64_t context_tokens) const {
  HF_CHECK_EQ(static_cast<int>(replica_devices.size()), gen.pp * gen.tp);
  HF_CHECK_GT(rows, 0);
  HF_CHECK_GE(context_tokens, 0);
  const double mp = static_cast<double>(gen.pp * gen.tp);
  const double layers_per_stage =
      static_cast<double>(model_.num_layers) / static_cast<double>(gen.pp);
  const double weight_shard_bytes = param_bytes() / mp;
  const double kv_bytes =
      KvBytesPerTokenPerGpu(gen) * static_cast<double>(context_tokens);
  const double bytes_per_step = weight_shard_bytes + kv_bytes;
  const double flops_per_step = 2.0 * num_params_ * static_cast<double>(rows) / mp;
  double step_time =
      std::max(bytes_per_step / (cluster_.gpu.hbm_bandwidth * params_.hbm_efficiency),
               ComputeSeconds(flops_per_step, params_.mfu_infer)) +
      params_.decode_overhead * layers_per_stage / 8.0;
  if (gen.pp > 1) {
    step_time *= 1.0 + params_.pipeline_decode_penalty * static_cast<double>(gen.pp - 1);
    step_time += static_cast<double>(gen.pp - 1) * cluster_.link_latency;
  }
  return step_time;
}

double PerfModel::DecodeCommStepTime(const GenParallelConfig& gen,
                                     const std::vector<DeviceId>& replica_devices,
                                     int64_t rows) const {
  HF_CHECK_EQ(static_cast<int>(replica_devices.size()), gen.pp * gen.tp);
  if (gen.tp <= 1) {
    return 0.0;
  }
  const std::vector<DeviceId> tp_group = FirstN(replica_devices, gen.tp);
  const double layers_per_stage =
      static_cast<double>(model_.num_layers) / static_cast<double>(gen.pp);
  const double bytes =
      static_cast<double>(rows) * static_cast<double>(model_.hidden_size) * 2.0;
  return 2.0 * layers_per_stage * AllReduceTime(cluster_, tp_group, bytes);
}

double PerfModel::TrainMemoryPerGpu(const ParallelConfig& cfg, int64_t tokens_per_microbatch,
                                    int num_microbatches) const {
  HF_CHECK_GT(num_microbatches, 0);
  const double mp = static_cast<double>(cfg.model_parallel_size());
  const double state = ModelSpec::kTrainBytesPerParam * num_params_ / mp;
  // Pipeline parallelism keeps up to `pp` microbatches of activations live.
  const double live_microbatches = std::min<double>(cfg.pp, num_microbatches);
  const double activations = model_.ActivationBytesPerToken() *
                             static_cast<double>(tokens_per_microbatch) * live_microbatches /
                             static_cast<double>(cfg.tp) / static_cast<double>(cfg.pp);
  return state + activations;
}

double PerfModel::ZeroTrainMemoryPerGpu(const ZeroConfig& zero,
                                        int64_t tokens_per_microbatch) const {
  const double state = ZeroTrainStateBytesPerGpu(num_params_, zero);
  const double activations =
      model_.ActivationBytesPerToken() * static_cast<double>(tokens_per_microbatch);
  return state + activations;
}

double PerfModel::InferMemoryPerGpu(const ParallelConfig& cfg) const {
  return param_bytes() / static_cast<double>(cfg.model_parallel_size());
}

double PerfModel::GenParamBytesPerGpu(const GenParallelConfig& gen) const {
  return param_bytes() / static_cast<double>(gen.pp * gen.tp);
}

double PerfModel::KvBytesPerTokenPerGpu(const GenParallelConfig& gen) const {
  return model_.KvCacheBytesPerToken() / static_cast<double>(gen.tp) /
         static_cast<double>(gen.pp);
}

}  // namespace hybridflow
