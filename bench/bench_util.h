// Shared helpers for the figure/table reproduction benches.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"
#include "src/obs/telemetry.h"

namespace hybridflow {

// Builds and measures one (system, algorithm, model, gpus) cell; returns
// throughput in tokens/sec or a negative value when infeasible (OOM).
inline double MeasureThroughput(RlhfSystem system, RlhfAlgorithm algorithm,
                                const ModelSpec& actor_model, const ModelSpec& critic_model,
                                int gpus, IterationMetrics* metrics_out = nullptr) {
  SystemBuildConfig config;
  config.system = system;
  config.algorithm = algorithm;
  config.num_gpus = gpus;
  config.actor_model = actor_model;
  config.critic_model = critic_model;
  config.real_compute = false;
  RlhfSystemInstance instance = BuildSystem(config);
  if (!instance.feasible) {
    return -1.0;
  }
  IterationMetrics metrics = instance.RunAveraged(/*warmup=*/1, /*measured=*/2);
  if (metrics_out != nullptr) {
    *metrics_out = metrics;
  }
  return metrics.throughput_tokens_per_sec;
}

// Prints one throughput table (one paper figure panel): rows = systems,
// columns = cluster sizes; cells are tokens/sec with HybridFlow speedups.
// When `report` is non-null, every measured cell is also appended to it as
// a structured row, so the bench can emit a machine-readable
// BENCH_<name>.json next to the human-readable panel.
inline void PrintThroughputPanel(RlhfAlgorithm algorithm, const std::string& model_name,
                                 const std::vector<int>& gpu_counts,
                                 const std::vector<RlhfSystem>& systems,
                                 BenchReport* report = nullptr) {
  const ModelSpec model = ModelSpec::ByName(model_name);
  std::cout << "\n--- " << RlhfAlgorithmName(algorithm) << ", " << model_name
            << " models (throughput, tokens/sec; parentheses: HybridFlow speedup) ---\n";
  std::cout << StrFormat("%-16s", "system");
  for (int gpus : gpu_counts) {
    std::cout << StrFormat(" | %14d", gpus);
  }
  std::cout << " GPUs\n";

  std::vector<std::vector<double>> table(systems.size());
  for (size_t s = 0; s < systems.size(); ++s) {
    for (int gpus : gpu_counts) {
      const double tokens_per_sec =
          MeasureThroughput(systems[s], algorithm, model, model, gpus);
      table[s].push_back(tokens_per_sec);
      if (report != nullptr) {
        report->AddRow()
            .Text("system", RlhfSystemName(systems[s]))
            .Text("algorithm", RlhfAlgorithmName(algorithm))
            .Text("model", model_name)
            .Number("gpus", gpus)
            .Number("feasible", tokens_per_sec >= 0.0 ? 1 : 0)
            .Number("tokens_per_sec", tokens_per_sec >= 0.0 ? tokens_per_sec : 0.0);
      }
    }
  }
  size_t hybridflow_row = systems.size() - 1;
  for (size_t s = 0; s < systems.size(); ++s) {
    if (systems[s] == RlhfSystem::kHybridFlow) {
      hybridflow_row = s;
    }
  }
  for (size_t s = 0; s < systems.size(); ++s) {
    std::cout << StrFormat("%-16s", RlhfSystemName(systems[s]));
    for (size_t c = 0; c < gpu_counts.size(); ++c) {
      if (table[s][c] < 0.0) {
        std::cout << StrFormat(" | %14s", "OOM");
      } else if (s == hybridflow_row) {
        std::cout << StrFormat(" | %14.0f", table[s][c]);
      } else {
        const double speedup =
            table[hybridflow_row][c] > 0.0 ? table[hybridflow_row][c] / table[s][c] : 0.0;
        std::cout << StrFormat(" | %8.0f (%.2fx)", table[s][c], speedup);
      }
    }
    std::cout << "\n";
  }
}

}  // namespace hybridflow

#endif  // BENCH_BENCH_UTIL_H_
