// Ablation: sensitivity of the headline result to the perf-model
// calibration constants (DESIGN.md §4). The claim "HybridFlow outperforms
// every baseline" should not hinge on any single calibrated parameter, so
// we sweep each one from pessimistic to optimistic and re-measure the
// HybridFlow-vs-best-baseline speedup on a representative cell (13B / 32
// GPUs, PPO).

#include <algorithm>
#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"

namespace hybridflow {
namespace {

double Speedup(const PerfParams& perf) {
  double hybridflow = 0.0;
  double best_baseline = 0.0;
  for (RlhfSystem system : {RlhfSystem::kHybridFlow, RlhfSystem::kDeepSpeedChat,
                            RlhfSystem::kOpenRlhf, RlhfSystem::kNemoAligner}) {
    SystemBuildConfig config;
    config.system = system;
    config.algorithm = RlhfAlgorithm::kPpo;
    config.num_gpus = 32;
    config.actor_model = ModelSpec::Llama13B();
    config.critic_model = ModelSpec::Llama13B();
    config.real_compute = false;
    config.perf = perf;
    RlhfSystemInstance instance = BuildSystem(config);
    if (!instance.feasible) {
      continue;
    }
    const double tput = instance.RunAveraged(1, 2).throughput_tokens_per_sec;
    if (system == RlhfSystem::kHybridFlow) {
      hybridflow = tput;
    } else {
      best_baseline = std::max(best_baseline, tput);
    }
  }
  return best_baseline > 0.0 ? hybridflow / best_baseline : 0.0;
}

template <typename Setter>
void SweepParam(const char* name, const std::vector<double>& values, Setter setter) {
  std::cout << StrFormat("%-24s |", name);
  for (double value : values) {
    PerfParams perf;
    setter(&perf, value);
    std::cout << StrFormat("  %4.2f -> %.2fx |", value, Speedup(perf));
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace hybridflow

int main() {
  using namespace hybridflow;
  std::cout << "===================================================================\n";
  std::cout << "Ablation: calibration sensitivity of the headline speedup\n";
  std::cout << "(HybridFlow vs best baseline, PPO, 13B models, 32 GPUs)\n";
  std::cout << "===================================================================\n";
  SweepParam("dp_comm_overlap", {0.0, 0.5, 0.7, 0.9},
             [](PerfParams* perf, double value) { perf->dp_comm_overlap = value; });
  SweepParam("zero_comm_overlap", {0.0, 0.3, 0.6, 0.9},
             [](PerfParams* perf, double value) { perf->zero_comm_overlap = value; });
  SweepParam("tp_comm_overlap", {0.0, 0.3, 0.6},
             [](PerfParams* perf, double value) { perf->tp_comm_overlap = value; });
  SweepParam("hbm_efficiency", {0.5, 0.75, 0.95},
             [](PerfParams* perf, double value) { perf->hbm_efficiency = value; });
  SweepParam("mfu_train", {0.3, 0.45, 0.6},
             [](PerfParams* perf, double value) { perf->mfu_train = value; });
  SweepParam("min_util_fraction", {0.2, 0.35, 1.0},
             [](PerfParams* perf, double value) { perf->min_util_fraction = value; });
  std::cout << "\nExpected: every cell stays > 1.0x — the qualitative conclusion is\n"
               "robust to the calibration constants; only the magnitude moves.\n";
  return 0;
}
