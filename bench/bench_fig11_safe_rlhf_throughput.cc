// Figure 11: Safe-RLHF throughput vs baselines. Safe-RLHF adds a fifth
// model (the cost model) and an auxiliary pretraining loss for the actor.

#include <iostream>
#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace hybridflow;
  std::cout << "==================================================\n";
  std::cout << "Figure 11: Safe-RLHF throughput vs baselines\n";
  std::cout << "==================================================\n";

  const std::vector<RlhfSystem> systems = {RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                                           RlhfSystem::kNemoAligner, RlhfSystem::kHybridFlow};
  const std::map<std::string, std::vector<int>> sweeps = {
      {"7B", {8, 16, 32, 64, 128}},
      {"13B", {16, 32, 64, 128}},
      {"34B", {32, 64, 128}},
      {"70B", {64, 128}},
  };
  BenchReport report("fig11_safe_rlhf_throughput");
  for (const auto& [model, gpu_counts] : sweeps) {
    PrintThroughputPanel(RlhfAlgorithm::kSafeRlhf, model, gpu_counts, systems, &report);
  }
  if (report.WriteJson()) {
    std::cout << "\nwrote " << report.FilePath() << " (" << report.size() << " rows)\n";
  }
  std::cout << "\nExpected shape: same ordering as PPO; the extra cost model raises\n"
               "memory pressure, pushing baselines to OOM at smaller scales.\n";
  return 0;
}
