// Ablation: the 3D-HybridEngine's design choices (§5.3/§5.4), holding the
// system fixed and swapping only the actor engine:
//
//   ds-chat        full all-gather across every GPU, then re-partition
//   hybridflow-v   all-gather within training TP x PP groups (vanilla
//                  generation grouping)
//   hybridflow     concurrent micro-DP-group all-gathers (zero-redundancy
//                  generation grouping)
//
// Reports per-transition latency, per-GPU communication volume, peak
// parameter memory, and redundant memory — the Table 2 quantities in time
// and bytes — plus the end-to-end iteration impact.

#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"
#include "src/common/units.h"

namespace hybridflow {
namespace {

struct Setting {
  const char* model;
  int gpus;
  ParallelConfig train;
  GenParallelConfig gen;
};

void Panel(const Setting& setting) {
  const ModelSpec model = ModelSpec::ByName(setting.model);
  std::cout << "\n--- " << setting.model << " actor, " << setting.gpus << " GPUs, train "
            << setting.train.ToString() << ", generation " << setting.gen.ToString()
            << " ---\n";
  std::cout << StrFormat("%-14s | %10s | %12s | %12s | %12s | %12s\n", "engine", "reshard",
                         "comm/GPU", "peak mem", "redundant", "iter total");
  for (ActorEngineMode mode : {ActorEngineMode::kDsChat, ActorEngineMode::kHybridFlowV,
                               ActorEngineMode::kHybridFlow}) {
    Controller controller(ClusterSpec::WithGpus(setting.gpus));
    auto pool = controller.CreatePoolRange("all", 0, setting.gpus);
    RealComputeOptions real;
    real.enabled = false;

    WorkerGroupOptions options;
    options.name = "actor";
    options.model = model;
    options.trainable = true;
    // DS-Chat's engine reshards from ZeRO; the others from 3D training.
    options.backend =
        mode == ActorEngineMode::kDsChat ? WorkerBackend::kZero : WorkerBackend::k3dParallel;
    options.train_cfg = setting.train;
    ActorOptions actor_options;
    actor_options.gen = setting.gen;
    actor_options.engine_mode = mode;
    ActorWorkerGroup actor(options, pool, &controller, real, actor_options);

    RlhfWorkloadSpec workload;
    BatchFuture prompts;
    controller.BeginIteration();
    BatchFuture generated = actor.GenerateSequences(prompts, workload);
    actor.UpdateActor(generated, workload);
    const TransitionStats& stats = actor.last_transition_stats();
    std::cout << StrFormat("%-14s | %10s | %12s | %12s | %12s | %12s\n",
                           ActorEngineModeName(mode),
                           HumanSeconds(stats.seconds).c_str(),
                           HumanBytes(stats.comm_bytes_per_gpu).c_str(),
                           HumanBytes(stats.peak_param_bytes).c_str(),
                           HumanBytes(stats.redundant_bytes).c_str(),
                           HumanSeconds(controller.EndIteration()).c_str());
  }
}

}  // namespace
}  // namespace hybridflow

int main() {
  using namespace hybridflow;
  std::cout << "=================================================================\n";
  std::cout << "Ablation: actor engine designs (gen grouping + reshard scope)\n";
  std::cout << "=================================================================\n";
  Panel({"7B", 16, {1, 8, 2}, {1, 2}});
  Panel({"13B", 16, {1, 8, 2}, {1, 4}});
  Panel({"34B", 32, {2, 8, 2}, {1, 4}});
  Panel({"70B", 64, {4, 8, 2}, {2, 4}});
  std::cout << "\nExpected: hybridflow strictly dominates on every column — less\n"
               "communication, a fraction of the peak memory, zero redundancy, and\n"
               "the fastest reshard, with the gap widening with model size (§5.4).\n";
  return 0;
}
