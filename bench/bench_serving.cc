// SLO-aware serving admission vs plain FCFS across arrival-trace shapes.
//
// Replays the same seeded two-tenant trace (interactive: high priority,
// tight TTFT SLO, 4x fair-share weight; batch: best-effort) through
// SimulateServing on one 7B replica (p_g=1, t_g=2) under each admission
// policy, for each trace shape (Poisson / bursty ON-OFF / diurnal). The
// trace, KV budget, and PerfModel costs are identical across policies, so
// differences are pure scheduling. Expected shape:
//   * fcfs        — interactive requests queue behind batch bursts: worst
//                   interactive p99 TTFT, best batch fairness;
//   * priority    — interactive jumps the queue: best interactive TTFT,
//                   batch TTFT degrades under load;
//   * deadline    — EDF orders by TTFT deadline: close to priority for the
//                   SLO'd class without starving deadline-free requests;
//   * weighted_fair — DRR tracks the 4:1 weights: interactive protected,
//                   batch keeps a guaranteed share.
//
// Emits BENCH_serving.json with one row per (policy, shape, tenant).

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/data/arrival_trace.h"
#include "src/obs/telemetry.h"
#include "src/serving/sim.h"
#include "src/sim/topology.h"

namespace hybridflow {
namespace {

ArrivalTraceConfig TraceConfig(TraceShape shape) {
  ArrivalTraceConfig config;
  config.shape = shape;
  config.rate = 6.0;
  config.duration = 30.0;
  config.max_requests = 256;
  config.burst_on = 2.0;
  config.burst_off = 4.0;
  config.burst_factor = 4.0;
  config.diurnal_period = 15.0;
  config.diurnal_depth = 0.9;

  TenantSpec interactive;
  interactive.tenant = 0;
  interactive.share = 0.3;
  interactive.priority = 10;
  interactive.ttft_slo = 2.0;
  interactive.tpot_slo = 0.5;
  interactive.prompt_min = 64;
  interactive.prompt_max = 256;
  interactive.new_tokens_min = 16;
  interactive.new_tokens_max = 64;

  TenantSpec batch;
  batch.tenant = 1;
  batch.share = 0.7;
  batch.priority = 0;
  batch.prompt_min = 256;
  batch.prompt_max = 1024;
  batch.new_tokens_min = 64;
  batch.new_tokens_max = 256;

  config.tenants = {interactive, batch};
  return config;
}

struct Policy {
  const char* name;
  ServingPolicyConfig config;
};

std::vector<Policy> Policies() {
  // The FCFS baseline is the plain rollout path: queue-order admission,
  // overdue requests served late rather than rejected.
  Policy fcfs{"fcfs", {}};
  fcfs.config.expire_overdue = false;

  Policy priority{"priority", {}};
  priority.config.admission = AdmissionPolicy::kPriority;

  Policy deadline{"deadline", {}};
  deadline.config.admission = AdmissionPolicy::kDeadline;

  Policy fair{"weighted_fair", {}};
  fair.config.admission = AdmissionPolicy::kWeightedFair;
  fair.config.tenant_weights = {{0, 4.0}, {1, 1.0}};

  return {fcfs, priority, deadline, fair};
}

int Main() {
  const ClusterSpec cluster = ClusterSpec::WithGpus(16);
  const PerfModel perf(ModelSpec::Llama7B(), cluster);
  const GenParallelConfig gen{1, 2};
  const std::vector<DeviceId> devices{0, 1};
  // Tight enough that bursts queue: ~256 blocks of 16 tokens.
  const double kv_budget = 256.0 * 16.0 * perf.KvBytesPerTokenPerGpu(gen);

  BenchReport report("serving");
  std::cout << StrFormat("%-13s | %-7s | %-11s | %4s | %4s | %4s | %5s | %8s | %9s | %9s\n",
                         "policy", "shape", "tenant", "reqs", "fin", "exp", "slo%", "goodput",
                         "ttft p99", "tpot p99");
  for (const TraceShape shape : {TraceShape::kPoisson, TraceShape::kBursty, TraceShape::kDiurnal}) {
    const std::vector<ArrivalRecord> trace = GenerateArrivalTrace(TraceConfig(shape), /*seed=*/7);
    for (const Policy& policy : Policies()) {
      const ServingSimResult result =
          SimulateServing(perf, gen, devices, trace, kv_budget, policy.config);
      if (result.kv_leaked_blocks != 0) {
        std::cerr << "KV leak: " << result.kv_leaked_blocks << " blocks still resident\n";
        return 1;
      }
      for (const TenantServingStats& tenant : result.report.tenants) {
        const char* tenant_name = tenant.tenant == 0 ? "interactive" : "batch";
        const double slo_rate =
            tenant.requests > 0
                ? 100.0 * static_cast<double>(tenant.slo_attained) / tenant.requests
                : 0.0;
        std::cout << StrFormat(
            "%-13s | %-7s | %-11s | %4lld | %4lld | %4lld | %4.0f%% | %7.1f/s | %9s | %9s\n",
            policy.name, TraceShapeName(shape), tenant_name,
            static_cast<long long>(tenant.requests), static_cast<long long>(tenant.finished),
            static_cast<long long>(tenant.expired), slo_rate, tenant.goodput,
            HumanSeconds(tenant.ttft.p99).c_str(), HumanSeconds(tenant.tpot.p99).c_str());
        report.AddRow()
            .Text("policy", policy.name)
            .Text("trace_shape", TraceShapeName(shape))
            .Text("tenant", tenant_name)
            .Number("tenant_id", static_cast<double>(tenant.tenant))
            .Number("requests", static_cast<double>(tenant.requests))
            .Number("finished", static_cast<double>(tenant.finished))
            .Number("cancelled", static_cast<double>(tenant.cancelled))
            .Number("expired", static_cast<double>(tenant.expired))
            .Number("slo_attained", static_cast<double>(tenant.slo_attained))
            .Number("slo_attainment_rate", slo_rate / 100.0)
            .Number("goodput_tokens", static_cast<double>(tenant.goodput_tokens))
            .Number("goodput_tokens_per_s", tenant.goodput)
            .Number("ttft_p50_s", tenant.ttft.p50)
            .Number("ttft_p99_s", tenant.ttft.p99)
            .Number("tpot_p50_s", tenant.tpot.p50)
            .Number("tpot_p99_s", tenant.tpot.p99)
            .Number("makespan_s", result.report.makespan)
            .Number("steps", static_cast<double>(result.scheduler_stats.steps))
            .Number("preemptions", static_cast<double>(result.scheduler_stats.preemptions))
            .Number("kv_high_water_blocks", static_cast<double>(result.kv_high_water_blocks));
      }
    }
  }
  if (!report.WriteJson()) {
    std::cerr << "failed to write " << report.FilePath() << "\n";
    return 1;
  }
  std::cout << "wrote " << report.FilePath() << " (" << report.size() << " rows)\n";
  return 0;
}

}  // namespace
}  // namespace hybridflow

int main() { return hybridflow::Main(); }
