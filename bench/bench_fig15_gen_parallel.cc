// Figure 15: time breakdown (transition + generation) for different
// generation tensor-parallel sizes t_g on 16 GPUs, with actor training
// groups fixed at 1-8-2 and p_g = 1; micro DP size d_g = 8 / t_g. All four
// models are colocated and the KVCache gets the remaining memory
// (best-effort), exactly the §8.4 setup.
//
// Paper claims validated here:
//   * t_g = 2 minimizes generation latency for 7B (-60.3% vs t_g=8) and
//     t_g = 4 for 13B (-36.4%);
//   * t_g = 8 (NeMo-Aligner's choice: same as training) is the slowest;
//   * shrinking t_g further loses again because the per-GPU KVCache demand
//     grows (more sequences per replica at a bigger weight shard).

#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"

namespace hybridflow {
namespace {

void Panel(const ModelSpec& model) {
  std::cout << "\n--- " << model.name << " actor, train groups 1-8-2 on 16 GPUs ---\n";
  std::cout << StrFormat("%-6s | %12s | %12s | %12s | %6s\n", "t_g", "transition",
                         "generation", "total", "waves");

  double tg8_total = 0.0;
  std::vector<std::pair<int, double>> results;
  for (int tg : {1, 2, 4, 8}) {
    Controller controller(ClusterSpec::WithGpus(16));
    auto pool = controller.CreatePoolRange("all", 0, 16);

    RealComputeOptions real;
    real.enabled = false;

    // Colocate the critic / reference / reward footprints (7B-equal sizes),
    // as in §8.2's setting, so the KVCache budget is realistic.
    WorkerGroupOptions critic_options;
    critic_options.name = "critic";
    critic_options.model = model;
    critic_options.scalar_head = true;
    critic_options.trainable = true;
    critic_options.train_cfg = {1, 8, 2};
    CriticWorkerGroup critic(critic_options, pool, &controller, real);
    WorkerGroupOptions ref_options;
    ref_options.name = "reference";
    ref_options.model = model;
    ref_options.train_cfg = {1, 8, 2};
    ReferenceWorkerGroup reference(ref_options, pool, &controller, real, nullptr);
    WorkerGroupOptions reward_options;
    reward_options.name = "reward";
    reward_options.model = model;
    reward_options.scalar_head = true;
    reward_options.train_cfg = {1, 8, 2};
    RewardWorkerGroup reward(reward_options, pool, &controller, real,
                             RewardSource::kRuleReward);

    WorkerGroupOptions actor_options_base;
    actor_options_base.name = "actor";
    actor_options_base.model = model;
    actor_options_base.trainable = true;
    actor_options_base.train_cfg = {1, 8, 2};
    ActorOptions actor_options;
    actor_options.gen = GenParallelConfig{1, tg};
    actor_options.engine_mode = ActorEngineMode::kHybridFlow;
    ActorWorkerGroup actor(actor_options_base, pool, &controller, real, actor_options);

    RlhfWorkloadSpec workload;  // §8.1 defaults: 1024 prompts, 1024+1024.
    BatchFuture prompts;
    actor.GenerateSequences(prompts, workload);

    const double transition = actor.last_transition_seconds();
    const double generation = actor.last_gen_breakdown().total();
    const double total = transition + generation;
    std::cout << StrFormat("1-%-4d | %12s | %12s | %12s | %6d\n", tg,
                           HumanSeconds(transition).c_str(), HumanSeconds(generation).c_str(),
                           HumanSeconds(total).c_str(), actor.last_gen_breakdown().waves);
    if (tg == 8) {
      tg8_total = total;
    }
    results.emplace_back(tg, total);
  }

  int best_tg = 0;
  double best_total = 1e300;
  for (const auto& [tg, total] : results) {
    if (total < best_total) {
      best_total = total;
      best_tg = tg;
    }
  }
  std::cout << StrFormat("Best t_g = %d: %.1f%% faster than t_g = 8 (training size)\n",
                         best_tg, 100.0 * (1.0 - best_total / tg8_total));
}

}  // namespace
}  // namespace hybridflow

int main() {
  using namespace hybridflow;
  std::cout << "================================================================\n";
  std::cout << "Figure 15: transition + generation time vs generation TP size\n";
  std::cout << "================================================================\n";
  Panel(ModelSpec::Llama7B());
  Panel(ModelSpec::Llama13B());
  std::cout << "\nExpected shape: a moderate t_g (2 for 7B, 2-4 for 13B) wins; t_g=8\n"
               "(NeMo's approach) is slowest from GPU underutilization; t_g=1 loses\n"
               "ground again to KVCache pressure (§8.4).\n";
  return 0;
}
