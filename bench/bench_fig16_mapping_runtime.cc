// Figure 16: runtime of the device-mapping algorithm (Algorithm 1) as model
// size and cluster size scale together.
//
// Paper claims validated here:
//   * runtime grows roughly linearly with (model size, #GPUs);
//   * the parallelism-strategy cache keeps the search far below the paper's
//     half-hour bound (most time goes to `simu` evaluations).

#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"
#include "src/mapping/device_mapper.h"

int main() {
  using namespace hybridflow;
  std::cout << "==========================================================\n";
  std::cout << "Figure 16: device-mapping algorithm runtime (Algorithm 1)\n";
  std::cout << "==========================================================\n";
  std::cout << StrFormat("%-18s | %10s | %12s | %12s | %10s\n", "config", "placements",
                         "simulations", "cache hits", "runtime");

  struct Case {
    const char* model;
    int gpus;
  };
  const Case cases[] = {{"7B", 16}, {"13B", 32}, {"34B", 64}, {"70B", 96}, {"70B", 128}};
  double previous = 0.0;
  for (const Case& c : cases) {
    const ModelSpec model = ModelSpec::ByName(c.model);
    DeviceMapper mapper(DataflowModels(RlhfAlgorithm::kPpo, model, model),
                        RlhfWorkloadSpec(), ClusterSpec::WithGpus(c.gpus));
    MappingResult result = mapper.Map(c.gpus);
    std::cout << StrFormat("%-6s x %3d GPUs | %10lld | %12lld | %12lld | %10s%s\n", c.model,
                           c.gpus, static_cast<long long>(result.placements_examined),
                           static_cast<long long>(result.simulations),
                           static_cast<long long>(result.cache_hits),
                           HumanSeconds(result.wall_seconds).c_str(),
                           result.feasible ? "" : "  (infeasible)");
    if (previous > 0.0) {
      std::cout << StrFormat("%-18s   growth vs previous: %.2fx\n", "",
                             result.wall_seconds / previous);
    }
    previous = result.wall_seconds;
  }
  std::cout << "\nExpected shape: near-linear growth with scale; absolute runtimes are\n"
               "far below the paper's (their simulators model kernels in detail), but\n"
               "the trend and the cache's effect match Fig 16.\n";
  return 0;
}
