// Continuous batching vs the static wave model for the generation stage.
//
// Sweeps KV-cache budget (as a fraction of the full-batch demand) against
// response-length distributions on one 7B replica (p_g=1, t_g=2). The
// static path pads every sequence to the longest response and batches in
// capacity-sized waves (PerfModel::GenerateTime); the continuous engine
// (SimulateContinuousGeneration) retires short sequences early, backfills
// from the waiting queue, and preempts under pressure. Expected shape:
//   * uniform lengths, ample KV  — the two roughly agree (same work);
//   * skewed lengths (80% short / 20% long) — continuous wins big, the
//     static path burns whole waves on padded short sequences;
//   * tight budgets — continuous degrades gracefully via preemption.
//
// Emits BENCH_rollout.json with one row per (skew, budget) cell.

#include <iostream>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/obs/telemetry.h"
#include "src/rollout/timing.h"
#include "src/sim/topology.h"

namespace hybridflow {
namespace {

struct Workload {
  const char* name;
  std::vector<NominalSequence> sequences;
  int64_t max_response = 0;
};

Workload UniformWorkload(int64_t batch, int64_t prompt, int64_t response) {
  Workload workload;
  workload.name = "uniform";
  workload.sequences.assign(static_cast<size_t>(batch), NominalSequence{prompt, response});
  workload.max_response = response;
  return workload;
}

// 80% short / 20% long responses — the realistic RLHF rollout profile
// (most completions stop early, a tail runs to the cap).
Workload SkewedWorkload(int64_t batch, int64_t prompt, int64_t short_len, int64_t long_len,
                        Rng& rng) {
  Workload workload;
  workload.name = "skewed_80_20";
  for (int64_t i = 0; i < batch; ++i) {
    const int64_t response = rng.Uniform(0.0, 1.0) < 0.8 ? short_len : long_len;
    workload.sequences.push_back(NominalSequence{prompt, response});
    workload.max_response = std::max(workload.max_response, response);
  }
  return workload;
}

int Main() {
  const ClusterSpec cluster = ClusterSpec::WithGpus(16);
  const PerfModel perf(ModelSpec::Llama7B(), cluster);
  const GenParallelConfig gen{1, 2};
  const std::vector<DeviceId> devices{0, 1};
  const int64_t batch = 128;
  const int64_t prompt = 1024;

  Rng rng(2024);
  std::vector<Workload> workloads;
  workloads.push_back(UniformWorkload(batch, prompt, /*response=*/512));
  workloads.push_back(SkewedWorkload(batch, prompt, /*short_len=*/64, /*long_len=*/512, rng));

  // Full demand: every sequence resident at its final length.
  const double token_bytes = perf.KvBytesPerTokenPerGpu(gen);
  const double full_demand = static_cast<double>(batch) * (prompt + 512) * token_bytes;

  BenchReport report("rollout");
  std::cout << StrFormat("%-14s | %6s | %10s | %10s | %7s | %6s | %7s | %9s | %9s\n", "workload",
                         "budget", "static", "continuous", "speedup", "steps", "preempt",
                         "ttft p99", "tpot p99");
  for (const Workload& workload : workloads) {
    for (const double fraction : {1.0, 0.5, 0.25, 0.125}) {
      const double budget = fraction * full_demand;
      const GenTimeBreakdown fixed =
          perf.GenerateTime(gen, devices, batch, prompt, workload.max_response, budget,
                            /*use_kv_cache=*/true);
      RolloutOptions options;
      options.mode = RolloutMode::kContinuous;
      const RolloutSimResult continuous =
          SimulateContinuousGeneration(perf, gen, devices, workload.sequences, budget, options);
      const double speedup = continuous.time.total() > 0.0
                                 ? fixed.total() / continuous.time.total()
                                 : 0.0;
      const SeqLatencySummary& latency = continuous.latency;
      std::cout << StrFormat("%-14s | %5.0f%% | %10s | %10s | %6.2fx | %6lld | %7lld | %9s | %9s\n",
                             workload.name, 100.0 * fraction,
                             HumanSeconds(fixed.total()).c_str(),
                             HumanSeconds(continuous.time.total()).c_str(), speedup,
                             static_cast<long long>(continuous.stats.steps),
                             static_cast<long long>(continuous.stats.preemptions),
                             HumanSeconds(latency.ttft.p99).c_str(),
                             HumanSeconds(latency.tpot.p99).c_str());
      report.AddRow()
          .Text("workload", workload.name)
          .Number("kv_budget_fraction", fraction)
          .Number("batch", static_cast<double>(batch))
          .Number("prompt_len", static_cast<double>(prompt))
          .Number("max_response_len", static_cast<double>(workload.max_response))
          .Number("static_seconds", fixed.total())
          .Number("static_waves", static_cast<double>(fixed.waves))
          .Number("continuous_seconds", continuous.time.total())
          .Number("continuous_prefill_seconds", continuous.time.prefill_seconds)
          .Number("continuous_decode_seconds", continuous.time.decode_seconds)
          .Number("continuous_comm_seconds", continuous.time.comm_seconds)
          .Number("speedup", speedup)
          .Number("steps", static_cast<double>(continuous.stats.steps))
          .Number("admissions", static_cast<double>(continuous.stats.admissions))
          .Number("preemptions", static_cast<double>(continuous.stats.preemptions))
          .Number("max_running_batch", static_cast<double>(continuous.stats.max_running_batch))
          .Number("queue_wait_steps_max",
                  static_cast<double>(continuous.stats.queue_wait_steps_max))
          .Number("kv_high_water_blocks",
                  static_cast<double>(continuous.stats.kv_high_water_blocks))
          .Number("kv_peak_utilization", continuous.stats.kv_peak_utilization)
          .Number("resumes", static_cast<double>(continuous.stats.resumes))
          .Number("recomputed_tokens", static_cast<double>(continuous.stats.recomputed_tokens))
          .Number("ttft_p50_s", latency.ttft.p50)
          .Number("ttft_p90_s", latency.ttft.p90)
          .Number("ttft_p99_s", latency.ttft.p99)
          .Number("tpot_p50_s", latency.tpot.p50)
          .Number("tpot_p90_s", latency.tpot.p90)
          .Number("tpot_p99_s", latency.tpot.p99)
          .Number("queue_delay_p99_s", latency.queue_delay.p99)
          .Number("preemption_stall_p99_s", latency.preemption_stall.p99);
    }
  }
  if (!report.WriteJson()) {
    std::cerr << "failed to write " << report.FilePath() << "\n";
    return 1;
  }
  std::cout << "wrote " << report.FilePath() << " (" << report.size() << " rows)\n";
  return 0;
}

}  // namespace
}  // namespace hybridflow

int main() { return hybridflow::Main(); }
