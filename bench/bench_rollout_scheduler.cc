// Continuous batching vs the static wave model for the generation stage.
//
// Sweeps KV-cache budget (as a fraction of the full-batch demand) against
// response-length distributions on one 7B replica (p_g=1, t_g=2). The
// static path pads every sequence to the longest response and batches in
// capacity-sized waves (PerfModel::GenerateTime); the continuous engine
// (SimulateContinuousGeneration) runs chunked prefill with incremental KV
// residency and the prefix-sharing cache enabled, retires short sequences
// early, backfills from the waiting queue, and preempts under pressure.
// Expected shape:
//   * uniform lengths — continuous must not lose (gate: speedup >= 1.0 at
//     every budget; incremental residency keeps admission flowing where
//     full-at-admission used to stall behind whole-context reservations);
//   * skewed lengths (80% short / 20% long) — continuous wins big, the
//     static path burns whole waves on padded short sequences;
//   * group sampling (n=4 per prompt) — the prefix cache shares prompt
//     blocks across a group, skipping n-1 of every n prompt prefills;
//   * tight budgets — continuous degrades gracefully via preemption.
//
// Emits BENCH_rollout.json with one row per (workload, budget) cell and
// exits non-zero if the uniform gate fails — registered as a ctest
// (bench_rollout_gate) so the regression trips CI, not just the report.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/obs/telemetry.h"
#include "src/rollout/timing.h"
#include "src/sim/topology.h"

namespace hybridflow {
namespace {

struct Workload {
  const char* name;
  std::vector<NominalSequence> sequences;
  int64_t max_response = 0;
};

Workload UniformWorkload(int64_t batch, int64_t prompt, int64_t response) {
  Workload workload;
  workload.name = "uniform";
  workload.sequences.assign(static_cast<size_t>(batch), NominalSequence{prompt, response});
  workload.max_response = response;
  return workload;
}

// 80% short / 20% long responses — the realistic RLHF rollout profile
// (most completions stop early, a tail runs to the cap).
Workload SkewedWorkload(int64_t batch, int64_t prompt, int64_t short_len, int64_t long_len,
                        Rng& rng) {
  Workload workload;
  workload.name = "skewed_80_20";
  for (int64_t i = 0; i < batch; ++i) {
    const int64_t response = rng.Uniform(0.0, 1.0) < 0.8 ? short_len : long_len;
    workload.sequences.push_back(NominalSequence{prompt, response});
    workload.max_response = std::max(workload.max_response, response);
  }
  return workload;
}

// Group sampling: n responses per prompt (PPO-style candidate sets). All n
// members of a group carry the same prompt_group, so the prefix cache
// shares their full prompt blocks and skips n-1 of every n prompt
// prefills; the static baseline pays all of them.
Workload GroupSampledWorkload(int64_t groups, int64_t n, int64_t prompt, int64_t response) {
  Workload workload;
  workload.name = "group_n4";
  for (int64_t g = 0; g < groups; ++g) {
    for (int64_t i = 0; i < n; ++i) {
      workload.sequences.push_back(NominalSequence{prompt, response, /*prompt_group=*/g});
    }
  }
  workload.max_response = response;
  return workload;
}

int Main() {
  const ClusterSpec cluster = ClusterSpec::WithGpus(16);
  const PerfModel perf(ModelSpec::Llama7B(), cluster);
  const GenParallelConfig gen{1, 2};
  const std::vector<DeviceId> devices{0, 1};
  const int64_t batch = 128;
  const int64_t prompt = 1024;

  Rng rng(2024);
  std::vector<Workload> workloads;
  workloads.push_back(UniformWorkload(batch, prompt, /*response=*/512));
  workloads.push_back(SkewedWorkload(batch, prompt, /*short_len=*/64, /*long_len=*/512, rng));
  workloads.push_back(GroupSampledWorkload(/*groups=*/32, /*n=*/4, prompt, /*response=*/512));

  // Full demand: every sequence resident at its final length.
  const double token_bytes = perf.KvBytesPerTokenPerGpu(gen);
  const double full_demand = static_cast<double>(batch) * (prompt + 512) * token_bytes;

  BenchReport report("rollout");
  int gate_failures = 0;
  std::cout << StrFormat("%-14s | %6s | %10s | %10s | %7s | %6s | %7s | %9s | %9s\n",
                         "workload", "budget", "static", "continuous", "speedup", "steps",
                         "preempt", "pfx skip", "ttft p99");
  for (const Workload& workload : workloads) {
    for (const double fraction : {1.0, 0.5, 0.25, 0.125}) {
      const double budget = fraction * full_demand;
      const GenTimeBreakdown fixed =
          perf.GenerateTime(gen, devices, batch, prompt, workload.max_response, budget,
                            /*use_kv_cache=*/true);
      RolloutOptions options;
      options.mode = RolloutMode::kContinuous;
      // The shipping RLHF rollout configuration the gate below holds to
      // "never lose to static": prefix-sharing cache on (shares group
      // prompts, retains victims' prompt blocks across preemption) and
      // full-length admission reservations on (targets are the simulated
      // lengths, so admission never over-commits and decode-time preemption
      // churn disappears — the scheduler degrades into exact capacity waves
      // on lockstep-uniform workloads instead of thrashing below them).
      options.enable_prefix_cache = true;
      options.reserve_full_length = true;
      const RolloutSimResult continuous =
          SimulateContinuousGeneration(perf, gen, devices, workload.sequences, budget, options);
      const double speedup = continuous.time.total() > 0.0
                                 ? fixed.total() / continuous.time.total()
                                 : 0.0;
      const SeqLatencySummary& latency = continuous.latency;
      std::cout << StrFormat(
          "%-14s | %5.0f%% | %10s | %10s | %6.2fx | %6lld | %7lld | %9lld | %9s\n",
          workload.name, 100.0 * fraction, HumanSeconds(fixed.total()).c_str(),
          HumanSeconds(continuous.time.total()).c_str(), speedup,
          static_cast<long long>(continuous.stats.steps),
          static_cast<long long>(continuous.stats.preemptions),
          static_cast<long long>(continuous.stats.prefix_skipped_tokens),
          HumanSeconds(latency.ttft.p99).c_str());
      // Bench-enforced regression gate: with incremental residency the
      // continuous engine must never lose to the static wave model on the
      // uniform workload (identical work, no early-exit advantage).
      if (std::string(workload.name) == "uniform" && speedup < 1.0) {
        std::cerr << StrFormat(
            "GATE FAILURE: uniform continuous lost to static at budget %.1f%% "
            "(speedup %.3fx < 1.0)\n",
            100.0 * fraction, speedup);
        ++gate_failures;
      }
      report.AddRow()
          .Text("workload", workload.name)
          .Number("kv_budget_fraction", fraction)
          .Number("batch", static_cast<double>(batch))
          .Number("prompt_len", static_cast<double>(prompt))
          .Number("max_response_len", static_cast<double>(workload.max_response))
          .Number("static_seconds", fixed.total())
          .Number("static_waves", static_cast<double>(fixed.waves))
          .Number("continuous_seconds", continuous.time.total())
          .Number("continuous_prefill_seconds", continuous.time.prefill_seconds)
          .Number("continuous_decode_seconds", continuous.time.decode_seconds)
          .Number("continuous_comm_seconds", continuous.time.comm_seconds)
          .Number("speedup", speedup)
          .Number("steps", static_cast<double>(continuous.stats.steps))
          .Number("admissions", static_cast<double>(continuous.stats.admissions))
          .Number("preemptions", static_cast<double>(continuous.stats.preemptions))
          .Number("max_running_batch", static_cast<double>(continuous.stats.max_running_batch))
          .Number("queue_wait_steps_max",
                  static_cast<double>(continuous.stats.queue_wait_steps_max))
          .Number("kv_high_water_blocks",
                  static_cast<double>(continuous.stats.kv_high_water_blocks))
          .Number("kv_peak_utilization", continuous.stats.kv_peak_utilization)
          .Number("resumes", static_cast<double>(continuous.stats.resumes))
          .Number("recomputed_tokens", static_cast<double>(continuous.stats.recomputed_tokens))
          .Number("prefix_skipped_tokens",
                  static_cast<double>(continuous.stats.prefix_skipped_tokens))
          .Number("cow_splits", static_cast<double>(continuous.stats.cow_splits))
          .Number("shared_blocks_high_water",
                  static_cast<double>(continuous.stats.shared_blocks_high_water))
          .Number("ttft_p50_s", latency.ttft.p50)
          .Number("ttft_p90_s", latency.ttft.p90)
          .Number("ttft_p99_s", latency.ttft.p99)
          .Number("tpot_p50_s", latency.tpot.p50)
          .Number("tpot_p90_s", latency.tpot.p90)
          .Number("tpot_p99_s", latency.tpot.p99)
          .Number("queue_delay_p99_s", latency.queue_delay.p99)
          .Number("preemption_stall_p99_s", latency.preemption_stall.p99);
    }
  }
  // Shared-prefill speedup: the same group-sampled workload (n=4 per
  // prompt) with and without the prefix cache, at full budget. Isolates
  // the win from skipping n-1 of every n prompt prefills.
  {
    const Workload group = GroupSampledWorkload(/*groups=*/32, /*n=*/4, prompt, /*response=*/512);
    RolloutOptions cached;
    cached.mode = RolloutMode::kContinuous;
    cached.enable_prefix_cache = true;
    cached.reserve_full_length = true;
    RolloutOptions uncached = cached;
    uncached.enable_prefix_cache = false;
    uncached.reserve_full_length = true;
    const RolloutSimResult with_cache =
        SimulateContinuousGeneration(perf, gen, devices, group.sequences, full_demand, cached);
    const RolloutSimResult without_cache =
        SimulateContinuousGeneration(perf, gen, devices, group.sequences, full_demand, uncached);
    const double shared_prefill_speedup =
        with_cache.time.total() > 0.0 ? without_cache.time.total() / with_cache.time.total() : 0.0;
    std::cout << StrFormat(
        "group_n4 shared-prefill speedup (prefix cache on vs off, 100%% budget): %.2fx "
        "(prefill %s -> %s, %lld prompt tokens skipped)\n",
        shared_prefill_speedup, HumanSeconds(without_cache.time.prefill_seconds).c_str(),
        HumanSeconds(with_cache.time.prefill_seconds).c_str(),
        static_cast<long long>(with_cache.stats.prefix_skipped_tokens));
    report.AddRow()
        .Text("workload", "group_n4_shared_prefill")
        .Number("kv_budget_fraction", 1.0)
        .Number("batch", static_cast<double>(batch))
        .Number("prompt_len", static_cast<double>(prompt))
        .Number("max_response_len", static_cast<double>(group.max_response))
        .Number("uncached_seconds", without_cache.time.total())
        .Number("uncached_prefill_seconds", without_cache.time.prefill_seconds)
        .Number("cached_seconds", with_cache.time.total())
        .Number("cached_prefill_seconds", with_cache.time.prefill_seconds)
        .Number("shared_prefill_speedup", shared_prefill_speedup)
        .Number("prefix_skipped_tokens",
                static_cast<double>(with_cache.stats.prefix_skipped_tokens))
        .Number("shared_blocks_high_water",
                static_cast<double>(with_cache.stats.shared_blocks_high_water));
  }
  if (!report.WriteJson()) {
    std::cerr << "failed to write " << report.FilePath() << "\n";
    return 1;
  }
  std::cout << "wrote " << report.FilePath() << " (" << report.size() << " rows)\n";
  if (gate_failures > 0) {
    std::cerr << gate_failures << " gate failure(s): uniform continuous < static\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hybridflow

int main() { return hybridflow::Main(); }
