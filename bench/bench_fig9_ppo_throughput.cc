// Figure 9: PPO throughput of HybridFlow vs DeepSpeed-Chat, OpenRLHF, and
// NeMo-Aligner across model sizes (7B-70B) and cluster sizes (8-128 GPUs).
//
// Paper claims validated here:
//   * HybridFlow outperforms every baseline at every scale
//     (avg 3.67x vs DS-Chat, 3.25x vs OpenRLHF, 12.52x vs NeMo in the
//     paper's testbed; shapes, not absolute numbers, are the target).
//   * The largest speedups appear at 70B.
//   * Actor generation + training dominate the iteration (~58.9%).

#include <iostream>
#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace hybridflow;
  std::cout << "==============================================================\n";
  std::cout << "Figure 9: PPO throughput vs baselines (model sizes x clusters)\n";
  std::cout << "==============================================================\n";

  const std::vector<RlhfSystem> systems = {RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                                           RlhfSystem::kNemoAligner, RlhfSystem::kHybridFlow};
  const std::map<std::string, std::vector<int>> sweeps = {
      {"7B", {8, 16, 32, 64, 128}},
      {"13B", {16, 32, 64, 128}},
      {"34B", {32, 64, 128}},
      {"70B", {64, 128}},
  };
  BenchReport report("fig9_ppo_throughput");
  for (const auto& [model, gpu_counts] : sweeps) {
    PrintThroughputPanel(RlhfAlgorithm::kPpo, model, gpu_counts, systems, &report);
  }
  if (report.WriteJson()) {
    std::cout << "\nwrote " << report.FilePath() << " (" << report.size() << " rows)\n";
  }

  // --- §8.2 ancillary numbers ----------------------------------------------
  std::cout << "\n--- Ancillary §8.2 checks ---\n";
  // Actor generation+training share of HybridFlow iteration (paper: 58.9%).
  IterationMetrics metrics;
  MeasureThroughput(RlhfSystem::kHybridFlow, RlhfAlgorithm::kPpo, ModelSpec::Llama13B(),
                    ModelSpec::Llama13B(), 32, &metrics);
  double actor_busy = 0.0;
  double total_busy = 0.0;
  for (const auto& [category, seconds] : metrics.busy_by_category) {
    total_busy += seconds;
    if (category == "generate" || category == "reshard") {
      actor_busy += seconds;
    }
    if (category == "train") {
      actor_busy += seconds / 2.0;  // Actor's half of the update stage.
    }
  }
  std::cout << StrFormat(
      "Actor generation+training share of busy time (13B/32): %.1f%% (paper: ~58.9%%)\n",
      100.0 * actor_busy / total_busy);

  // Strong scaling efficiency of HybridFlow on 7B: throughput(max scale) /
  // throughput(min scale) / (max gpus / min gpus) (paper: ~66.8% averaged).
  const double tput_small = MeasureThroughput(RlhfSystem::kHybridFlow, RlhfAlgorithm::kPpo,
                                              ModelSpec::Llama7B(), ModelSpec::Llama7B(), 8);
  const double tput_large = MeasureThroughput(RlhfSystem::kHybridFlow, RlhfAlgorithm::kPpo,
                                              ModelSpec::Llama7B(), ModelSpec::Llama7B(), 128);
  std::cout << StrFormat("Strong-scaling efficiency 7B, 8->128 GPUs: %.1f%% (paper avg: 66.8%%)\n",
                         100.0 * (tput_large / tput_small) / (128.0 / 8.0));
  return 0;
}
