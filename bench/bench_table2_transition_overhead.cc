// Table 2: transition overhead between training and generation for the
// three actor-engine designs — communication volume, peak parameter
// memory, and redundant weight memory, as fractions of model size M.
//
// Every "measured" cell comes from the 3D-HybridEngine's per-rank shard
// accounting on a simulated cluster; every "formula" cell is the closed
// form from Table 2. They must agree exactly.

#include <iostream>

#include "src/common/strings.h"
#include "src/common/units.h"
#include "src/hybridengine/hybrid_engine.h"

namespace hybridflow {
namespace {

std::vector<DeviceId> Devices(int n) {
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    devices[static_cast<size_t>(i)] = i;
  }
  return devices;
}

void Row(const ParallelConfig& train, const GenParallelConfig& gen) {
  const ModelSpec model = ModelSpec::Llama7B();
  const double M = model.ParamBytes();
  const int n = train.world_size();
  ClusterSpec cluster = ClusterSpec::WithGpus(n);

  struct EngineRow {
    const char* name;
    ActorEngineMode mode;
    double comm_formula;
    double redundancy_formula;
    double peak_formula;
  };
  const EngineRow engines[] = {
      {"DS-Chat", ActorEngineMode::kDsChat, HybridEngine::DsChatCommFraction(train),
       HybridEngine::DsChatRedundancyFraction(train), 1.0},
      {"HybridFlow-V", ActorEngineMode::kHybridFlowV,
       HybridEngine::HybridFlowVCommFraction(train),
       HybridEngine::HybridFlowVRedundancyFraction(train), 1.0},
      {"HybridFlow", ActorEngineMode::kHybridFlow,
       HybridEngine::HybridFlowCommFraction(train, gen), 0.0,
       HybridEngine::HybridFlowPeakFraction(gen)},
  };

  std::cout << "\ntraining p-t-d = " << train.ToString() << ", generation p_g-t_g = "
            << gen.ToString() << " (d_g = " << MicroDpSize(train, gen) << ", M = "
            << HumanBytes(M) << ")\n";
  std::cout << StrFormat("%-14s | %22s | %22s | %22s\n", "engine", "comm volume / GPU",
                         "peak param memory", "redundancy");
  for (const EngineRow& engine : engines) {
    HybridEngine hybrid(model, train, gen, engine.mode, cluster, Devices(n));
    TransitionStats stats = hybrid.TrainToGenTransition();
    const bool comm_ok = std::abs(stats.comm_bytes_per_gpu - engine.comm_formula * M) < 1.0;
    const bool peak_ok = std::abs(stats.peak_param_bytes - engine.peak_formula * M) < 1.0;
    const bool red_ok =
        std::abs(stats.redundant_bytes - engine.redundancy_formula * M) < 1.0;
    std::cout << StrFormat(
        "%-14s | %9s = %.4f M %s | %9s = %.4f M %s | %9s = %.4f M %s\n", engine.name,
        HumanBytes(stats.comm_bytes_per_gpu).c_str(), engine.comm_formula,
        comm_ok ? "OK" : "!!", HumanBytes(stats.peak_param_bytes).c_str(),
        engine.peak_formula, peak_ok ? "OK" : "!!",
        HumanBytes(stats.redundant_bytes).c_str(), engine.redundancy_formula,
        red_ok ? "OK" : "!!");
  }
}

}  // namespace
}  // namespace hybridflow

int main() {
  using namespace hybridflow;
  std::cout << "=================================================================\n";
  std::cout << "Table 2: transition overhead, measured engine vs closed formulas\n";
  std::cout << "  Comm:  DS-Chat (tpd-1)/tpd M | HF-V (tp-1)/tp M | HF (tp-tgpg)/(tgpg tp) M\n";
  std::cout << "  Peak:  M | M | M/(tg pg);  Redundancy: M/tpd | M/tp | 0\n";
  std::cout << "=================================================================\n";
  Row({1, 8, 2}, {1, 2});
  Row({1, 8, 2}, {1, 4});
  Row({2, 4, 2}, {1, 2});
  Row({2, 8, 4}, {2, 2});
  Row({4, 8, 4}, {1, 4});
  std::cout << "\nAll cells marked OK match the Table 2 formulas to within 1 byte.\n";
  return 0;
}
