// Synchronous vs one-step-off asynchronous PPO (docs/ASYNC_PIPELINE.md).
//
// Builds the same OpenRLHF-pattern system twice — dedicated rollout GPUs,
// so generation and training occupy disjoint pools — and compares the
// simulated per-iteration makespan of the synchronous order against the
// async pipeline at staleness 1, across generation-heavy workloads. The
// steady-state bound is
//
//     speedup = (G + T) / max(G, T)
//
// for generation time G and experience-prep + training time T, so the win
// is largest when the stages are balanced and vanishes when one dominates.
// Every async run is validated with TimelineChecker (no device overlap,
// every span inside a registered pool) — the speedup must come from real
// overlap on disjoint resources, not from dropped work.
//
// Emits BENCH_async.json with one row per workload.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/timeline_checker.h"
#include "src/baselines/system_builder.h"
#include "src/common/strings.h"
#include "src/obs/telemetry.h"

namespace hybridflow {
namespace {

struct BenchCase {
  const char* name;
  int64_t global_batch = 512;
  int64_t prompt_len = 1024;
  int64_t response_len = 1024;
  int updates = 8;
};

SystemBuildConfig MakeConfig(const BenchCase& bench_case, bool async) {
  SystemBuildConfig config;
  config.system = RlhfSystem::kOpenRlhf;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = 16;
  config.real_compute = false;
  config.seed = 11;
  config.workload.global_batch = bench_case.global_batch;
  config.workload.prompt_len = bench_case.prompt_len;
  config.workload.response_len = bench_case.response_len;
  config.workload.updates_per_iteration = bench_case.updates;
  config.rollout.mode = RolloutMode::kContinuous;
  config.rollout.prefill_chunk_tokens = 512;
  config.async_pipeline = async;
  config.async_staleness = 1;
  return config;
}

// Steady-state mean over `measured` iterations after `warmup` unmeasured
// ones (the async queue primes during warmup).
struct RunResult {
  double iteration_seconds = 0.0;
  double overlap_fraction = 0.0;
  bool timeline_clean = true;
};

RunResult RunSteadyState(const SystemBuildConfig& config, int warmup, int measured) {
  RlhfSystemInstance system = BuildSystem(config);
  if (!system.feasible) {
    std::cerr << "infeasible configuration\n";
    std::exit(1);
  }
  for (int i = 0; i < warmup; ++i) {
    system.RunIteration();
  }
  RunResult result;
  for (int i = 0; i < measured; ++i) {
    const IterationMetrics metrics = system.RunIteration();
    result.iteration_seconds += metrics.iteration_seconds / measured;
    result.overlap_fraction += metrics.overlap_fraction / measured;
  }
  TimelineChecker checker(system.controller->spec());
  std::vector<DeviceId> weight_sync_devices;
  for (const auto& pool : system.controller->pools()) {
    checker.RegisterGroup(pool->name(), pool->devices());
    if (pool->name() == "actor_train" || pool->name() == "actor_gen") {
      weight_sync_devices.insert(weight_sync_devices.end(), pool->devices().begin(),
                                 pool->devices().end());
    }
  }
  checker.RegisterGroup("actor_weight_sync", weight_sync_devices);
  const std::vector<TimelineViolation> violations =
      checker.Check(system.controller->cluster());
  if (!violations.empty()) {
    std::cerr << FormatViolations(violations);
    result.timeline_clean = false;
  }
  return result;
}

int Main() {
  const std::vector<BenchCase> cases = {
      {"gen_dominated", 512, 1024, 1024, 8},
      {"balanced", 512, 1024, 1024, 16},
      {"short_responses", 512, 1024, 256, 16},
  };

  BenchReport report("async");
  std::cout << StrFormat("%-16s | %10s | %10s | %7s | %7s | %5s\n", "workload", "sync",
                         "async", "speedup", "overlap", "clean");
  bool all_clean = true;
  double best_speedup = 0.0;
  for (const BenchCase& bench_case : cases) {
    const RunResult sync = RunSteadyState(MakeConfig(bench_case, false), 1, 3);
    const RunResult async_run = RunSteadyState(MakeConfig(bench_case, true), 1, 3);
    const double speedup = async_run.iteration_seconds > 0.0
                               ? sync.iteration_seconds / async_run.iteration_seconds
                               : 0.0;
    const bool clean = sync.timeline_clean && async_run.timeline_clean;
    all_clean = all_clean && clean;
    best_speedup = std::max(best_speedup, speedup);
    std::cout << StrFormat("%-16s | %10s | %10s | %6.2fx | %6.0f%% | %5s\n", bench_case.name,
                           HumanSeconds(sync.iteration_seconds).c_str(),
                           HumanSeconds(async_run.iteration_seconds).c_str(), speedup,
                           100.0 * async_run.overlap_fraction, clean ? "yes" : "NO");
    report.AddRow()
        .Text("workload", bench_case.name)
        .Number("global_batch", static_cast<double>(bench_case.global_batch))
        .Number("prompt_len", static_cast<double>(bench_case.prompt_len))
        .Number("response_len", static_cast<double>(bench_case.response_len))
        .Number("updates_per_iteration", static_cast<double>(bench_case.updates))
        .Number("sync_iteration_seconds", sync.iteration_seconds)
        .Number("async_iteration_seconds", async_run.iteration_seconds)
        .Number("speedup", speedup)
        .Number("overlap_fraction", async_run.overlap_fraction)
        .Number("timeline_clean", clean ? 1.0 : 0.0);
  }
  if (!report.WriteJson()) {
    std::cerr << "failed to write " << report.FilePath() << "\n";
    return 1;
  }
  std::cout << "wrote " << report.FilePath() << " (" << report.size() << " rows)\n";
  if (!all_clean) {
    std::cerr << "timeline violations detected\n";
    return 1;
  }
  if (best_speedup < 1.3) {
    std::cerr << StrFormat("best speedup %.2fx below the 1.3x bar\n", best_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hybridflow

int main() { return hybridflow::Main(); }
