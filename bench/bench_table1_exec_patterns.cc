// Table 1: execution patterns of one PPO iteration under the four RLHF
// systems. Renders each system's per-GPU occupancy timeline (time flows
// left to right; symbols are op categories: g=generate, i=infer, t=train,
// r=reshard/transfer; '.' = idle).
//
// The patterns to observe (Table 1 / Figure 3):
//   * DeepSpeed-Chat: everything serialized on one device set.
//   * OpenRLHF: disjoint sets let preparation/training overlap, but every
//     set idles during the other stages (generation especially).
//   * NeMo-Aligner: two sets; generation monopolizes the actor set while
//     the critic set idles.
//   * HybridFlow: the optimized placement balances the stages.

#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"

int main() {
  using namespace hybridflow;
  std::cout << "==================================================================\n";
  std::cout << "Table 1: execution pattern of one PPO iteration (7B models, 16 GPUs)\n";
  std::cout << "==================================================================\n";

  for (RlhfSystem system : {RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                            RlhfSystem::kNemoAligner, RlhfSystem::kHybridFlow}) {
    SystemBuildConfig config;
    config.system = system;
    config.algorithm = RlhfAlgorithm::kPpo;
    config.num_gpus = 16;
    config.actor_model = ModelSpec::Llama7B();
    config.critic_model = ModelSpec::Llama7B();
    config.real_compute = false;
    RlhfSystemInstance instance = BuildSystem(config);
    std::cout << "\n### " << RlhfSystemName(system) << "\n";
    if (!instance.feasible) {
      std::cout << "(infeasible at this scale)\n";
      continue;
    }
    IterationMetrics metrics = instance.RunIteration();
    std::cout << RenderTrace(instance.controller->cluster(), 96);
    double busy = 0.0;
    for (const auto& [category, seconds] : metrics.busy_by_category) {
      busy += seconds;
    }
    const double wall = metrics.iteration_seconds * 16.0;
    std::cout << StrFormat("iteration: %s; mean GPU utilization: %.0f%%\n",
                           HumanSeconds(metrics.iteration_seconds).c_str(),
                           100.0 * busy / wall);
  }
  return 0;
}
