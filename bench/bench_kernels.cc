// Kernel-layer benchmark: times the deterministic parallel GEMM
// forward+backward path across tensor.threads settings and verifies the
// bitwise-determinism contract (docs/KERNELS.md) on every configuration.
// Two reference rows keep the numbers honest:
//
//   * naive_serial      — a textbook triple-loop GEMM fwd+bwd, the shape of
//                         the pre-refactor kernels, timed on one thread.
//   * matmul_nt_composed — MatMul(a, Transpose(b)) with the transpose
//                         materialized, against the fused MatMulNT.
//
// Target: >= 3x gemm_fwd_bwd speedup at 8 threads vs 1 on hardware with
// >= 8 cores. Single-core containers will report ~1x (the runtime falls
// back to serial chunk execution); the determinism column must hold
// everywhere, and the bench exits nonzero if it does not.
//
// Emits BENCH_kernels.json with one row per (op, threads) configuration.
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/obs/telemetry.h"
#include "src/tensor/ops.h"
#include "src/tensor/parallel.h"

namespace hybridflow {
namespace {

// Non-square so row/column indexing bugs cannot cancel out.
constexpr int64_t kM = 256;
constexpr int64_t kK = 192;
constexpr int64_t kN = 224;
constexpr int kReps = 8;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct GemmRun {
  double ms_per_iter = 0.0;
  std::vector<float> out;
  std::vector<float> da;
  std::vector<float> db;
};

bool BitwiseEq(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// One full training-style GEMM: C = A*B forward, then dA/dB via Backward.
// Gradients accumulate across reps; that accumulation is itself part of
// the determinism surface being checked.
GemmRun RunGemmFwdBwd(int threads) {
  SetTensorThreads(threads);
  Rng rng(123);
  Tensor a = Tensor::Randn({kM, kK}, rng, 0.5f);
  Tensor b = Tensor::Randn({kK, kN}, rng, 0.5f);
  GemmRun run;
  const double start = NowMs();
  for (int rep = 0; rep < kReps; ++rep) {
    Tensor c = MatMul(a, b);
    Sum(c).Backward();
    if (rep == kReps - 1) {
      run.out = c.data();
    }
  }
  run.ms_per_iter = (NowMs() - start) / kReps;
  run.da = a.grad();
  run.db = b.grad();
  SetTensorThreads(0);
  return run;
}

// The pre-refactor kernel shape: serial triple loops, no tiling, no pool.
// dC is all-ones (matches Sum(c).Backward()), so dA = rowsum-free dC*B^T
// and dB = A^T*dC reduce to plain accumulations — still O(mkn) each.
GemmRun RunNaiveSerial() {
  Rng rng(123);
  Tensor a = Tensor::Randn({kM, kK}, rng, 0.5f);
  Tensor b = Tensor::Randn({kK, kN}, rng, 0.5f);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  std::vector<float> c(static_cast<size_t>(kM * kN), 0.0f);
  std::vector<float> da(static_cast<size_t>(kM * kK), 0.0f);
  std::vector<float> db(static_cast<size_t>(kK * kN), 0.0f);
  GemmRun run;
  const double start = NowMs();
  for (int rep = 0; rep < kReps; ++rep) {
    for (int64_t i = 0; i < kM; ++i) {
      for (int64_t j = 0; j < kN; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < kK; ++p) {
          acc += pa[i * kK + p] * pb[p * kN + j];
        }
        c[static_cast<size_t>(i * kN + j)] = acc;
      }
    }
    for (int64_t i = 0; i < kM; ++i) {
      for (int64_t p = 0; p < kK; ++p) {
        float acc = 0.0f;
        for (int64_t j = 0; j < kN; ++j) {
          acc += pb[p * kN + j];  // dC == 1 everywhere.
        }
        da[static_cast<size_t>(i * kK + p)] += acc;
      }
    }
    for (int64_t p = 0; p < kK; ++p) {
      for (int64_t j = 0; j < kN; ++j) {
        float acc = 0.0f;
        for (int64_t i = 0; i < kM; ++i) {
          acc += pa[i * kK + p];
        }
        db[static_cast<size_t>(p * kN + j)] += acc;
      }
    }
  }
  run.ms_per_iter = (NowMs() - start) / kReps;
  run.out = std::move(c);
  run.da = std::move(da);
  run.db = std::move(db);
  return run;
}

// Times `fn` (which must leave its result in `out`) and returns ms/iter.
template <typename Fn>
double TimeReps(Fn&& fn) {
  const double start = NowMs();
  for (int rep = 0; rep < kReps; ++rep) {
    fn();
  }
  return (NowMs() - start) / kReps;
}

int Main() {
  BenchReport report("kernels");
  bool deterministic = true;

  // --- GEMM fwd+bwd across thread counts ----------------------------------
  std::cout << StrFormat("gemm fwd+bwd, A[%d,%d] * B[%d,%d], %d reps\n",
                         static_cast<int>(kM), static_cast<int>(kK), static_cast<int>(kK),
                         static_cast<int>(kN), kReps);
  std::cout << "op              | threads | ms/iter | speedup | bitwise==1t\n";
  const GemmRun baseline = RunGemmFwdBwd(1);
  for (int threads : {1, 2, 4, 8}) {
    const GemmRun run = threads == 1 ? baseline : RunGemmFwdBwd(threads);
    const bool bitwise = BitwiseEq(run.out, baseline.out) && BitwiseEq(run.da, baseline.da) &&
                         BitwiseEq(run.db, baseline.db);
    deterministic = deterministic && bitwise;
    const double speedup = run.ms_per_iter > 0.0 ? baseline.ms_per_iter / run.ms_per_iter : 0.0;
    std::cout << StrFormat("%-15s | %7d | %7.2f | %6.2fx | %s\n", "gemm_fwd_bwd", threads,
                           run.ms_per_iter, speedup, bitwise ? "yes" : "NO");
    report.AddRow()
        .Text("op", "gemm_fwd_bwd")
        .Number("threads", threads)
        .Number("m", static_cast<double>(kM))
        .Number("k", static_cast<double>(kK))
        .Number("n", static_cast<double>(kN))
        .Number("ms_per_iter", run.ms_per_iter)
        .Number("speedup_vs_1t", speedup)
        .Number("bitwise_matches_1t", bitwise ? 1.0 : 0.0);
  }

  // --- Naive serial reference ---------------------------------------------
  const GemmRun naive = RunNaiveSerial();
  std::cout << StrFormat("%-15s | %7d | %7.2f | %6.2fx | %s\n", "naive_serial", 1,
                         naive.ms_per_iter,
                         naive.ms_per_iter > 0.0 ? baseline.ms_per_iter / naive.ms_per_iter : 0.0,
                         "n/a");
  report.AddRow()
      .Text("op", "naive_serial")
      .Number("threads", 1)
      .Number("ms_per_iter", naive.ms_per_iter)
      .Number("tiled_1t_speedup_vs_naive",
              baseline.ms_per_iter > 0.0 ? naive.ms_per_iter / baseline.ms_per_iter : 0.0);

  // --- Fused MatMulNT vs materialized transpose ---------------------------
  {
    SetTensorThreads(0);
    Rng rng(321);
    Tensor q = Tensor::Randn({kM, kK}, rng, 0.5f, /*requires_grad=*/false);
    Tensor k = Tensor::Randn({kN, kK}, rng, 0.5f, /*requires_grad=*/false);
    std::vector<float> fused_out;
    const double fused_ms = TimeReps([&] { fused_out = MatMulNT(q, k).data(); });
    std::vector<float> composed_out;
    const double composed_ms =
        TimeReps([&] { composed_out = MatMul(q, Transpose(k)).data(); });
    const bool bitwise = BitwiseEq(fused_out, composed_out);
    deterministic = deterministic && bitwise;
    std::cout << StrFormat("%-15s | %7s | %7.2f | %6.2fx | %s  (vs composed %.2f ms)\n",
                           "matmul_nt_fused", "auto", fused_ms,
                           fused_ms > 0.0 ? composed_ms / fused_ms : 0.0, bitwise ? "yes" : "NO",
                           composed_ms);
    report.AddRow()
        .Text("op", "matmul_nt_fused")
        .Number("ms_per_iter", fused_ms)
        .Number("composed_transpose_ms_per_iter", composed_ms)
        .Number("speedup_vs_composed", fused_ms > 0.0 ? composed_ms / fused_ms : 0.0)
        .Number("bitwise_matches_composed", bitwise ? 1.0 : 0.0);
  }

  if (!report.WriteJson()) {
    std::cerr << "failed to write " << report.FilePath() << "\n";
    return 1;
  }
  std::cout << "wrote " << report.FilePath() << " (" << report.size() << " rows)\n";
  if (!deterministic) {
    std::cerr << "bitwise determinism violated across thread counts\n";
    return 1;
  }
  std::cout << "determinism: all configurations bitwise-identical\n"
               "target: >= 3x gemm_fwd_bwd at 8 threads vs 1 (requires >= 8 cores)\n";
  return 0;
}

}  // namespace
}  // namespace hybridflow

int main() { return hybridflow::Main(); }
