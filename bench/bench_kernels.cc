// Kernel-layer benchmark: times the deterministic parallel GEMM
// forward+backward path across tensor.threads settings and verifies the
// bitwise-determinism contract (docs/KERNELS.md) on every configuration.
// Two reference rows keep the numbers honest:
//
//   * naive_serial      — a textbook triple-loop GEMM fwd+bwd, the shape of
//                         the pre-refactor kernels, timed on one thread.
//   * matmul_nt_composed — MatMul(a, Transpose(b)) with the transpose
//                         materialized, against the fused MatMulNT.
//
// Target: >= 3x gemm_fwd_bwd speedup at 8 threads vs 1 on hardware with
// >= 8 cores. Single-core containers will report ~1x (the runtime falls
// back to serial chunk execution); the determinism column must hold
// everywhere, and the bench exits nonzero if it does not.
//
// Emits BENCH_kernels.json with one row per (op, threads) configuration.
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/obs/telemetry.h"
#include "src/tensor/ops.h"
#include "src/tensor/parallel.h"
#include "src/tensor/simd.h"

namespace hybridflow {
namespace {

// Non-square so row/column indexing bugs cannot cancel out.
constexpr int64_t kM = 256;
constexpr int64_t kK = 192;
constexpr int64_t kN = 224;
constexpr int kReps = 8;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct GemmRun {
  double ms_per_iter = 0.0;
  std::vector<float> out;
  std::vector<float> da;
  std::vector<float> db;
};

bool BitwiseEq(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// One full training-style GEMM: C = A*B forward, then dA/dB via Backward.
// Gradients accumulate across reps; that accumulation is itself part of
// the determinism surface being checked.
GemmRun RunGemmFwdBwd(int threads) {
  SetTensorThreads(threads);
  Rng rng(123);
  Tensor a = Tensor::Randn({kM, kK}, rng, 0.5f);
  Tensor b = Tensor::Randn({kK, kN}, rng, 0.5f);
  GemmRun run;
  const double start = NowMs();
  for (int rep = 0; rep < kReps; ++rep) {
    Tensor c = MatMul(a, b);
    Sum(c).Backward();
    if (rep == kReps - 1) {
      run.out = c.data();
    }
  }
  run.ms_per_iter = (NowMs() - start) / kReps;
  run.da = a.grad();
  run.db = b.grad();
  SetTensorThreads(0);
  return run;
}

// The pre-refactor kernel shape: serial triple loops, no tiling, no pool.
// dC is all-ones (matches Sum(c).Backward()), so dA = rowsum-free dC*B^T
// and dB = A^T*dC reduce to plain accumulations — still O(mkn) each.
GemmRun RunNaiveSerial() {
  Rng rng(123);
  Tensor a = Tensor::Randn({kM, kK}, rng, 0.5f);
  Tensor b = Tensor::Randn({kK, kN}, rng, 0.5f);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  std::vector<float> c(static_cast<size_t>(kM * kN), 0.0f);
  std::vector<float> da(static_cast<size_t>(kM * kK), 0.0f);
  std::vector<float> db(static_cast<size_t>(kK * kN), 0.0f);
  GemmRun run;
  const double start = NowMs();
  for (int rep = 0; rep < kReps; ++rep) {
    for (int64_t i = 0; i < kM; ++i) {
      for (int64_t j = 0; j < kN; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < kK; ++p) {
          acc += pa[i * kK + p] * pb[p * kN + j];
        }
        c[static_cast<size_t>(i * kN + j)] = acc;
      }
    }
    for (int64_t i = 0; i < kM; ++i) {
      for (int64_t p = 0; p < kK; ++p) {
        float acc = 0.0f;
        for (int64_t j = 0; j < kN; ++j) {
          acc += pb[p * kN + j];  // dC == 1 everywhere.
        }
        da[static_cast<size_t>(i * kK + p)] += acc;
      }
    }
    for (int64_t p = 0; p < kK; ++p) {
      for (int64_t j = 0; j < kN; ++j) {
        float acc = 0.0f;
        for (int64_t i = 0; i < kM; ++i) {
          acc += pa[i * kK + p];
        }
        db[static_cast<size_t>(p * kN + j)] += acc;
      }
    }
  }
  run.ms_per_iter = (NowMs() - start) / kReps;
  run.out = std::move(c);
  run.da = std::move(da);
  run.db = std::move(db);
  return run;
}

// Times `fn` (which must leave its result in `out`) and returns ms/iter.
template <typename Fn>
double TimeReps(Fn&& fn) {
  const double start = NowMs();
  for (int rep = 0; rep < kReps; ++rep) {
    fn();
  }
  return (NowMs() - start) / kReps;
}

// One op fwd+bwd timed under the currently active SIMD tier. A case
// builds its own fresh inputs (untimed), times kReps fwd+bwd iterations,
// and returns every value the determinism contract covers (outputs ++
// accumulated grads) concatenated, for bitwise comparison across tiers.
struct SimdRun {
  double ms_per_iter = 0.0;
  std::vector<float> values;
};

int Main() {
  BenchReport report("kernels");
  const char* simd = SimdLevelName(ActiveSimdLevel());
  bool deterministic = true;
  int gate_failures = 0;

  // --- GEMM fwd+bwd across thread counts ----------------------------------
  std::cout << StrFormat("gemm fwd+bwd, A[%d,%d] * B[%d,%d], %d reps\n",
                         static_cast<int>(kM), static_cast<int>(kK), static_cast<int>(kK),
                         static_cast<int>(kN), kReps);
  std::cout << "op              | threads | ms/iter | speedup | bitwise==1t\n";
  const GemmRun baseline = RunGemmFwdBwd(1);
  for (int threads : {1, 2, 4, 8}) {
    const GemmRun run = threads == 1 ? baseline : RunGemmFwdBwd(threads);
    const bool bitwise = BitwiseEq(run.out, baseline.out) && BitwiseEq(run.da, baseline.da) &&
                         BitwiseEq(run.db, baseline.db);
    deterministic = deterministic && bitwise;
    const double speedup = run.ms_per_iter > 0.0 ? baseline.ms_per_iter / run.ms_per_iter : 0.0;
    std::cout << StrFormat("%-15s | %7d | %7.2f | %6.2fx | %s\n", "gemm_fwd_bwd", threads,
                           run.ms_per_iter, speedup, bitwise ? "yes" : "NO");
    report.AddRow()
        .Text("op", "gemm_fwd_bwd")
        .Text("simd", simd)
        .Number("threads", threads)
        .Number("m", static_cast<double>(kM))
        .Number("k", static_cast<double>(kK))
        .Number("n", static_cast<double>(kN))
        .Number("ms_per_iter", run.ms_per_iter)
        .Number("speedup_vs_1t", speedup)
        .Number("bitwise_matches_1t", bitwise ? 1.0 : 0.0);
  }

  // --- Naive serial reference ---------------------------------------------
  const GemmRun naive = RunNaiveSerial();
  std::cout << StrFormat("%-15s | %7d | %7.2f | %6.2fx | %s\n", "naive_serial", 1,
                         naive.ms_per_iter,
                         naive.ms_per_iter > 0.0 ? baseline.ms_per_iter / naive.ms_per_iter : 0.0,
                         "n/a");
  report.AddRow()
      .Text("op", "naive_serial")
      .Text("simd", simd)
      .Number("threads", 1)
      .Number("ms_per_iter", naive.ms_per_iter)
      .Number("tiled_1t_speedup_vs_naive",
              baseline.ms_per_iter > 0.0 ? naive.ms_per_iter / baseline.ms_per_iter : 0.0);

  // --- Fused MatMulNT vs materialized transpose (fwd + bwd) ---------------
  // Forward work is identical by construction (one B^T pack + the same
  // GEMM); the fusion's win is the backward, where the composed form pays
  // the Transpose node's zero-initialized grad buffer and a second
  // transpose-accumulate pass. Values AND grads must stay bitwise equal.
  {
    SetTensorThreads(0);
    // Each side gets its own identically-seeded inputs.
    const auto make_inputs = [](Tensor& q, Tensor& k) {
      Rng rng(321);
      q = Tensor::Randn({kM, kK}, rng, 0.5f);
      k = Tensor::Randn({kN, kK}, rng, 0.5f);
    };
    Tensor qf, kf, qc, kc;
    make_inputs(qf, kf);
    make_inputs(qc, kc);
    // Best-of-3 rounds per side, interleaved, so a stray scheduling blip
    // on either side cannot decide the gate.
    double fused_ms = 0.0;
    double composed_ms = 0.0;
    for (int round = 0; round < 3; ++round) {
      const double f = TimeReps([&] {
        Tensor c = MatMulNT(qf, kf);
        Sum(c).Backward();
      });
      const double c = TimeReps([&] {
        Tensor c2 = MatMul(qc, Transpose(kc));
        Sum(c2).Backward();
      });
      fused_ms = round == 0 ? f : std::min(fused_ms, f);
      composed_ms = round == 0 ? c : std::min(composed_ms, c);
    }
    // Bitwise capture on a single fwd+bwd from zeroed grads: the composed
    // form's dB detours through the transpose node's fresh zero buffer
    // each iteration (chain from zero, then one add into k.grad) while
    // the fused kernel accumulates in place — identical from zero, but
    // differently rounded once grads are already nonzero.
    qf.ZeroGrad();
    kf.ZeroGrad();
    qc.ZeroGrad();
    kc.ZeroGrad();
    Tensor fused = MatMulNT(qf, kf);
    Sum(fused).Backward();
    Tensor composed = MatMul(qc, Transpose(kc));
    Sum(composed).Backward();
    const std::vector<float>& fused_out = fused.data();
    const std::vector<float>& composed_out = composed.data();
    const bool bitwise = BitwiseEq(fused_out, composed_out) &&
                         BitwiseEq(qf.grad(), qc.grad()) &&
                         BitwiseEq(kf.grad(), kc.grad());
    deterministic = deterministic && bitwise;
    const double speedup = fused_ms > 0.0 ? composed_ms / fused_ms : 0.0;
    std::cout << StrFormat("%-15s | %7s | %7.2f | %6.2fx | %s  (vs composed %.2f ms)\n",
                           "matmul_nt_fused", "auto", fused_ms, speedup, bitwise ? "yes" : "NO",
                           composed_ms);
    report.AddRow()
        .Text("op", "matmul_nt_fused")
        .Text("simd", simd)
        .Number("ms_per_iter", fused_ms)
        .Number("composed_transpose_ms_per_iter", composed_ms)
        .Number("speedup_vs_composed", speedup)
        .Number("bitwise_matches_composed", bitwise ? 1.0 : 0.0);
    // Bench-enforced regression gate (same idiom as the rollout
    // scheduler's uniform gate): the fused path exists to beat the
    // composed MatMul∘Transpose it replaced, so < 1.0x is a regression.
    if (speedup < 1.0) {
      ++gate_failures;
    }
  }

  // --- SIMD tier vs forced-scalar fallback at 1 thread --------------------
  // The same op fwd+bwd under the active tier and under
  // SetSimdOverride(kScalar); values and grads must be bitwise identical
  // (the canonical-order contract), and on AVX2 hardware the active tier
  // should be well clear of 1x.
  {
    SetTensorThreads(1);
    const auto matmul_case = [] {
      Rng rng(77);
      Tensor a = Tensor::Randn({kM, kK}, rng, 0.5f);
      Tensor b = Tensor::Randn({kK, kN}, rng, 0.5f);
      SimdRun run;
      const double start = NowMs();
      for (int rep = 0; rep < kReps; ++rep) {
        Tensor c = MatMul(a, b);
        Sum(c).Backward();
        if (rep == kReps - 1) {
          run.values = c.data();
        }
      }
      run.ms_per_iter = (NowMs() - start) / kReps;
      run.values.insert(run.values.end(), a.grad().begin(), a.grad().end());
      run.values.insert(run.values.end(), b.grad().begin(), b.grad().end());
      return run;
    };
    const auto layernorm_case = [] {
      Rng rng(78);
      Tensor x = Tensor::Randn({kM, kN}, rng, 0.5f);
      Tensor gamma = Tensor::Randn({kN}, rng, 0.5f);
      Tensor beta = Tensor::Randn({kN}, rng, 0.5f);
      SimdRun run;
      const double start = NowMs();
      for (int rep = 0; rep < kReps; ++rep) {
        Tensor y = LayerNorm(x, gamma, beta);
        Sum(Square(y)).Backward();
        if (rep == kReps - 1) {
          run.values = y.data();
        }
      }
      run.ms_per_iter = (NowMs() - start) / kReps;
      run.values.insert(run.values.end(), x.grad().begin(), x.grad().end());
      run.values.insert(run.values.end(), gamma.grad().begin(), gamma.grad().end());
      run.values.insert(run.values.end(), beta.grad().begin(), beta.grad().end());
      return run;
    };
    const auto softmax_case = [] {
      Rng rng(79);
      Tensor x = Tensor::Randn({kM, kN}, rng, 0.5f);
      SimdRun run;
      const double start = NowMs();
      for (int rep = 0; rep < kReps; ++rep) {
        Tensor y = LogSoftmax(x);
        Sum(Square(y)).Backward();
        if (rep == kReps - 1) {
          run.values = y.data();
        }
      }
      run.ms_per_iter = (NowMs() - start) / kReps;
      run.values.insert(run.values.end(), x.grad().begin(), x.grad().end());
      return run;
    };
    const auto compare = [&](const char* op, const auto& fn) {
      ClearSimdOverride();
      const SimdRun active = fn();
      SetSimdOverride(SimdLevel::kScalar);
      const SimdRun scalar = fn();
      ClearSimdOverride();
      const bool bitwise = BitwiseEq(active.values, scalar.values);
      deterministic = deterministic && bitwise;
      const double speedup =
          active.ms_per_iter > 0.0 ? scalar.ms_per_iter / active.ms_per_iter : 0.0;
      std::cout << StrFormat("%-15s | %7d | %7.2f | %6.2fx | %s  (scalar %.2f ms)\n", op, 1,
                             active.ms_per_iter, speedup, bitwise ? "yes" : "NO",
                             scalar.ms_per_iter);
      report.AddRow()
          .Text("op", op)
          .Text("simd", simd)
          .Number("threads", 1)
          .Number("ms_per_iter", active.ms_per_iter)
          .Number("scalar_ms_per_iter", scalar.ms_per_iter)
          .Number("speedup_vs_scalar", speedup)
          .Number("bitwise_matches_scalar", bitwise ? 1.0 : 0.0);
    };
    std::cout << "simd tier (" << simd << ") vs forced-scalar fallback, 1 thread, fwd+bwd\n";
    compare("matmul", matmul_case);
    compare("layernorm", layernorm_case);
    compare("log_softmax", softmax_case);
    SetTensorThreads(0);
  }

  if (!report.WriteJson()) {
    std::cerr << "failed to write " << report.FilePath() << "\n";
    return 1;
  }
  std::cout << "wrote " << report.FilePath() << " (" << report.size() << " rows)\n";
  if (!deterministic) {
    std::cerr << "bitwise determinism violated across thread counts / SIMD tiers\n";
    return 1;
  }
  if (gate_failures > 0) {
    std::cerr << gate_failures
              << " gate failure(s): fused matmul_nt speedup_vs_composed < 1.0\n";
    return 1;
  }
  std::cout << "determinism: all configurations bitwise-identical\n"
               "gate: fused matmul_nt >= 1.0x composed\n"
               "target: >= 3x gemm_fwd_bwd at 8 threads vs 1 (requires >= 8 cores)\n";
  return 0;
}

}  // namespace
}  // namespace hybridflow

int main() { return hybridflow::Main(); }
