// Figure 14: transition time between actor training and generation across
// model scales, for HybridFlow vs DeepSpeed-Chat vs OpenRLHF.
// (NeMo-Aligner shares weights between the stages and has no transition.)
//
// Paper claims validated here:
//   * HybridFlow's transition is the cheapest everywhere (paper: -55.2% on
//     average, up to -89.1% at 70B);
//   * HybridFlow's overhead stays flat as the cluster grows (micro-DP-group
//     all-gathers are cluster-size independent), while the baselines' full
//     gathers grow with inter-node participation.

#include <iostream>
#include <map>

#include "bench/bench_util.h"

namespace hybridflow {
namespace {

double TransitionSeconds(RlhfSystem system, const ModelSpec& model, int gpus) {
  SystemBuildConfig config;
  config.system = system;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = gpus;
  config.actor_model = model;
  config.critic_model = model;
  config.real_compute = false;
  RlhfSystemInstance instance = BuildSystem(config);
  if (!instance.feasible) {
    return -1.0;
  }
  return instance.RunIteration().transition_seconds;
}

}  // namespace
}  // namespace hybridflow

int main() {
  using namespace hybridflow;
  std::cout << "===========================================================\n";
  std::cout << "Figure 14: actor training<->generation transition time\n";
  std::cout << "===========================================================\n";

  const std::map<std::string, std::vector<int>> sweeps = {
      {"7B", {8, 16, 32, 64, 128}},
      {"13B", {16, 32, 64, 128}},
      {"34B", {32, 64, 128}},
      {"70B", {64, 128}},
  };
  const RlhfSystem systems[] = {RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                                RlhfSystem::kHybridFlow};
  for (const auto& [model_name, gpu_counts] : sweeps) {
    const ModelSpec model = ModelSpec::ByName(model_name);
    std::cout << "\n--- " << model_name << " models ---\n";
    std::cout << StrFormat("%-16s", "system");
    for (int gpus : gpu_counts) {
      std::cout << StrFormat(" | %10d", gpus);
    }
    std::cout << " GPUs\n";
    std::vector<double> hybridflow_row;
    std::vector<double> best_baseline(gpu_counts.size(), -1.0);
    for (RlhfSystem system : systems) {
      std::cout << StrFormat("%-16s", RlhfSystemName(system));
      for (size_t c = 0; c < gpu_counts.size(); ++c) {
        const double seconds = TransitionSeconds(system, model, gpu_counts[c]);
        if (seconds < 0.0) {
          std::cout << StrFormat(" | %10s", "OOM");
        } else {
          std::cout << StrFormat(" | %10s", HumanSeconds(seconds).c_str());
        }
        if (system == RlhfSystem::kHybridFlow) {
          hybridflow_row.push_back(seconds);
        } else {
          best_baseline[c] = std::max(best_baseline[c], seconds);
        }
      }
      std::cout << "\n";
    }
    std::cout << "reduction vs worst";
    for (size_t c = 0; c < gpu_counts.size(); ++c) {
      if (hybridflow_row[c] >= 0.0 && best_baseline[c] > 0.0) {
        std::cout << StrFormat(" | %9.1f%%",
                               100.0 * (1.0 - hybridflow_row[c] / best_baseline[c]));
      } else {
        std::cout << StrFormat(" | %10s", "-");
      }
    }
    std::cout << "\n";
  }
  std::cout << "\nExpected shape: HybridFlow < DS-Chat < OpenRLHF at matching scales;\n"
               "HybridFlow stays nearly constant across cluster sizes (paper Fig 14).\n";
  return 0;
}
