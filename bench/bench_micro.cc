// Microbenchmarks (google-benchmark) for HybridFlow-CPP's hot paths: the
// collective cost models, parallel-group algebra, transfer protocols, the
// autograd engine, policy-network forward/backward, GAE, and the
// auto-parallel search. These guard against performance regressions in the
// framework itself (the mapping search calls these paths millions of
// times).

#include <benchmark/benchmark.h>

#include <numeric>

#include "src/baselines/system_builder.h"
#include "src/mapping/device_mapper.h"
#include "src/rlhf/advantage.h"

namespace hybridflow {
namespace {

std::vector<DeviceId> Devices(int n) {
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  std::iota(devices.begin(), devices.end(), 0);
  return devices;
}

void BM_AllGatherCostModel(benchmark::State& state) {
  ClusterSpec cluster = ClusterSpec::WithGpus(static_cast<int>(state.range(0)));
  std::vector<DeviceId> devices = Devices(cluster.world_size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(AllGatherTime(cluster, devices, 14e9));
  }
}
BENCHMARK(BM_AllGatherCostModel)->Arg(8)->Arg(64)->Arg(128);

void BM_ProcessGroupConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ParallelConfig cfg{2, 4, n / 8};
  for (auto _ : state) {
    ProcessGroups groups(cfg, Devices(n));
    benchmark::DoNotOptimize(groups.MicroDpGroup(0, {1, 2}, GenGroupingMethod::kZeroRedundancy));
  }
}
BENCHMARK(BM_ProcessGroupConstruction)->Arg(16)->Arg(128);

void BM_ProtocolRoundTrip(benchmark::State& state) {
  ProcessGroups groups({1, 4, 4}, Devices(16));
  ProtocolContext context;
  context.groups = &groups;
  DataBatch batch;
  DataBatch::TokenColumn prompts(64, std::vector<int64_t>(16, 1));
  batch.SetTokens("prompts", prompts);
  for (auto _ : state) {
    std::vector<DataBatch> per_rank =
        DistributeBatch(TransferProtocol::k3dProto, batch, context);
    benchmark::DoNotOptimize(CollectBatch(TransferProtocol::k3dProto, per_rank, context));
  }
}
BENCHMARK(BM_ProtocolRoundTrip);

void BM_PolicyNetForwardBackward(benchmark::State& state) {
  Rng rng(1);
  PolicyNetConfig config;
  config.vocab_size = 16;
  config.context_window = 4;
  config.embed_dim = 16;
  config.hidden_dim = 32;
  PolicyNet net(config, rng);
  std::vector<std::vector<int64_t>> contexts(static_cast<size_t>(state.range(0)),
                                             {1, 2, 3, 4});
  std::vector<int64_t> targets(contexts.size(), 5);
  for (auto _ : state) {
    Tensor loss = Neg(Mean(net.LogProb(contexts, targets)));
    loss.Backward();
    for (Tensor& param : net.Parameters()) {
      param.ZeroGrad();
    }
  }
}
BENCHMARK(BM_PolicyNetForwardBackward)->Arg(32)->Arg(256);

void BM_GaeComputation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> rewards(n, 0.1f);
  std::vector<float> values(n, 0.5f);
  std::vector<float> advantages;
  std::vector<float> returns;
  for (auto _ : state) {
    GaeFromRewards(rewards, values, 1.0f, 0.95f, &advantages, &returns);
    benchmark::DoNotOptimize(advantages.data());
  }
}
BENCHMARK(BM_GaeComputation)->Arg(1024)->Arg(16384);

void BM_AutoParallelSearch(benchmark::State& state) {
  const int gpus = static_cast<int>(state.range(0));
  MappedModelDesc actor{"actor", ModelSpec::Llama13B(), true, false, true};
  for (auto _ : state) {
    // Fresh mapper each time: measures the uncached search.
    DeviceMapper mapper({actor}, RlhfWorkloadSpec(), ClusterSpec::WithGpus(gpus));
    benchmark::DoNotOptimize(mapper.AutoParallel(actor, gpus));
  }
}
BENCHMARK(BM_AutoParallelSearch)->Arg(16)->Arg(64);

void BM_FullDeviceMapping(benchmark::State& state) {
  const int gpus = static_cast<int>(state.range(0));
  const ModelSpec model = ModelSpec::Llama7B();
  for (auto _ : state) {
    DeviceMapper mapper(DataflowModels(RlhfAlgorithm::kPpo, model, model),
                        RlhfWorkloadSpec(), ClusterSpec::WithGpus(gpus));
    benchmark::DoNotOptimize(mapper.Map(gpus));
  }
}
BENCHMARK(BM_FullDeviceMapping)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SimulatedPpoIteration(benchmark::State& state) {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.num_gpus = 16;
  config.real_compute = false;
  RlhfSystemInstance instance = BuildSystem(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.RunIteration());
  }
}
BENCHMARK(BM_SimulatedPpoIteration)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hybridflow

BENCHMARK_MAIN();
