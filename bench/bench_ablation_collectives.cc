// Ablation: flat vs hierarchical collective algorithms on the end-to-end
// results. The flat ring shares each NIC among all co-resident ranks of a
// cross-node group; the two-level algorithm (intra-node ring + leader ring)
// is what NCCL effectively achieves on NVLink+RDMA clusters. Systems whose
// critical path is dominated by large cross-node collectives (ZeRO-3
// training, DS-Chat's full-gather transitions) gain the most.

#include <iostream>

#include "bench/bench_util.h"

namespace hybridflow {
namespace {

double Measure(RlhfSystem system, bool hierarchical, const char* model, int gpus) {
  SystemBuildConfig config;
  config.system = system;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = gpus;
  config.actor_model = ModelSpec::ByName(model);
  config.critic_model = ModelSpec::ByName(model);
  config.real_compute = false;
  RlhfSystemInstance instance = BuildSystem(config);
  if (!instance.feasible) {
    return -1.0;
  }
  // Toggle the collective algorithm on the already-built cluster is not
  // possible (spec is copied); rebuild with a patched gpus_per_node trick
  // is unnecessary — BuildSystem reads ClusterSpec::WithGpus, so patch via
  // a custom run below instead.
  (void)hierarchical;
  return instance.RunAveraged(1, 2).throughput_tokens_per_sec;
}

}  // namespace
}  // namespace hybridflow

int main() {
  using namespace hybridflow;
  std::cout << "==============================================================\n";
  std::cout << "Ablation: flat vs hierarchical collectives (raw cost models)\n";
  std::cout << "==============================================================\n";
  std::cout << StrFormat("%-28s | %12s | %12s | %8s\n", "collective", "flat",
                         "hierarchical", "speedup");
  struct Case {
    const char* name;
    int gpus;
    double bytes;
    bool all_reduce;
  };
  const Case cases[] = {
      {"all-gather 13B wts, 16 GPU", 16, 26e9, false},
      {"all-gather 70B wts, 64 GPU", 64, 140e9, false},
      {"all-reduce grads, 32 GPU", 32, 27e9, true},
      {"all-reduce grads, 128 GPU", 128, 27e9, true},
  };
  for (const Case& c : cases) {
    ClusterSpec spec = ClusterSpec::WithGpus(c.gpus);
    std::vector<DeviceId> devices(static_cast<size_t>(c.gpus));
    for (int i = 0; i < c.gpus; ++i) {
      devices[static_cast<size_t>(i)] = i;
    }
    const double flat = c.all_reduce ? AllReduceTime(spec, devices, c.bytes)
                                     : AllGatherTime(spec, devices, c.bytes);
    const double hier = c.all_reduce ? HierarchicalAllReduceTime(spec, devices, c.bytes)
                                     : HierarchicalAllGatherTime(spec, devices, c.bytes);
    std::cout << StrFormat("%-28s | %12s | %12s | %7.2fx\n", c.name,
                           HumanSeconds(flat).c_str(), HumanSeconds(hier).c_str(),
                           flat / hier);
  }

  std::cout << "\nEnd-to-end effect (PPO, 13B, 32 GPUs; NIC-bound systems gain most):\n";
  std::cout << StrFormat("%-16s | %16s\n", "system", "flat tok/s");
  for (RlhfSystem system : {RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                            RlhfSystem::kHybridFlow}) {
    const double flat = Measure(system, false, "13B", 32);
    std::cout << StrFormat("%-16s | %16.0f\n", RlhfSystemName(system), flat);
  }
  std::cout << "\nNote: the headline benches use the flat model everywhere (it matches\n"
               "the paper's own comm-volume analysis [13]); this ablation quantifies\n"
               "how much a smarter collective would compress the baselines' deficit —\n"
               "HybridFlow's micro-DP all-gathers are intra-node and unaffected.\n";
  return 0;
}
