// Ablation: per-GPU peak memory of one PPO iteration under each system —
// the practical face of Table 2's "Peak Mem." and "Redundancy" columns and
// of §2.3's placement/memory trade-offs. The memory tracker records every
// resident model state, transient reshard peak, retained generation
// buffer, and best-effort KVCache allocation.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/units.h"

namespace hybridflow {
namespace {

void Panel(const char* model_name, int gpus) {
  const ModelSpec model = ModelSpec::ByName(model_name);
  std::cout << "\n--- " << model_name << " models, " << gpus << " GPUs ---\n";
  std::cout << StrFormat("%-16s | %12s | %12s | %10s\n", "system", "peak GPU mem",
                         "resident", "headroom");
  for (RlhfSystem system : {RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                            RlhfSystem::kNemoAligner, RlhfSystem::kHybridFlow}) {
    SystemBuildConfig config;
    config.system = system;
    config.algorithm = RlhfAlgorithm::kPpo;
    config.num_gpus = gpus;
    config.actor_model = model;
    config.critic_model = model;
    config.real_compute = false;
    RlhfSystemInstance instance = BuildSystem(config);
    if (!instance.feasible) {
      std::cout << StrFormat("%-16s | %12s |\n", RlhfSystemName(system), "OOM");
      continue;
    }
    // Resident state before any iteration.
    double resident = 0.0;
    for (int device = 0; device < gpus; ++device) {
      resident = std::max(resident, instance.controller->cluster().memory(device).used());
    }
    instance.RunIteration();
    const double peak = instance.controller->cluster().MaxPeakMemory();
    const double capacity = instance.controller->spec().gpu.memory_bytes;
    std::cout << StrFormat("%-16s | %12s | %12s | %9.0f%%\n", RlhfSystemName(system),
                           HumanBytes(peak).c_str(), HumanBytes(resident).c_str(),
                           100.0 * (1.0 - peak / capacity));
  }
}

}  // namespace
}  // namespace hybridflow

int main() {
  using namespace hybridflow;
  std::cout << "===============================================================\n";
  std::cout << "Ablation: per-GPU peak memory of one PPO iteration per system\n";
  std::cout << "===============================================================\n";
  Panel("7B", 16);
  Panel("13B", 16);
  Panel("34B", 32);
  Panel("70B", 64);
  std::cout << "\nExpected: DS-Chat's full-model gather and OpenRLHF's second weight\n"
               "copy show as higher peaks / lower headroom; HybridFlow's zero-\n"
               "redundancy resharding leaves the most KVCache headroom.\n";
  return 0;
}
