// Figure 10: ReMax throughput vs baselines. ReMax removes the critic and
// adds a second (greedy) generation pass for its variance-reduction
// baseline; NeMo-Aligner does not support ReMax (§8.1) and is excluded.

#include <iostream>
#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace hybridflow;
  std::cout << "=========================================================\n";
  std::cout << "Figure 10: ReMax throughput vs baselines (no NeMo-Aligner)\n";
  std::cout << "=========================================================\n";

  const std::vector<RlhfSystem> systems = {RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                                           RlhfSystem::kHybridFlow};
  const std::map<std::string, std::vector<int>> sweeps = {
      {"7B", {8, 16, 32, 64, 128}},
      {"13B", {16, 32, 64, 128}},
      {"34B", {32, 64, 128}},
      {"70B", {64, 128}},
  };
  BenchReport report("fig10_remax_throughput");
  for (const auto& [model, gpu_counts] : sweeps) {
    PrintThroughputPanel(RlhfAlgorithm::kRemax, model, gpu_counts, systems, &report);
  }
  if (report.WriteJson()) {
    std::cout << "\nwrote " << report.FilePath() << " (" << report.size() << " rows)\n";
  }
  std::cout << "\nExpected shape: HybridFlow wins everywhere; the critic-free dataflow\n"
               "makes generation an even larger share, so the generation-optimized\n"
               "3D-HybridEngine gains grow relative to PPO.\n";
  return 0;
}
