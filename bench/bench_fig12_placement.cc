// Figure 12: HybridFlow throughput under different model placements
// (colocate / standalone / split / auto) for 13B and 34B PPO across
// cluster sizes.
//
// Paper claims validated here:
//   * 16-64 GPUs: colocate wins.
//   * Larger clusters: split/standalone become optimal.
//   * Algorithm 1 (auto) always matches or beats the canonical placements.

#include <iostream>

#include "bench/bench_util.h"

namespace hybridflow {
namespace {

double MeasurePlacement(const ModelSpec& model, int gpus, PlacementKind placement) {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = gpus;
  config.actor_model = model;
  config.critic_model = model;
  config.placement = placement;
  config.real_compute = false;
  RlhfSystemInstance instance = BuildSystem(config);
  if (!instance.feasible) {
    return -1.0;
  }
  return instance.RunAveraged(1, 2).throughput_tokens_per_sec;
}

void Panel(const std::string& model_name, const std::vector<int>& gpu_counts) {
  const ModelSpec model = ModelSpec::ByName(model_name);
  std::cout << "\n--- " << model_name
            << " models: throughput by placement (tokens/sec) ---\n";
  std::cout << StrFormat("%-12s", "placement");
  for (int gpus : gpu_counts) {
    std::cout << StrFormat(" | %10d", gpus);
  }
  std::cout << " GPUs\n";
  const PlacementKind placements[] = {PlacementKind::kColocate, PlacementKind::kStandalone,
                                      PlacementKind::kSplit, PlacementKind::kAuto};
  std::vector<std::vector<double>> table;
  for (PlacementKind placement : placements) {
    std::vector<double> row;
    for (int gpus : gpu_counts) {
      row.push_back(MeasurePlacement(model, gpus, placement));
    }
    table.push_back(row);
  }
  for (size_t p = 0; p < 4; ++p) {
    std::cout << StrFormat("%-12s", PlacementKindName(placements[p]));
    for (double value : table[p]) {
      if (value < 0.0) {
        std::cout << StrFormat(" | %10s", "OOM");
      } else {
        std::cout << StrFormat(" | %10.0f", value);
      }
    }
    std::cout << "\n";
  }
  // Check: auto >= best canonical at every scale.
  std::cout << "best non-auto ";
  for (size_t c = 0; c < gpu_counts.size(); ++c) {
    double best = -1.0;
    const char* who = "-";
    for (size_t p = 0; p < 3; ++p) {
      if (table[p][c] > best) {
        best = table[p][c];
        who = PlacementKindName(placements[p]);
      }
    }
    // Algorithm 1 ranks placements by the d_cost *estimate*; allow a small
    // estimator-vs-execution tolerance.
    const bool auto_wins = table[3][c] >= best * 0.985;
    std::cout << StrFormat("| %6s %s ", who, auto_wins ? "<=auto" : "!AUTO-LOST");
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace hybridflow

int main() {
  using namespace hybridflow;
  std::cout << "=====================================================\n";
  std::cout << "Figure 12: HybridFlow throughput under four placements\n";
  std::cout << "=====================================================\n";
  Panel("13B", {16, 32, 64, 96, 128});
  Panel("34B", {32, 64, 96, 128});
  std::cout << "\nExpected shape: colocate wins small clusters; split/standalone take\n"
               "over at 96-128 GPUs; 'auto' (Algorithm 1) always at least ties.\n";
  return 0;
}
