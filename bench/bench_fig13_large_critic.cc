// Figure 13: placement comparison with a 13B actor & reference policy and
// 70B critic & reward model (larger critic/reward give better alignment,
// §8.3).
//
// Paper claims validated here:
//   * colocate wins up to 64 GPUs (paper: +44.8% on average);
//   * split overtakes at 96 GPUs;
//   * at 128 GPUs the best mapping separates the critic from the rest.

#include <iostream>

#include "bench/bench_util.h"

namespace hybridflow {
namespace {

double Measure(int gpus, PlacementKind placement, MappingResult* mapping_out) {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = gpus;
  config.actor_model = ModelSpec::Llama13B();
  config.critic_model = ModelSpec::Llama70B();
  config.placement = placement;
  config.real_compute = false;
  RlhfSystemInstance instance = BuildSystem(config);
  if (!instance.feasible) {
    return -1.0;
  }
  if (mapping_out != nullptr) {
    *mapping_out = instance.mapping;
  }
  return instance.RunAveraged(1, 2).throughput_tokens_per_sec;
}

}  // namespace
}  // namespace hybridflow

int main() {
  using namespace hybridflow;
  std::cout << "===================================================================\n";
  std::cout << "Figure 13: placements with 13B actor/reference + 70B critic/reward\n";
  std::cout << "===================================================================\n";

  const std::vector<int> gpu_counts = {32, 64, 96, 128};
  const PlacementKind placements[] = {PlacementKind::kColocate, PlacementKind::kStandalone,
                                      PlacementKind::kSplit, PlacementKind::kAuto};
  std::cout << StrFormat("%-12s", "placement");
  for (int gpus : gpu_counts) {
    std::cout << StrFormat(" | %10d", gpus);
  }
  std::cout << " GPUs\n";
  for (PlacementKind placement : placements) {
    std::cout << StrFormat("%-12s", PlacementKindName(placement));
    for (int gpus : gpu_counts) {
      double value = Measure(gpus, placement, nullptr);
      if (value < 0.0) {
        std::cout << StrFormat(" | %10s", "OOM");
      } else {
        std::cout << StrFormat(" | %10.0f", value);
      }
    }
    std::cout << "\n";
  }

  // Show the 128-GPU optimized mapping (paper: actor+ref+reward colocated
  // on 64 GPUs, critic on the other 64).
  MappingResult mapping;
  Measure(128, PlacementKind::kAuto, &mapping);
  std::cout << "\nOptimized mapping at 128 GPUs (Algorithm 1):\n";
  for (const ColocatedSetResult& set : mapping.sets) {
    std::cout << "  " << set.gpus << " GPUs [" << set.first_device << ".."
              << set.first_device + set.gpus - 1 << "]:";
    for (const std::string& name : set.model_names) {
      std::cout << " " << name << " (" << mapping.models.at(name).train.ToString() << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\nExpected shape: colocate leads through 64 GPUs; at 96+ splitting the\n"
               "70B critic/reward from the 13B actor/reference wins; the auto mapping\n"
               "separates the critic at 128 GPUs.\n";
  return 0;
}
