// Multi-tenant serving on the data plane, end to end.
//
// Generates a short bursty two-tenant arrival trace (src/data/
// arrival_trace.h), expands it into serving requests, and replays it
// through ServingFrontend over the real toy PolicyNet with deadline-aware
// admission: tenant 0 is interactive and carries a TTFT SLO, tenant 1 is
// best-effort batch. Tokens stream through the client callback as they
// are committed, TTFT-overdue requests are rejected instead of served
// late, and the per-request JSONL artifact is written for tools/hfstat.cc.
// See docs/SERVING.md.
//
// Run: ./serving_demo [requests] [seed]

#include <cstdlib>
#include <iostream>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/data/arrival_trace.h"
#include "src/nn/policy_net.h"
#include "src/serving/frontend.h"

int main(int argc, char** argv) {
  using namespace hybridflow;
  const int requests = argc > 1 ? std::atoi(argv[1]) : 24;
  const uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 7;

  ArrivalTraceConfig trace_config;
  trace_config.shape = TraceShape::kBursty;
  trace_config.rate = 8.0;
  trace_config.duration = 6.0;
  trace_config.max_requests = requests;
  TenantSpec interactive;
  interactive.tenant = 0;
  interactive.share = 0.4;
  interactive.priority = 10;
  interactive.ttft_slo = 2.0;
  interactive.prompt_min = 4;
  interactive.prompt_max = 10;
  interactive.new_tokens_min = 4;
  interactive.new_tokens_max = 8;
  TenantSpec batch;
  batch.tenant = 1;
  batch.share = 0.6;
  batch.prompt_min = 8;
  batch.prompt_max = 20;
  batch.new_tokens_min = 8;
  batch.new_tokens_max = 16;
  trace_config.tenants = {interactive, batch};
  const std::vector<ArrivalRecord> trace = GenerateArrivalTrace(trace_config, seed);

  PolicyNetConfig net_config;
  net_config.vocab_size = 32;
  net_config.context_window = 4;
  net_config.embed_dim = 16;
  net_config.hidden_dim = 32;
  Rng net_rng(1234);
  const PolicyNet net(net_config, net_rng);

  ServingFrontendConfig config;
  config.scheduler.admission = AdmissionPolicy::kDeadline;
  config.scheduler.max_running = 4;  // Small replica: queueing is real.
  config.block_tokens = 4;
  config.seconds_per_step = 0.1;
  ServingFrontend frontend(net, config, /*kv_ranks=*/1);

  std::cout << StrFormat("serving %zu requests (bursty, 2 tenants, deadline admission)\n\n",
                         trace.size());
  int64_t streamed = 0;
  const StreamCallback on_token = [&](const StreamDelta& delta) {
    ++streamed;
    if (delta.index == 0) {
      std::cout << StrFormat("  t=%5.2fs  req %-3lld first token\n", delta.time,
                             static_cast<long long>(delta.request));
    }
    return true;
  };
  const std::vector<ServingRequest> serving_requests =
      RequestsFromTrace(trace, net_config.vocab_size, seed);
  Rng rng(seed);
  const ServingResult result =
      frontend.Serve(serving_requests, /*do_sample=*/false, /*temperature=*/1.0, rng, on_token);

  std::cout << StrFormat("\n%lld tokens streamed; %lld finished, %lld expired; "
                         "KV high water %lld blocks, leaked %lld\n",
                         static_cast<long long>(streamed),
                         static_cast<long long>(result.report.finished),
                         static_cast<long long>(result.report.expired),
                         static_cast<long long>(result.kv_high_water_blocks),
                         static_cast<long long>(result.kv_leaked_blocks));
  for (const TenantServingStats& tenant : result.report.tenants) {
    std::cout << StrFormat("  tenant %lld: %lld reqs, slo %lld/%lld, ttft p99 %s\n",
                           static_cast<long long>(tenant.tenant),
                           static_cast<long long>(tenant.requests),
                           static_cast<long long>(tenant.slo_attained),
                           static_cast<long long>(tenant.finished),
                           HumanSeconds(tenant.ttft.p99).c_str());
  }
  if (result.kv_leaked_blocks != 0) {
    std::cerr << "KV LEAK\n";
    return 1;
  }
  const char* artifact = "serving_demo_requests.jsonl";
  if (!WriteRequestRecordsJsonl(artifact, result.records)) {
    std::cerr << "failed to write " << artifact << "\n";
    return 1;
  }
  std::cout << "\nper-request JSONL written to " << artifact << " (analyze with hfstat)\n";
  return 0;
}
