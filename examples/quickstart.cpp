// Quickstart: PPO RLHF end-to-end with HybridFlow.
//
// Builds the PPO dataflow (actor, critic, reference, reward) on a simulated
// 16-GPU cluster with auto-mapped placement, runs real PPO numerics on the
// toy alignment task, and reports both learning progress (reward up,
// toxicity down) and simulated full-scale throughput.
//
// Run: ./quickstart [iterations]

#include <cstdlib>
#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"

int main(int argc, char** argv) {
  using namespace hybridflow;
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 30;

  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = 16;
  config.actor_model = ModelSpec::Llama7B();
  config.critic_model = ModelSpec::Llama7B();
  config.real_compute = true;
  config.real_batch = 64;
  config.seed = 7;

  std::cout << "Building HybridFlow PPO system on " << config.num_gpus << " GPUs...\n";
  RlhfSystemInstance system = BuildSystem(config);
  if (!system.feasible) {
    std::cerr << "configuration infeasible\n";
    return 1;
  }

  const MappingResult& mapping = system.mapping;
  std::cout << "Auto-mapping: " << mapping.sets.size() << " colocated set(s), estimated "
            << HumanSeconds(mapping.est_iteration_seconds) << "/iteration\n";
  for (const auto& [name, model] : mapping.models) {
    std::cout << "  " << name << ": p-t-d " << model.train.ToString();
    if (name == "actor") {
      std::cout << ", generation p_g-t_g " << model.gen.ToString();
    }
    std::cout << "\n";
  }

  std::cout << "\niter |  sim time | throughput tok/s |  reward | toxicity | coherence\n";
  for (int i = 0; i < iterations; ++i) {
    IterationMetrics metrics = system.RunIteration();
    if (i % 5 == 0 || i == iterations - 1) {
      std::cout << StrFormat("%4d | %9s | %16.0f | %7.3f | %8.3f | %9.3f\n", i,
                             HumanSeconds(metrics.iteration_seconds).c_str(),
                             metrics.throughput_tokens_per_sec, metrics.mean_reward,
                             metrics.toxicity_rate, metrics.coherence_rate);
    }
  }
  std::cout << "\nThe actor should have learned to avoid the toxic token and produce\n"
               "coherent continuations (reward up, toxicity near 0).\n";
  return 0;
}
