// Transition deep dive: for a chosen model and training strategy, prints
// every generation regrouping's Table-2 accounting side by side for the
// three engine designs, plus the per-rank shard overlap picture of §5.3 /
// Figure 8.
//
// Run: ./transition_study [model] [p] [t] [d]
//   e.g. ./transition_study 70B 2 8 2

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/common/strings.h"
#include "src/common/units.h"
#include "src/hybridengine/hybrid_engine.h"

int main(int argc, char** argv) {
  using namespace hybridflow;
  const std::string model_name = argc > 1 ? argv[1] : "7B";
  ParallelConfig train;
  train.pp = argc > 2 ? std::atoi(argv[2]) : 1;
  train.tp = argc > 3 ? std::atoi(argv[3]) : 8;
  train.dp = argc > 4 ? std::atoi(argv[4]) : 2;
  const ModelSpec model = ModelSpec::ByName(model_name);
  const int n = train.world_size();
  const ClusterSpec cluster = ClusterSpec::WithGpus(n);
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    devices[static_cast<size_t>(i)] = i;
  }

  std::cout << model_name << " actor, training groups " << train.ToString() << " on " << n
            << " GPUs (M = " << HumanBytes(model.ParamBytes()) << ")\n";

  std::cout << "\n"
            << StrFormat("%-10s | %-14s | %12s | %12s | %12s | %10s\n", "gen p-t", "engine",
                         "comm/GPU", "peak mem", "redundancy", "time");
  for (int tg = 1; tg <= train.tp; tg *= 2) {
    for (int pg = 1; pg <= train.pp; pg *= 2) {
      GenParallelConfig gen{pg, tg};
      if (!GenConfigCompatible(train, gen)) {
        continue;
      }
      for (ActorEngineMode mode : {ActorEngineMode::kHybridFlowV, ActorEngineMode::kHybridFlow}) {
        HybridEngine engine(model, train, gen, mode, cluster, devices);
        TransitionStats stats = engine.TrainToGenTransition();
        std::cout << StrFormat("%d-%-8d | %-14s | %12s | %12s | %12s | %10s\n", pg, tg,
                               ActorEngineModeName(mode),
                               HumanBytes(stats.comm_bytes_per_gpu).c_str(),
                               HumanBytes(stats.peak_param_bytes).c_str(),
                               HumanBytes(stats.redundant_bytes).c_str(),
                               HumanSeconds(stats.seconds).c_str());
      }
    }
  }

  // Per-rank shard overlap picture for the smallest non-trivial regrouping.
  GenParallelConfig gen{1, train.tp / 2 > 0 ? train.tp / 2 : 1};
  if (GenConfigCompatible(train, gen) && gen.tp >= 1 && train.tp > 1) {
    ProcessGroups groups(train, devices);
    std::cout << "\nPer-rank training-shard vs generation-shard overlap (gen " << gen.ToString()
              << "):\n";
    std::cout << StrFormat("%-5s | %-28s | %-28s\n", "rank", "vanilla (HybridFlow-V)",
                           "zero-redundancy (HybridFlow)");
    for (int rank = 0; rank < n; ++rank) {
      ReshardMemoryProfile vanilla =
          ComputeReshardMemory(groups, rank, gen, GenGroupingMethod::kVanilla);
      ReshardMemoryProfile zero =
          ComputeReshardMemory(groups, rank, gen, GenGroupingMethod::kZeroRedundancy);
      std::cout << StrFormat("%-5d | overlap %4.1f%%, waste %4.1f%% | overlap %4.1f%%, waste %4.1f%%\n",
                             rank, 100.0 * vanilla.overlap_fraction / vanilla.train_fraction,
                             100.0 * vanilla.redundant_fraction / vanilla.train_fraction,
                             100.0 * zero.overlap_fraction / zero.train_fraction,
                             100.0 * zero.redundant_fraction / zero.train_fraction);
    }
    std::cout << "\nZero-redundancy grouping always reuses 100% of the training shard\n"
                 "inside the generation buffer (the §5.3 guarantee).\n";
  }
  return 0;
}
