// Continuous-batching rollout vs the static wave model, end to end.
//
// Builds the same HybridFlow PPO system twice — once with the legacy
// static generation path and once with rollout.mode = continuous — and
// compares iteration time, generation time, and the scheduler's
// performance-plane stats (steps, preemptions, KV pressure). With the
// real data plane enabled, both modes produce identical greedy tokens;
// only the simulated generation schedule differs. See docs/ROLLOUT.md.
//
// Run: ./continuous_rollout [iterations] [gpus]

#include <cstdlib>
#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"

int main(int argc, char** argv) {
  using namespace hybridflow;
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 3;
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 16;

  std::cout << "PPO, 7B models, " << gpus
            << " GPUs: static wave model vs continuous batching\n\n";
  std::cout << StrFormat("%-11s | %10s | %10s | %16s\n", "rollout", "iter time", "generation",
                         "throughput tok/s");

  for (const RolloutMode mode : {RolloutMode::kStatic, RolloutMode::kContinuous}) {
    SystemBuildConfig config;
    config.system = RlhfSystem::kHybridFlow;
    config.algorithm = RlhfAlgorithm::kPpo;
    config.num_gpus = gpus;
    config.real_compute = true;
    config.real_batch = 16;
    config.seed = 7;
    config.workload.global_batch = 256;
    config.workload.prompt_len = 1024;
    config.workload.response_len = 512;
    config.rollout.mode = mode;

    RlhfSystemInstance instance = BuildSystem(config);
    if (!instance.feasible) {
      std::cout << "models do not fit this cluster\n";
      return 1;
    }
    IterationMetrics metrics = instance.RunAveraged(1, iterations);
    const bool continuous = mode == RolloutMode::kContinuous;
    std::cout << StrFormat("%-11s | %10s | %10s | %16.0f\n",
                           continuous ? "continuous" : "static",
                           HumanSeconds(metrics.iteration_seconds).c_str(),
                           HumanSeconds(metrics.generation_seconds).c_str(),
                           metrics.throughput_tokens_per_sec);
    if (continuous) {
      const RolloutStats& sim = instance.actor->last_rollout_sim_stats();
      std::cout << StrFormat(
          "\nscheduler (sim plane): %lld steps, %lld admissions, %lld preemptions\n"
          "peak running batch %lld, KV high water %lld blocks (%.0f%% of budget)\n",
          static_cast<long long>(sim.steps), static_cast<long long>(sim.admissions),
          static_cast<long long>(sim.preemptions),
          static_cast<long long>(sim.max_running_batch),
          static_cast<long long>(sim.kv_high_water_blocks), 100.0 * sim.kv_peak_utilization);
      const RolloutStats data = instance.actor->rollout_stats();
      std::cout << StrFormat(
          "engine (data plane, toy scale): %lld sequences, %lld steps, %lld preemptions\n",
          static_cast<long long>(data.sequences), static_cast<long long>(data.steps),
          static_cast<long long>(data.preemptions));
    }
  }
  return 0;
}
