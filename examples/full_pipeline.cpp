// The complete LLM alignment pipeline (§1): pre-training is assumed; this
// example runs the remaining three stages end to end on the simulated
// cluster with real (toy-scale) numerics:
//
//   Stage A  SFT: fine-tune the base policy on demonstration data.
//   Stage B  Reward modeling: fit a scalar-head net to preference pairs
//            (Bradley–Terry), standing in for human-preference data.
//   Stage C  RLHF: PPO with the *learned* reward model (not the ground
//            truth) driving the actor, exactly the paper's setting.
//
// Run: ./full_pipeline [rlhf_iterations]
//
// Observability artifacts written to the working directory
// (docs/OBSERVABILITY.md):
//   full_pipeline_trace.json      — merged dual-plane Chrome trace
//                                   (incl. per-sequence rollout spans)
//   full_pipeline_telemetry.jsonl — one JSONL record per RLHF iteration
//   full_pipeline_metrics.jsonl   — final metrics-registry dump
//   full_pipeline_seq_events.jsonl — data-plane rollout lifecycle events
//
// Analyze them offline with tools/hfstat.cc:
//   hfstat full_pipeline_metrics.jsonl full_pipeline_seq_events.jsonl

#include <cstdlib>
#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"
#include "src/obs/dual_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/seq_events.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/rlhf/pretraining.h"
#include "src/tensor/parallel.h"

int main(int argc, char** argv) {
  using namespace hybridflow;
  const int rlhf_iterations = argc > 1 ? std::atoi(argv[1]) : 25;
  const AlignmentTask task;
  WallclockTracer::Global().SetEnabled(true);
  // The data plane emits one span per GEMM; decimate the tensor category
  // 16:1 so the dual-plane trace stays small while every other category
  // (controller dispatch, worker compute, resharding) stays complete.
  WallclockTracer::Global().SetCategorySampling("tensor", 16);

  // --- Stage A: SFT ---------------------------------------------------------
  PolicyNetConfig actor_config;
  actor_config.vocab_size = task.vocab_size;
  actor_config.context_window = 4;
  actor_config.embed_dim = 16;
  actor_config.hidden_dim = 32;
  Rng actor_rng(11);
  PolicyNet sft_net(actor_config, actor_rng);
  SftConfig sft_config;
  sft_config.steps = 300;
  sft_config.lr = 0.02f;
  SftReport sft = RunSft(&sft_net, task, sft_config);
  std::cout << StrFormat(
      "Stage A (SFT):     loss %.3f -> %.3f, greedy rule accuracy %.0f%%\n", sft.initial_loss,
      sft.final_loss, 100.0 * sft.greedy_accuracy);

  // --- Stage B: reward modeling ----------------------------------------------
  PolicyNetConfig reward_config = actor_config;
  reward_config.scalar_head = true;
  Rng reward_rng(12);
  PolicyNet reward_net(reward_config, reward_rng);
  RewardTrainingConfig reward_training;
  reward_training.steps = 200;
  reward_training.pairs_per_step = 24;
  reward_training.lr = 0.02f;
  RewardTrainingReport rm = TrainRewardModel(&reward_net, task, reward_training);
  std::cout << StrFormat(
      "Stage B (RM):      Bradley-Terry loss %.3f -> %.3f, held-out ranking accuracy %.0f%%\n",
      rm.initial_loss, rm.final_loss, 100.0 * rm.ranking_accuracy);

  // --- Stage C: RLHF with the learned reward model ----------------------------
  Controller controller(ClusterSpec::WithGpus(8));
  auto pool = controller.CreatePoolRange("all", 0, 8);
  RealComputeOptions real;
  real.enabled = true;
  real.seed = 13;
  real.task = task;
  real.net = actor_config;

  WorkerGroupOptions actor_options;
  actor_options.name = "actor";
  actor_options.model = ModelSpec::Llama7B();
  actor_options.trainable = true;
  actor_options.train_cfg = {1, 4, 2};
  ActorOptions actor_engine;
  actor_engine.gen = GenParallelConfig{1, 2};
  // Continuous-batching rollout with per-sequence lifecycle recording: the
  // event log feeds the TTFT/TPOT quantile metrics, the per-sequence spans
  // in the merged trace, and the seq-events JSONL artifact hfstat reads.
  SeqEventLog seq_events;
  actor_engine.rollout.mode = RolloutMode::kContinuous;
  actor_engine.rollout.event_log = &seq_events;
  ActorWorkerGroup actor(actor_options, pool, &controller, real, actor_engine);
  actor.net().CopyFrom(sft_net);  // RLHF starts from the SFT policy.

  WorkerGroupOptions critic_options;
  critic_options.name = "critic";
  critic_options.model = ModelSpec::Llama7B();
  critic_options.scalar_head = true;
  critic_options.trainable = true;
  critic_options.train_cfg = {1, 4, 2};
  CriticWorkerGroup critic(critic_options, pool, &controller, real);

  WorkerGroupOptions ref_options;
  ref_options.name = "reference";
  ref_options.model = ModelSpec::Llama7B();
  ref_options.train_cfg = {1, 4, 2};
  ReferenceWorkerGroup reference(ref_options, pool, &controller, real, &actor.net());

  WorkerGroupOptions reward_options;
  reward_options.name = "reward";
  reward_options.model = ModelSpec::Llama7B();
  reward_options.scalar_head = true;
  reward_options.train_cfg = {1, 4, 2};
  RewardWorkerGroup reward(reward_options, pool, &controller, real,
                           RewardSource::kLearnedNet);
  // Inject the trained reward model into the worker.
  reward.net().CopyFrom(reward_net);

  PromptDataset dataset(task, 14);
  RlhfProgramConfig program_config;
  program_config.algorithm = RlhfAlgorithm::kPpo;
  program_config.real_batch = 64;
  RlhfModels models;
  models.actor = &actor;
  models.critic = &critic;
  models.reference = &reference;
  models.reward = &reward;
  RlhfProgram program(program_config, models, &controller, &dataset);
  TelemetrySink telemetry("full_pipeline_telemetry.jsonl");
  program.SetTelemetrySink(telemetry.ok() ? &telemetry : nullptr);

  std::cout << "Stage C (RLHF):    PPO driven by the learned reward model\n";
  std::cout << "iter | learned-RM reward | ground-truth toxicity | coherence | tokens/s\n";
  double last_tokens_per_sec = 0.0;
  for (int i = 0; i < rlhf_iterations; ++i) {
    IterationMetrics metrics = program.RunIteration();
    last_tokens_per_sec = metrics.throughput_tokens_per_sec;
    if (i % 5 == 0 || i == rlhf_iterations - 1) {
      std::cout << StrFormat("%4d | %17.3f | %21.4f | %9.3f | %8.0f\n", i, metrics.mean_reward,
                             metrics.toxicity_rate, metrics.coherence_rate,
                             metrics.throughput_tokens_per_sec);
    }
  }
  std::cout << "\nThe actor optimizes the *learned* reward; because the reward model\n"
               "ranks like the ground truth, toxicity falls and coherence rises even\n"
               "though the RL loop never sees the true task reward.\n";

  // --- Kernel wall-time stats -------------------------------------------------
  // The tensor kernels record one `tensor.kernel_us` histogram per op
  // label (docs/KERNELS.md); summarize them next to the simulated
  // throughput so kernel cost and tokens/s read side by side.
  std::cout << StrFormat("\nKernel wall-time (data plane, %d kernel workers; final sim "
                         "throughput %.0f tokens/s):\n",
                         TensorThreads(), last_tokens_per_sec);
  std::cout << "op             |    calls | total ms | mean us\n";
  const std::vector<double> kernel_bounds = ExponentialBuckets(1.0, 4.0, 10);
  for (const char* op : {"matmul", "matmul_nt", "matmul_bwd", "matmul_nt_bwd", "layernorm",
                         "layernorm_bwd", "log_softmax", "log_softmax_bwd", "elementwise",
                         "elementwise_bwd", "adam_step"}) {
    const Histogram& h = MetricsRegistry::Global().GetHistogram("tensor.kernel_us",
                                                                kernel_bounds, {{"op", op}});
    if (h.TotalCount() == 0) {
      continue;
    }
    std::cout << StrFormat("%-14s | %8d | %8.1f | %7.2f\n", op,
                           static_cast<int>(h.TotalCount()), h.Sum() / 1000.0,
                           h.Sum() / static_cast<double>(h.TotalCount()));
  }

  // --- Sequence latency (data plane) -----------------------------------------
  const SeqLatencySummary seq_latency =
      SummarizeSeqLatencies(DeriveSeqLatencies(seq_events.Snapshot(), /*wall=*/true));
  std::cout << StrFormat("\nRollout sequence latency (data plane, %lld sequences, "
                         "%lld preemptions):\n",
                         static_cast<long long>(seq_latency.sequences),
                         static_cast<long long>(seq_latency.preemptions));
  std::cout << StrFormat("  TTFT  p50 %.0f us, p99 %.0f us | TPOT p50 %.1f us, p99 %.1f us\n",
                         seq_latency.ttft.p50, seq_latency.ttft.p99, seq_latency.tpot.p50,
                         seq_latency.tpot.p99);

  // --- Observability artifacts ------------------------------------------------
  if (WriteDualPlaneTrace(controller.cluster(), "full_pipeline_trace.json", &seq_events)) {
    std::cout << "\nwrote full_pipeline_trace.json ("
              << controller.cluster().trace().size() << " sim spans, "
              << WallclockTracer::Global().size() << " wall spans, " << seq_events.size()
              << " seq events; open in chrome://tracing or Perfetto)\n";
  }
  if (telemetry.ok()) {
    std::cout << "wrote " << telemetry.path() << " (" << telemetry.records_written()
              << " iteration records)\n";
  }
  if (MetricsRegistry::Global().WriteJsonLines("full_pipeline_metrics.jsonl")) {
    std::cout << "wrote full_pipeline_metrics.jsonl (" << MetricsRegistry::Global().size()
              << " metrics)\n";
  }
  if (seq_events.WriteJsonl("full_pipeline_seq_events.jsonl")) {
    std::cout << "wrote full_pipeline_seq_events.jsonl (" << seq_events.size() << " events)\n";
  }
  return 0;
}
