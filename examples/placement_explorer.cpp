// Placement explorer: runs Algorithm 1 on a user-specified cluster and
// model configuration and prints the optimized device mapping — the tool a
// practitioner would use before launching an RLHF job.
//
// Run: ./placement_explorer [actor_model] [critic_model] [gpus]
//   e.g. ./placement_explorer 13B 70B 128

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"

int main(int argc, char** argv) {
  using namespace hybridflow;
  const std::string actor_name = argc > 1 ? argv[1] : "13B";
  const std::string critic_name = argc > 2 ? argv[2] : actor_name;
  const int gpus = argc > 3 ? std::atoi(argv[3]) : 64;

  const ModelSpec actor_model = ModelSpec::ByName(actor_name);
  const ModelSpec critic_model = ModelSpec::ByName(critic_name);
  std::cout << "Mapping PPO dataflow: " << actor_name << " actor/reference, " << critic_name
            << " critic/reward, " << gpus << " GPUs\n\n";

  DeviceMapper mapper(DataflowModels(RlhfAlgorithm::kPpo, actor_model, critic_model),
                      RlhfWorkloadSpec(), ClusterSpec::WithGpus(gpus));

  std::cout << StrFormat("%-12s | %12s | %s\n", "placement", "est s/iter", "layout");
  for (PlacementKind kind : {PlacementKind::kColocate, PlacementKind::kStandalone,
                             PlacementKind::kSplit, PlacementKind::kAuto}) {
    MappingResult result = mapper.Map(gpus, kind);
    if (!result.feasible) {
      std::cout << StrFormat("%-12s | %12s |\n", PlacementKindName(kind), "infeasible");
      continue;
    }
    std::string layout;
    for (const ColocatedSetResult& set : result.sets) {
      layout += "[" + std::to_string(set.gpus) + ":";
      for (size_t m = 0; m < set.model_names.size(); ++m) {
        layout += (m > 0 ? "," : " ") + set.model_names[m];
      }
      layout += "] ";
    }
    std::cout << StrFormat("%-12s | %12.1f | %s\n", PlacementKindName(kind),
                           result.est_iteration_seconds, layout.c_str());
  }

  MappingResult best = mapper.Map(gpus, PlacementKind::kAuto);
  if (best.feasible) {
    std::cout << "\nOptimized mapping detail (Algorithm 1, " << best.placements_examined
              << " placements, " << best.simulations << " simu calls, "
              << HumanSeconds(best.wall_seconds) << "):\n";
    for (const auto& [name, model] : best.models) {
      std::cout << "  " << StrFormat("%-10s", name.c_str()) << " p-t-d "
                << model.train.ToString();
      if (name == "actor") {
        std::cout << "  generation p_g-t_g " << model.gen.ToString() << " (micro DP "
                  << MicroDpSize(model.train, model.gen) << ")";
      }
      std::cout << "\n";
    }
    std::cout << "  stage estimate: gen "
              << HumanSeconds(
                     best.models.at("actor").stage_seconds[static_cast<int>(RlhfStage::kGeneration)])
              << ", train "
              << HumanSeconds(
                     best.models.at("actor").stage_seconds[static_cast<int>(RlhfStage::kTraining)])
              << " (actor)\n";
  }
  return 0;
}
