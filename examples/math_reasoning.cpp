// "From alignment to reasoning" (§9): RL with a rule-based, non-neural
// reward module and GRPO (the critic-free algorithm of DeepSeekMath).
//
// The reward model is replaced by a reward *function* — here the alignment
// task's ground-truth scorer, standing in for a sandbox/verifier that
// checks a math answer or a code test case. HybridFlow wraps it in the
// same RewardWorkerGroup API, so the dataflow script is unchanged.
//
// Run: ./math_reasoning [iterations]

#include <cstdlib>
#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"

int main(int argc, char** argv) {
  using namespace hybridflow;
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 30;

  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kGrpo;
  config.num_gpus = 8;
  config.actor_model = ModelSpec::Llama7B();
  config.critic_model = ModelSpec::Llama7B();
  config.real_compute = true;
  config.real_batch = 64;  // 16 prompts x group size 4.
  config.seed = 123;

  std::cout << "GRPO with a rule-based reward module (no critic, no reward net)\n";
  RlhfSystemInstance system = BuildSystem(config);
  if (!system.feasible) {
    std::cerr << "configuration infeasible\n";
    return 1;
  }
  std::cout << "Models in the dataflow: actor, reference, rule-based reward"
            << (system.critic ? ", critic" : " (critic-free)") << "\n\n";

  std::cout << "iter | reward | coherence | toxicity | KL(actor||ref)\n";
  for (int i = 0; i < iterations; ++i) {
    IterationMetrics metrics = system.RunIteration();
    if (i % 5 == 0 || i == iterations - 1) {
      std::cout << StrFormat("%4d | %6.3f | %9.3f | %8.3f | %7.4f\n", i, metrics.mean_reward,
                             metrics.coherence_rate, metrics.toxicity_rate, metrics.mean_kl);
    }
  }
  std::cout << "\nGroup-normalized advantages give the actor a learning signal without\n"
               "any value network; the KL column tracks drift from the reference.\n";
  return 0;
}
