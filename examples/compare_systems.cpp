// Compares HybridFlow against the three baseline systems (Table 1) on one
// configuration: same models, same cluster, same workload.
//
// Run: ./compare_systems [model: 7B|13B|34B|70B] [gpus]

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"

int main(int argc, char** argv) {
  using namespace hybridflow;
  const std::string model_name = argc > 1 ? argv[1] : "7B";
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 16;

  const RlhfSystem systems[] = {RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                                RlhfSystem::kNemoAligner, RlhfSystem::kHybridFlow};

  std::cout << "PPO, " << model_name << " models, " << gpus << " GPUs\n";
  std::cout << StrFormat("%-16s | %12s | %16s | %10s | %s\n", "system", "iter time",
                         "throughput tok/s", "transition", "generation");
  double hybridflow_tput = 0.0;
  double best_baseline = 0.0;
  for (RlhfSystem system : systems) {
    SystemBuildConfig config;
    config.system = system;
    config.algorithm = RlhfAlgorithm::kPpo;
    config.num_gpus = gpus;
    config.actor_model = ModelSpec::ByName(model_name);
    config.critic_model = ModelSpec::ByName(model_name);
    config.real_compute = false;
    RlhfSystemInstance instance = BuildSystem(config);
    if (!instance.feasible) {
      std::cout << StrFormat("%-16s | %12s |\n", RlhfSystemName(system), "OOM");
      continue;
    }
    IterationMetrics metrics = instance.RunAveraged(1, 3);
    std::cout << StrFormat("%-16s | %12s | %16.0f | %10s | %s\n", RlhfSystemName(system),
                           HumanSeconds(metrics.iteration_seconds).c_str(),
                           metrics.throughput_tokens_per_sec,
                           HumanSeconds(metrics.transition_seconds).c_str(),
                           HumanSeconds(metrics.generation_seconds).c_str());
    if (system == RlhfSystem::kHybridFlow) {
      hybridflow_tput = metrics.throughput_tokens_per_sec;
    } else {
      best_baseline = std::max(best_baseline, metrics.throughput_tokens_per_sec);
    }
  }
  if (best_baseline > 0.0) {
    std::cout << StrFormat("\nHybridFlow speedup over best baseline: %.2fx\n",
                           hybridflow_tput / best_baseline);
  }
  return 0;
}
