// Custom transfer protocols (§4.1): "A user can further extend the
// transfer protocols through implementing customized collect and
// distribute functions."
//
// This example registers REDUNDANT_PROTO — a protocol that distributes
// each data shard to TWO data-parallel groups (replication for fault
// tolerance) and collects by taking the first live replica's output —
// and pushes a batch through it next to the built-in 3D_PROTO.
//
// Run: ./custom_protocol

#include <iostream>

#include "src/common/strings.h"
#include "src/transfer/protocol.h"

int main() {
  using namespace hybridflow;

  // A 1-2-4 model: 8 ranks, 4 DP groups of TP size 2.
  ParallelConfig train{1, 2, 4};
  std::vector<DeviceId> devices;
  for (int i = 0; i < train.world_size(); ++i) {
    devices.push_back(i);
  }
  ProcessGroups groups(train, devices);
  ProtocolContext context;
  context.groups = &groups;

  // --- Register the custom protocol ----------------------------------------
  CustomProtocol redundant;
  redundant.name = "REDUNDANT_PROTO";
  redundant.distribute = [](const DataBatch& input, const ProtocolContext& ctx) {
    const ParallelConfig& cfg = ctx.groups->train_config();
    // Half as many shards as DP groups; each shard goes to a primary AND a
    // backup group.
    const int shards = cfg.dp / 2;
    std::vector<DataBatch> chunks = input.SplitChunks(shards);
    std::vector<DataBatch> per_rank(static_cast<size_t>(ctx.groups->world_size()));
    for (int rank = 0; rank < ctx.groups->world_size(); ++rank) {
      const TrainCoords coords = ctx.groups->TrainCoordsOf(rank);
      per_rank[static_cast<size_t>(rank)] = chunks[static_cast<size_t>(coords.d % shards)];
    }
    return per_rank;
  };
  redundant.collect = [](const std::vector<DataBatch>& outputs, const ProtocolContext& ctx) {
    const ParallelConfig& cfg = ctx.groups->train_config();
    const int shards = cfg.dp / 2;
    std::vector<DataBatch> parts;
    for (int shard = 0; shard < shards; ++shard) {
      // Prefer the primary group's output; fall back to the backup replica.
      const int primary = ctx.groups->RankOf({cfg.pp - 1, 0, shard});
      const int backup = ctx.groups->RankOf({cfg.pp - 1, 0, shard + shards});
      parts.push_back(outputs[static_cast<size_t>(primary)].empty()
                          ? outputs[static_cast<size_t>(backup)]
                          : outputs[static_cast<size_t>(primary)]);
    }
    return DataBatch::ConcatBatches(parts);
  };
  const int id = ProtocolRegistry::Instance().Register(redundant);
  std::cout << "registered custom protocol #" << id << " ("
            << ProtocolRegistry::Instance().Get(id).name << ")\n\n";

  // --- Push a batch through it ------------------------------------------------
  DataBatch input;
  DataBatch::TokenColumn prompts;
  for (int64_t i = 0; i < 8; ++i) {
    prompts.push_back({i * 10, i * 10 + 1});
  }
  input.SetTokens("prompts", std::move(prompts));

  const CustomProtocol& protocol = ProtocolRegistry::Instance().Get(id);
  std::vector<DataBatch> per_rank = protocol.distribute(input, context);
  std::cout << "distribute: shard row counts per rank:";
  for (const DataBatch& shard : per_rank) {
    std::cout << " " << shard.batch_size();
  }
  std::cout << "\n(DP groups 0 & 2 and 1 & 3 hold identical replicas)\n\n";

  // Simulate the primary replica of shard 0 failing: drop its output.
  std::vector<DataBatch> outputs = per_rank;
  const int failed = groups.RankOf({0, 0, 0});
  outputs[static_cast<size_t>(failed)] = DataBatch();
  DataBatch collected = protocol.collect(outputs, context);
  std::cout << "collect with rank " << failed << " failed: recovered "
            << collected.batch_size() << "/" << input.batch_size() << " rows";
  const bool intact = collected.Tokens("prompts") == input.Tokens("prompts");
  std::cout << (intact ? " — batch intact via the backup replica\n" : " — DATA LOST\n");

  // --- The built-in protocol for comparison ------------------------------------
  std::vector<DataBatch> builtin =
      DistributeBatch(TransferProtocol::k3dProto, input, context);
  std::cout << "\n3D_PROTO shards the same batch " << train.dp
            << " ways with no redundancy (rank 0 got " << builtin[0].batch_size()
            << " rows).\n";
  std::cout << "\nNo worker or controller code changed — the protocol is the only\n"
               "extension point, which is the §4.1 flexibility claim.\n";
  return intact ? 0 : 1;
}
