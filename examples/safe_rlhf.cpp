// Safe-RLHF (Figure 6): PPO plus a cost model fitting safety labels and an
// auxiliary pretraining loss. Demonstrates the paper's claim that adapting
// the dataflow costs a handful of lines: the cost model reuses
// RewardWorkerGroup, and compute_advantage composes the Lagrangian
// objective (reward advantage - lambda * cost advantage).
//
// Run: ./safe_rlhf [iterations]

#include <cstdlib>
#include <iostream>

#include "src/baselines/system_builder.h"
#include "src/common/strings.h"

int main(int argc, char** argv) {
  using namespace hybridflow;
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 30;

  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kSafeRlhf;
  config.num_gpus = 16;
  config.actor_model = ModelSpec::Llama7B();
  config.critic_model = ModelSpec::Llama7B();
  config.real_compute = true;
  config.real_batch = 64;
  config.seed = 77;

  RlhfSystemInstance system = BuildSystem(config);
  if (!system.feasible) {
    std::cerr << "configuration infeasible\n";
    return 1;
  }
  std::cout << "Safe-RLHF: 5 models (actor, critic, reference, reward, cost)\n";
  std::cout << "Auto-mapped into " << system.mapping.sets.size() << " colocated set(s); "
            << "estimated " << HumanSeconds(system.mapping.est_iteration_seconds)
            << "/iteration\n\n";

  std::cout << "iter | reward | toxicity (cost signal) | throughput tok/s\n";
  double first_toxicity = -1.0;
  double last_toxicity = 0.0;
  for (int i = 0; i < iterations; ++i) {
    IterationMetrics metrics = system.RunIteration();
    if (first_toxicity < 0.0) {
      first_toxicity = metrics.toxicity_rate;
    }
    last_toxicity = metrics.toxicity_rate;
    if (i % 5 == 0 || i == iterations - 1) {
      std::cout << StrFormat("%4d | %6.3f | %22.4f | %16.0f\n", i, metrics.mean_reward,
                             metrics.toxicity_rate, metrics.throughput_tokens_per_sec);
    }
  }
  std::cout << StrFormat(
      "\nToxicity %.4f -> %.4f: the Lagrangian cost term suppresses unsafe tokens\n"
      "faster than reward shaping alone.\n",
      first_toxicity, last_toxicity);
  return 0;
}
